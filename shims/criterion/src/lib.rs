//! Offline stand-in for the `criterion` benchmark harness (see
//! `shims/README.md`).
//!
//! Implements the subset of the criterion API used by `crates/bench`:
//! benchmark groups, `bench_with_input` / `bench_function`,
//! `Bencher::iter`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a plain wall-clock loop (one warm-up
//! pass, then `sample_size` timed samples); results are printed as
//! `bench <group>/<id> ... mean <t> (min <t>, N samples)` lines rather than
//! criterion's statistical reports.
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmark work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function>/<parameter>` style id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    /// Mean and minimum duration of one routine call, filled in by `iter`.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `samples` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total / self.samples as u32, min));
    }
}

fn run_one(group: &str, id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples, result: None };
    f(&mut b);
    match b.result {
        Some((mean, min)) => {
            println!("bench {group}/{id} ... mean {mean:?} (min {min:?}, {samples} samples)")
        }
        None => println!("bench {group}/{id} ... no measurement (iter was not called)"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), self.samples, &mut |b| f(b, input));
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&self.name, &id.to_string(), self.samples, &mut f);
    }

    /// Ends the group (upstream criterion generates summary reports here).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    default_samples: usize,
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = if self.default_samples == 0 { 10 } else { self.default_samples };
        BenchmarkGroup { name: name.into(), samples, _criterion: self }
    }

    /// Benchmarks a stand-alone closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let samples = if self.default_samples == 0 { 10 } else { self.default_samples };
        run_one("", &id.to_string(), samples, &mut f);
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
