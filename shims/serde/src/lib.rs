//! Offline stand-in for the `serde` crate (see `shims/README.md`).
//!
//! Re-exports no-op `Serialize` / `Deserialize` derive macros so the seed
//! sources' `#[derive(Serialize, Deserialize)]` attributes compile without
//! network access. No trait impls are generated — nothing in the workspace
//! serialises yet. Swap in the real `serde` when a registry is available.
#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
