//! Offline stand-in for the `rand` crate (see `shims/README.md`).
//!
//! Implements exactly the surface this workspace uses: the [`Rng`] extension
//! trait (`gen`, `gen_range`), [`SeedableRng::seed_from_u64`], the seeded
//! [`rngs::StdRng`] generator and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` is xoshiro256\*\* seeded through SplitMix64 — a different stream
//! than upstream `rand`'s ChaCha12, but every consumer in this workspace only
//! relies on *reproducibility for a fixed seed*, never on a specific stream.
#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an `RngCore` (the subset of
/// upstream `rand`'s `Standard` distribution this workspace uses).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange for std::ops::RangeInclusive<usize> {
    type Output = usize;
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        (start..end + 1).sample_range(rng)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

/// Extension methods on random sources (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256\*\* with
    /// SplitMix64 seed expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn fixed_seed_reproduces_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_samples_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_is_uniformish_and_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            let k = rng.gen_range(0..5usize);
            counts[k] += 1;
        }
        for c in counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.1);
        }
    }

    #[test]
    fn shuffle_permutes_all_elements() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should essentially never be identity");
    }
}
