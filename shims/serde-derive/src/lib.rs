//! No-op `Serialize` / `Deserialize` derive macros for the offline serde
//! shim (see `shims/README.md`). Nothing in the workspace serialises yet;
//! these keep the seed sources' derive attributes compiling without the
//! real `serde` crate.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
