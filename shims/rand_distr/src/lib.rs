//! Offline stand-in for the `rand_distr` crate (see `shims/README.md`).
//!
//! Provides the [`Distribution`] trait plus the [`StandardNormal`] and
//! [`Normal`] distributions used by the workspace, via the Box–Muller
//! transform.
#![forbid(unsafe_code)]

use rand::{Rng, RngCore};

/// A distribution that can be sampled with any [`Rng`].
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard normal distribution `N(0, 1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: u1 in (0, 1] so the log is finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Error constructing a parameterised distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// Standard deviation was negative or non-finite.
    BadVariance,
    /// Mean was non-finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
            NormalError::MeanTooSmall => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    /// Returns an error for non-finite parameters or negative `std_dev`.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        Ok(Self { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * StandardNormal.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = StandardNormal.sample(&mut rng);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn parameterised_normal_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = Normal::new(3.0, 0.5).unwrap();
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += d.sample(&mut rng);
        }
        assert!((sum / n as f64 - 3.0).abs() < 0.01);
        assert!(Normal::new(0.0, -1.0).is_err());
    }
}
