//! Cross-crate integration tests: each test exercises at least two workspace
//! crates through the umbrella `qudit-cavity` API, checking that the pieces
//! the experiments rely on actually compose.

use qudit_cavity::cavity::device::Device;
use qudit_cavity::cavity::lindblad::LindbladSystem;
use qudit_cavity::circuit::noise::NoiseModel;
use qudit_cavity::circuit::sim::{DensityMatrixSimulator, StatevectorSimulator};
use qudit_cavity::circuit::{Circuit, Gate};
use qudit_cavity::compiler::mapping::{map_circuit, MappingStrategy};
use qudit_cavity::compiler::resource::estimate_resources;
use qudit_cavity::compiler::synthesis::{decompose_unitary, CsumCompiler};
use qudit_cavity::core::metrics::process_fidelity;
use qudit_cavity::core::prelude::*;
use qudit_cavity::lgt::hamiltonian::{sqed_chain, SqedParams};
use qudit_cavity::lgt::trotter::{exact_propagator, trotter_circuit, TrotterOrder};
use qudit_cavity::qopt::graph::{ColoringProblem, Graph};
use qudit_cavity::qopt::ndar::{run_ndar, NdarConfig};
use qudit_cavity::qopt::qaoa::{QaoaConfig, QuditQaoa};
use qudit_cavity::qrc::pipeline::evaluate_quantum;
use qudit_cavity::qrc::reservoir::ReservoirParams;
use qudit_cavity::qrc::tasks::memory_task;

#[test]
fn trotterised_sqed_circuit_compiles_and_runs_end_to_end() {
    // lgt → qudit-circuit → qudit-compiler → cavity-sim.
    let h = sqed_chain(&SqedParams { sites: 3, link_dim: 3, ..Default::default() }).unwrap();
    let circuit = trotter_circuit(&h, 0.8, 4, TrotterOrder::Second).unwrap();

    // Simulated evolution agrees with the exact propagator.
    let exact = exact_propagator(&h, 0.8).unwrap();
    let fidelity = process_fidelity(&circuit.unitary().unwrap(), &exact).unwrap();
    assert!(fidelity > 0.999, "Trotter fidelity {fidelity}");

    // The same circuit maps onto the present-day testbed... (3 qutrits fit)
    let device = Device::testbed();
    let estimate =
        estimate_resources("sqed-3", &circuit, &device, MappingStrategy::NoiseAware).unwrap();
    assert_eq!(estimate.logical_qudits, 3);
    assert!(estimate.estimated_fidelity > 0.0 && estimate.estimated_fidelity < 1.0);
    assert!(estimate.coherence_feasible);
}

#[test]
fn synthesised_gates_behave_inside_circuits() {
    // qudit-compiler synthesis output drives a qudit-circuit simulation.
    let d = 4;
    let target = qudit_cavity::circuit::gates::fourier(d);
    let decomposition = decompose_unitary(&target).unwrap();

    let mut circuit = Circuit::new(vec![d]);
    for rot in &decomposition.rotations {
        circuit.push(Gate::custom("givens", vec![d], rot.matrix.clone()).unwrap(), &[0]).unwrap();
    }
    circuit.push(Gate::snap(d, &decomposition.phases), &[0]).unwrap();

    let from_circuit = circuit.unitary().unwrap();
    assert!(process_fidelity(&from_circuit, &target).unwrap() > 1.0 - 1e-9);
}

#[test]
fn csum_compilation_matches_device_connectivity_cost() {
    let device = Device::testbed();
    let compiler = CsumCompiler::new(&device);
    let intra = compiler.compile(0, 1).unwrap();
    let inter = compiler.compile(1, 2).unwrap();
    assert!(intra.estimated_fidelity > inter.estimated_fidelity);
    assert!(intra.ideal_construction_fidelity().unwrap() > 1.0 - 1e-9);
}

#[test]
fn noise_aware_mapping_never_loses_to_round_robin_on_forecast_device() {
    let h = sqed_chain(&SqedParams { sites: 8, link_dim: 4, ..Default::default() }).unwrap();
    let circuit = trotter_circuit(&h, 0.5, 1, TrotterOrder::First).unwrap();
    let device = Device::forecast();
    let aware = map_circuit(&circuit, &device, MappingStrategy::NoiseAware).unwrap();
    let naive = map_circuit(&circuit, &device, MappingStrategy::RoundRobin).unwrap();
    assert!(aware.estimated_fidelity >= naive.estimated_fidelity * 0.999);
}

#[test]
fn qaoa_circuit_runs_on_both_simulator_backends() {
    let problem = ColoringProblem::new(Graph::cycle(4).unwrap(), 3).unwrap();
    let qaoa = QuditQaoa::new(problem, QaoaConfig { layers: 1, ..Default::default() });
    let circuit = qaoa.circuit(&[0.5], &[0.3]).unwrap();

    let pure = StatevectorSimulator::new().run(&circuit).unwrap();
    let rho = DensityMatrixSimulator::new().run(&circuit).unwrap();
    assert!((rho.fidelity_with_pure(&pure).unwrap() - 1.0).abs() < 1e-9);

    let noisy = DensityMatrixSimulator::new()
        .with_noise(NoiseModel::cavity(0.02, 0.05, 0.0))
        .run(&circuit)
        .unwrap();
    assert!(noisy.fidelity_with_pure(&pure).unwrap() < 1.0);
}

#[test]
fn ndar_loop_uses_cavity_loss_model_and_improves() {
    let problem = ColoringProblem::new(Graph::cycle(5).unwrap(), 3).unwrap();
    let config = NdarConfig {
        rounds: 2,
        qaoa: QaoaConfig { layers: 1, trajectories: 15, optimizer_rounds: 6, ..Default::default() },
        shots_per_round: 16,
    };
    let noise = NoiseModel::cavity(0.1, 0.2, 0.0);
    let result = run_ndar(&problem, &config, &noise, true).unwrap();
    assert!(result.best_value >= 3, "best value {}", result.best_value);
    assert_eq!(result.best_value_per_round.len(), 2);
}

#[test]
fn quantum_reservoir_pipeline_spans_cavity_and_training_stacks() {
    // cavity-sim Lindblad dynamics + qrc training on a short memory task.
    let task = memory_task(60, 1, 5);
    let eval = evaluate_quantum(&ReservoirParams::small(), &task, 0.7, 1e-3).unwrap();
    assert!(eval.test_nmse.is_finite());
    assert!(eval.train_nmse < 1.0);
}

#[test]
fn lindblad_decay_matches_discrete_photon_loss_channel() {
    // cavity-sim continuous dynamics vs qudit-circuit's discrete Kraus channel.
    let d = 5;
    let t1 = 10.0;
    let elapsed = 2.0;
    // Continuous evolution.
    let mut sys = LindbladSystem::new(vec![d]).unwrap();
    sys.add_collapse(&qudit_cavity::circuit::gates::annihilation(d), &[0], 1.0 / t1).unwrap();
    let mut rho = DensityMatrix::from_pure(&QuditState::basis(vec![d], &[3]).unwrap());
    sys.evolve(&mut rho, elapsed, 0.005).unwrap();
    // Discrete channel with the equivalent loss probability.
    let gamma = 1.0 - (-elapsed / t1).exp();
    let channel = qudit_cavity::circuit::noise::KrausChannel::photon_loss(d, gamma).unwrap();
    let mut rho_discrete = DensityMatrix::from_pure(&QuditState::basis(vec![d], &[3]).unwrap());
    rho_discrete.apply_kraus(channel.operators(), &[0]).unwrap();
    let distance = qudit_cavity::core::metrics::trace_distance(&rho, &rho_discrete).unwrap();
    assert!(distance < 2e-3, "trace distance {distance}");
}

#[test]
fn umbrella_crate_reexports_are_consistent() {
    assert!(!qudit_cavity::VERSION.is_empty());
    // A state built through the umbrella path behaves like the native one.
    let state = QuditState::basis(vec![3, 3], &[1, 2]).unwrap();
    assert_eq!(state.dim(), 9);
    let device = Device::forecast();
    assert_eq!(device.num_modes(), 40);
}
