//! Application A walk-through: truncated scalar-QED chain, Trotterised
//! real-time dynamics, and the qudit-vs-qubit encoding comparison at one
//! noise point.
//!
//! Run with `cargo run --release --example lattice_gauge_theory`.

use qudit_cavity::circuit::noise::NoiseModel;
use qudit_cavity::lgt::encoding::{encode, Encoding};
use qudit_cavity::lgt::hamiltonian::{sqed_chain, SqedParams};
use qudit_cavity::lgt::massgap::{run_dynamics, DynamicsProtocol};
use qudit_cavity::lgt::trotter::TrotterOrder;

fn main() {
    let params = SqedParams {
        sites: 3,
        link_dim: 3,
        coupling_g: 1.0,
        hopping: 0.5,
        mass: 0.2,
        periodic: false,
    };
    let h = sqed_chain(&params).expect("sQED model");
    let (e0, gap) = h.spectrum_gap().expect("spectrum");
    println!("Model: {} — E0 = {e0:.4}, exact gap = {gap:.4}", h.name);

    let protocol = DynamicsProtocol {
        total_time: 5.0,
        num_samples: 10,
        steps_per_unit_time: 3,
        order: TrotterOrder::Second,
    };
    let result = run_dynamics(&h, 1, &protocol, &NoiseModel::noiseless()).expect("dynamics");
    println!("\nReal-time electric-energy signal on the probed site:");
    for (t, s) in result.times.iter().zip(result.signal.iter()) {
        println!("  t = {t:5.2}  ⟨Lz²⟩ = {s:.4}");
    }
    println!("Dominant oscillation frequency (gap estimator): {:.3}", result.extracted_frequency);

    // Hardware cost of the two encodings.
    for encoding in [Encoding::DirectQudit, Encoding::BinaryQubit] {
        let encoded = encode(&h, encoding).expect("encoding");
        println!(
            "\nEncoding {:<13}: {} carriers, {} two-carrier-or-larger Hamiltonian terms",
            encoding.label(),
            encoded.num_carriers(),
            encoded.hamiltonian.two_site_term_count(),
        );
    }
}
