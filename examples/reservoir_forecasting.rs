//! Application C walk-through: time-series prediction with a two-oscillator
//! quantum reservoir, compared against a classical echo state network, and
//! the effect of a finite measurement budget.
//!
//! Run with `cargo run --release --example reservoir_forecasting`.

use qudit_cavity::qrc::esn::EsnParams;
use qudit_cavity::qrc::pipeline::{
    evaluate_esn, evaluate_quantum, evaluate_quantum_digital, evaluate_quantum_with_shots,
};
use qudit_cavity::qrc::reservoir::ReservoirParams;
use qudit_cavity::qrc::tasks;

fn main() {
    let task = tasks::narma(5, 150, 21);
    println!("Task: {} with {} samples (70% train / 30% test)", task.name, task.len());

    let params = ReservoirParams { levels: 5, substeps: 10, ..ReservoirParams::paper_reference() };
    let quantum = evaluate_quantum(&params, &task, 0.7, 1e-4).expect("quantum evaluation");
    println!(
        "\nQuantum reservoir ({} effective neurons, {} readout features): test NMSE = {:.3}",
        params.effective_neurons(),
        quantum.feature_dim,
        quantum.test_nmse
    );

    // The digital (gate-based) reservoir compiles ONE parameterized segment
    // circuit and rebinds its drive angle per input sample — the per-sample
    // cost is a plan rebind plus the fused density sweep, with no circuit
    // rebuild anywhere in the input loop.
    let digital_params =
        ReservoirParams { levels: 4, substeps: 8, ..ReservoirParams::paper_reference() };
    let digital =
        evaluate_quantum_digital(&digital_params, &task, 0.7, 1e-4).expect("digital evaluation");
    println!(
        "Digital reservoir (rebind-per-sample, {} readout features): test NMSE = {:.3}",
        digital.feature_dim, digital.test_nmse
    );

    let esn = evaluate_esn(&EsnParams { size: 25, ..Default::default() }, &task, 0.7, 1e-4)
        .expect("ESN evaluation");
    println!("Classical ESN ({} neurons): test NMSE = {:.3}", esn.feature_dim, esn.test_nmse);

    for shots in [50usize, 5000] {
        let noisy = evaluate_quantum_with_shots(&params, &task, 0.7, 1e-4, shots, 3)
            .expect("shot-limited evaluation");
        println!(
            "Quantum reservoir with {shots} shots/observable: test NMSE = {:.3}",
            noisy.test_nmse
        );
    }
}
