//! Application B walk-through: qudit one-hot QAOA for 3-coloring, with and
//! without noise-directed adaptive remapping (NDAR) under photon loss.
//!
//! Run with `cargo run --release --example graph_coloring_ndar`.

use qudit_cavity::circuit::noise::NoiseModel;
use qudit_cavity::qopt::baselines::greedy_coloring;
use qudit_cavity::qopt::graph::{ColoringProblem, Graph};
use qudit_cavity::qopt::ndar::{run_ndar, NdarConfig};
use qudit_cavity::qopt::qaoa::{QaoaConfig, QuditQaoa};

fn main() {
    let graph = Graph::random_regular(6, 3, 2).expect("graph");
    let problem = ColoringProblem::new(graph, 3).expect("problem");
    let (_, optimum) = problem.brute_force_optimum();
    println!(
        "3-coloring a random 3-regular graph with {} nodes / {} edges; optimum = {optimum}",
        problem.graph.num_nodes(),
        problem.graph.num_edges()
    );
    println!(
        "Greedy baseline: {} properly colored edges",
        problem.properly_colored(&greedy_coloring(&problem))
    );

    // The QAOA ansatz is a *parameterized* circuit: one compiled plan serves
    // the whole angle sweep below (and every optimizer step inside
    // `run_ndar`), rebound in place per angle set instead of rebuilt.
    let qaoa = QuditQaoa::new(problem.clone(), QaoaConfig { layers: 1, ..Default::default() });
    let mut evaluator = qaoa.evaluator(&NoiseModel::noiseless()).expect("evaluator");
    println!("\nNoiseless γ-sweep at β = 0.35 (one compiled plan, rebound per point):");
    for k in 0..5 {
        let gamma = 0.2 + 0.2 * k as f64;
        let value =
            qaoa.expected_value_bound(&mut evaluator, &[gamma], &[0.35]).expect("expected value");
        println!("  γ = {gamma:.2}: expected properly colored edges = {value:.3}");
    }

    let config = NdarConfig {
        rounds: 3,
        qaoa: QaoaConfig {
            layers: 1,
            trajectories: 25,
            optimizer_rounds: 10,
            ..Default::default()
        },
        shots_per_round: 32,
    };
    let noise = NoiseModel::cavity(0.1, 0.2, 0.0);

    let ndar = run_ndar(&problem, &config, &noise, true).expect("NDAR");
    let plain = run_ndar(&problem, &config, &noise, false).expect("plain QAOA");
    println!("\nUnder 10%/20% photon loss per gate:");
    println!(
        "  NDAR-QAOA  : best = {} (ratio {:.2}), progress {:?}",
        ndar.best_value,
        ndar.best_value as f64 / optimum as f64,
        ndar.best_value_per_round
    );
    println!(
        "  plain QAOA : best = {} (ratio {:.2}), progress {:?}",
        plain.best_value,
        plain.best_value as f64 / optimum as f64,
        plain.best_value_per_round
    );
    println!("\nBest NDAR coloring: {:?}", ndar.best_assignment);
}
