//! Quickstart: build a two-qutrit circuit, run it ideally and under
//! cavity-style noise, and compile it onto a simulated cavity device.
//!
//! Run with `cargo run --release --example quickstart`.

use qudit_cavity::cavity::device::Device;
use qudit_cavity::circuit::noise::NoiseModel;
use qudit_cavity::circuit::sim::{DensityMatrixSimulator, StatevectorSimulator};
use qudit_cavity::circuit::{Circuit, Gate};
use qudit_cavity::compiler::mapping::MappingStrategy;
use qudit_cavity::compiler::resource::estimate_resources;

fn main() {
    // 1. A maximally correlated two-qutrit state: F on qudit 0, CSUM 0 -> 1.
    let mut circuit = Circuit::uniform(2, 3);
    circuit.push(Gate::fourier(3), &[0]).expect("push Fourier");
    circuit.push(Gate::csum(3, 3), &[0, 1]).expect("push CSUM");

    let ideal = StatevectorSimulator::new().run(&circuit).expect("ideal run");
    println!("Ideal outcome probabilities (diagonal pairs only should appear):");
    for (idx, p) in ideal.probabilities().iter().enumerate() {
        if *p > 1e-9 {
            println!("  |{}{}⟩ : {:.4}", idx / 3, idx % 3, p);
        }
    }

    // 2. The same circuit under photon loss.
    let noisy = DensityMatrixSimulator::new()
        .with_noise(NoiseModel::cavity(0.01, 0.05, 0.0))
        .run(&circuit)
        .expect("noisy run");
    println!(
        "\nFidelity with the ideal state under 1%/5% photon loss: {:.4}",
        noisy.fidelity_with_pure(&ideal).expect("fidelity")
    );

    // 3. Compile onto the present-day two-cavity testbed.
    let device = Device::testbed();
    let estimate = estimate_resources("quickstart", &circuit, &device, MappingStrategy::NoiseAware)
        .expect("resource estimate");
    println!("\nCompiled onto {}:\n{}", device.name, estimate.as_table_row());
}
