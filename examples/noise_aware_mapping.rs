//! Compiler walk-through: noise-aware mapping and routing of a lattice
//! Trotter circuit onto the forecast 10-cavity device, compared with naive
//! placements, plus a compiled CSUM.
//!
//! Run with `cargo run --release --example noise_aware_mapping`.

use qudit_cavity::cavity::device::Device;
use qudit_cavity::compiler::mapping::{map_circuit, MappingStrategy};
use qudit_cavity::compiler::resource::estimate_resources;
use qudit_cavity::compiler::synthesis::CsumCompiler;
use qudit_cavity::lgt::hamiltonian::{sqed_chain, SqedParams};
use qudit_cavity::lgt::trotter::{trotter_circuit, TrotterOrder};

fn main() {
    let device = Device::forecast();
    println!(
        "Device {}: {} cavities × modes = {} qudit slots, ≈{:.0} equivalent qubits",
        device.name,
        device.num_modules(),
        device.num_modes(),
        device.equivalent_qubits()
    );

    let h =
        sqed_chain(&SqedParams { sites: 12, link_dim: 4, ..Default::default() }).expect("model");
    let circuit = trotter_circuit(&h, 1.0, 2, TrotterOrder::First).expect("circuit");
    println!(
        "\nWorkload: {} — {} gates, {} entangling, depth {}",
        h.name,
        circuit.gate_count(),
        circuit.multi_qudit_gate_count(),
        circuit.depth()
    );

    for strategy in
        [MappingStrategy::NoiseAware, MappingStrategy::RoundRobin, MappingStrategy::Random(3)]
    {
        let est = estimate_resources("sqed", &circuit, &device, strategy).expect("estimate");
        println!(
            "  {:<25} fidelity ≈ {:.4}, {} swaps, {:.1} µs",
            format!("{strategy:?}"),
            est.estimated_fidelity,
            est.swap_count,
            est.total_duration_us
        );
    }

    let mapping = map_circuit(&circuit, &device, MappingStrategy::NoiseAware).expect("mapping");
    println!(
        "\nNoise-aware placement (logical → physical mode): {:?}",
        mapping.logical_to_physical
    );

    let csum = CsumCompiler::new(&device).compile(0, 1).expect("CSUM compilation");
    println!(
        "\nCompiled CSUM (d = {}): {} pulses, {:.2} µs, estimated fidelity {:.4}",
        csum.d,
        csum.pulse_count(),
        csum.duration_us,
        csum.estimated_fidelity
    );
}
