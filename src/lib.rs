//! # qudit-cavity
//!
//! Umbrella crate for the `qudit-cavity` workspace: a near-term application
//! engineering toolkit for superconducting cavity qudit processors.
//!
//! This crate re-exports the public API of every workspace member so that a
//! downstream user can depend on `qudit-cavity` alone:
//!
//! * [`core`] — complex linear algebra, mixed-radix qudit registers, state
//!   vectors, density matrices, measurement and metrics
//!   (re-export of `qudit-core`).
//! * [`circuit`] — qudit gate library, circuit IR, noise channels and the
//!   statevector / density-matrix / trajectory simulators
//!   (re-export of `qudit-circuit`).
//! * [`cavity`] — the cQED hardware substrate: Fock-space operators,
//!   dispersive transmon–cavity models, SNAP / displacement / beam-splitter
//!   primitives and a Lindblad integrator (re-export of `cavity-sim`).
//! * [`compiler`] — SNAP+displacement synthesis, CSUM decomposition,
//!   noise-aware mapping and routing, and resource estimation
//!   (re-export of `qudit-compiler`).
//! * [`lgt`] — application A: lattice gauge theory (scalar QED and pure-gauge
//!   rotor models) with qubit / qutrit / qudit encodings.
//! * [`qopt`] — application B: graph-coloring QAOA with qudit one-hot
//!   encoding, NDAR and QRAC scaling.
//! * [`qrc`] — application C: quantum reservoir computing on coupled
//!   dissipative oscillators.
//! * [`serve`] — resilient serving layer: cancellable job engine with
//!   deadlines, backpressure and a shared single-flight plan cache
//!   (re-export of `qudit-serve`).
//!
//! ## Quickstart
//!
//! ```
//! use qudit_cavity::circuit::{Circuit, Gate};
//! use qudit_cavity::circuit::sim::StatevectorSimulator;
//!
//! // A two-qutrit Bell-like state |00> + |11> + |22> via F_d and CSUM.
//! let mut circuit = Circuit::new(vec![3, 3]);
//! circuit.push(Gate::fourier(3), &[0]).unwrap();
//! circuit.push(Gate::csum(3, 3), &[0, 1]).unwrap();
//!
//! let state = StatevectorSimulator::new().run(&circuit).unwrap();
//! let p = state.probabilities();
//! assert!((p[0] - 1.0 / 3.0).abs() < 1e-9);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cavity_sim as cavity;
pub use lgt;
pub use qopt;
pub use qrc;
pub use qudit_circuit as circuit;
pub use qudit_compiler as compiler;
pub use qudit_core as core;
pub use qudit_serve as serve;

/// Workspace version string, useful for experiment provenance records.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
