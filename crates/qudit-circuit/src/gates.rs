//! Matrix builders for the standard qudit gate set.
//!
//! These free functions return plain [`CMatrix`] operators; the [`crate::Gate`]
//! type wraps them with metadata (name, arity, dimensions) for use inside
//! circuits. Conventions:
//!
//! * `d` always denotes the qudit dimension.
//! * Two-qudit operators are indexed with the **control as the most
//!   significant digit** (matching the `targets = [control, target]` order
//!   used when pushing gates onto a circuit).
//! * `ω = exp(2πi/d)` is the primitive `d`-th root of unity.

use std::f64::consts::PI;

use qudit_core::complex::{c64, Complex64};
use qudit_core::linalg::{expm, expm_hermitian};
use qudit_core::matrix::CMatrix;

/// Identity on a `d`-level system.
pub fn identity(d: usize) -> CMatrix {
    CMatrix::identity(d)
}

/// Generalised Pauli-X (cyclic shift): `X|k⟩ = |k+1 mod d⟩`.
pub fn shift_x(d: usize) -> CMatrix {
    let mut m = CMatrix::zeros(d, d);
    for k in 0..d {
        m[((k + 1) % d, k)] = Complex64::ONE;
    }
    m
}

/// Generalised Pauli-Z (clock): `Z|k⟩ = ω^k |k⟩`.
pub fn clock_z(d: usize) -> CMatrix {
    let omega = 2.0 * PI / d as f64;
    CMatrix::diag(&(0..d).map(|k| Complex64::cis(omega * k as f64)).collect::<Vec<_>>())
}

/// Weyl operator `X^a Z^b`.
pub fn weyl(d: usize, a: usize, b: usize) -> CMatrix {
    let omega = 2.0 * PI / d as f64;
    let mut m = CMatrix::zeros(d, d);
    for k in 0..d {
        m[((k + a) % d, k)] = Complex64::cis(omega * (b * k) as f64);
    }
    m
}

/// Discrete Fourier transform (the qudit generalisation of the Hadamard):
/// `F|k⟩ = d^{-1/2} Σ_j ω^{jk} |j⟩`.
pub fn fourier(d: usize) -> CMatrix {
    let omega = 2.0 * PI / d as f64;
    let norm = 1.0 / (d as f64).sqrt();
    CMatrix::from_fn(d, d, |j, k| Complex64::cis(omega * (j * k) as f64).scale(norm))
}

/// Number operator `n̂ = diag(0, 1, ..., d-1)`.
pub fn number_operator(d: usize) -> CMatrix {
    CMatrix::diag_real(&(0..d).map(|k| k as f64).collect::<Vec<_>>())
}

/// Truncated bosonic annihilation operator `a|n⟩ = √n |n-1⟩`.
pub fn annihilation(d: usize) -> CMatrix {
    let mut m = CMatrix::zeros(d, d);
    for n in 1..d {
        m[(n - 1, n)] = c64((n as f64).sqrt(), 0.0);
    }
    m
}

/// Truncated bosonic creation operator `a†`.
pub fn creation(d: usize) -> CMatrix {
    annihilation(d).dagger()
}

/// Projector `|level⟩⟨level|` on a `d`-level system.
pub fn projector(d: usize, level: usize) -> CMatrix {
    let mut m = CMatrix::zeros(d, d);
    m[(level, level)] = Complex64::ONE;
    m
}

/// SNAP gate: selective number-dependent arbitrary phases,
/// `SNAP(θ⃗)|n⟩ = e^{iθ_n}|n⟩`.
///
/// Phases beyond the supplied list default to zero.
pub fn snap(d: usize, phases: &[f64]) -> CMatrix {
    CMatrix::diag(
        &(0..d).map(|n| Complex64::cis(phases.get(n).copied().unwrap_or(0.0))).collect::<Vec<_>>(),
    )
}

/// Truncated displacement operator `D(α) = exp(α a† − α* a)`.
///
/// The generator is truncated to the `d`-level subspace before
/// exponentiation, so the result is exactly unitary on that subspace.
pub fn displacement(d: usize, alpha: Complex64) -> CMatrix {
    let a = annihilation(d);
    let adag = creation(d);
    let mut gen = adag.scaled(alpha);
    gen.axpy(-alpha.conj(), &a).expect("same shape");
    expm(&gen).expect("displacement generator is finite")
}

/// Single-qudit rotation in the two-level subspace `{|j⟩, |k⟩}`:
/// `R_{jk}(θ, φ) = exp(−i θ/2 (cos φ · σx^{jk} + sin φ · σy^{jk}))`.
///
/// This is the native gate for transmon-style qudits where neighbouring (or
/// microwave-addressable) level pairs are driven resonantly.
pub fn rot_subspace(d: usize, j: usize, k: usize, theta: f64, phi: f64) -> CMatrix {
    assert!(j < d && k < d && j != k, "levels must be distinct and < d");
    let mut h = CMatrix::zeros(d, d);
    let coeff = c64(phi.cos(), -phi.sin()); // cosφ - i sinφ multiplies |j⟩⟨k|
    h[(j, k)] = coeff;
    h[(k, j)] = coeff.conj();
    expm_hermitian(&h, c64(0.0, -theta / 2.0)).expect("Hermitian generator")
}

/// Diagonal phase rotation on a single level: `|level⟩ ↦ e^{iθ}|level⟩`.
pub fn phase_on_level(d: usize, level: usize, theta: f64) -> CMatrix {
    let mut phases = vec![0.0; d];
    phases[level] = theta;
    snap(d, &phases)
}

/// The qudit "X mixer" Hamiltonian `Σ_k (|k⟩⟨k+1| + h.c.)` — the generator
/// of [`x_mixer`], exposed for parameterized-gate construction
/// ([`crate::Gate::parameterized`]).
pub fn x_mixer_generator(d: usize) -> CMatrix {
    let mut h = CMatrix::zeros(d, d);
    for k in 0..d - 1 {
        h[(k, k + 1)] = Complex64::ONE;
        h[(k + 1, k)] = Complex64::ONE;
    }
    h
}

/// Qudit "X mixer" generator `Σ_k (|k⟩⟨k+1| + h.c.)` exponentiated:
/// `exp(−i β H_mix)`. Used as the QAOA mixing operator for one-hot qudit
/// encodings.
pub fn x_mixer(d: usize, beta: f64) -> CMatrix {
    expm_hermitian(&x_mixer_generator(d), c64(0.0, -beta)).expect("Hermitian generator")
}

/// The fully-connected mixer Hamiltonian `Σ_{j<k} (|j⟩⟨k| + h.c.)` — the
/// generator of [`full_mixer`], exposed for parameterized-gate construction.
pub fn full_mixer_generator(d: usize) -> CMatrix {
    let mut h = CMatrix::zeros(d, d);
    for j in 0..d {
        for k in (j + 1)..d {
            h[(j, k)] = Complex64::ONE;
            h[(k, j)] = Complex64::ONE;
        }
    }
    h
}

/// Fully-connected qudit mixer `exp(−i β Σ_{j<k} (|j⟩⟨k| + h.c.))`.
pub fn full_mixer(d: usize, beta: f64) -> CMatrix {
    expm_hermitian(&full_mixer_generator(d), c64(0.0, -beta)).expect("Hermitian generator")
}

/// Diagonal qudit phase gate `exp(−i γ diag(w_0, ..., w_{d-1}))`, the phase
/// separator applied per-qudit in QAOA cost layers.
pub fn diagonal_phase(weights: &[f64], gamma: f64) -> CMatrix {
    CMatrix::diag(&weights.iter().map(|&w| Complex64::cis(-gamma * w)).collect::<Vec<_>>())
}

/// CSUM gate on a (control, target) pair of possibly different dimensions:
/// `|a⟩|b⟩ ↦ |a⟩|(b + a) mod d_t⟩`.
///
/// This is the qudit Clifford extension of CNOT highlighted by the paper as
/// the key missing engineering component for nearest-neighbour interactions.
pub fn csum(d_control: usize, d_target: usize) -> CMatrix {
    let dim = d_control * d_target;
    let mut m = CMatrix::zeros(dim, dim);
    for a in 0..d_control {
        for b in 0..d_target {
            let src = a * d_target + b;
            let dst = a * d_target + ((b + a) % d_target);
            m[(dst, src)] = Complex64::ONE;
        }
    }
    m
}

/// Inverse CSUM: `|a⟩|b⟩ ↦ |a⟩|(b − a) mod d_t⟩`.
pub fn csum_inverse(d_control: usize, d_target: usize) -> CMatrix {
    csum(d_control, d_target).dagger()
}

/// Controlled-phase gate `CZ_d |a⟩|b⟩ = ω^{ab} |a⟩|b⟩` with
/// `ω = exp(2πi/d_target)`.
pub fn cphase(d_control: usize, d_target: usize) -> CMatrix {
    let omega = 2.0 * PI / d_target as f64;
    let dim = d_control * d_target;
    CMatrix::diag(
        &(0..dim)
            .map(|idx| {
                let a = idx / d_target;
                let b = idx % d_target;
                Complex64::cis(omega * (a * b) as f64)
            })
            .collect::<Vec<_>>(),
    )
}

/// Weighted controlled-phase `exp(−i γ (a·b))` on a qudit pair — the QAOA
/// phase-separation interaction for graph coloring and lattice-gauge
/// electric-field couplings.
pub fn cphase_weighted(d_control: usize, d_target: usize, gamma: f64) -> CMatrix {
    let dim = d_control * d_target;
    CMatrix::diag(
        &(0..dim)
            .map(|idx| {
                let a = idx / d_target;
                let b = idx % d_target;
                Complex64::cis(-gamma * (a * b) as f64)
            })
            .collect::<Vec<_>>(),
    )
}

/// SWAP between two qudits of equal dimension `d`.
pub fn swap(d: usize) -> CMatrix {
    let dim = d * d;
    let mut m = CMatrix::zeros(dim, dim);
    for a in 0..d {
        for b in 0..d {
            m[(b * d + a, a * d + b)] = Complex64::ONE;
        }
    }
    m
}

/// Beam-splitter interaction between two bosonic modes truncated to `d`
/// levels each: `exp(−iθ (a†b + a b†))` (with an optional phase `φ` on the
/// exchanged excitation).
///
/// At `θ = π/2, φ = 0` this implements (up to local phases) a full SWAP of
/// the two mode states; at `θ = π/4` a 50:50 beam splitter.
pub fn beam_splitter(d: usize, theta: f64, phi: f64) -> CMatrix {
    let a = annihilation(d);
    let b = annihilation(d);
    let a_dag_b = a.dagger().kron(&b);
    let a_b_dag = a.kron(&b.dagger());
    let phase = Complex64::cis(phi);
    let mut h = a_dag_b.scaled(phase);
    h.axpy(phase.conj(), &a_b_dag).expect("same shape");
    expm_hermitian(&h, c64(0.0, -theta)).expect("Hermitian generator")
}

/// Cross-Kerr interaction `exp(−i χ t n̂_1 n̂_2)` between two modes truncated
/// to `d1`, `d2` levels.
pub fn cross_kerr(d1: usize, d2: usize, chi_t: f64) -> CMatrix {
    let dim = d1 * d2;
    CMatrix::diag(
        &(0..dim)
            .map(|idx| {
                let n1 = idx / d2;
                let n2 = idx % d2;
                Complex64::cis(-chi_t * (n1 * n2) as f64)
            })
            .collect::<Vec<_>>(),
    )
}

/// Generic controlled unitary: applies `u` to the target when the control is
/// in level `trigger`, identity otherwise.
pub fn controlled_on_level(d_control: usize, trigger: usize, u: &CMatrix) -> CMatrix {
    let d_t = u.rows();
    let dim = d_control * d_t;
    let mut m = CMatrix::zeros(dim, dim);
    for a in 0..d_control {
        for i in 0..d_t {
            if a == trigger {
                for j in 0..d_t {
                    m[(a * d_t + i, a * d_t + j)] = u.get(i, j);
                }
            } else {
                m[(a * d_t + i, a * d_t + i)] = Complex64::ONE;
            }
        }
    }
    m
}

/// Embeds a qubit (2-level) unitary into the lowest two levels of a
/// `d`-level qudit, acting as identity on the remaining levels.
pub fn embed_qubit_gate(d: usize, u2: &CMatrix) -> CMatrix {
    assert_eq!(u2.rows(), 2, "embed_qubit_gate expects a 2x2 matrix");
    let mut m = CMatrix::identity(d);
    for i in 0..2 {
        for j in 0..2 {
            m[(i, j)] = u2.get(i, j);
        }
    }
    m
}

/// The qubit Hadamard (2x2), convenient for qubit-encoded baselines.
pub fn hadamard_qubit() -> CMatrix {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    CMatrix::from_fn(2, 2, |i, j| if i == 1 && j == 1 { c64(-s, 0.0) } else { c64(s, 0.0) })
}

/// Qubit rotation `exp(-i θ/2 (n_x X + n_y Y + n_z Z))` for qubit-encoded
/// baselines.
pub fn qubit_rotation(theta: f64, nx: f64, ny: f64, nz: f64) -> CMatrix {
    let h =
        CMatrix::from_rows(&[vec![c64(nz, 0.0), c64(nx, -ny)], vec![c64(nx, ny), c64(-nz, 0.0)]])
            .expect("2x2");
    expm_hermitian(&h, c64(0.0, -theta / 2.0)).expect("Hermitian generator")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::metrics::process_fidelity;

    const TOL: f64 = 1e-10;

    #[test]
    fn shift_and_clock_satisfy_weyl_commutation() {
        // Z X = ω X Z
        for d in [2, 3, 5] {
            let x = shift_x(d);
            let z = clock_z(d);
            let zx = z.matmul(&x).unwrap();
            let xz = x.matmul(&z).unwrap();
            let omega = Complex64::cis(2.0 * PI / d as f64);
            assert!((&zx - &xz.scaled(omega)).max_abs() < TOL, "d = {d}");
        }
    }

    #[test]
    fn shift_x_has_order_d() {
        for d in [2, 3, 4, 7] {
            let x = shift_x(d);
            let mut acc = CMatrix::identity(d);
            for _ in 0..d {
                acc = acc.matmul(&x).unwrap();
            }
            assert!((&acc - &CMatrix::identity(d)).max_abs() < TOL);
        }
    }

    #[test]
    fn fourier_is_unitary_and_diagonalises_shift() {
        for d in [2, 3, 4, 6] {
            let f = fourier(d);
            assert!(f.is_unitary(TOL));
            // F† X F should be diagonal (equal to Z up to conjugation convention).
            let x = shift_x(d);
            let diag = f.dagger().matmul(&x).unwrap().matmul(&f).unwrap();
            for i in 0..d {
                for j in 0..d {
                    if i != j {
                        assert!(diag[(i, j)].abs() < TOL, "d={d} ({i},{j})");
                    }
                }
            }
        }
    }

    #[test]
    fn weyl_operators_are_unitary() {
        let d = 4;
        for a in 0..d {
            for b in 0..d {
                assert!(weyl(d, a, b).is_unitary(TOL));
            }
        }
    }

    #[test]
    fn creation_annihilation_ladder_action() {
        let d = 5;
        let a = annihilation(d);
        let adag = creation(d);
        // a|3> = sqrt(3)|2>
        let mut v = vec![Complex64::ZERO; d];
        v[3] = Complex64::ONE;
        let out = a.matvec(&v).unwrap();
        assert!((out[2] - c64(3.0_f64.sqrt(), 0.0)).abs() < TOL);
        // a†a = n̂ on the truncated space.
        let n = adag.matmul(&a).unwrap();
        assert!((&n - &number_operator(d)).max_abs() < TOL);
    }

    #[test]
    fn snap_applies_selective_phases() {
        let g = snap(4, &[0.0, 0.5, 1.0, -0.25]);
        assert!(g.is_unitary(TOL));
        assert!((g[(1, 1)] - Complex64::cis(0.5)).abs() < TOL);
        assert!((g[(3, 3)] - Complex64::cis(-0.25)).abs() < TOL);
        assert!(g[(0, 1)].abs() < TOL);
    }

    #[test]
    fn displacement_is_unitary_and_displaces_vacuum() {
        let d = 20;
        let alpha = c64(1.2, -0.3);
        let disp = displacement(d, alpha);
        assert!(disp.is_unitary(1e-9));
        // ⟨n⟩ of D(α)|0⟩ ≈ |α|² for a truncation well above |α|².
        let mut vac = vec![Complex64::ZERO; d];
        vac[0] = Complex64::ONE;
        let coherent = disp.matvec(&vac).unwrap();
        let n_avg: f64 = coherent.iter().enumerate().map(|(n, c)| n as f64 * c.norm_sqr()).sum();
        assert!((n_avg - alpha.norm_sqr()).abs() < 1e-3);
    }

    #[test]
    fn displacement_inverse_is_negative_alpha() {
        let d = 12;
        let alpha = c64(0.7, 0.2);
        let dp = displacement(d, alpha);
        let dm = displacement(d, -alpha);
        let prod = dp.matmul(&dm).unwrap();
        assert!(process_fidelity(&prod, &CMatrix::identity(d)).unwrap() > 1.0 - 1e-8);
    }

    #[test]
    fn rot_subspace_acts_only_on_chosen_levels() {
        let d = 5;
        let r = rot_subspace(d, 1, 3, PI, 0.0);
        assert!(r.is_unitary(TOL));
        // A π rotation swaps |1⟩ and |3⟩ (up to phase -i).
        assert!(r[(1, 1)].abs() < TOL);
        assert!((r[(3, 1)].abs() - 1.0).abs() < TOL);
        // Level 0 untouched.
        assert!((r[(0, 0)] - Complex64::ONE).abs() < TOL);
        assert!((r[(2, 2)] - Complex64::ONE).abs() < TOL);
    }

    #[test]
    fn csum_permutation_and_order() {
        let d = 3;
        let g = csum(d, d);
        assert!(g.is_unitary(TOL));
        // |2,2> -> |2,1>
        let src = 2 * d + 2;
        let dst = 2 * d + 1;
        assert!((g[(dst, src)] - Complex64::ONE).abs() < TOL);
        // CSUM^d = identity.
        let mut acc = CMatrix::identity(d * d);
        for _ in 0..d {
            acc = acc.matmul(&g).unwrap();
        }
        assert!((&acc - &CMatrix::identity(d * d)).max_abs() < TOL);
        // Inverse property.
        let inv = csum_inverse(d, d);
        let prod = g.matmul(&inv).unwrap();
        assert!((&prod - &CMatrix::identity(d * d)).max_abs() < TOL);
    }

    #[test]
    fn csum_reduces_to_cnot_for_qubits() {
        let g = csum(2, 2);
        // |10> -> |11>, |11> -> |10>
        assert!((g[(3, 2)] - Complex64::ONE).abs() < TOL);
        assert!((g[(2, 3)] - Complex64::ONE).abs() < TOL);
        assert!((g[(0, 0)] - Complex64::ONE).abs() < TOL);
    }

    #[test]
    fn cphase_is_diagonal_unitary_with_correct_phases() {
        let d = 3;
        let g = cphase(d, d);
        assert!(g.is_unitary(TOL));
        let omega = Complex64::cis(2.0 * PI / 3.0);
        let idx = 2 * d + 2; // a=2, b=2 -> ω^4 = ω
        assert!((g[(idx, idx)] - omega).abs() < TOL);
    }

    #[test]
    fn fourier_conjugates_cphase_to_csum() {
        // CSUM = (I ⊗ F†) CZ (I ⊗ F) for equal dimensions — the standard
        // Clifford relation used by the compiler.
        let d = 4;
        let f = fourier(d);
        let id = CMatrix::identity(d);
        let lhs = id.kron(&f.dagger()).matmul(&cphase(d, d)).unwrap().matmul(&id.kron(&f)).unwrap();
        let fid = process_fidelity(&lhs, &csum(d, d)).unwrap();
        assert!(fid > 1.0 - 1e-9, "fidelity {fid}");
    }

    #[test]
    fn swap_exchanges_states() {
        let d = 3;
        let s = swap(d);
        assert!(s.is_unitary(TOL));
        // |1,2> -> |2,1>
        assert!((s[(2 * d + 1, d + 2)] - Complex64::ONE).abs() < TOL);
        let sq = s.matmul(&s).unwrap();
        assert!((&sq - &CMatrix::identity(d * d)).max_abs() < TOL);
    }

    #[test]
    fn beam_splitter_full_swap_preserves_single_photon_exchange() {
        let d = 4;
        let bs = beam_splitter(d, PI / 2.0, 0.0);
        assert!(bs.is_unitary(1e-9));
        // |1,0> should map to (a state proportional to) |0,1>.
        let mut v = vec![Complex64::ZERO; d * d];
        v[d] = Complex64::ONE; // |1,0⟩ = index 1*d + 0
        let out = bs.matvec(&v).unwrap();
        let p01 = out[1].norm_sqr(); // |0,1⟩ = index 1
        assert!((p01 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn beam_splitter_5050_splits_single_photon() {
        let d = 3;
        let bs = beam_splitter(d, PI / 4.0, 0.0);
        let mut v = vec![Complex64::ZERO; d * d];
        v[d] = Complex64::ONE;
        let out = bs.matvec(&v).unwrap();
        assert!((out[d].norm_sqr() - 0.5).abs() < 1e-9);
        assert!((out[1].norm_sqr() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cross_kerr_phases() {
        let g = cross_kerr(3, 3, 0.5);
        assert!(g.is_unitary(TOL));
        let idx = 2 * 3 + 2;
        assert!((g[(idx, idx)] - Complex64::cis(-0.5 * 4.0)).abs() < TOL);
    }

    #[test]
    fn controlled_on_level_triggers_only_on_chosen_level() {
        let u = shift_x(3);
        let g = controlled_on_level(3, 2, &u);
        assert!(g.is_unitary(TOL));
        // control=1: identity on target.
        assert!((g[(3 + 1, 3 + 1)] - Complex64::ONE).abs() < TOL);
        // control=2: shift applied, |2,0> -> |2,1>.
        assert!((g[(2 * 3 + 1, 2 * 3)] - Complex64::ONE).abs() < TOL);
    }

    #[test]
    fn embedded_qubit_gate_leaves_upper_levels_alone() {
        let h = embed_qubit_gate(5, &hadamard_qubit());
        assert!(h.is_unitary(TOL));
        assert!((h[(4, 4)] - Complex64::ONE).abs() < TOL);
        assert!((h[(0, 0)] - c64(std::f64::consts::FRAC_1_SQRT_2, 0.0)).abs() < TOL);
    }

    #[test]
    fn qubit_rotation_matches_known_values() {
        // R_x(π) = -i X
        let rx = qubit_rotation(PI, 1.0, 0.0, 0.0);
        assert!((rx[(0, 1)] - c64(0.0, -1.0)).abs() < TOL);
        assert!((rx[(1, 0)] - c64(0.0, -1.0)).abs() < TOL);
    }

    #[test]
    fn mixers_are_unitary_and_mix_population() {
        let d = 4;
        let m = x_mixer(d, 0.8);
        assert!(m.is_unitary(TOL));
        let fm = full_mixer(d, 0.8);
        assert!(fm.is_unitary(TOL));
        // Starting in |0⟩ some population must leave level 0.
        let mut v = vec![Complex64::ZERO; d];
        v[0] = Complex64::ONE;
        let out = m.matvec(&v).unwrap();
        assert!(out[0].norm_sqr() < 1.0 - 1e-3);
    }

    #[test]
    fn diagonal_phase_matches_weights() {
        let g = diagonal_phase(&[0.0, 1.0, 3.0], 0.4);
        assert!((g[(2, 2)] - Complex64::cis(-1.2)).abs() < TOL);
        assert!(g.is_unitary(TOL));
    }

    #[test]
    fn cphase_weighted_gradient_structure() {
        let g = cphase_weighted(3, 3, 0.7);
        assert!(g.is_unitary(TOL));
        let idx = 3 + 2;
        assert!((g[(idx, idx)] - Complex64::cis(-0.7 * 2.0)).abs() < TOL);
    }
}
