//! Observables: Hermitian operators expressed as weighted sums of local
//! terms, with expectation values against pure and mixed states.

use qudit_core::complex::Complex64;
use qudit_core::density::DensityMatrix;
use qudit_core::matrix::CMatrix;
use qudit_core::state::QuditState;

use crate::error::{CircuitError, Result};
use crate::gates;

/// One term of an observable: a real coefficient times a product of local
/// operators acting on distinct qudits.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservableTerm {
    /// Real coefficient.
    pub coeff: f64,
    /// Local factors as `(qudit index, operator)` pairs; indices must be
    /// distinct within a term.
    pub factors: Vec<(usize, CMatrix)>,
}

/// A Hermitian observable `O = Σ_t c_t ⊗_k A_{t,k}`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Observable {
    terms: Vec<ObservableTerm>,
}

impl Observable {
    /// The zero observable.
    pub fn new() -> Self {
        Self { terms: Vec::new() }
    }

    /// An observable with a single local operator on one qudit.
    pub fn single(qudit: usize, op: CMatrix) -> Self {
        Self { terms: vec![ObservableTerm { coeff: 1.0, factors: vec![(qudit, op)] }] }
    }

    /// The number operator `n̂` on one qudit of dimension `d`.
    pub fn number(qudit: usize, d: usize) -> Self {
        Self::single(qudit, gates::number_operator(d))
    }

    /// The projector onto `|level⟩` of one qudit of dimension `d`.
    pub fn projector(qudit: usize, d: usize, level: usize) -> Self {
        Self::single(qudit, gates::projector(d, level))
    }

    /// Adds a term.
    pub fn add_term(&mut self, coeff: f64, factors: Vec<(usize, CMatrix)>) -> &mut Self {
        self.terms.push(ObservableTerm { coeff, factors });
        self
    }

    /// Adds every term of another observable, scaled by `scale`.
    pub fn add_scaled(&mut self, other: &Observable, scale: f64) -> &mut Self {
        for t in &other.terms {
            self.terms.push(ObservableTerm { coeff: t.coeff * scale, factors: t.factors.clone() });
        }
        self
    }

    /// The terms of this observable.
    pub fn terms(&self) -> &[ObservableTerm] {
        &self.terms
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Expectation value with respect to a pure state.
    ///
    /// # Errors
    /// Returns an error if any factor's dimensions disagree with the state.
    pub fn expectation(&self, state: &QuditState) -> Result<f64> {
        let mut acc = 0.0;
        for term in &self.terms {
            let val = match term.factors.as_slice() {
                // Constant term: ⟨ψ|ψ⟩.
                [] => state.norm_sqr(),
                // Single local factor: stride-plan expectation, no clone.
                [(q, op)] => state.expectation(op, &[*q]).map_err(CircuitError::Core)?.re,
                // Product over distinct qudits: apply the factors to a copy.
                factors => {
                    let mut applied = state.clone();
                    for (q, op) in factors {
                        applied.apply_operator(op, &[*q]).map_err(CircuitError::Core)?;
                    }
                    state.inner(&applied).map_err(CircuitError::Core)?.re
                }
            };
            acc += term.coeff * val;
        }
        Ok(acc)
    }

    /// Expectation value with respect to a density matrix.
    ///
    /// # Errors
    /// Returns an error if any factor's dimensions disagree with the state.
    pub fn expectation_density(&self, rho: &DensityMatrix) -> Result<f64> {
        let mut acc = 0.0;
        for term in &self.terms {
            // Tr(ρ Π_k A_k): apply each factor in sequence via the expectation
            // of the product operator. Build the product on the combined
            // target set term by term using repeated single-qudit application.
            let mut work = rho.clone();
            let mut val = Complex64::ZERO;
            let mut applied_any = false;
            for (q, op) in &term.factors {
                // Left-multiply ρ by each local operator.
                let full_expect = work.expectation(op, &[*q]).map_err(CircuitError::Core)?;
                // For products over distinct qudits the operators commute, so
                // sequential application is correct; implement by applying the
                // operator and deferring the trace to the last factor.
                if term.factors.len() == 1 {
                    val = full_expect;
                    applied_any = true;
                } else {
                    // apply the operator to the state (ρ → A ρ) and keep going
                    work = apply_left_local(&work, op, *q)?;
                    applied_any = true;
                }
            }
            let value = if term.factors.len() == 1 {
                val.re
            } else if applied_any {
                work.matrix().trace().re
            } else {
                // Constant term (no factors): Tr(ρ) = 1.
                rho.trace()
            };
            acc += term.coeff * value;
        }
        Ok(acc)
    }
}

/// Applies a local operator on the ket side of a density matrix: `ρ → A ρ`,
/// returning a new (generally non-physical) matrix used only for computing
/// traces of operator products.
fn apply_left_local(rho: &DensityMatrix, op: &CMatrix, qudit: usize) -> Result<DensityMatrix> {
    let full =
        qudit_core::radix::embed_operator(rho.radix(), op, &[qudit]).map_err(CircuitError::Core)?;
    let m = full.matmul(rho.matrix()).map_err(CircuitError::Core)?;
    DensityMatrix::from_matrix(rho.radix().dims().to_vec(), m).map_err(CircuitError::Core)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::complex::c64;

    #[test]
    fn number_expectation_on_basis_state() {
        let obs = Observable::number(0, 5);
        let s = QuditState::basis(vec![5, 2], &[3, 1]).unwrap();
        assert!((obs.expectation(&s).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn projector_expectation_matches_probability() {
        let s = QuditState::uniform_superposition(vec![4]).unwrap();
        let obs = Observable::projector(0, 4, 2);
        assert!((obs.expectation(&s).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn multi_term_and_scaled_observables() {
        let mut obs = Observable::new();
        obs.add_term(2.0, vec![(0, gates::number_operator(3))]);
        obs.add_term(-1.0, vec![(1, gates::number_operator(3))]);
        let s = QuditState::basis(vec![3, 3], &[2, 1]).unwrap();
        assert!((obs.expectation(&s).unwrap() - (2.0 * 2.0 - 1.0)).abs() < 1e-12);

        let mut combined = Observable::new();
        combined.add_scaled(&obs, 0.5);
        assert!((combined.expectation(&s).unwrap() - 1.5).abs() < 1e-12);
        assert_eq!(combined.num_terms(), 2);
    }

    #[test]
    fn two_qudit_correlator() {
        // ⟨n̂_0 n̂_1⟩ on |2,1⟩ = 2.
        let mut obs = Observable::new();
        obs.add_term(1.0, vec![(0, gates::number_operator(3)), (1, gates::number_operator(3))]);
        let s = QuditState::basis(vec![3, 3], &[2, 1]).unwrap();
        assert!((obs.expectation(&s).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn density_expectation_matches_pure_expectation() {
        let mut obs = Observable::new();
        obs.add_term(1.3, vec![(0, gates::number_operator(3))]);
        obs.add_term(0.7, vec![(0, gates::number_operator(3)), (1, gates::projector(3, 2))]);
        let mut s = QuditState::uniform_superposition(vec![3, 3]).unwrap();
        s.apply_operator(&gates::fourier(3), &[0]).unwrap();
        let rho = DensityMatrix::from_pure(&s);
        let e_pure = obs.expectation(&s).unwrap();
        let e_mixed = obs.expectation_density(&rho).unwrap();
        assert!((e_pure - e_mixed).abs() < 1e-9);
    }

    #[test]
    fn expectation_of_coherence_operator() {
        // ⟨|0⟩⟨1| + |1⟩⟨0|⟩ on (|0⟩+|1⟩)/√2 = 1.
        let mut op = CMatrix::zeros(2, 2);
        op[(0, 1)] = c64(1.0, 0.0);
        op[(1, 0)] = c64(1.0, 0.0);
        let obs = Observable::single(0, op);
        let s = QuditState::from_amplitudes(
            vec![2],
            vec![
                c64(std::f64::consts::FRAC_1_SQRT_2, 0.0),
                c64(std::f64::consts::FRAC_1_SQRT_2, 0.0),
            ],
        )
        .unwrap();
        assert!((obs.expectation(&s).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dimension_mismatch_errors() {
        let obs = Observable::number(0, 5);
        let s = QuditState::zero(vec![3]).unwrap();
        assert!(obs.expectation(&s).is_err());
    }
}
