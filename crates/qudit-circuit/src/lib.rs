//! # qudit-circuit
//!
//! Gate-model layer for mixed-radix qudit processors: a qudit gate library
//! (generalised Paulis, Fourier, SNAP, displacement, CSUM, controlled-phase,
//! beam-splitter, ...), a circuit IR with measurements, resets and explicit
//! noise channels, Kraus noise channels modelling cavity-qudit error
//! mechanisms, and three simulation back-ends (state-vector, density-matrix,
//! Monte-Carlo trajectories).
//!
//! This crate provides exactly the tooling the paper identifies as missing
//! from qubit-centric frameworks: circuits over heterogeneous `d`-level
//! systems with native qudit entangling gates and cavity-style noise.
//!
//! ## Fused execution pipeline (PR 2)
//!
//! All three simulators consume circuits through a compiled execution plan:
//! the [`sim::fusion`] pass walks the circuit once and coalesces runs of
//! adjacent gates on the same or overlapping targets into fused superblocks,
//! re-classifying each product so diagonal × diagonal stays diagonal and
//! monomial × monomial stays monomial. A merge is accepted only when it does
//! not increase apply cost, and growth is capped by the
//! [`sim::FusionConfig`] qudit/dimension budget so blocks stay
//! cache-resident. Measurements, resets, explicit channels and noisy gates
//! flush fusion runs; fusion is on by default and configurable per simulator
//! via `with_fusion`. Use [`sim::StatevectorSimulator::compile`] to reuse a
//! plan across many runs.
//!
//! ## Superoperator-batched density channels (PR 3)
//!
//! The density-matrix simulator compiles the fused plan once more: channels
//! become single superoperator sweeps over vectorised ρ and channel-adjacent
//! unitary runs fold into them where that never increases apply cost (see
//! [`sim::SuperopConfig`] and [`qudit_core::superop`]).
//!
//! ## Example
//!
//! ```
//! use qudit_circuit::{Circuit, Gate};
//! use qudit_circuit::sim::{DensityMatrixSimulator, StatevectorSimulator};
//! use qudit_circuit::noise::NoiseModel;
//!
//! // Maximally correlated two-qutrit state, ideal and under photon loss.
//! let mut c = Circuit::uniform(2, 3);
//! c.push(Gate::fourier(3), &[0]).unwrap();
//! c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
//!
//! let ideal = StatevectorSimulator::new().run(&c).unwrap();
//! assert!((ideal.probabilities()[0] - 1.0 / 3.0).abs() < 1e-9);
//!
//! let noisy = DensityMatrixSimulator::new()
//!     .with_noise(NoiseModel::cavity(0.01, 0.03, 0.0))
//!     .run(&c)
//!     .unwrap();
//! assert!(noisy.fidelity_with_pure(&ideal).unwrap() > 0.9);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod error;
pub mod gate;
pub mod gates;
pub mod noise;
pub mod observable;
pub mod sim;

pub use circuit::{Circuit, Instruction};
pub use error::{CircuitError, Result};
pub use gate::{Gate, Param};
pub use noise::{KrausChannel, NoiseKind, NoiseModel};
pub use observable::{Observable, ObservableTerm};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::circuit::{Circuit, Instruction};
    pub use crate::error::{CircuitError, Result};
    pub use crate::gate::{Gate, Param};
    pub use crate::noise::{KrausChannel, NoiseKind, NoiseModel};
    pub use crate::observable::Observable;
    pub use crate::sim::{DensityMatrixSimulator, StatevectorSimulator, TrajectorySimulator};
}
