//! Kraus noise channels and circuit-level noise models for qudit processors.
//!
//! The channels here are the discrete-time counterparts of the dominant
//! error mechanisms in cavity-transmon qudit hardware:
//!
//! * **photon loss / amplitude damping** — the dominant cavity error, with
//!   level-dependent rates (`|n⟩` decays `n` times faster than `|1⟩`);
//! * **dephasing** — transmon-induced phase noise on the cavity;
//! * **depolarising** — a standard worst-case model built from qudit Weyl
//!   operators, used for encoding-comparison studies.

use qudit_core::complex::c64;
use qudit_core::matrix::CMatrix;
use serde::{Deserialize, Serialize};

use crate::error::{CircuitError, Result};
use crate::gates;

/// A completely-positive trace-preserving map given by Kraus operators.
#[derive(Debug, Clone, PartialEq)]
pub struct KrausChannel {
    name: String,
    dims: Vec<usize>,
    operators: Vec<CMatrix>,
    /// Completeness-relation tolerance the channel was validated against at
    /// construction. `1e-8` for [`KrausChannel::new`]; larger for channels
    /// admitted through [`KrausChannel::new_with_tolerance`]. The density
    /// compiler widens its fold-time trace-preservation allowance by this
    /// amount so intentionally lossy channels stay legal.
    tol: f64,
}

impl KrausChannel {
    /// Creates a channel from explicit Kraus operators.
    ///
    /// # Errors
    /// Returns an error if the list is empty, shapes are inconsistent, or the
    /// completeness relation `Σ K†K = I` fails to hold within `1e-8`.
    pub fn new(name: impl Into<String>, dims: Vec<usize>, operators: Vec<CMatrix>) -> Result<Self> {
        Self::new_with_tolerance(name, dims, operators, 1e-8)
    }

    /// Creates a channel from explicit Kraus operators, validating the
    /// completeness relation against a caller-chosen tolerance.
    ///
    /// This is the escape hatch for intentionally lossy maps (for example a
    /// leakage-to-environment model whose Kraus sum is deliberately
    /// sub-normalised): pass the amount of trace loss you accept as `tol` and
    /// every downstream trace-preservation check — compile-time fold
    /// validation and runtime [`qudit_core::guard`] superoperator checks —
    /// widens its allowance by the same amount.
    ///
    /// # Errors
    /// Returns an error if the list is empty, shapes are inconsistent, `tol`
    /// is not finite and non-negative, or `Σ K†K = I` fails within `tol`.
    pub fn new_with_tolerance(
        name: impl Into<String>,
        dims: Vec<usize>,
        operators: Vec<CMatrix>,
        tol: f64,
    ) -> Result<Self> {
        if !tol.is_finite() || tol < 0.0 {
            return Err(CircuitError::InvalidChannel(format!(
                "channel tolerance must be finite and non-negative, got {tol}"
            )));
        }
        let total: usize = dims.iter().product();
        if operators.is_empty() {
            return Err(CircuitError::InvalidChannel("empty Kraus operator list".into()));
        }
        for k in &operators {
            if k.rows() != total || k.cols() != total {
                return Err(CircuitError::InvalidChannel(format!(
                    "Kraus operator is {}x{}, expected {total}x{total}",
                    k.rows(),
                    k.cols()
                )));
            }
        }
        let channel = Self { name: name.into(), dims, operators, tol };
        if !channel.is_trace_preserving(tol) {
            return Err(CircuitError::InvalidChannel(
                "Kraus operators do not satisfy the completeness relation".into(),
            ));
        }
        Ok(channel)
    }

    /// The identity channel on a `d`-level qudit.
    pub fn identity(d: usize) -> Self {
        Self { name: "id".into(), dims: vec![d], operators: vec![CMatrix::identity(d)], tol: 1e-8 }
    }

    /// Qudit depolarising channel: with probability `p` a uniformly random
    /// non-identity Weyl operator `X^a Z^b` is applied.
    ///
    /// # Errors
    /// Returns an error if `p` is outside `[0, 1]`.
    pub fn depolarizing(d: usize, p: f64) -> Result<Self> {
        check_probability(p)?;
        let mut operators = vec![CMatrix::identity(d).scaled_real((1.0 - p).sqrt())];
        let weight = (p / ((d * d - 1) as f64)).sqrt();
        for a in 0..d {
            for b in 0..d {
                if a == 0 && b == 0 {
                    continue;
                }
                operators.push(gates::weyl(d, a, b).scaled_real(weight));
            }
        }
        Self::new(format!("depol({p:.2e})"), vec![d], operators)
    }

    /// Qudit dephasing channel: off-diagonal coherences decay by `1 - γ`.
    ///
    /// # Errors
    /// Returns an error if `γ` is outside `[0, 1]`.
    pub fn dephasing(d: usize, gamma: f64) -> Result<Self> {
        check_probability(gamma)?;
        let mut operators = vec![CMatrix::identity(d).scaled_real((1.0 - gamma).sqrt())];
        for n in 0..d {
            operators.push(gates::projector(d, n).scaled_real(gamma.sqrt()));
        }
        Self::new(format!("dephase({gamma:.2e})"), vec![d], operators)
    }

    /// Bosonic photon-loss (qudit amplitude-damping) channel with
    /// single-photon loss probability `γ` over the time step.
    ///
    /// Kraus operators `K_k = Σ_n √(C(n,k) (1-γ)^{n-k} γ^k) |n-k⟩⟨n|`,
    /// the exact finite-time solution of the lossy-cavity master equation.
    ///
    /// # Errors
    /// Returns an error if `γ` is outside `[0, 1]`.
    pub fn photon_loss(d: usize, gamma: f64) -> Result<Self> {
        check_probability(gamma)?;
        let mut operators = Vec::with_capacity(d);
        for k in 0..d {
            let mut op = CMatrix::zeros(d, d);
            for n in k..d {
                let coeff =
                    (binomial(n, k) * (1.0 - gamma).powi((n - k) as i32) * gamma.powi(k as i32))
                        .sqrt();
                op[(n - k, n)] = c64(coeff, 0.0);
            }
            operators.push(op);
        }
        Self::new(format!("loss({gamma:.2e})"), vec![d], operators)
    }

    /// Thermal excitation channel: with probability `p_up`, one excitation is
    /// added (truncated at the top level). Models residual thermal photons.
    ///
    /// # Errors
    /// Returns an error if `p_up` is outside `[0, 1]`.
    pub fn thermal_excitation(d: usize, p_up: f64) -> Result<Self> {
        check_probability(p_up)?;
        // K1 raises each level with amplitude sqrt(p_up) (top level saturates).
        let mut k1 = CMatrix::zeros(d, d);
        for n in 0..d - 1 {
            k1[(n + 1, n)] = c64(p_up.sqrt(), 0.0);
        }
        // K0 chosen diagonally so that K0†K0 + K1†K1 = I.
        let mut k0 = CMatrix::zeros(d, d);
        for n in 0..d {
            let leak = if n < d - 1 { p_up } else { 0.0 };
            k0[(n, n)] = c64((1.0 - leak).sqrt(), 0.0);
        }
        Self::new(format!("thermal({p_up:.2e})"), vec![d], vec![k0, k1])
    }

    /// Coherent over-rotation error: applies `exp(-iεH)` deterministically for
    /// a Hermitian generator `h`.
    ///
    /// # Errors
    /// Returns an error if `h` has the wrong shape or is not Hermitian.
    pub fn coherent_overrotation(d: usize, h: &CMatrix, epsilon: f64) -> Result<Self> {
        if h.rows() != d || !h.is_hermitian(1e-8) {
            return Err(CircuitError::InvalidChannel(
                "over-rotation generator must be a d×d Hermitian matrix".into(),
            ));
        }
        let u = qudit_core::linalg::expm_hermitian(h, c64(0.0, -epsilon))
            .map_err(CircuitError::Core)?;
        Self::new(format!("overrot({epsilon:.2e})"), vec![d], vec![u])
    }

    /// Two-qudit depolarising channel built from tensor products of Weyl
    /// operators; the standard error model attached to entangling gates.
    ///
    /// # Errors
    /// Returns an error if `p` is outside `[0, 1]`.
    pub fn two_qudit_depolarizing(d1: usize, d2: usize, p: f64) -> Result<Self> {
        check_probability(p)?;
        let dim = d1 * d2;
        let n_paulis = (d1 * d1) * (d2 * d2) - 1;
        let mut operators = vec![CMatrix::identity(dim).scaled_real((1.0 - p).sqrt())];
        let weight = (p / n_paulis as f64).sqrt();
        for a1 in 0..d1 {
            for b1 in 0..d1 {
                for a2 in 0..d2 {
                    for b2 in 0..d2 {
                        if a1 == 0 && b1 == 0 && a2 == 0 && b2 == 0 {
                            continue;
                        }
                        let op = gates::weyl(d1, a1, b1).kron(&gates::weyl(d2, a2, b2));
                        operators.push(op.scaled_real(weight));
                    }
                }
            }
        }
        Self::new(format!("depol2({p:.2e})"), vec![d1, d2], operators)
    }

    /// Channel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dimensions of the qudits the channel acts on.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The Kraus operators.
    pub fn operators(&self) -> &[CMatrix] {
        &self.operators
    }

    /// Completeness-relation tolerance the channel was validated against at
    /// construction (see [`KrausChannel::new_with_tolerance`]).
    pub fn tolerance(&self) -> f64 {
        self.tol
    }

    /// Checks the completeness relation `Σ K†K = I` within `tol`.
    pub fn is_trace_preserving(&self, tol: f64) -> bool {
        let total: usize = self.dims.iter().product();
        let mut acc = CMatrix::zeros(total, total);
        for k in &self.operators {
            let kk = k.dagger().matmul(k).expect("square");
            acc += &kk;
        }
        (&acc - &CMatrix::identity(total)).max_abs() <= tol
    }

    /// Returns `true` if the channel is the identity map (single identity
    /// Kraus operator).
    pub fn is_identity(&self) -> bool {
        self.operators.len() == 1
            && (&self.operators[0] - &CMatrix::identity(self.operators[0].rows())).max_abs() < 1e-14
    }
}

fn check_probability(p: f64) -> Result<()> {
    if !(0.0..=1.0).contains(&p) {
        return Err(CircuitError::InvalidChannel(format!("probability {p} outside [0, 1]")));
    }
    Ok(())
}

fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let mut acc = 1.0;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// The family of single-qudit error channels a [`NoiseModel`] can attach to
/// gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NoiseKind {
    /// Weyl-operator depolarising noise.
    Depolarizing,
    /// Computational-basis dephasing.
    Dephasing,
    /// Bosonic photon loss (amplitude damping).
    PhotonLoss,
}

impl NoiseKind {
    /// Builds the corresponding single-qudit channel.
    ///
    /// # Errors
    /// Returns an error for invalid strengths.
    pub fn channel(self, d: usize, strength: f64) -> Result<KrausChannel> {
        match self {
            NoiseKind::Depolarizing => KrausChannel::depolarizing(d, strength),
            NoiseKind::Dephasing => KrausChannel::dephasing(d, strength),
            NoiseKind::PhotonLoss => KrausChannel::photon_loss(d, strength),
        }
    }
}

/// A circuit-level noise model: error channels attached to every gate
/// according to its arity, plus optional readout error.
///
/// This is the abstraction the encoding-comparison and NDAR experiments sweep
/// over; the `cavity-sim` crate provides the device-calibrated construction
/// from coherence times and gate durations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Error applied to each qudit touched by a single-qudit gate.
    pub single_qudit: Option<(NoiseKind, f64)>,
    /// Error applied to each qudit touched by a multi-qudit gate.
    pub two_qudit: Option<(NoiseKind, f64)>,
    /// Probability that a measured digit is replaced by a uniformly random
    /// other level (readout error).
    pub readout_flip: f64,
    /// Idle error strength applied per circuit layer to every qudit
    /// (photon-loss kind); 0 disables idle noise.
    pub idle_photon_loss: f64,
}

impl NoiseModel {
    /// The noiseless model.
    pub fn noiseless() -> Self {
        Self { single_qudit: None, two_qudit: None, readout_flip: 0.0, idle_photon_loss: 0.0 }
    }

    /// Uniform depolarising noise with the given 1- and 2-qudit strengths.
    pub fn depolarizing(p1: f64, p2: f64) -> Self {
        Self {
            single_qudit: Some((NoiseKind::Depolarizing, p1)),
            two_qudit: Some((NoiseKind::Depolarizing, p2)),
            readout_flip: 0.0,
            idle_photon_loss: 0.0,
        }
    }

    /// Cavity-style noise: photon loss after every gate plus dephasing-like
    /// two-qudit error.
    pub fn cavity(loss_1q: f64, loss_2q: f64, idle_loss: f64) -> Self {
        Self {
            single_qudit: Some((NoiseKind::PhotonLoss, loss_1q)),
            two_qudit: Some((NoiseKind::PhotonLoss, loss_2q)),
            readout_flip: 0.0,
            idle_photon_loss: idle_loss,
        }
    }

    /// Returns `true` if no error channel is configured anywhere.
    pub fn is_noiseless(&self) -> bool {
        self.single_qudit.is_none()
            && self.two_qudit.is_none()
            && self.readout_flip == 0.0
            && self.idle_photon_loss == 0.0
    }

    /// Builder: sets the readout flip probability.
    #[must_use]
    pub fn with_readout_flip(mut self, p: f64) -> Self {
        self.readout_flip = p;
        self
    }

    /// The single-qudit channels to apply to each target after a gate of the
    /// given arity, as `(channel, qudit index)` pairs.
    ///
    /// # Errors
    /// Returns an error for invalid channel strengths.
    pub fn channels_after_gate(
        &self,
        targets: &[usize],
        dims: &[usize],
    ) -> Result<Vec<(KrausChannel, usize)>> {
        let spec = if targets.len() >= 2 { self.two_qudit } else { self.single_qudit };
        let Some((kind, strength)) = spec else {
            return Ok(Vec::new());
        };
        if strength == 0.0 {
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity(targets.len());
        for &t in targets {
            out.push((kind.channel(dims[t], strength)?, t));
        }
        Ok(out)
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::noiseless()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::density::DensityMatrix;
    use qudit_core::state::QuditState;

    #[test]
    fn all_standard_channels_are_trace_preserving() {
        for d in [2, 3, 5] {
            assert!(KrausChannel::depolarizing(d, 0.2).unwrap().is_trace_preserving(1e-9));
            assert!(KrausChannel::dephasing(d, 0.3).unwrap().is_trace_preserving(1e-9));
            assert!(KrausChannel::photon_loss(d, 0.15).unwrap().is_trace_preserving(1e-9));
            assert!(KrausChannel::thermal_excitation(d, 0.05).unwrap().is_trace_preserving(1e-9));
        }
        assert!(KrausChannel::two_qudit_depolarizing(3, 3, 0.1).unwrap().is_trace_preserving(1e-9));
    }

    #[test]
    fn rejects_invalid_probabilities() {
        assert!(KrausChannel::depolarizing(3, 1.5).is_err());
        assert!(KrausChannel::photon_loss(3, -0.1).is_err());
    }

    #[test]
    fn rejects_non_trace_preserving_kraus_set() {
        let ops = vec![CMatrix::identity(2).scaled_real(0.5)];
        assert!(KrausChannel::new("bad", vec![2], ops).is_err());
    }

    #[test]
    fn depolarizing_drives_towards_maximally_mixed() {
        let ch = KrausChannel::depolarizing(3, 1.0).unwrap();
        let mut rho = DensityMatrix::zero(vec![3]).unwrap();
        rho.apply_kraus(ch.operators(), &[0]).unwrap();
        // Full-strength depolarising leaves 1/d^2 of the original plus uniform mix;
        // for p = 1 the diagonal should be close to uniform.
        let probs = rho.probabilities();
        for p in probs {
            assert!((p - 1.0 / 3.0).abs() < 0.34);
        }
        assert!((rho.trace() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn photon_loss_reduces_mean_photon_number() {
        let d = 6;
        let gamma = 0.25;
        let ch = KrausChannel::photon_loss(d, gamma).unwrap();
        let fock4 = QuditState::basis(vec![d], &[4]).unwrap();
        let mut rho = DensityMatrix::from_pure(&fock4);
        rho.apply_kraus(ch.operators(), &[0]).unwrap();
        let n_op = gates::number_operator(d);
        let n_avg = rho.expectation(&n_op, &[0]).unwrap().re;
        // ⟨n⟩ decays exactly to n(1-γ) under the exact loss channel.
        assert!((n_avg - 4.0 * (1.0 - gamma)).abs() < 1e-9);
    }

    #[test]
    fn dephasing_damps_coherences_but_not_populations() {
        let d = 3;
        let ch = KrausChannel::dephasing(d, 0.4).unwrap();
        let plus = QuditState::uniform_superposition(vec![d]).unwrap();
        let mut rho = DensityMatrix::from_pure(&plus);
        let pops_before = rho.probabilities();
        rho.apply_kraus(ch.operators(), &[0]).unwrap();
        let pops_after = rho.probabilities();
        for (a, b) in pops_before.iter().zip(pops_after.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
        assert!((rho.matrix()[(0, 1)].abs() - (1.0 - 0.4) / 3.0).abs() < 1e-10);
    }

    #[test]
    fn thermal_excitation_raises_population() {
        let d = 4;
        let ch = KrausChannel::thermal_excitation(d, 0.2).unwrap();
        let mut rho = DensityMatrix::zero(vec![d]).unwrap();
        rho.apply_kraus(ch.operators(), &[0]).unwrap();
        let probs = rho.probabilities();
        assert!((probs[1] - 0.2).abs() < 1e-10);
        assert!((probs[0] - 0.8).abs() < 1e-10);
    }

    #[test]
    fn coherent_overrotation_is_unitary_channel() {
        let h = gates::number_operator(3);
        let ch = KrausChannel::coherent_overrotation(3, &h, 0.05).unwrap();
        assert_eq!(ch.operators().len(), 1);
        assert!(ch.is_trace_preserving(1e-9));
    }

    #[test]
    fn noise_model_attaches_channels_by_arity() {
        let nm = NoiseModel::depolarizing(1e-3, 1e-2);
        let dims = vec![3, 3, 3];
        let one = nm.channels_after_gate(&[1], &dims).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].1, 1);
        let two = nm.channels_after_gate(&[0, 2], &dims).unwrap();
        assert_eq!(two.len(), 2);
        assert!(NoiseModel::noiseless().channels_after_gate(&[0], &dims).unwrap().is_empty());
    }

    #[test]
    fn noise_model_flags() {
        assert!(NoiseModel::noiseless().is_noiseless());
        assert!(!NoiseModel::depolarizing(0.01, 0.02).is_noiseless());
        let nm = NoiseModel::noiseless().with_readout_flip(0.01);
        assert!(!nm.is_noiseless());
    }

    #[test]
    fn identity_channel_detection() {
        assert!(KrausChannel::identity(4).is_identity());
        assert!(!KrausChannel::depolarizing(4, 0.1).unwrap().is_identity());
    }
}
