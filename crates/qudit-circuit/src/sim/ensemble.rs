//! Batched ensemble execution: one compiled-plan traversal over many states.
//!
//! Two executors share the interleaved panel machinery of
//! [`qudit_core::ensemble::EnsembleState`]:
//!
//! * **Parameter-batched runs** ([`run_ensemble_prepared`]) — a population of
//!   bindings ([`BatchBindings`], one [`BindBuffers`] overlay per column)
//!   evolves in one pass. Binding-invariant steps apply to the whole panel as
//!   matrix–panel products; parameter-dependent steps resolve each column's
//!   override and apply per column. Stochastic elements (noise channels,
//!   measurements, resets) run per column with that column's own RNG, so
//!   every column is **bitwise identical** to the serial
//!   `StatevectorSimulator::run_bound` loop on that binding. Per-column
//!   failures (guard trips, zero-mass measurements) are confined to their
//!   column — batch-mates keep evolving, because every batched kernel is
//!   column-local by construction.
//!
//! * **Batched trajectories** ([`run_trajectory_chunk`]) — stochastic shots
//!   share one binding, so deterministic steps batch across *all* live
//!   trajectories. Shots are grouped by their Kraus-branch prefix: a group
//!   holds one panel column plus the member trajectories whose stochastic
//!   history is identical so far. At a stochastic event the group draws each
//!   member's branch from that member's own RNG (seeded per trajectory index,
//!   exactly as the serial loop seeds it), then splits lazily — the parent
//!   column is cloned *before* any branch operator touches it. Branch
//!   probabilities are computed once per group instead of once per
//!   trajectory, which is where the batched path wins on top of the panel
//!   kernels, while per-member RNG streams keep results bitwise identical to
//!   the serial loop.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qudit_core::apply::{ApplyPlan, OpKind};
use qudit_core::cancel::CancelToken;
use qudit_core::ensemble::EnsembleState;
use qudit_core::error::CoreError;
use qudit_core::guard::{GuardConfig, HealthMonitor, RunHealth};
use qudit_core::matrix::CMatrix;
use qudit_core::sampling::Cdf;
use qudit_core::state::QuditState;
use qudit_core::Complex64;
use qudit_core::Radix;

use crate::error::{CircuitError, Result};
use crate::sim::apply_readout_flip;
use crate::sim::kernels::{BindBuffers, ChannelKernel, CircuitKernels, ExecStep, RunScratch};
use crate::sim::statevector::{power_of_shift, RunOutput};

/// A realized population of parameter bindings for one compiled plan: one
/// binding overlay per ensemble column, produced by
/// [`crate::sim::CompiledCircuit::bind_batch`] and consumed by
/// [`crate::sim::StatevectorSimulator::run_ensemble`].
#[derive(Debug, Clone)]
pub struct BatchBindings {
    pub(crate) cols: Vec<BindBuffers>,
}

impl BatchBindings {
    /// Number of bindings (= ensemble columns) in the batch.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// `true` if the batch holds no bindings.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }
}

/// The simulator settings an ensemble run needs, passed explicitly so the
/// executors stay decoupled from the simulator structs.
pub(crate) struct EnsembleConfig<'a> {
    pub guard: GuardConfig,
    pub cancel: Option<&'a CancelToken>,
    pub readout_flip: f64,
    /// Worker threads for column-independent spans (0 = all cores). Thread
    /// count never changes results: columns are arithmetically independent.
    pub threads: usize,
}

/// Runs a compiled plan over a population of bindings as one ensemble pass.
///
/// Returns one `Result<RunOutput>` per column: a column-local failure (guard
/// trip, zero-mass measurement) marks *that* column failed and the sweep
/// continues for its batch-mates. Only structural errors — register
/// mismatch, cancellation — fail the whole call.
pub(crate) fn run_ensemble_prepared(
    cfg: &EnsembleConfig<'_>,
    kernels: &CircuitKernels,
    batch: &[BindBuffers],
    initial: &QuditState,
    seeds: &[u64],
) -> Result<Vec<Result<RunOutput>>> {
    let core = CircuitError::Core;
    let width = batch.len();
    debug_assert_eq!(seeds.len(), width);
    if width == 0 {
        return Ok(Vec::new());
    }
    if initial.radix().dims() != kernels.dims {
        return Err(CircuitError::InvalidTargets(format!(
            "initial state register {:?} does not match circuit register {:?}",
            initial.radix().dims(),
            kernels.dims
        )));
    }
    if let Some(token) = cfg.cancel {
        token.check(0).map_err(core)?;
    }
    let cadence = cfg.guard.cadence.max(1);
    let mut ens = EnsembleState::from_state(initial, width).map_err(core)?;
    let mut col_err: Vec<Option<CircuitError>> = (0..width).map(|_| None).collect();
    let mut measurements: Vec<Vec<(Vec<usize>, Vec<usize>)>> = vec![Vec::new(); width];
    let mut monitors: Vec<HealthMonitor> =
        (0..width).map(|_| HealthMonitor::new(cfg.guard)).collect();
    let mut rngs: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
    let mut cursors = vec![0usize; width];
    let mut scratch = RunScratch::default();
    let dims = &kernels.dims;
    let threads = if cfg.threads == 0 { qudit_core::par::max_threads() } else { cfg.threads };

    let steps = &kernels.steps;
    let mut step_index = 0usize;
    while step_index < steps.len() {
        let run_len = gatherable_span_len(steps, step_index);
        // Under fault injection every step boundary must see the materialised
        // panel, so spans collapse to single steps and the per-step path below
        // (with its panel-wide injection hook) handles everything.
        #[cfg(feature = "fault-inject")]
        let run_len = run_len.min(1);
        if run_len >= 2 && width > 1 {
            let span = step_index..step_index + run_len;
            let ctx = SpanCtx { steps, span: span.clone(), batch, threads };
            run_gathered_span(&ctx, &mut ens, &mut cursors, &mut monitors, &mut col_err);
            // Cooperative cancellation on the serial cadence, in step order,
            // once the span's columns have all landed.
            if let Some(token) = cfg.cancel {
                for s in span {
                    if (s + 1).is_multiple_of(cadence) {
                        token.check(s).map_err(core)?;
                    }
                }
            }
            step_index += run_len;
            continue;
        }
        let step = &steps[step_index];
        match step {
            ExecStep::Apply { plan, kind, op, noise, recipe, .. } => {
                if recipe.is_some() {
                    // Parameter-dependent step: each column applies its own
                    // realized operator (kernel geometry is shared) through
                    // the gathered unit-stride path.
                    for (b, binds) in batch.iter().enumerate() {
                        if col_err[b].is_some() {
                            continue;
                        }
                        let (k, o) = binds.resolve(&mut cursors[b], step_index, kind, op);
                        if let Err(e) = apply_col(plan, k, o, &mut ens, b, &mut scratch) {
                            col_err[b] = Some(core(e));
                        }
                    }
                } else {
                    // Binding-invariant step: one matrix–panel sweep over the
                    // whole ensemble. Batched kernels are column-local, so a
                    // failed column's (possibly non-finite) amplitudes can
                    // never leak into its batch-mates.
                    plan.apply_batched(
                        kind,
                        op,
                        ens.data_mut(),
                        width,
                        0..width,
                        &mut scratch.block,
                    )
                    .map_err(core)?;
                }
                for channel in noise {
                    for b in 0..width {
                        if col_err[b].is_some() {
                            continue;
                        }
                        if let Err(e) =
                            apply_channel_col(&mut ens, channel, b, &mut rngs[b], &mut scratch)
                        {
                            col_err[b] = Some(e);
                        }
                    }
                }
            }
            ExecStep::Measure { targets } => {
                let plan = ApplyPlan::new(initial.radix(), targets).map_err(core)?;
                let target_dims: Vec<usize> = targets.iter().map(|&t| dims[t]).collect();
                let target_radix = Radix::new(target_dims.clone()).map_err(core)?;
                for b in 0..width {
                    if col_err[b].is_some() {
                        continue;
                    }
                    match measure_col(&mut ens, &plan, &target_radix, b, &mut rngs[b]) {
                        Ok(mut outcome) => {
                            apply_readout_flip(
                                &mut outcome,
                                &target_dims,
                                cfg.readout_flip,
                                &mut rngs[b],
                            );
                            measurements[b].push((targets.clone(), outcome));
                        }
                        Err(e) => col_err[b] = Some(e),
                    }
                }
            }
            ExecStep::Reset { target } => {
                let plan = ApplyPlan::new(initial.radix(), &[*target]).map_err(core)?;
                let d = dims[*target];
                let target_radix = Radix::new(vec![d]).map_err(core)?;
                for b in 0..width {
                    if col_err[b].is_some() {
                        continue;
                    }
                    match measure_col(&mut ens, &plan, &target_radix, b, &mut rngs[b]) {
                        Ok(outcome) => {
                            let level = outcome[0];
                            if level != 0 {
                                let shift_back = power_of_shift(d, d - level);
                                let kind = OpKind::classify(&shift_back);
                                if let Err(e) =
                                    apply_col(&plan, &kind, &shift_back, &mut ens, b, &mut scratch)
                                {
                                    col_err[b] = Some(core(e));
                                }
                            }
                        }
                        Err(e) => col_err[b] = Some(e),
                    }
                }
            }
            ExecStep::Channel(channel) => {
                for b in 0..width {
                    if col_err[b].is_some() {
                        continue;
                    }
                    if let Err(e) =
                        apply_channel_col(&mut ens, channel, b, &mut rngs[b], &mut scratch)
                    {
                        col_err[b] = Some(e);
                    }
                }
            }
            ExecStep::Barrier => {
                for channel in &kernels.barrier_loss {
                    for b in 0..width {
                        if col_err[b].is_some() {
                            continue;
                        }
                        if let Err(e) =
                            apply_channel_col(&mut ens, channel, b, &mut rngs[b], &mut scratch)
                        {
                            col_err[b] = Some(e);
                        }
                    }
                }
            }
        }
        #[cfg(feature = "fault-inject")]
        qudit_core::guard::inject::apply_state_faults(step_index, ens.data_mut());
        for (b, monitor) in monitors.iter_mut().enumerate() {
            if col_err[b].is_some() {
                continue;
            }
            if monitor.due() {
                if let Err(e) = monitor.check_statevector_col(step_index, ens.data_mut(), width, b)
                {
                    col_err[b] = Some(core(e));
                }
            }
        }
        // Cooperative cancellation on the same cadence as the serial loop
        // (after the guard, so a guard failure wins at a shared boundary).
        if let Some(token) = cfg.cancel {
            if (step_index + 1).is_multiple_of(cadence) {
                token.check(step_index).map_err(core)?;
            }
        }
        step_index += 1;
    }
    for (b, monitor) in monitors.iter_mut().enumerate() {
        if col_err[b].is_some() || !monitor.is_enabled() {
            continue;
        }
        if let Err(e) = monitor.check_statevector_col(kernels.steps.len(), ens.data_mut(), width, b)
        {
            col_err[b] = Some(core(e));
        }
    }
    let mut out = Vec::with_capacity(width);
    for (b, err) in col_err.iter_mut().enumerate() {
        out.push(match err.take() {
            Some(e) => Err(e),
            None => ens.column_state(b).map_err(core).map(|state| RunOutput {
                state,
                measurements: std::mem::take(&mut measurements[b]),
                health: monitors[b].health(),
            }),
        });
    }
    Ok(out)
}

/// Length of the maximal span of steps starting at `from` that touch columns
/// independently: parameter-dependent applies with no attached noise. Within
/// such a span no panel-wide operation intervenes, so each column can be
/// gathered once, evolved through every step, and scattered once.
fn gatherable_span_len(steps: &[ExecStep], from: usize) -> usize {
    let mut end = from;
    while end < steps.len() {
        match &steps[end] {
            ExecStep::Apply { recipe: Some(_), noise, .. } if noise.is_empty() => end += 1,
            _ => break,
        }
    }
    end - from
}

/// The shared, immutable inputs of one gatherable span: the plan's steps,
/// the span's step-index range, the population's binding overlays, and the
/// worker count.
struct SpanCtx<'a> {
    steps: &'a [ExecStep],
    span: std::ops::Range<usize>,
    batch: &'a [BindBuffers],
    threads: usize,
}

/// Executes a span of parameter-dependent, noiseless apply steps
/// column-outer: each live column is gathered into a contiguous buffer once,
/// evolved through the whole span by the serial unit-stride kernel — guard
/// checkpoints included, on the very same amplitudes in the same ascending
/// order as the panel checks — and scattered back. Columns are arithmetically
/// independent here (no RNG, no cross-column reads), so the span fans out
/// across `ctx.threads` workers; results are bitwise identical to the
/// per-step panel path at any thread count, including 1.
fn run_gathered_span(
    ctx: &SpanCtx<'_>,
    ens: &mut EnsembleState,
    cursors: &mut [usize],
    monitors: &mut [HealthMonitor],
    col_err: &mut [Option<CircuitError>],
) {
    let core = CircuitError::Core;
    let width = ens.width();
    type ColOutcome = (Vec<Complex64>, usize, HealthMonitor, Option<CircuitError>);
    let results: Vec<Option<ColOutcome>> = {
        let data = ens.data();
        let cursors = &*cursors;
        let monitors = &*monitors;
        let col_err = &*col_err;
        let run_col = move |b: usize| -> Option<ColOutcome> {
            if col_err[b].is_some() {
                return None;
            }
            let mut buf: Vec<Complex64> = data[b..].iter().step_by(width).copied().collect();
            let mut block = Vec::new();
            let mut cursor = cursors[b];
            let mut monitor = monitors[b].clone();
            let mut err = None;
            for s in ctx.span.clone() {
                let ExecStep::Apply { plan, kind, op, .. } = &ctx.steps[s] else {
                    unreachable!("gatherable spans hold only apply steps")
                };
                let (k, o) = ctx.batch[b].resolve(&mut cursor, s, kind, op);
                if let Err(e) = plan.apply(k, o, &mut buf, &mut block) {
                    err = Some(core(e));
                    break;
                }
                if monitor.due() {
                    if let Err(e) = monitor.check_statevector_col(s, &mut buf, 1, 0) {
                        err = Some(core(e));
                        break;
                    }
                }
            }
            Some((buf, cursor, monitor, err))
        };
        if ctx.threads > 1 && width > 1 {
            qudit_core::par::par_map_threads(width, ctx.threads, run_col)
        } else {
            (0..width).map(run_col).collect()
        }
    };
    for (b, res) in results.into_iter().enumerate() {
        let Some((buf, cursor, monitor, err)) = res else { continue };
        cursors[b] = cursor;
        monitors[b] = monitor;
        if let Some(e) = err {
            // Failed columns keep their pre-span panel contents; they are
            // never extracted, so the partial buffer need not land.
            col_err[b] = Some(e);
            continue;
        }
        for (slot, &a) in ens.data_mut()[b..].iter_mut().step_by(width).zip(buf.iter()) {
            *slot = a;
        }
    }
}

/// Applies `op` to a single ensemble column through the **serial**
/// unit-stride kernel: the column is gathered into a contiguous buffer,
/// evolved by [`ApplyPlan::apply`] — the exact kernel the serial loop runs —
/// and scattered back. Per-column steps dominate recipe-heavy plans, and at
/// panel stride their flops run several times slower than the serial loop's;
/// gathering keeps them at unit stride and makes the bitwise contract
/// immediate, because the arithmetic *is* the serial kernel's.
fn apply_col(
    plan: &ApplyPlan,
    kind: &OpKind,
    op: &CMatrix,
    ens: &mut EnsembleState,
    col: usize,
    scratch: &mut RunScratch,
) -> std::result::Result<(), CoreError> {
    let width = ens.width();
    if width == 1 {
        // A width-1 panel is already contiguous.
        return plan.apply(kind, op, ens.data_mut(), &mut scratch.block);
    }
    let buf = &mut scratch.col;
    buf.clear();
    buf.extend(ens.data()[col..].iter().step_by(width));
    plan.apply(kind, op, buf, &mut scratch.block)?;
    for (slot, &a) in ens.data_mut()[col..].iter_mut().step_by(width).zip(buf.iter()) {
        *slot = a;
    }
    Ok(())
}

/// [`crate::sim::apply_channel_prepared`] restricted to one ensemble column:
/// identical branch-probability math (per-column panel reductions are
/// bitwise-equal to the contiguous kernels), identical draw-before-probs RNG
/// consumption, identical selection scan, identical normalisation.
fn apply_channel_col(
    ens: &mut EnsembleState,
    kernel: &ChannelKernel,
    col: usize,
    rng: &mut StdRng,
    scratch: &mut RunScratch,
) -> Result<usize> {
    let core = CircuitError::Core;
    let ops = kernel.channel.operators();
    let width = ens.width();
    // Fast path: unitary channel (single Kraus operator) — no draw, no
    // renormalisation, exactly like the serial fast path.
    if ops.len() == 1 {
        apply_col(&kernel.plan, &kernel.kinds[0], &ops[0], ens, col, scratch).map_err(core)?;
        return Ok(0);
    }
    let mut r: f64 = rng.gen::<f64>();
    scratch.branch_probs.clear();
    for (op, kind) in ops.iter().zip(kernel.kinds.iter()) {
        let p = kernel
            .plan
            .norm_sqr_after_col(kind, op, ens.data(), width, col, &mut scratch.block)
            .map_err(core)?;
        scratch.branch_probs.push(p);
    }
    let total: f64 = scratch.branch_probs.iter().sum();
    if total <= 0.0 || total.is_nan() {
        return Err(core(CoreError::InvalidProbability(
            "channel branch probabilities carry no mass (zero state)".into(),
        )));
    }
    r *= total;
    let mut selected = None;
    for (k, &p) in scratch.branch_probs.iter().enumerate() {
        if p <= 0.0 {
            continue;
        }
        selected = Some(k);
        if r < p {
            break;
        }
        r -= p;
    }
    let k = selected.expect("a positive total implies a positive branch");
    apply_col(&kernel.plan, &kernel.kinds[k], &ops[k], ens, col, scratch).map_err(core)?;
    ens.normalize_col(col).map_err(core)?;
    Ok(k)
}

/// [`qudit_core::state::QuditState::measure`] restricted to one ensemble
/// column: same marginal accumulation order, same CDF draw, same collapse and
/// renormalisation.
fn measure_col(
    ens: &mut EnsembleState,
    plan: &ApplyPlan,
    target_radix: &Radix,
    col: usize,
    rng: &mut StdRng,
) -> Result<Vec<usize>> {
    let core = CircuitError::Core;
    let width = ens.width();
    let probs = plan.marginal_probabilities_strided(ens.data(), width, col, |z| z.norm_sqr());
    let outcome = Cdf::from_weights(probs).try_draw(rng).ok_or_else(|| {
        core(CoreError::InvalidProbability(
            "measurement targets carry no probability mass (zero state)".into(),
        ))
    })?;
    let digits = target_radix.digits_of(outcome).map_err(core)?;
    plan.collapse_col(ens.data_mut(), width, col, outcome);
    ens.normalize_col(col).map_err(core)?;
    Ok(digits)
}

// --------------------------------------------------------------------------
// Batched trajectories: panel groups keyed by Kraus-branch prefix.
// --------------------------------------------------------------------------

/// One branch-prefix group at the end of a trajectory chunk: the shared
/// final state, the (ascending) trajectory indices that followed this
/// stochastic history, and the group's per-member health report (scale by
/// the member count to aggregate).
pub(crate) struct TrajGroupOutcome {
    pub state: QuditState,
    pub members: Vec<usize>,
    pub health: RunHealth,
}

/// A live branch-prefix group during a chunk run: its panel column, its
/// member positions (indices into the chunk's member list, ascending), and
/// its lineage's health monitor (cloned at splits, so each group carries the
/// checks its members' serial runs would have accumulated).
struct Group {
    col: usize,
    members: Vec<usize>,
    monitor: HealthMonitor,
}

/// Runs `members` (trajectory index, RNG seed) through a compiled plan as a
/// lazily splitting ensemble. Deterministic steps batch across all live
/// columns; stochastic events compute branch probabilities once per *group*,
/// draw each member's branch from its own RNG (streams aligned draw-for-draw
/// with the serial loop), and split the panel at divergence points.
///
/// Any member's failure (guard trip, zero-mass branch) fails the whole
/// chunk, matching the serial fold which propagates the first trajectory
/// error.
pub(crate) fn run_trajectory_chunk(
    cfg: &EnsembleConfig<'_>,
    kernels: &CircuitKernels,
    binds: &BindBuffers,
    initial: &QuditState,
    members: &[(usize, u64)],
) -> Result<Vec<TrajGroupOutcome>> {
    let core = CircuitError::Core;
    if members.is_empty() {
        return Ok(Vec::new());
    }
    if initial.radix().dims() != kernels.dims {
        return Err(CircuitError::InvalidTargets(format!(
            "initial state register {:?} does not match circuit register {:?}",
            initial.radix().dims(),
            kernels.dims
        )));
    }
    if let Some(token) = cfg.cancel {
        token.check(0).map_err(core)?;
    }
    let cadence = cfg.guard.cadence.max(1);
    let mut ens = EnsembleState::from_state(initial, 1).map_err(core)?;
    let mut groups = vec![Group {
        col: 0,
        members: (0..members.len()).collect(),
        monitor: HealthMonitor::new(cfg.guard),
    }];
    let mut rngs: Vec<StdRng> =
        members.iter().map(|&(_, seed)| StdRng::seed_from_u64(seed)).collect();
    let mut cursor = 0usize;
    let mut scratch = RunScratch::default();

    for (step_index, step) in kernels.steps.iter().enumerate() {
        match step {
            ExecStep::Apply { plan, kind, op, noise, .. } => {
                let (kind, op) = binds.resolve(&mut cursor, step_index, kind, op);
                let w = ens.width();
                plan.apply_batched(kind, op, ens.data_mut(), w, 0..w, &mut scratch.block)
                    .map_err(core)?;
                for channel in noise {
                    channel_event(&mut ens, &mut groups, &mut rngs, channel, &mut scratch)?;
                }
            }
            ExecStep::Measure { targets } => {
                trajectory_measure_event(
                    &mut ens,
                    &mut groups,
                    &mut rngs,
                    targets,
                    cfg.readout_flip,
                )?;
            }
            ExecStep::Reset { target } => {
                trajectory_reset_event(&mut ens, &mut groups, &mut rngs, *target, &mut scratch)?;
            }
            ExecStep::Channel(channel) => {
                channel_event(&mut ens, &mut groups, &mut rngs, channel, &mut scratch)?;
            }
            ExecStep::Barrier => {
                for channel in &kernels.barrier_loss {
                    channel_event(&mut ens, &mut groups, &mut rngs, channel, &mut scratch)?;
                }
            }
        }
        #[cfg(feature = "fault-inject")]
        qudit_core::guard::inject::apply_state_faults(step_index, ens.data_mut());
        let w = ens.width();
        for group in groups.iter_mut() {
            if group.monitor.due() {
                group
                    .monitor
                    .check_statevector_col(step_index, ens.data_mut(), w, group.col)
                    .map_err(core)?;
            }
        }
        if let Some(token) = cfg.cancel {
            if (step_index + 1) % cadence == 0 {
                token.check(step_index).map_err(core)?;
            }
        }
    }
    let w = ens.width();
    for group in groups.iter_mut() {
        if group.monitor.is_enabled() {
            group
                .monitor
                .check_statevector_col(kernels.steps.len(), ens.data_mut(), w, group.col)
                .map_err(core)?;
        }
    }
    groups
        .into_iter()
        .map(|g| {
            Ok(TrajGroupOutcome {
                state: ens.column_state(g.col).map_err(core)?,
                members: g.members.iter().map(|&i| members[i].0).collect(),
                health: g.monitor.health(),
            })
        })
        .collect()
}

/// Splits `groups[gi]` by per-member branch `choices` (parallel to its member
/// list). The parent column is cloned for every selected branch beyond the
/// first **before** `apply` touches any copy — the branch-prefix splitting
/// rule that keeps every column's history exactly one serial trajectory's.
/// `apply(ens, column, branch)` then finalises each branch column.
fn split_group(
    ens: &mut EnsembleState,
    groups: &mut Vec<Group>,
    gi: usize,
    choices: &[usize],
    n_branches: usize,
    mut apply: impl FnMut(&mut EnsembleState, usize, usize) -> Result<()>,
) -> Result<()> {
    let col = groups[gi].col;
    let mut by_branch: Vec<Vec<usize>> = vec![Vec::new(); n_branches];
    for (&m, &k) in groups[gi].members.iter().zip(choices) {
        by_branch[k].push(m);
    }
    let selected: Vec<usize> = (0..n_branches).filter(|&k| !by_branch[k].is_empty()).collect();
    let mut branch_cols = vec![col];
    for _ in 1..selected.len() {
        branch_cols.push(ens.push_clone_of(col));
    }
    for (&bc, &k) in branch_cols.iter().zip(selected.iter()) {
        apply(ens, bc, k)?;
    }
    groups[gi].members = std::mem::take(&mut by_branch[selected[0]]);
    let monitor = groups[gi].monitor.clone();
    for (&bc, &k) in branch_cols.iter().zip(selected.iter()).skip(1) {
        groups.push(Group {
            col: bc,
            members: std::mem::take(&mut by_branch[k]),
            monitor: monitor.clone(),
        });
    }
    Ok(())
}

/// A Kraus channel event over every live group: probabilities once per
/// group, one draw per member (stream-aligned with the serial loop), lazy
/// panel splits at divergence.
fn channel_event(
    ens: &mut EnsembleState,
    groups: &mut Vec<Group>,
    rngs: &mut [StdRng],
    kernel: &ChannelKernel,
    scratch: &mut RunScratch,
) -> Result<()> {
    let core = CircuitError::Core;
    let ops = kernel.channel.operators();
    // Unitary channel: deterministic, so it batches across the whole panel —
    // no draws, no renormalisation, no splits (serial fast path likewise).
    if ops.len() == 1 {
        let w = ens.width();
        kernel
            .plan
            .apply_batched(&kernel.kinds[0], &ops[0], ens.data_mut(), w, 0..w, &mut scratch.block)
            .map_err(core)?;
        return Ok(());
    }
    let n_groups = groups.len();
    for gi in 0..n_groups {
        let col = groups[gi].col;
        let w = ens.width();
        scratch.branch_probs.clear();
        for (op, kind) in ops.iter().zip(kernel.kinds.iter()) {
            let p = kernel
                .plan
                .norm_sqr_after_col(kind, op, ens.data(), w, col, &mut scratch.block)
                .map_err(core)?;
            scratch.branch_probs.push(p);
        }
        let total: f64 = scratch.branch_probs.iter().sum();
        if total <= 0.0 || total.is_nan() {
            return Err(core(CoreError::InvalidProbability(
                "channel branch probabilities carry no mass (zero state)".into(),
            )));
        }
        let mut choices = Vec::with_capacity(groups[gi].members.len());
        for &m in &groups[gi].members {
            // One `gen::<f64>()` per member, exactly as the serial channel
            // unravelling draws it; the scan below replicates the serial
            // selection (zero-probability branches skipped, top-edge
            // rounding falls back to the last positive branch).
            let mut r: f64 = rngs[m].gen::<f64>();
            r *= total;
            let mut selected = None;
            for (k, &p) in scratch.branch_probs.iter().enumerate() {
                if p <= 0.0 {
                    continue;
                }
                selected = Some(k);
                if r < p {
                    break;
                }
                r -= p;
            }
            choices.push(selected.expect("a positive total implies a positive branch"));
        }
        split_group(ens, groups, gi, &choices, ops.len(), |ens, bc, k| {
            apply_col(&kernel.plan, &kernel.kinds[k], &ops[k], ens, bc, &mut *scratch)
                .map_err(core)?;
            ens.normalize_col(bc).map_err(core)
        })?;
    }
    Ok(())
}

/// A mid-circuit measurement over every live group. Outcome draws and
/// readout-flip draws are consumed per member to keep RNG streams aligned
/// with the serial loop; measurement records themselves are not retained
/// (trajectory consumers fold final states only, like the serial fold).
fn trajectory_measure_event(
    ens: &mut EnsembleState,
    groups: &mut Vec<Group>,
    rngs: &mut [StdRng],
    targets: &[usize],
    readout_flip: f64,
) -> Result<()> {
    let core = CircuitError::Core;
    let radix = ens.radix().clone();
    let plan = ApplyPlan::new(&radix, targets).map_err(core)?;
    let target_dims: Vec<usize> = targets.iter().map(|&t| radix.dims()[t]).collect();
    let target_radix = Radix::new(target_dims.clone()).map_err(core)?;
    let n_groups = groups.len();
    for gi in 0..n_groups {
        let col = groups[gi].col;
        let w = ens.width();
        let probs = plan.marginal_probabilities_strided(ens.data(), w, col, |z| z.norm_sqr());
        let cdf = Cdf::from_weights(probs);
        let mut choices = Vec::with_capacity(groups[gi].members.len());
        for &m in &groups[gi].members {
            let outcome = cdf.try_draw(&mut rngs[m]).ok_or_else(|| {
                core(CoreError::InvalidProbability(
                    "measurement targets carry no probability mass (zero state)".into(),
                ))
            })?;
            let mut digits = target_radix.digits_of(outcome).map_err(core)?;
            apply_readout_flip(&mut digits, &target_dims, readout_flip, &mut rngs[m]);
            choices.push(outcome);
        }
        split_group(ens, groups, gi, &choices, plan.sub_dim(), |ens, bc, outcome| {
            let w = ens.width();
            plan.collapse_col(ens.data_mut(), w, bc, outcome);
            ens.normalize_col(bc).map_err(core)
        })?;
    }
    Ok(())
}

/// A reset over every live group: measure the target (one draw per member),
/// split by observed level, rotate each branch column back to `|0⟩`.
fn trajectory_reset_event(
    ens: &mut EnsembleState,
    groups: &mut Vec<Group>,
    rngs: &mut [StdRng],
    target: usize,
    scratch: &mut RunScratch,
) -> Result<()> {
    let core = CircuitError::Core;
    let radix = ens.radix().clone();
    let plan = ApplyPlan::new(&radix, &[target]).map_err(core)?;
    let d = radix.dims()[target];
    let n_groups = groups.len();
    for gi in 0..n_groups {
        let col = groups[gi].col;
        let w = ens.width();
        let probs = plan.marginal_probabilities_strided(ens.data(), w, col, |z| z.norm_sqr());
        let cdf = Cdf::from_weights(probs);
        let mut choices = Vec::with_capacity(groups[gi].members.len());
        for &m in &groups[gi].members {
            let level = cdf.try_draw(&mut rngs[m]).ok_or_else(|| {
                core(CoreError::InvalidProbability(
                    "measurement targets carry no probability mass (zero state)".into(),
                ))
            })?;
            choices.push(level);
        }
        split_group(ens, groups, gi, &choices, d, |ens, bc, level| {
            let w = ens.width();
            plan.collapse_col(ens.data_mut(), w, bc, level);
            ens.normalize_col(bc).map_err(core)?;
            if level != 0 {
                let shift_back = power_of_shift(d, d - level);
                let kind = OpKind::classify(&shift_back);
                apply_col(&plan, &kind, &shift_back, ens, bc, &mut *scratch).map_err(core)?;
            }
            Ok(())
        })?;
    }
    Ok(())
}
