//! Pure-state (single-trajectory) circuit simulation.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use qudit_core::cancel::CancelToken;
use qudit_core::guard::{GuardConfig, HealthMonitor, RunHealth};
use qudit_core::state::QuditState;

use crate::circuit::{Circuit, Instruction};
use crate::error::{CircuitError, Result};
use crate::noise::NoiseModel;
use crate::observable::Observable;
use crate::sim::ensemble::{run_ensemble_prepared, BatchBindings, EnsembleConfig};
use crate::sim::fusion::{FusionConfig, FusionStats};
use crate::sim::kernels::{BindBuffers, CircuitKernels, ExecStep, RunScratch};
use crate::sim::{apply_channel_prepared, apply_readout_flip};

/// Output of a state-vector run: the final state and any recorded
/// measurement outcomes (in program order).
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Final state after all instructions.
    pub state: QuditState,
    /// Recorded measurements, one entry per `Measure` instruction:
    /// `(targets, observed digits)`.
    pub measurements: Vec<(Vec<usize>, Vec<usize>)>,
    /// Numerical-health report for the run. All-zero when the simulator's
    /// [`GuardConfig`] is disabled (the default).
    pub health: RunHealth,
}

/// A circuit compiled against a simulator's noise model and fusion
/// configuration: the reusable execution plan (fused superblocks, stride
/// plans, operator classifications, noise channels) behind every shot and
/// trajectory. Compile once with [`StatevectorSimulator::compile`], then run
/// it any number of times with [`StatevectorSimulator::run_compiled`] to
/// amortise the compilation work across runs.
///
/// Since PR 7 the plan is split into an immutable, `Arc`-shared **topology**
/// (the full kernel set: fused steps, stride plans, noise channels) and a
/// small per-handle **binding overlay** holding only the operators of
/// parameter-dependent steps. [`Clone`] is therefore cheap — it shares the
/// topology and copies the overlay — so a serving layer can cache one
/// compiled plan and hand each request its own independently rebindable
/// handle ([`CompiledCircuit::bind`] never touches the shared topology).
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    /// The immutable, shareable plan topology.
    pub(crate) topology: Arc<CircuitKernels>,
    /// This handle's parameter-binding overlay (empty = the compile-time
    /// all-zero binding).
    pub(crate) binds: BindBuffers,
    /// The noise model the plan was compiled against; runs under a simulator
    /// with a different model are rejected (the plan bakes in gate-level
    /// channels, so executing it under another model would silently mix the
    /// two).
    pub(crate) noise: NoiseModel,
}

impl CompiledCircuit {
    /// What the fusion pass did to the circuit.
    pub fn fusion_stats(&self) -> FusionStats {
        self.topology.stats
    }

    /// Number of steps in the compiled execution plan.
    pub fn num_steps(&self) -> usize {
        self.topology.steps.len()
    }

    /// Per-qudit dimensions of the register the plan was compiled for.
    pub fn dims(&self) -> &[usize] {
        &self.topology.dims
    }

    /// Number of parameters a binding must supply
    /// ([`crate::Circuit::num_params`] of the source circuit). Zero for a
    /// fully bound circuit.
    pub fn num_params(&self) -> usize {
        self.topology.num_params
    }

    /// Number of apply steps whose operator depends on a free parameter —
    /// the steps [`CompiledCircuit::bind`] re-materialises (everything else
    /// is binding-invariant).
    pub fn rebindable_steps(&self) -> usize {
        self.topology
            .steps
            .iter()
            .filter(|s| matches!(s, crate::sim::kernels::ExecStep::Apply { recipe: Some(_), .. }))
            .count()
    }

    /// `true` if `self` and `other` share the same underlying plan topology
    /// (they are clones of one compiled plan). Bindings are per-handle and do
    /// not affect sharing; a plan-cache hit hands out handles for which this
    /// holds.
    pub fn shares_topology_with(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.topology, &other.topology)
    }

    /// Re-materialises the operators of the parameter-dependent (possibly
    /// fused) apply steps at the given binding into **this handle's** overlay
    /// — without re-running fusion, stride-plan construction, or the plan's
    /// step topology, and without touching any other handle sharing the same
    /// topology. A plan compiled from a parameterized circuit starts out
    /// bound at all-zero parameters.
    ///
    /// Rebinding is exactly equivalent to recompiling the bound circuit:
    /// `compile(c).bind(θ)` and `compile(c.with_bound(θ))` execute
    /// bitwise-identical plans (operators, classifications, and therefore
    /// sampling streams), the former skipping all recompilation work.
    ///
    /// # Example
    ///
    /// ```
    /// use qudit_circuit::gate::Param;
    /// use qudit_circuit::sim::StatevectorSimulator;
    /// use qudit_circuit::{Circuit, Gate};
    /// use qudit_core::matrix::CMatrix;
    ///
    /// let mut c = Circuit::uniform(1, 3);
    /// c.push(Gate::fourier(3), &[0]).unwrap();
    /// let phase = Gate::parameterized(
    ///     "sep",
    ///     vec![3],
    ///     &CMatrix::diag_real(&[0.0, 1.0, 2.0]),
    ///     Param::Free(0),
    /// )
    /// .unwrap();
    /// c.push(phase, &[0]).unwrap();
    ///
    /// let sim = StatevectorSimulator::new();
    /// let mut plan = sim.compile(&c).unwrap();
    /// assert_eq!(plan.num_params(), 1);
    /// for theta in [0.1, 0.7, 1.3] {
    ///     let swept = sim.run_bound(&mut plan, &[theta]).unwrap();
    ///     let rebuilt = sim.run(&c.with_bound(&[theta]).unwrap()).unwrap();
    ///     let overlap = swept.state.inner(&rebuilt).unwrap().abs();
    ///     assert!((overlap - 1.0).abs() < 1e-12);
    /// }
    /// ```
    ///
    /// # Errors
    /// Returns an error if `params` supplies fewer than
    /// [`CompiledCircuit::num_params`] values.
    pub fn bind(&mut self, params: &[f64]) -> Result<()> {
        self.topology.bind_into(params, &mut self.binds)
    }

    /// Realises a whole *population* of bindings against this plan's shared
    /// topology — one overlay per ensemble column — for batched execution via
    /// [`StatevectorSimulator::run_ensemble`]. Each overlay is produced by the
    /// same re-materialisation as [`CompiledCircuit::bind`], so column `b` of
    /// the ensemble runs the bitwise-identical plan `bind(population[b])`
    /// would have produced.
    ///
    /// Materialisations are shared across members that agree (bitwise) on
    /// the parameters a step actually reads, so structured populations — a
    /// coordinate grid, a sweep along one axis — pay for the distinct values
    /// per step rather than the population size. Sharing is exact (the
    /// realization is a pure function of those parameters), so the bitwise
    /// contract with the serial bind loop is unaffected.
    ///
    /// # Errors
    /// Returns an error if any member supplies fewer than
    /// [`CompiledCircuit::num_params`] values.
    pub fn bind_batch(&self, population: &[Vec<f64>]) -> Result<BatchBindings> {
        Ok(BatchBindings { cols: self.topology.bind_batch_into(population)? })
    }
}

/// A state-vector simulator.
///
/// Deterministic circuits evolve exactly; measurements, resets and explicit
/// noise channels are handled stochastically using the simulator's seeded
/// random number generator, making every run reproducible.
///
/// # Example
///
/// ```
/// use qudit_circuit::sim::StatevectorSimulator;
/// use qudit_circuit::{Circuit, Gate};
///
/// // Maximally correlated two-qutrit state: F on qudit 0, then CSUM.
/// let mut c = Circuit::uniform(2, 3);
/// c.push(Gate::fourier(3), &[0]).unwrap();
/// c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
///
/// let sim = StatevectorSimulator::with_seed(7);
/// let state = sim.run(&c).unwrap();
/// assert!((state.probabilities()[0] - 1.0 / 3.0).abs() < 1e-12);
///
/// // Compile once and reuse the fused execution plan across runs.
/// let compiled = sim.compile(&c).unwrap();
/// let again = sim.run_compiled(&compiled).unwrap();
/// assert!((again.state.inner(&state).unwrap().abs() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct StatevectorSimulator {
    seed: u64,
    noise: NoiseModel,
    threads: usize,
    fusion: FusionConfig,
    guard: GuardConfig,
    cancel: Option<CancelToken>,
}

impl Default for StatevectorSimulator {
    fn default() -> Self {
        Self::new()
    }
}

impl StatevectorSimulator {
    /// Creates a simulator with the default seed and no noise model.
    pub fn new() -> Self {
        Self {
            seed: 0xC0FFEE,
            noise: NoiseModel::noiseless(),
            threads: 0,
            fusion: FusionConfig::default(),
            guard: GuardConfig::disabled(),
            cancel: None,
        }
    }

    /// Creates a simulator with an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        Self { seed, ..Self::new() }
    }

    /// Attaches a gate-level noise model; noise channels are inserted
    /// stochastically after each gate (one trajectory).
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the worker-thread count for the parallel shot loop in
    /// [`StatevectorSimulator::sample_counts`] (`0` = automatic). Results are
    /// independent of the thread count: every shot derives its own RNG seed.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the gate-fusion configuration (enabled by default; see
    /// [`crate::sim::fusion`]). Fusion changes results only at the level of
    /// floating-point rounding.
    #[must_use]
    pub fn with_fusion(mut self, fusion: FusionConfig) -> Self {
        self.fusion = fusion;
        self
    }

    /// Sets the runtime health-guard configuration (disabled by default; see
    /// [`qudit_core::guard`]). With guards enabled, every `cadence` execution
    /// steps — and once at the end of the run — the state is scanned for
    /// non-finite amplitudes and norm drift, the configured
    /// [`qudit_core::guard::GuardPolicy`] decides what happens on a failure,
    /// and the run's [`RunOutput::health`] reports what the guards saw.
    /// Checkpoints never mutate a healthy state, so a guarded clean run is
    /// bitwise identical to an unguarded one.
    #[must_use]
    pub fn with_guard(mut self, guard: GuardConfig) -> Self {
        self.guard = guard;
        self
    }

    /// Attaches a cooperative [`CancelToken`]. The run loop polls it on entry
    /// and at every guard-cadence boundary (every
    /// [`GuardConfig`] `cadence` steps — the cadence applies whether or not
    /// the guard itself is enabled), surfacing a tripped token as
    /// [`qudit_core::error::CoreError::Cancelled`]. Checkpoints never mutate
    /// the state, so a cancelled run is bitwise identical to an uncancelled
    /// one right up to the step at which it stops.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Compiles a circuit into its reusable execution plan (fusion pass,
    /// stride plans, operator classifications, noise channels).
    ///
    /// # Errors
    /// Returns an error for invalid instructions.
    pub fn compile(&self, circuit: &Circuit) -> Result<CompiledCircuit> {
        Ok(CompiledCircuit {
            topology: Arc::new(CircuitKernels::with_config(circuit, &self.noise, &self.fusion)?),
            binds: BindBuffers::default(),
            noise: self.noise.clone(),
        })
    }

    /// Runs a precompiled circuit from `|0...0⟩` with the simulator's seed.
    /// Equivalent to [`StatevectorSimulator::run_detailed`] on the source
    /// circuit, minus the per-run compilation work.
    ///
    /// # Errors
    /// Returns an error for invalid dimensions.
    pub fn run_compiled(&self, compiled: &CompiledCircuit) -> Result<RunOutput> {
        let initial =
            QuditState::zero(compiled.topology.dims.clone()).map_err(CircuitError::Core)?;
        self.run_compiled_from(compiled, &initial)
    }

    /// Runs a precompiled circuit from an arbitrary initial state.
    ///
    /// # Errors
    /// Returns an error if the initial state register differs from the
    /// compiled circuit's, or if this simulator's noise model differs from
    /// the one the plan was compiled against (gate-level channels are baked
    /// into the plan, so a mismatch would silently mix two models).
    pub fn run_compiled_from(
        &self,
        compiled: &CompiledCircuit,
        initial: &QuditState,
    ) -> Result<RunOutput> {
        self.check_noise(compiled)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.run_prepared(&compiled.topology, &compiled.binds, initial, &mut rng)
    }

    fn check_noise(&self, compiled: &CompiledCircuit) -> Result<()> {
        if compiled.noise != self.noise {
            return Err(CircuitError::Unsupported(
                "compiled circuit was built under a different noise model; recompile with \
                 this simulator's model"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Rebinds a compiled plan to `params` and runs it from `|0...0⟩`: the
    /// rebind-per-step entry point for variational sweeps (see
    /// [`CompiledCircuit::bind`]).
    ///
    /// # Errors
    /// Returns an error for a short binding, a register mismatch, or a noise
    /// model mismatch.
    pub fn run_bound(&self, compiled: &mut CompiledCircuit, params: &[f64]) -> Result<RunOutput> {
        // Validate before binding so a failed call leaves the plan untouched.
        self.check_noise(compiled)?;
        compiled.bind(params)?;
        self.run_compiled(compiled)
    }

    /// Rebinds a compiled plan to `params` and runs it from an arbitrary
    /// initial state.
    ///
    /// # Errors
    /// Returns an error for a short binding, a register mismatch, or a noise
    /// model mismatch.
    pub fn run_bound_from(
        &self,
        compiled: &mut CompiledCircuit,
        params: &[f64],
        initial: &QuditState,
    ) -> Result<RunOutput> {
        // Validate before binding so a failed call leaves the plan untouched.
        self.check_noise(compiled)?;
        compiled.bind(params)?;
        self.run_compiled_from(compiled, initial)
    }

    /// Runs a population of bindings through one compiled plan as a single
    /// batched ensemble pass from `|0...0⟩` (see
    /// [`CompiledCircuit::bind_batch`]): the plan is traversed **once**,
    /// binding-invariant steps apply to all columns as matrix–panel products,
    /// and parameter-dependent steps resolve per column. Column `b`'s output
    /// is bitwise identical to `run_bound` on binding `b` — same state, same
    /// measurement records, same health report.
    ///
    /// Returns one `Result<RunOutput>` per column. Column-local failures
    /// (guard trips, zero-mass measurements) fail only their column;
    /// structural errors and cancellation fail the whole call.
    ///
    /// # Errors
    /// Returns an error for a noise-model mismatch or cancellation.
    pub fn run_ensemble(
        &self,
        compiled: &CompiledCircuit,
        batch: &BatchBindings,
    ) -> Result<Vec<Result<RunOutput>>> {
        let initial =
            QuditState::zero(compiled.topology.dims.clone()).map_err(CircuitError::Core)?;
        self.run_ensemble_from(compiled, batch, &initial)
    }

    /// [`StatevectorSimulator::run_ensemble`] from an arbitrary shared
    /// initial state. Every column starts from `initial` and uses the
    /// simulator's seed, exactly as the serial `run_bound_from` loop would.
    ///
    /// # Errors
    /// Returns an error for a register or noise-model mismatch, or
    /// cancellation.
    pub fn run_ensemble_from(
        &self,
        compiled: &CompiledCircuit,
        batch: &BatchBindings,
        initial: &QuditState,
    ) -> Result<Vec<Result<RunOutput>>> {
        let seeds = vec![self.seed; batch.len()];
        self.run_ensemble_seeded(compiled, batch, initial, &seeds)
    }

    /// [`StatevectorSimulator::run_ensemble_from`] with an explicit RNG seed
    /// per column, for callers whose population members are independent jobs
    /// with their own stochastic streams (the serving layer's coalesced
    /// batches).
    ///
    /// # Errors
    /// Returns an error for a register, noise-model, or seed-count mismatch,
    /// or cancellation.
    pub fn run_ensemble_seeded(
        &self,
        compiled: &CompiledCircuit,
        batch: &BatchBindings,
        initial: &QuditState,
        seeds: &[u64],
    ) -> Result<Vec<Result<RunOutput>>> {
        self.check_noise(compiled)?;
        if seeds.len() != batch.len() {
            return Err(CircuitError::InvalidTargets(format!(
                "seed count {} does not match batch width {}",
                seeds.len(),
                batch.len()
            )));
        }
        let cfg = EnsembleConfig {
            guard: self.guard,
            cancel: self.cancel.as_ref(),
            readout_flip: self.noise.readout_flip,
            threads: self.threads,
        };
        run_ensemble_prepared(&cfg, &compiled.topology, &batch.cols, initial, seeds)
    }

    /// Runs the circuit from `|0...0⟩` and returns the final state
    /// (discarding measurement records).
    ///
    /// # Errors
    /// Returns an error for invalid instructions.
    pub fn run(&self, circuit: &Circuit) -> Result<QuditState> {
        Ok(self.run_detailed(circuit)?.state)
    }

    /// Runs the circuit from `|0...0⟩` and returns state plus measurement
    /// records.
    ///
    /// # Errors
    /// Returns an error for invalid instructions.
    pub fn run_detailed(&self, circuit: &Circuit) -> Result<RunOutput> {
        let initial = QuditState::zero(circuit.dims().to_vec()).map_err(CircuitError::Core)?;
        self.run_from(circuit, &initial)
    }

    /// Runs the circuit from an arbitrary initial state.
    ///
    /// # Errors
    /// Returns an error if the initial state register differs from the
    /// circuit's or an instruction is invalid.
    pub fn run_from(&self, circuit: &Circuit, initial: &QuditState) -> Result<RunOutput> {
        self.run_from_with_rng(circuit, initial, &mut StdRng::seed_from_u64(self.seed))
    }

    /// Runs the circuit from an arbitrary initial state using a caller-owned
    /// random number generator (used by the trajectory simulator to vary the
    /// seed per trajectory).
    ///
    /// # Errors
    /// Returns an error if the initial state register differs from the
    /// circuit's or an instruction is invalid.
    pub fn run_from_with_rng(
        &self,
        circuit: &Circuit,
        initial: &QuditState,
        rng: &mut StdRng,
    ) -> Result<RunOutput> {
        let kernels = CircuitKernels::with_config(circuit, &self.noise, &self.fusion)?;
        self.run_prepared(&kernels, &BindBuffers::default(), initial, rng)
    }

    /// Runs a compiled execution plan, the shared path behind every shot and
    /// trajectory loop: fused superblocks, stride plans, operator
    /// classifications and noise channels are reused, and one scratch buffer
    /// serves the whole run.
    ///
    /// The plan may be a wire-local re-ordering of the source circuit (a
    /// fused block disjoint from a measurement can execute after it — see
    /// [`crate::sim::fusion`]); steps are simply executed in plan order, and
    /// the disjoint-support commutation argument guarantees identical
    /// measurement distributions and aligned RNG streams.
    ///
    /// Parameter-dependent steps resolve their operator through `binds` (the
    /// per-request overlay); pass an empty overlay for the compile-time
    /// binding.
    pub(crate) fn run_prepared(
        &self,
        kernels: &CircuitKernels,
        binds: &BindBuffers,
        initial: &QuditState,
        rng: &mut StdRng,
    ) -> Result<RunOutput> {
        if initial.radix().dims() != kernels.dims {
            return Err(CircuitError::InvalidTargets(format!(
                "initial state register {:?} does not match circuit register {:?}",
                initial.radix().dims(),
                kernels.dims
            )));
        }
        if let Some(token) = &self.cancel {
            token.check(0).map_err(CircuitError::Core)?;
        }
        let cadence = self.guard.cadence.max(1);
        let mut state = initial.clone();
        let mut measurements = Vec::new();
        let mut scratch = RunScratch::default();
        let dims = &kernels.dims;
        let mut monitor = HealthMonitor::new(self.guard);
        let mut bind_cursor = 0usize;

        for (step_index, step) in kernels.steps.iter().enumerate() {
            match step {
                ExecStep::Apply { plan, kind, op, noise, .. } => {
                    let (kind, op) = binds.resolve(&mut bind_cursor, step_index, kind, op);
                    state
                        .apply_prepared(plan, kind, op, &mut scratch.block)
                        .map_err(CircuitError::Core)?;
                    for channel in noise {
                        apply_channel_prepared(&mut state, channel, rng, &mut scratch)?;
                    }
                }
                ExecStep::Measure { targets } => {
                    let mut outcome = state.measure(targets, rng).map_err(CircuitError::Core)?;
                    let target_dims: Vec<usize> = targets.iter().map(|&t| dims[t]).collect();
                    apply_readout_flip(&mut outcome, &target_dims, self.noise.readout_flip, rng);
                    measurements.push((targets.clone(), outcome));
                }
                ExecStep::Reset { target } => {
                    let outcome = state.measure(&[*target], rng).map_err(CircuitError::Core)?;
                    // Rotate the observed level back to |0⟩ with a shift gate.
                    let level = outcome[0];
                    if level != 0 {
                        let d = dims[*target];
                        let shift_back = power_of_shift(d, d - level);
                        state
                            .apply_operator(&shift_back, &[*target])
                            .map_err(CircuitError::Core)?;
                    }
                }
                ExecStep::Channel(channel) => {
                    apply_channel_prepared(&mut state, channel, rng, &mut scratch)?;
                }
                ExecStep::Barrier => {
                    for channel in &kernels.barrier_loss {
                        apply_channel_prepared(&mut state, channel, rng, &mut scratch)?;
                    }
                }
            }
            #[cfg(feature = "fault-inject")]
            qudit_core::guard::inject::apply_state_faults(step_index, state.amplitudes_mut());
            if monitor.due() {
                monitor
                    .check_statevector(step_index, state.amplitudes_mut())
                    .map_err(CircuitError::Core)?;
            }
            // Cooperative cancellation checkpoint, on the same cadence as the
            // guard (after it, so a guard failure takes precedence at the
            // shared boundary). Budget-armed tokens spend exactly one unit
            // here per boundary, thread-count-invariantly.
            if let Some(token) = &self.cancel {
                if (step_index + 1) % cadence == 0 {
                    token.check(step_index).map_err(CircuitError::Core)?;
                }
            }
        }
        // A final checkpoint guarantees at least one check per guarded run
        // and catches faults introduced after the last cadence boundary.
        if monitor.is_enabled() {
            monitor
                .check_statevector(kernels.steps.len(), state.amplitudes_mut())
                .map_err(CircuitError::Core)?;
        }
        Ok(RunOutput { state, measurements, health: monitor.health() })
    }

    /// Samples `shots` end-of-circuit computational-basis measurements.
    ///
    /// If the circuit is fully deterministic (no measurement, reset or
    /// channel instructions and no noise model), the state is computed once
    /// and sampled `shots` times; otherwise the circuit is re-run per shot.
    ///
    /// Returned keys are digit strings of the full register.
    ///
    /// # Errors
    /// Returns an error for invalid instructions.
    pub fn sample_counts(
        &self,
        circuit: &Circuit,
        shots: usize,
    ) -> Result<HashMap<Vec<usize>, usize>> {
        let stochastic = self.circuit_is_stochastic(circuit);
        let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
        if !stochastic {
            // Deterministic circuit: evolve once, then draw shots from the
            // precomputed cumulative distribution (binary search per shot).
            let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(1));
            let out = self.run_detailed(circuit)?;
            let cdf = out.state.cdf();
            let radix = out.state.radix();
            for _ in 0..shots {
                // A run output is normalised, so the distribution always has
                // mass; the guarded draw keeps the degenerate case (an
                // underflowed probability vector) on the documented
                // ground-outcome convention instead of a zero-weight draw.
                let chosen = cdf.try_draw(&mut rng).unwrap_or(0);
                let mut digits = radix.digits_of(chosen).expect("index in range");
                apply_readout_flip(&mut digits, circuit.dims(), self.noise.readout_flip, &mut rng);
                *counts.entry(digits).or_insert(0) += 1;
            }
        } else {
            // Stochastic circuit: every shot re-runs the circuit with its own
            // index-derived seed, so the shot loop is embarrassingly parallel
            // and its outcome is independent of the thread count.
            let kernels = CircuitKernels::with_config(circuit, &self.noise, &self.fusion)?;
            let binds = BindBuffers::default();
            let initial = QuditState::zero(circuit.dims().to_vec()).map_err(CircuitError::Core)?;
            let threads =
                if self.threads == 0 { qudit_core::par::max_threads() } else { self.threads };
            let run_shot = |shot: usize| -> Result<Vec<usize>> {
                let mut shot_rng = StdRng::seed_from_u64(
                    self.seed.wrapping_add(0x9E37_79B9).wrapping_mul(shot as u64 + 1),
                );
                let out = self.run_prepared(&kernels, &binds, &initial, &mut shot_rng)?;
                let mut digits = out.state.sample(&mut shot_rng);
                apply_readout_flip(
                    &mut digits,
                    circuit.dims(),
                    self.noise.readout_flip,
                    &mut shot_rng,
                );
                Ok(digits)
            };
            // With a token attached, the shot sweep also polls it between
            // pool chunks, so a long sampling job stops within one chunk.
            let shot_digits = match &self.cancel {
                Some(token) => {
                    qudit_core::par::par_map_threads_counted_cancel(shots, threads, token, run_shot)
                        .map_err(CircuitError::Core)?
                        .0
                }
                None => qudit_core::par::par_map_threads(shots, threads, run_shot),
            };
            for digits in shot_digits {
                *counts.entry(digits?).or_insert(0) += 1;
            }
        }
        Ok(counts)
    }

    /// Expectation value of an observable on the final state of a circuit run
    /// from `|0...0⟩`.
    ///
    /// # Errors
    /// Returns an error for invalid instructions or observable dimensions.
    pub fn expectation(&self, circuit: &Circuit, observable: &Observable) -> Result<f64> {
        let state = self.run(circuit)?;
        observable.expectation(&state)
    }

    fn circuit_is_stochastic(&self, circuit: &Circuit) -> bool {
        !self.noise.is_noiseless()
            || circuit.instructions().iter().any(|i| {
                matches!(
                    i,
                    Instruction::Measure { .. }
                        | Instruction::Reset { .. }
                        | Instruction::Channel { .. }
                )
            })
    }
}

/// `X^k` for the generalised shift, used to un-compute reset outcomes.
/// `X^k` maps `|c⟩ → |c + k mod d⟩`, so it is constructed directly as the
/// index permutation rather than by `k` repeated O(d³) matrix products.
pub(crate) fn power_of_shift(d: usize, k: usize) -> qudit_core::matrix::CMatrix {
    let mut m = qudit_core::matrix::CMatrix::zeros(d, d);
    for c in 0..d {
        m[((c + k) % d, c)] = qudit_core::complex::Complex64::ONE;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use crate::noise::{KrausChannel, NoiseModel};
    use qudit_core::complex::Complex64;

    #[test]
    fn ghz_qutrit_state_probabilities() {
        // F on qudit 0 then CSUM 0->1 gives the maximally correlated state.
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
        let state = StatevectorSimulator::new().run(&c).unwrap();
        let p = state.probabilities();
        for (idx, prob) in p.iter().enumerate() {
            let a = idx / 3;
            let b = idx % 3;
            if a == b {
                assert!((prob - 1.0 / 3.0).abs() < 1e-10);
            } else {
                assert!(*prob < 1e-12);
            }
        }
    }

    #[test]
    fn measurement_outcomes_are_recorded_and_collapse() {
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
        c.measure(&[0]).unwrap();
        let out = StatevectorSimulator::with_seed(3).run_detailed(&c).unwrap();
        assert_eq!(out.measurements.len(), 1);
        let observed = out.measurements[0].1[0];
        // After collapse, qudit 1 is perfectly correlated.
        let probs = out.state.marginal_probabilities(&[1]).unwrap();
        assert!((probs[observed] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reset_returns_qudit_to_ground() {
        let mut c = Circuit::uniform(1, 4);
        c.push(Gate::fourier(4), &[0]).unwrap();
        c.reset(0).unwrap();
        let out = StatevectorSimulator::with_seed(11).run_detailed(&c).unwrap();
        assert!((out.state.amplitude(&[0]).unwrap().abs() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn initial_state_register_mismatch_errors() {
        let c = Circuit::uniform(2, 3);
        let bad = QuditState::zero(vec![3]).unwrap();
        assert!(StatevectorSimulator::new().run_from(&c, &bad).is_err());
    }

    #[test]
    fn sampling_deterministic_circuit_matches_amplitudes() {
        let mut c = Circuit::uniform(1, 4);
        c.push(Gate::fourier(4), &[0]).unwrap();
        let counts = StatevectorSimulator::with_seed(5).sample_counts(&c, 8000).unwrap();
        for level in 0..4usize {
            let n = counts.get(&vec![level]).copied().unwrap_or(0);
            assert!((n as f64 / 8000.0 - 0.25).abs() < 0.03, "level {level}");
        }
    }

    #[test]
    fn noise_model_changes_outcome_distribution() {
        // With full photon loss after every gate the register collapses to |00⟩.
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::shift_x(3), &[0]).unwrap();
        c.push(Gate::shift_x(3), &[1]).unwrap();
        let noisy =
            StatevectorSimulator::with_seed(1).with_noise(NoiseModel::cavity(1.0, 1.0, 0.0));
        let state = noisy.run(&c).unwrap();
        assert!((state.amplitude(&[0, 0]).unwrap().abs() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn explicit_channel_instruction_is_applied() {
        let mut c = Circuit::uniform(1, 3);
        c.push(Gate::shift_x(3), &[0]).unwrap();
        c.push_channel(KrausChannel::photon_loss(3, 1.0).unwrap(), &[0]).unwrap();
        let state = StatevectorSimulator::new().run(&c).unwrap();
        assert!((state.amplitude(&[0]).unwrap().abs() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn expectation_via_observable() {
        let mut c = Circuit::uniform(1, 4);
        c.push(Gate::shift_x(4), &[0]).unwrap();
        c.push(Gate::shift_x(4), &[0]).unwrap();
        let obs = Observable::number(0, 4);
        let e = StatevectorSimulator::new().expectation(&c, &obs).unwrap();
        assert!((e - 2.0).abs() < 1e-10);
    }

    #[test]
    fn readout_flip_perturbs_counts() {
        let c = Circuit::uniform(1, 2); // state stays |0⟩
        let sim = StatevectorSimulator::with_seed(9)
            .with_noise(NoiseModel::noiseless().with_readout_flip(0.3));
        let counts = sim.sample_counts(&c, 5000).unwrap();
        let ones = counts.get(&vec![1usize]).copied().unwrap_or(0) as f64 / 5000.0;
        assert!((ones - 0.3).abs() < 0.03);
    }

    #[test]
    fn power_of_shift_matches_repeated_multiplication() {
        for d in [2usize, 3, 5] {
            for k in 0..=d + 1 {
                let x = crate::gates::shift_x(d);
                let mut expected = qudit_core::matrix::CMatrix::identity(d);
                for _ in 0..(k % d) {
                    expected = x.matmul(&expected).unwrap();
                }
                let direct = power_of_shift(d, k);
                assert!((&direct - &expected).max_abs() < 1e-15, "d = {d}, k = {k}");
            }
        }
    }

    #[test]
    fn stochastic_sampling_is_thread_count_invariant() {
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
        c.measure(&[0]).unwrap();
        let noise = NoiseModel::cavity(0.1, 0.2, 0.0);
        let serial = StatevectorSimulator::with_seed(21)
            .with_noise(noise.clone())
            .with_threads(1)
            .sample_counts(&c, 300)
            .unwrap();
        let parallel = StatevectorSimulator::with_seed(21)
            .with_noise(noise)
            .with_threads(4)
            .sample_counts(&c, 300)
            .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn runs_are_reproducible_for_fixed_seed() {
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
        c.measure_all();
        let a = StatevectorSimulator::with_seed(77).run_detailed(&c).unwrap();
        let b = StatevectorSimulator::with_seed(77).run_detailed(&c).unwrap();
        assert_eq!(a.measurements, b.measurements);
        let overlap: Complex64 = a.state.inner(&b.state).unwrap();
        assert!((overlap.abs() - 1.0).abs() < 1e-12);
    }
}
