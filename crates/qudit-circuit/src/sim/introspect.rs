//! Read-only introspection of compiled execution plans.
//!
//! The compiled plan types ([`CompiledCircuit`], [`CompiledDensityCircuit`])
//! deliberately hide their internals: run loops own the only mutation paths
//! and external code cannot desynchronise a cached plan. Translation
//! validation (the `qudit-verify` crate) needs to *walk* those internals —
//! every emitted step, its stride plan, its operator, and the source
//! instructions it realizes — without being able to touch them. This module
//! is that window: borrow-only views over the step list, the per-step
//! source-instruction provenance recorded at compile time, and the density
//! compiler's item-level fold structure.
//!
//! Nothing here is consulted by the simulators themselves; the views exist
//! so an *independent* checker can re-derive the compiler's correctness
//! argument (instruction accounting, disjoint-support commutation, cost
//! rules, binding invariance) against data the compiler actually emitted.
//!
//! The `corrupt_*` helpers at the bottom are the one exception to
//! "read-only": they deliberately miscompile a plan in controlled ways so
//! the verifier's mutation tests can prove it is not vacuous. They are
//! `#[doc(hidden)]` — nothing but verifier self-tests should call them.

use std::sync::Arc;

use qudit_core::apply::{ApplyPlan, OpKind};
use qudit_core::matrix::CMatrix;
use qudit_core::superop::SuperPlan;

use crate::error::Result;
use crate::noise::KrausChannel;
use crate::sim::fusion::FusionStats;
use crate::sim::kernels::{ChannelKernel, CircuitKernels, DensityKernels, DensityStep, ExecStep};
use crate::sim::{CompiledCircuit, CompiledDensityCircuit, SuperopStats};

pub use crate::sim::kernels::{DensityRole, ItemOrigin};

/// A noise channel attached to a plan step, with its application geometry.
#[derive(Debug, Clone, Copy)]
pub struct ChannelView<'a> {
    /// The Kraus channel.
    pub channel: &'a KrausChannel,
    /// The qudits the channel acts on (operator index order).
    pub targets: &'a [usize],
    /// The precomputed stride plan.
    pub plan: &'a ApplyPlan,
}

impl<'a> ChannelView<'a> {
    fn of(kernel: &'a ChannelKernel) -> Self {
        Self { channel: &kernel.channel, targets: &kernel.targets, plan: &kernel.plan }
    }
}

/// One step of a compiled statevector plan, as seen by a verifier.
#[derive(Debug, Clone)]
pub enum StepView<'a> {
    /// A (possibly fused) unitary operator plus its attached noise channels.
    Apply {
        /// The operator's support (operator index order; ascending for fused
        /// blocks).
        targets: &'a [usize],
        /// The precomputed stride plan.
        plan: &'a ApplyPlan,
        /// The compile-time operator (all-zero binding).
        op: &'a CMatrix,
        /// The compile-time structure classification.
        kind: &'a OpKind,
        /// Noise channels the model inserts after the gate.
        noise: Vec<ChannelView<'a>>,
        /// `true` iff the operator depends on a free parameter (the step is
        /// re-materialised on rebind).
        rebindable: bool,
        /// For rebindable steps: `Some(true)` iff the compiler proved the
        /// operator diagonal at **every** binding.
        diagonal_for_all_bindings: Option<bool>,
    },
    /// An explicit channel instruction.
    Channel(ChannelView<'a>),
    /// A computational-basis measurement.
    Measure {
        /// Measured qudits.
        targets: &'a [usize],
    },
    /// Reset of one qudit to `|0⟩`.
    Reset {
        /// The qudit being reset.
        target: usize,
    },
    /// A barrier at which idle-loss channels apply.
    Barrier,
}

/// Borrow-only view over a compiled statevector plan.
#[derive(Debug, Clone, Copy)]
pub struct PlanView<'a> {
    kernels: &'a CircuitKernels,
    compiled: &'a CompiledCircuit,
}

/// Opens the introspection view of a compiled statevector plan.
pub fn statevector(compiled: &CompiledCircuit) -> PlanView<'_> {
    PlanView { kernels: &compiled.topology, compiled }
}

impl<'a> PlanView<'a> {
    /// Per-qudit dimensions the plan was compiled for.
    pub fn dims(&self) -> &'a [usize] {
        &self.kernels.dims
    }

    /// Parameters a binding must supply.
    pub fn num_params(&self) -> usize {
        self.kernels.num_params
    }

    /// Number of steps in the plan.
    pub fn num_steps(&self) -> usize {
        self.kernels.steps.len()
    }

    /// What the fusion pass did.
    pub fn fusion_stats(&self) -> FusionStats {
        self.kernels.stats
    }

    /// The `index`-th step.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn step(&self, index: usize) -> StepView<'a> {
        match &self.kernels.steps[index] {
            ExecStep::Apply { targets, plan, kind, op, noise, recipe } => StepView::Apply {
                targets,
                plan,
                op,
                kind,
                noise: noise.iter().map(ChannelView::of).collect(),
                rebindable: recipe.is_some(),
                diagonal_for_all_bindings: recipe.as_ref().map(|r| r.diagonal_for_all_bindings()),
            },
            ExecStep::Channel(kernel) => StepView::Channel(ChannelView::of(kernel)),
            ExecStep::Measure { targets } => StepView::Measure { targets },
            ExecStep::Reset { target } => StepView::Reset { target: *target },
            ExecStep::Barrier => StepView::Barrier,
        }
    }

    /// Source-instruction indices realized by the `index`-th step: the
    /// absorbed gate indices (program order) for a fused block, a single
    /// index otherwise. Dropped no-op barriers appear in no step.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn sources(&self, index: usize) -> &'a [usize] {
        &self.kernels.origins[index]
    }

    /// The per-qudit idle-loss channels applied at each barrier (empty for a
    /// model without idle loss).
    pub fn barrier_loss(&self) -> Vec<ChannelView<'a>> {
        self.kernels.barrier_loss.iter().map(ChannelView::of).collect()
    }

    /// Re-materialises the operator of a rebindable step at `params` through
    /// the plan's own recipe, or `None` for a binding-independent step.
    ///
    /// # Errors
    /// Returns an error if `params` is too short for the recipe's gates.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn realize(&self, index: usize, params: &[f64]) -> Option<Result<CMatrix>> {
        match &self.kernels.steps[index] {
            ExecStep::Apply { recipe: Some(recipe), .. } => Some(recipe.realize(params)),
            _ => None,
        }
    }

    /// This handle's binding overlay: `(step index, realized operator,
    /// classification)` triples, ascending by step (empty = the compile-time
    /// all-zero binding).
    pub fn overrides(&self) -> impl Iterator<Item = (usize, &'a CMatrix, &'a OpKind)> {
        self.compiled.binds.overrides.iter().map(|(s, op, kind)| (*s, op, kind))
    }
}

/// One step of a compiled density plan, as seen by a verifier.
#[derive(Debug, Clone)]
pub enum DensityStepView<'a> {
    /// A standalone deterministic map (two-sided sandwich).
    Unitary {
        /// The precomputed stride plan.
        plan: &'a ApplyPlan,
        /// The compile-time operator.
        op: &'a CMatrix,
        /// The compile-time classification.
        kind: &'a OpKind,
    },
    /// One superoperator sweep over vectorised ρ.
    Super {
        /// The precomputed doubled-register stride plan.
        plan: &'a SuperPlan,
        /// The composed superoperator matrix (all-zero binding).
        sup: &'a CMatrix,
        /// The compile-time classification.
        kind: &'a OpKind,
        /// Number of recorded degradation constituents (zero for
        /// parameter-dependent sweeps).
        fallback_len: usize,
        /// The compile-time trace-preservation allowance.
        defect_tol: f64,
    },
    /// Per-term Kraus execution of one channel.
    Kraus(ChannelView<'a>),
}

/// Borrow-only view over a compiled density plan.
#[derive(Debug, Clone, Copy)]
pub struct DensityPlanView<'a> {
    kernels: &'a DensityKernels,
    compiled: &'a CompiledDensityCircuit,
}

/// Opens the introspection view of a compiled density plan.
pub fn density(compiled: &CompiledDensityCircuit) -> DensityPlanView<'_> {
    DensityPlanView { kernels: &compiled.topology, compiled }
}

impl<'a> DensityPlanView<'a> {
    /// Per-qudit dimensions the plan was compiled for.
    pub fn dims(&self) -> &'a [usize] {
        &self.kernels.dims
    }

    /// Parameters a binding must supply.
    pub fn num_params(&self) -> usize {
        self.kernels.num_params
    }

    /// Number of steps in the density plan.
    pub fn num_steps(&self) -> usize {
        self.kernels.steps.len()
    }

    /// What the (shared) fusion pass did.
    pub fn fusion_stats(&self) -> FusionStats {
        self.kernels.fusion_stats
    }

    /// What the superoperator compiler did.
    pub fn superop_stats(&self) -> SuperopStats {
        self.kernels.stats
    }

    /// The `index`-th step.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn step(&self, index: usize) -> DensityStepView<'a> {
        match &self.kernels.steps[index] {
            DensityStep::Unitary { plan, kind, op } => DensityStepView::Unitary { plan, op, kind },
            DensityStep::Super { plan, kind, sup, fallback, defect_tol } => {
                DensityStepView::Super {
                    plan,
                    sup,
                    kind,
                    fallback_len: fallback.len(),
                    defect_tol: *defect_tol,
                }
            }
            DensityStep::Kraus(kernel) => DensityStepView::Kraus(ChannelView::of(kernel)),
        }
    }

    /// Number of constituent items the density compiler folded over.
    pub fn num_items(&self) -> usize {
        self.kernels.item_origins.len()
    }

    /// Provenance of the `id`-th constituent item.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn item(&self, id: usize) -> &'a ItemOrigin {
        &self.kernels.item_origins[id]
    }

    /// Item indices consumed by the `index`-th step (ascending = program
    /// order of the folded constituents).
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn step_items(&self, index: usize) -> &'a [usize] {
        &self.kernels.step_items[index]
    }

    /// `true` iff the `index`-th step is re-materialised on rebind.
    pub fn rebindable(&self, index: usize) -> bool {
        use crate::sim::kernels::DensityRecipe;
        self.kernels.rebind.iter().any(|r| match r {
            DensityRecipe::Sandwich { step, .. } | DensityRecipe::Super { step, .. } => {
                *step == index
            }
        })
    }

    /// This handle's binding overlay (see [`PlanView::overrides`]).
    pub fn overrides(&self) -> impl Iterator<Item = (usize, &'a CMatrix, &'a OpKind)> {
        self.compiled.binds.overrides.iter().map(|(s, op, kind)| (*s, op, kind))
    }
}

// ---------------------------------------------------------------------------
// Deliberate plan corruption, for verifier mutation tests only.
// ---------------------------------------------------------------------------

/// Removes step `index` from a compiled plan, as a buggy compiler that lost
/// an instruction would.
#[doc(hidden)]
pub fn corrupt_drop_step(compiled: &mut CompiledCircuit, index: usize) {
    let kernels = Arc::make_mut(&mut compiled.topology);
    kernels.steps.remove(index);
    kernels.origins.remove(index);
}

/// Swaps steps `a` and `b` of a compiled plan, as a buggy reordering pass
/// that ignores support overlap would.
#[doc(hidden)]
pub fn corrupt_swap_steps(compiled: &mut CompiledCircuit, a: usize, b: usize) {
    let kernels = Arc::make_mut(&mut compiled.topology);
    kernels.steps.swap(a, b);
    kernels.origins.swap(a, b);
}

/// Redirects an apply step onto `new_targets` (rebuilding its stride plan),
/// as a buggy lowering that mixed up wires would. The operator matrix is
/// left untouched.
///
/// # Panics
/// Panics if step `index` is not an apply step or the new plan cannot be
/// built.
#[doc(hidden)]
pub fn corrupt_retarget_step(
    compiled: &mut CompiledCircuit,
    index: usize,
    new_targets: Vec<usize>,
) {
    let kernels = Arc::make_mut(&mut compiled.topology);
    let radix = qudit_core::Radix::new(kernels.dims.clone()).expect("plan dims form a valid radix");
    let ExecStep::Apply { targets, plan, .. } = &mut kernels.steps[index] else {
        panic!("corrupt_retarget_step requires an apply step");
    };
    *plan = ApplyPlan::new(&radix, &new_targets).expect("corrupted targets must be valid");
    *targets = new_targets;
}

/// Scales an apply step's operator by `factor`, as a stale or miscomputed
/// materialisation would.
///
/// # Panics
/// Panics if step `index` is not an apply step.
#[doc(hidden)]
pub fn corrupt_scale_step_op(compiled: &mut CompiledCircuit, index: usize, factor: f64) {
    let kernels = Arc::make_mut(&mut compiled.topology);
    let ExecStep::Apply { op, .. } = &mut kernels.steps[index] else {
        panic!("corrupt_scale_step_op requires an apply step");
    };
    op.scale_inplace(qudit_core::complex::c64(factor, 0.0));
}

/// Drops the binding override of the first rebindable step, leaving that
/// step's operator stale at the previous binding.
///
/// Returns `false` (and changes nothing) when the handle carries no
/// overrides.
#[doc(hidden)]
pub fn corrupt_drop_override(compiled: &mut CompiledCircuit) -> bool {
    if compiled.binds.overrides.is_empty() {
        return false;
    }
    compiled.binds.overrides.remove(0);
    true
}

/// Removes density step `index` (and its item bookkeeping), as a buggy
/// density lowering that lost a constituent would.
#[doc(hidden)]
pub fn corrupt_density_drop_step(compiled: &mut CompiledDensityCircuit, index: usize) {
    let kernels = Arc::make_mut(&mut compiled.topology);
    kernels.steps.remove(index);
    kernels.step_items.remove(index);
}

/// Scales a density sweep's superoperator by `factor`, as a miscomposed
/// fold would.
///
/// # Panics
/// Panics if step `index` is not a superoperator sweep.
#[doc(hidden)]
pub fn corrupt_density_scale_super(
    compiled: &mut CompiledDensityCircuit,
    index: usize,
    factor: f64,
) {
    let kernels = Arc::make_mut(&mut compiled.topology);
    let DensityStep::Super { sup, .. } = &mut kernels.steps[index] else {
        panic!("corrupt_density_scale_super requires a superoperator sweep");
    };
    sup.scale_inplace(qudit_core::complex::c64(factor, 0.0));
}
