//! Circuit simulators.
//!
//! Three back-ends with different cost/fidelity trade-offs:
//!
//! * [`StatevectorSimulator`] — pure-state evolution; noise channels and
//!   measurements are handled stochastically (a single quantum trajectory).
//! * [`DensityMatrixSimulator`] — exact open-system evolution under a
//!   [`crate::noise::NoiseModel`]; cost scales with the *square* of the
//!   Hilbert-space dimension.
//! * [`TrajectorySimulator`] — Monte-Carlo averaging of many stochastic
//!   state-vector runs; approaches the density-matrix result as the number of
//!   trajectories grows, at state-vector memory cost.
//!
//! All three consume circuits through a compiled execution plan: the
//! [`fusion`] pass first coalesces runs of adjacent gates into fused
//! superblocks (configurable via [`FusionConfig`], on by default), and the
//! per-step stride plans, operator classifications and noise channels are
//! precomputed once and reused across shots and trajectories. Use
//! [`StatevectorSimulator::compile`] to hold on to the plan across calls.
//!
//! The density-matrix back-end re-compiles the shared plan one step further:
//! every channel whose superoperator `Σ K ⊗ conj(K)` is profitable executes
//! as a single strided sweep over vectorised ρ (see [`qudit_core::superop`]),
//! and channel-adjacent unitary runs fold into the same sweep under a
//! fusion-style cost rule (configurable via [`SuperopConfig`], on by
//! default). [`DensityMatrixSimulator::compile`] exposes the compiled
//! density plan and its [`SuperopStats`].

pub mod fusion;
pub mod introspect;

mod density;
mod ensemble;
mod kernels;
mod statevector;
mod trajectory;

pub use density::{CompiledDensityCircuit, DensityMatrixSimulator};
pub use ensemble::BatchBindings;
pub use fusion::{FlushPolicy, FusionConfig, FusionStats};
pub use kernels::{SuperopConfig, SuperopStats};
pub use statevector::{CompiledCircuit, RunOutput, StatevectorSimulator};
pub use trajectory::{TrajectoryEstimate, TrajectorySimulator};

// Re-exported so guard configuration does not require a direct qudit-core
// dependency at the call site (see `qudit_core::guard` for the full module).
pub use qudit_core::guard::{GuardConfig, GuardPolicy, HealthMetric, RunHealth};

// Re-exported for the same reason: every simulator's `with_cancel` takes a
// token (see `qudit_core::cancel` for the full module).
pub use qudit_core::cancel::{CancelReason, CancelToken};

use rand::Rng;

use qudit_core::state::QuditState;

use crate::error::Result;
use crate::noise::KrausChannel;
use kernels::{ChannelKernel, RunScratch};

/// Applies a Kraus channel to a pure state stochastically (quantum-trajectory
/// unraveling): Kraus operator `K_k` is selected with probability
/// `‖K_k|ψ⟩‖²` and the state renormalised.
///
/// Returns the index of the selected Kraus operator.
///
/// # Errors
/// Returns an error if targets or dimensions are invalid.
pub fn apply_channel_stochastic<R: Rng + ?Sized>(
    state: &mut QuditState,
    channel: &KrausChannel,
    targets: &[usize],
    rng: &mut R,
) -> Result<usize> {
    let kernel = ChannelKernel::new(state.radix(), channel.clone(), targets.to_vec())?;
    apply_channel_prepared(state, &kernel, rng, &mut RunScratch::default())
}

/// [`apply_channel_stochastic`] through a precompiled [`ChannelKernel`]:
/// branch probabilities `‖K_k|ψ⟩‖²` are computed in place (no per-branch
/// state clones), and only the selected operator is applied.
pub(crate) fn apply_channel_prepared<R: Rng + ?Sized>(
    state: &mut QuditState,
    kernel: &ChannelKernel,
    rng: &mut R,
    scratch: &mut RunScratch,
) -> Result<usize> {
    let core = crate::error::CircuitError::Core;
    let ops = kernel.channel.operators();
    // Fast path: unitary channel (single Kraus operator).
    if ops.len() == 1 {
        state
            .apply_prepared(&kernel.plan, &kernel.kinds[0], &ops[0], &mut scratch.block)
            .map_err(core)?;
        return Ok(0);
    }
    let mut r: f64 = rng.gen::<f64>();
    scratch.branch_probs.clear();
    for (op, kind) in ops.iter().zip(kernel.kinds.iter()) {
        let p = kernel
            .plan
            .norm_sqr_after(kind, op, state.amplitudes(), &mut scratch.block)
            .map_err(core)?;
        scratch.branch_probs.push(p);
    }
    let total: f64 = scratch.branch_probs.iter().sum();
    if total <= 0.0 || total.is_nan() {
        // All branch norms vanish only for a zero state (Kraus channels are
        // trace-preserving); selecting the last branch regardless — the old
        // behaviour — applied a zero-probability operator.
        return Err(core(qudit_core::error::CoreError::InvalidProbability(
            "channel branch probabilities carry no mass (zero state)".into(),
        )));
    }
    r *= total;
    // Linear scan matching the Cdf contract: zero-probability branches are
    // never selected, and rounding at the top edge (r within one ulp of the
    // total) falls back to the last *positive* branch rather than the last
    // branch unconditionally.
    let mut selected = None;
    for (k, &p) in scratch.branch_probs.iter().enumerate() {
        if p <= 0.0 {
            continue;
        }
        selected = Some(k);
        if r < p {
            break;
        }
        r -= p;
    }
    let k = selected.expect("a positive total implies a positive branch");
    state
        .apply_prepared(&kernel.plan, &kernel.kinds[k], &ops[k], &mut scratch.block)
        .map_err(core)?;
    state.normalize().map_err(core)?;
    Ok(k)
}

/// Applies classical readout error to a measured digit string: each digit is
/// replaced by a uniformly random *different* level with probability `p_flip`.
pub fn apply_readout_flip<R: Rng + ?Sized>(
    digits: &mut [usize],
    dims: &[usize],
    p_flip: f64,
    rng: &mut R,
) {
    if p_flip <= 0.0 {
        return;
    }
    for (i, digit) in digits.iter_mut().enumerate() {
        if rng.gen::<f64>() < p_flip {
            let d = dims[i];
            let mut new = rng.gen_range(0..d - 1);
            if new >= *digit {
                new += 1;
            }
            *digit = new;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::KrausChannel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stochastic_channel_preserves_normalisation() {
        let ch = KrausChannel::photon_loss(4, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut state = QuditState::basis(vec![4, 4], &[3, 2]).unwrap();
        for _ in 0..20 {
            apply_channel_stochastic(&mut state, &ch, &[0], &mut rng).unwrap();
            assert!((state.norm() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn stochastic_channel_statistics_match_exact_channel() {
        // Average photon number over many trajectories ≈ exact loss.
        let d = 5;
        let gamma = 0.4;
        let ch = KrausChannel::photon_loss(d, gamma).unwrap();
        let n_op = crate::gates::number_operator(d);
        let mut rng = StdRng::seed_from_u64(7);
        let n_traj = 3000;
        let mut acc = 0.0;
        for _ in 0..n_traj {
            let mut state = QuditState::basis(vec![d], &[3]).unwrap();
            apply_channel_stochastic(&mut state, &ch, &[0], &mut rng).unwrap();
            acc += state.expectation(&n_op, &[0]).unwrap().re;
        }
        let mean = acc / n_traj as f64;
        assert!((mean - 3.0 * (1.0 - gamma)).abs() < 0.1);
    }

    #[test]
    fn readout_flip_respects_probability() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut flipped = 0usize;
        let n = 10_000;
        for _ in 0..n {
            let mut digits = vec![1usize];
            apply_readout_flip(&mut digits, &[3], 0.25, &mut rng);
            if digits[0] != 1 {
                flipped += 1;
                assert!(digits[0] < 3);
            }
        }
        let rate = flipped as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02);
    }

    #[test]
    fn readout_flip_zero_probability_is_noop() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut digits = vec![2usize, 0, 1];
        apply_readout_flip(&mut digits, &[3, 3, 3], 0.0, &mut rng);
        assert_eq!(digits, vec![2, 0, 1]);
    }
}
