//! Exact open-system circuit simulation on density matrices.
//!
//! Since PR 3 the simulator consumes circuits through a **density-compiled**
//! plan: the shared fused [`ExecStep`](crate::sim::fusion) pipeline is
//! re-compiled into [`DensityStep`]s, where every channel whose superoperator
//! `Σ K ⊗ conj(K)` is profitable executes as a *single* strided sweep over
//! vectorised ρ (see [`qudit_core::superop`]), and channel-adjacent unitary
//! runs fold into the same sweep under a fusion-style cost rule. Both
//! compilation stages flush **wire-locally**: a plan step may be re-ordered
//! past a disjoint-support measurement or channel (exact, by commutation —
//! see [`crate::sim::fusion`]). Use
//! [`DensityMatrixSimulator::compile`] to reuse a plan across runs.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use qudit_core::cancel::CancelToken;
use qudit_core::density::DensityMatrix;
use qudit_core::error::CoreError;
use qudit_core::guard::{GuardConfig, GuardPolicy, HealthMetric, HealthMonitor, RunHealth};
use qudit_core::superop::SuperPlan;

use crate::circuit::Circuit;
use crate::error::{CircuitError, Result};
use crate::noise::NoiseModel;
use crate::observable::Observable;
use crate::sim::apply_readout_flip;
use crate::sim::fusion::{FusionConfig, FusionStats};
use crate::sim::kernels::{
    BindBuffers, CircuitKernels, DensityKernels, DensityStep, SuperFallback, SuperopConfig,
    SuperopStats,
};

/// A circuit compiled for density-matrix execution: the fused plan plus the
/// superoperator-batched channel sweeps. Compile once with
/// [`DensityMatrixSimulator::compile`], then run it any number of times with
/// [`DensityMatrixSimulator::run_compiled`].
///
/// Like [`crate::sim::CompiledCircuit`], the plan is split into an
/// immutable, `Arc`-shared topology and a small per-handle binding overlay,
/// so [`Clone`] is cheap and concurrent requests can share one cached plan
/// while rebinding independently.
#[derive(Debug, Clone)]
pub struct CompiledDensityCircuit {
    /// The immutable, shareable density plan topology.
    pub(crate) topology: Arc<DensityKernels>,
    /// This handle's parameter-binding overlay (empty = the compile-time
    /// all-zero binding).
    pub(crate) binds: BindBuffers,
    /// The noise model the plan was compiled against (baked into the steps).
    noise: NoiseModel,
}

impl CompiledDensityCircuit {
    /// What the gate-fusion pass did to the circuit.
    pub fn fusion_stats(&self) -> FusionStats {
        self.topology.fusion_stats
    }

    /// What the superoperator compiler did to the fused plan.
    pub fn superop_stats(&self) -> SuperopStats {
        self.topology.stats
    }

    /// Number of steps in the compiled density plan.
    pub fn num_steps(&self) -> usize {
        self.topology.steps.len()
    }

    /// Per-qudit dimensions of the register the plan was compiled for.
    pub fn dims(&self) -> &[usize] {
        &self.topology.dims
    }

    /// Number of parameters a binding must supply
    /// ([`crate::Circuit::num_params`] of the source circuit).
    pub fn num_params(&self) -> usize {
        self.topology.num_params
    }

    /// `true` if `self` and `other` share the same underlying plan topology
    /// (they are clones of one compiled plan). Bindings are per-handle and do
    /// not affect sharing.
    pub fn shares_topology_with(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.topology, &other.topology)
    }

    /// Re-materialises the parameter-dependent density steps at the given
    /// binding into **this handle's** overlay: sandwich steps re-realize
    /// their unitary, superoperator sweeps re-compose their recorded
    /// constituents. The folding topology, stride plans and step order are
    /// parameter-invariant and shared untouched, so rebinding skips the whole
    /// density compilation and never perturbs other handles.
    ///
    /// # Example
    ///
    /// ```
    /// use qudit_circuit::gate::Param;
    /// use qudit_circuit::noise::NoiseModel;
    /// use qudit_circuit::sim::DensityMatrixSimulator;
    /// use qudit_circuit::{Circuit, Gate};
    /// use qudit_core::matrix::CMatrix;
    ///
    /// let mut c = Circuit::uniform(1, 3);
    /// let phase = Gate::parameterized(
    ///     "sep",
    ///     vec![3],
    ///     &CMatrix::diag_real(&[0.0, 1.0, 2.0]),
    ///     Param::Free(0),
    /// )
    /// .unwrap();
    /// c.push(Gate::fourier(3), &[0]).unwrap();
    /// c.push(phase, &[0]).unwrap();
    ///
    /// let sim = DensityMatrixSimulator::new().with_noise(NoiseModel::depolarizing(1e-3, 0.0));
    /// let mut plan = sim.compile(&c).unwrap();
    /// for theta in [0.2, 0.9] {
    ///     let swept = sim.run_bound(&mut plan, &[theta]).unwrap();
    ///     let rebuilt = sim.run(&c.with_bound(&[theta]).unwrap()).unwrap();
    ///     assert!((swept.matrix() - rebuilt.matrix()).max_abs() < 1e-12);
    /// }
    /// ```
    ///
    /// # Errors
    /// Returns an error if `params` supplies fewer than
    /// [`CompiledDensityCircuit::num_params`] values.
    pub fn bind(&mut self, params: &[f64]) -> Result<()> {
        self.topology.bind_into(params, &mut self.binds)
    }
}

/// A density-matrix simulator with an attached [`NoiseModel`].
///
/// Every gate is followed by the noise model's per-qudit error channels;
/// measurements are treated non-selectively (the state is dephased in the
/// computational basis of the measured qudits), which is the correct
/// description when outcomes are averaged over.
///
/// # Example
///
/// ```
/// use qudit_circuit::noise::NoiseModel;
/// use qudit_circuit::sim::DensityMatrixSimulator;
/// use qudit_circuit::{Circuit, Gate};
///
/// let mut c = Circuit::uniform(2, 3);
/// c.push(Gate::fourier(3), &[0]).unwrap();
/// c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
///
/// let sim = DensityMatrixSimulator::new().with_noise(NoiseModel::depolarizing(1e-3, 1e-2));
/// let rho = sim.run(&c).unwrap();
/// assert!((rho.trace() - 1.0).abs() < 1e-9);
/// assert!(rho.purity() < 1.0); // noise mixes the state
///
/// // Compile once to amortise plan construction over repeated runs.
/// let compiled = sim.compile(&c).unwrap();
/// assert!(compiled.superop_stats().super_steps > 0);
/// let again = sim.run_compiled(&compiled).unwrap();
/// assert!((again.purity() - rho.purity()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DensityMatrixSimulator {
    noise: NoiseModel,
    seed: u64,
    fusion: FusionConfig,
    superop: SuperopConfig,
    threads: usize,
    guard: GuardConfig,
    cancel: Option<CancelToken>,
}

impl DensityMatrixSimulator {
    /// Creates a noiseless density-matrix simulator.
    pub fn new() -> Self {
        Self {
            noise: NoiseModel::noiseless(),
            seed: 0xDEC0DE,
            fusion: FusionConfig::default(),
            superop: SuperopConfig::default(),
            threads: 0,
            guard: GuardConfig::disabled(),
            cancel: None,
        }
    }

    /// Attaches a noise model.
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the sampling seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the gate-fusion configuration used when compiling the circuit
    /// (enabled by default; see [`crate::sim::fusion`]).
    #[must_use]
    pub fn with_fusion(mut self, fusion: FusionConfig) -> Self {
        self.fusion = fusion;
        self
    }

    /// Sets the superoperator-batching configuration (enabled by default;
    /// see [`SuperopConfig`]). Disabling it keeps every channel on the
    /// per-term Kraus path, which is the reference the property tests and
    /// benchmarks compare against. Batching changes results only at the
    /// level of floating-point rounding.
    #[must_use]
    pub fn with_superop(mut self, superop: SuperopConfig) -> Self {
        self.superop = superop;
        self
    }

    /// Sets the worker-thread count for superoperator sweeps (`0` =
    /// automatic): each sweep's independent doubled-register blocks are
    /// chunked across [`qudit_core::par`] pool workers. Results are bitwise
    /// identical for every thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Attaches a runtime health-guard configuration (disabled by default;
    /// see [`qudit_core::guard`]).
    ///
    /// When enabled, every [`GuardConfig`] cadence the run re-sums the trace
    /// and scans the density matrix for non-finite entries and hermiticity
    /// defects; under [`GuardPolicy::FallBack`] each folded superoperator
    /// sweep is additionally checked for trace preservation before it is
    /// applied and degraded to its per-constituent path on failure. Healthy
    /// runs are bitwise identical with guards on or off.
    #[must_use]
    pub fn with_guard(mut self, guard: GuardConfig) -> Self {
        self.guard = guard;
        self
    }

    /// Attaches a cooperative [`CancelToken`]. The run loop polls it on entry
    /// and at every guard-cadence boundary (every [`GuardConfig`] `cadence`
    /// steps, whether or not the guard itself is enabled), surfacing a
    /// tripped token as [`CoreError::Cancelled`]. Checkpoints never mutate ρ,
    /// so a cancelled sweep is bitwise identical to an uncancelled one right
    /// up to the step at which it stops.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The attached noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            qudit_core::par::max_threads()
        } else {
            self.threads
        }
    }

    /// Compiles a circuit into its reusable density execution plan: the
    /// shared fusion pass, then the superoperator compiler (channel sweeps
    /// plus channel-adjacent unitary folding).
    ///
    /// # Errors
    /// Returns an error for invalid instructions.
    pub fn compile(&self, circuit: &Circuit) -> Result<CompiledDensityCircuit> {
        let kernels = CircuitKernels::with_config(circuit, &self.noise, &self.fusion)?;
        Ok(CompiledDensityCircuit {
            topology: Arc::new(DensityKernels::compile(&kernels, &self.superop)?),
            binds: BindBuffers::default(),
            noise: self.noise.clone(),
        })
    }

    /// Runs a precompiled circuit from `|0...0⟩⟨0...0|`.
    ///
    /// # Errors
    /// Returns an error for invalid dimensions.
    pub fn run_compiled(&self, compiled: &CompiledDensityCircuit) -> Result<DensityMatrix> {
        Ok(self.run_compiled_detailed(compiled)?.0)
    }

    /// Like [`DensityMatrixSimulator::run_compiled`], but also returns the
    /// run's [`RunHealth`] report (all-zero when the guard is disabled).
    ///
    /// # Errors
    /// Returns an error for invalid dimensions, or
    /// [`CoreError::NumericalHealth`] when an enabled guard detects damage it
    /// is not allowed to repair.
    pub fn run_compiled_detailed(
        &self,
        compiled: &CompiledDensityCircuit,
    ) -> Result<(DensityMatrix, RunHealth)> {
        let rho0 =
            DensityMatrix::zero(compiled.topology.dims.clone()).map_err(CircuitError::Core)?;
        self.run_compiled_from_detailed(compiled, &rho0)
    }

    /// Runs a precompiled circuit from an arbitrary initial density matrix.
    ///
    /// # Errors
    /// Returns an error if the register differs, or if this simulator's noise
    /// model differs from the one the plan was compiled against (channels are
    /// baked into the plan, so a mismatch would silently mix two models).
    pub fn run_compiled_from(
        &self,
        compiled: &CompiledDensityCircuit,
        initial: &DensityMatrix,
    ) -> Result<DensityMatrix> {
        Ok(self.run_compiled_from_detailed(compiled, initial)?.0)
    }

    /// Like [`DensityMatrixSimulator::run_compiled_from`], but also returns
    /// the run's [`RunHealth`] report (all-zero when the guard is disabled).
    ///
    /// # Errors
    /// Returns an error if the register or noise model differs, or
    /// [`CoreError::NumericalHealth`] when an enabled guard detects damage it
    /// is not allowed to repair.
    pub fn run_compiled_from_detailed(
        &self,
        compiled: &CompiledDensityCircuit,
        initial: &DensityMatrix,
    ) -> Result<(DensityMatrix, RunHealth)> {
        self.check_noise(compiled)?;
        if initial.radix().dims() != compiled.topology.dims {
            return Err(CircuitError::InvalidTargets(format!(
                "initial state register {:?} does not match circuit register {:?}",
                initial.radix().dims(),
                compiled.topology.dims
            )));
        }
        if let Some(token) = &self.cancel {
            token.check(0).map_err(CircuitError::Core)?;
        }
        let cadence = self.guard.cadence.max(1);
        let mut rho = initial.clone();
        let mut scratch = Vec::new();
        let threads = self.resolved_threads();
        let mut monitor = HealthMonitor::new(self.guard);
        let mut bind_cursor = 0usize;
        for (step_index, step) in compiled.topology.steps.iter().enumerate() {
            match step {
                DensityStep::Unitary { plan, kind, op } => {
                    let (kind, op) = compiled.binds.resolve(&mut bind_cursor, step_index, kind, op);
                    rho.apply_unitary_prepared(plan, kind, op, &mut scratch)
                        .map_err(CircuitError::Core)?;
                }
                DensityStep::Super { plan, kind, sup, fallback, defect_tol } => {
                    let (kind, sup) =
                        compiled.binds.resolve(&mut bind_cursor, step_index, kind, sup);
                    // Fault injection corrupts a *clone* of the sweep, so the
                    // fallback path below reproduces the clean result.
                    #[cfg(feature = "fault-inject")]
                    let corrupted =
                        qudit_core::guard::inject::superop_corruption(step_index).map(|delta| {
                            let mut c = sup.clone();
                            c[(0, 0)] += qudit_core::complex::c64(delta, 0.0);
                            let kind = qudit_core::apply::OpKind::classify(&c);
                            (c, kind)
                        });
                    #[cfg(feature = "fault-inject")]
                    let (sup, kind) = match &corrupted {
                        Some((c, k)) => (c, k),
                        None => (sup, kind),
                    };
                    let mut degraded = false;
                    if monitor.is_enabled()
                        && matches!(monitor.config().policy, GuardPolicy::FallBack)
                    {
                        // Pre-sweep trace-preservation check; NaN defects
                        // count as unhealthy.
                        let defect = SuperPlan::trace_defect(sup, plan.sub_dim());
                        if defect > defect_tol + monitor.config().tol || defect.is_nan() {
                            if fallback.is_empty() {
                                // Parametric sweeps carry no fallback (their
                                // constituents would go stale on rebind).
                                return Err(CircuitError::Core(CoreError::NumericalHealth {
                                    step: step_index,
                                    metric: HealthMetric::Superop,
                                    value: defect,
                                }));
                            }
                            for fb in fallback {
                                match fb {
                                    SuperFallback::Unitary { plan, kind, op } => rho
                                        .apply_unitary_prepared(plan, kind, op, &mut scratch)
                                        .map_err(CircuitError::Core)?,
                                    SuperFallback::Kraus(ch) => rho
                                        .apply_kraus_prepared(
                                            &ch.plan,
                                            ch.channel.operators(),
                                            &ch.kinds,
                                            &mut scratch,
                                        )
                                        .map_err(CircuitError::Core)?,
                                }
                            }
                            monitor.record_fallback();
                            degraded = true;
                        }
                    }
                    if !degraded {
                        if threads > 1 {
                            rho.apply_superop_prepared_threads(plan, kind, sup, threads)
                                .map_err(CircuitError::Core)?;
                        } else {
                            rho.apply_superop_prepared(plan, kind, sup, &mut scratch)
                                .map_err(CircuitError::Core)?;
                        }
                    }
                }
                DensityStep::Kraus(ch) => {
                    rho.apply_kraus_prepared(
                        &ch.plan,
                        ch.channel.operators(),
                        &ch.kinds,
                        &mut scratch,
                    )
                    .map_err(CircuitError::Core)?;
                }
            }
            #[cfg(feature = "fault-inject")]
            qudit_core::guard::inject::apply_state_faults(
                step_index,
                rho.matrix_mut().as_mut_slice(),
            );
            if monitor.due() {
                monitor.check_density(step_index, rho.matrix_mut()).map_err(CircuitError::Core)?;
            }
            // Cooperative cancellation checkpoint, on the same cadence as
            // the guard (after it, so a guard failure takes precedence at
            // the shared boundary).
            if let Some(token) = &self.cancel {
                if (step_index + 1) % cadence == 0 {
                    token.check(step_index).map_err(CircuitError::Core)?;
                }
            }
        }
        // Final checkpoint: guarantees at least one check per guarded run and
        // catches damage introduced after the last cadence boundary.
        if monitor.is_enabled() {
            monitor
                .check_density(compiled.topology.steps.len(), rho.matrix_mut())
                .map_err(CircuitError::Core)?;
        }
        Ok((rho, monitor.health()))
    }

    /// Rebinds a compiled density plan to `params` and runs it from
    /// `|0...0⟩⟨0...0|` (see [`CompiledDensityCircuit::bind`]).
    ///
    /// # Errors
    /// Returns an error for a short binding or invalid dimensions.
    pub fn run_bound(
        &self,
        compiled: &mut CompiledDensityCircuit,
        params: &[f64],
    ) -> Result<DensityMatrix> {
        // Validate before binding so a failed call leaves the plan untouched.
        self.check_noise(compiled)?;
        compiled.bind(params)?;
        self.run_compiled(compiled)
    }

    fn check_noise(&self, compiled: &CompiledDensityCircuit) -> Result<()> {
        if compiled.noise != self.noise {
            return Err(CircuitError::Unsupported(
                "compiled circuit was built under a different noise model; recompile with \
                 this simulator's model"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Runs the circuit from `|0...0⟩⟨0...0|`.
    ///
    /// # Errors
    /// Returns an error for invalid instructions.
    pub fn run(&self, circuit: &Circuit) -> Result<DensityMatrix> {
        let rho0 = DensityMatrix::zero(circuit.dims().to_vec()).map_err(CircuitError::Core)?;
        self.run_from(circuit, &rho0)
    }

    /// Runs the circuit from an arbitrary initial density matrix.
    ///
    /// # Errors
    /// Returns an error if the register differs or an instruction is invalid.
    pub fn run_from(&self, circuit: &Circuit, initial: &DensityMatrix) -> Result<DensityMatrix> {
        if initial.radix() != circuit.radix() {
            return Err(CircuitError::InvalidTargets(format!(
                "initial state register {:?} does not match circuit register {:?}",
                initial.radix().dims(),
                circuit.dims()
            )));
        }
        let compiled = self.compile(circuit)?;
        self.run_compiled_from(&compiled, initial)
    }

    /// Expectation value of an observable after running the circuit.
    ///
    /// # Errors
    /// Returns an error for invalid instructions or observable dimensions.
    pub fn expectation(&self, circuit: &Circuit, observable: &Observable) -> Result<f64> {
        let rho = self.run(circuit)?;
        observable.expectation_density(&rho)
    }

    /// Samples `shots` computational-basis measurements from the final state,
    /// including the noise model's readout error.
    ///
    /// # Errors
    /// Returns an error for invalid instructions.
    pub fn sample_counts(
        &self,
        circuit: &Circuit,
        shots: usize,
    ) -> Result<HashMap<Vec<usize>, usize>> {
        let rho = self.run(circuit)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
        for _ in 0..shots {
            let mut digits = rho.sample(&mut rng);
            apply_readout_flip(&mut digits, circuit.dims(), self.noise.readout_flip, &mut rng);
            *counts.entry(digits).or_insert(0) += 1;
        }
        Ok(counts)
    }

    /// Fidelity of the circuit's noisy output with its noiseless output,
    /// a convenient end-to-end circuit-quality metric.
    ///
    /// # Errors
    /// Returns an error for circuits that contain non-unitary instructions.
    pub fn fidelity_with_ideal(&self, circuit: &Circuit) -> Result<f64> {
        let noisy = self.run(circuit)?;
        let ideal_state = crate::sim::StatevectorSimulator::new().run(circuit)?;
        noisy.fidelity_with_pure(&ideal_state).map_err(CircuitError::Core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use crate::noise::KrausChannel;
    use qudit_core::metrics::trace_distance;

    #[test]
    fn noiseless_density_sim_matches_statevector() {
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
        let rho = DensityMatrixSimulator::new().run(&c).unwrap();
        let psi = crate::sim::StatevectorSimulator::new().run(&c).unwrap();
        assert!((rho.fidelity_with_pure(&psi).unwrap() - 1.0).abs() < 1e-9);
        assert!((rho.purity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn depolarising_noise_reduces_fidelity_monotonically() {
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
        let mut last = 1.0;
        for p in [0.0, 0.01, 0.05, 0.2] {
            let sim = DensityMatrixSimulator::new().with_noise(NoiseModel::depolarizing(p, p));
            let f = sim.fidelity_with_ideal(&c).unwrap();
            assert!(f <= last + 1e-9, "fidelity should not increase with noise");
            last = f;
        }
        assert!(last < 0.9);
    }

    #[test]
    fn measurement_dephases_but_preserves_populations() {
        let mut c = Circuit::uniform(1, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        c.measure_all();
        let rho = DensityMatrixSimulator::new().run(&c).unwrap();
        let probs = rho.probabilities();
        for p in probs {
            assert!((p - 1.0 / 3.0).abs() < 1e-9);
        }
        // Coherences destroyed.
        assert!(rho.matrix()[(0, 1)].abs() < 1e-9);
        assert!((rho.purity() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn reset_channel_sends_everything_to_ground() {
        let mut c = Circuit::uniform(1, 4);
        c.push(Gate::fourier(4), &[0]).unwrap();
        c.reset(0).unwrap();
        let rho = DensityMatrixSimulator::new().run(&c).unwrap();
        assert!((rho.probabilities()[0] - 1.0).abs() < 1e-9);
        assert!((rho.purity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn explicit_channel_matches_noise_model_channel() {
        // Pushing the channel explicitly must equal attaching it via the model.
        let mut base = Circuit::uniform(1, 3);
        base.push(Gate::shift_x(3), &[0]).unwrap();

        let mut explicit = base.clone();
        explicit.push_channel(KrausChannel::photon_loss(3, 0.3).unwrap(), &[0]).unwrap();
        let rho_explicit = DensityMatrixSimulator::new().run(&explicit).unwrap();

        let sim = DensityMatrixSimulator::new().with_noise(NoiseModel::cavity(0.3, 0.3, 0.0));
        let rho_model = sim.run(&base).unwrap();

        assert!(trace_distance(&rho_explicit, &rho_model).unwrap() < 1e-9);
    }

    #[test]
    fn sample_counts_sums_to_shots() {
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        let sim = DensityMatrixSimulator::new().with_noise(NoiseModel::depolarizing(0.05, 0.05));
        let counts = sim.sample_counts(&c, 500).unwrap();
        let total: usize = counts.values().sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn idle_noise_applied_at_barriers() {
        let mut c = Circuit::uniform(1, 3);
        c.push(Gate::shift_x(3), &[0]).unwrap();
        c.barrier();
        let sim = DensityMatrixSimulator::new().with_noise(NoiseModel::cavity(0.0, 0.0, 0.5));
        let rho = sim.run(&c).unwrap();
        // Half of the single excitation decays at the barrier.
        assert!((rho.probabilities()[0] - 0.5).abs() < 1e-9);
        assert!((rho.probabilities()[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn register_mismatch_rejected() {
        let c = Circuit::uniform(2, 3);
        let rho = DensityMatrix::zero(vec![3]).unwrap();
        assert!(DensityMatrixSimulator::new().run_from(&c, &rho).is_err());
    }
}
