//! Gate fusion: coalescing runs of adjacent gates into fused superblocks.
//!
//! Dense two-qudit gate blocks dominate noiseless Trotter evolution once the
//! per-gate stride kernels are in place; the remaining lever is doing *fewer,
//! fatter* operator applications. The fusion pass walks a circuit once and
//! coalesces runs of adjacent unitaries acting on the same or overlapping
//! target sets into **fused superblocks**: the run's matrices are multiplied
//! into a single operator at compile time, the product is re-classified with
//! [`qudit_core::apply::OpKind`] (so diagonal × diagonal stays diagonal and
//! monomial × monomial stays monomial), and every simulator applies the block
//! through the ordinary [`qudit_core::apply::ApplyPlan`] kernels.
//!
//! ## Algorithm
//!
//! A frontier of **open blocks** is maintained per qudit wire; open blocks
//! have pairwise disjoint supports by construction. For each fusable gate:
//!
//! * If no open block touches the gate's wires, the gate opens a new block.
//! * Otherwise the gate and every open block it touches are merged — but only
//!   when the merge passes the **cost rule** and the **budget**, below.
//!   Blocks that cannot merge are closed (emitted) first; closing order is
//!   irrelevant because open blocks commute (disjoint supports).
//!
//! Measurements, resets, explicit channels, noisy gates (gates the noise
//! model decorates with channels) and lossy barriers are fusion barriers.
//! Under the default [`FlushPolicy::WireLocal`] a barrier closes **only the
//! open blocks whose supports overlap its wires** — a measurement's targets,
//! a reset's qudit, a channel's targets, a noisy gate's targets (its
//! attached channels act on those same wires), and every wire for a lossy
//! barrier (idle loss decays the whole register). Blocks on disjoint wires
//! stay open and keep fusing *through* the barrier, which is what gives
//! syndrome-extraction-style circuits (repeated ancilla measure + reset
//! rounds) a fusion benefit at all. [`FlushPolicy::Global`] restores the
//! PR-2 rule (every barrier closes everything) for comparison benchmarks.
//! Noiseless barriers are dropped from the execution plan, which lets
//! fusion reach across Trotter-step boundaries.
//!
//! ### Why deferring blocks past a barrier is sound
//!
//! A block that survives a barrier is emitted *later* in the compiled plan
//! than an instruction that came *earlier* in the circuit. The re-ordering
//! is exact, not approximate: the surviving block's support is disjoint
//! from the barrier's wires (anything overlapping was flushed), and
//! operations with disjoint supports commute as operators — `(U ⊗ I)(I ⊗ M)
//! = (I ⊗ M)(U ⊗ I)` for any map `M`, unitary or not. Measurement outcome
//! distributions, Kraus branch probabilities and reset projections on the
//! barrier's wires are marginal quantities, invariant under any deferred
//! unitary on disjoint wires, so every stochastic draw consumes the same
//! number of variates against the same distribution in the same order and
//! RNG streams stay aligned across flush policies. One caveat keeps the
//! guarantee honest: the marginals agree *exactly* in real arithmetic but
//! only to rounding in floating point (deferral changes the summation
//! inputs), so a drawn outcome can differ between policies only when a
//! uniform variate lands within ~1 ulp of an outcome boundary —
//! probability ~1e-16 per draw. Away from that knife edge sampling is
//! bitwise identical, which `tests/flush_props.rs` pins for its seeded
//! workloads. The pass `debug_assert`s the disjointness invariant at every
//! barrier.
//!
//! ## Cost rule and budget
//!
//! Applying an operator of subspace dimension `s` to a register of dimension
//! `N` costs `O(N · s)`, so a merge of parts with subspace dimensions
//! `s_1..s_k` into a block of dimension `S` is accepted only when
//! `S <= s_1 + ... + s_k` — fusion therefore **never increases** apply cost.
//! Merges that grow a block's support are additionally capped by
//! [`FusionConfig::max_qudits`] / [`FusionConfig::max_dim`] so fused blocks
//! stay cache-resident; same-support merges (no growth) are always allowed,
//! which is what collapses repeated gate runs on one wire pair to a single
//! dense block.

use qudit_core::matrix::CMatrix;

use crate::circuit::{Circuit, Instruction};
use crate::error::Result;

/// Configuration of the gate-fusion pass (see the module docs).
///
/// # Example
///
/// ```
/// use qudit_circuit::sim::{FusionConfig, StatevectorSimulator};
/// use qudit_circuit::{Circuit, Gate};
///
/// // Three same-wire gates collapse into one fused superblock.
/// let mut c = Circuit::uniform(1, 3);
/// c.push(Gate::fourier(3), &[0]).unwrap();
/// c.push(Gate::clock_z(3), &[0]).unwrap();
/// c.push(Gate::shift_x(3), &[0]).unwrap();
///
/// let compiled = StatevectorSimulator::new().compile(&c).unwrap();
/// assert_eq!(compiled.fusion_stats().unitary_steps_out, 1);
///
/// // Fusion off: every gate executes verbatim.
/// let verbatim = StatevectorSimulator::new()
///     .with_fusion(FusionConfig::disabled())
///     .compile(&c)
///     .unwrap();
/// assert_eq!(verbatim.fusion_stats().unitary_steps_out, 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionConfig {
    /// Master switch; disabled means every instruction executes verbatim.
    pub enabled: bool,
    /// Maximum number of qudits a fused block may span when a merge grows a
    /// block's support.
    pub max_qudits: usize,
    /// Maximum subspace dimension of a grown fused block (the cache-residency
    /// budget; a `64×64` complex block is 64 KiB).
    pub max_dim: usize,
    /// How barriers (measure/reset/channel/noisy gate) close open blocks.
    pub flush: FlushPolicy,
}

impl Default for FusionConfig {
    fn default() -> Self {
        Self { enabled: true, max_qudits: 4, max_dim: 64, flush: FlushPolicy::WireLocal }
    }
}

impl FusionConfig {
    /// A configuration with fusion switched off (verbatim execution).
    pub fn disabled() -> Self {
        Self { enabled: false, ..Self::default() }
    }

    /// The default configuration with the PR-2 [`FlushPolicy::Global`]
    /// barrier rule, kept for comparison benchmarks and property tests.
    pub fn global_flush() -> Self {
        Self { flush: FlushPolicy::Global, ..Self::default() }
    }
}

/// How a fusion barrier (measurement, reset, channel, noisy gate, lossy
/// barrier) closes the open blocks on the frontier.
///
/// # Example
///
/// ```
/// use qudit_circuit::sim::{FusionConfig, StatevectorSimulator};
/// use qudit_circuit::{Circuit, Gate};
///
/// // A gate run on wire 0 interrupted by a measurement of wire 1.
/// let mut c = Circuit::uniform(2, 3);
/// c.push(Gate::fourier(3), &[0]).unwrap();
/// c.measure(&[1]).unwrap();
/// c.push(Gate::clock_z(3), &[0]).unwrap();
///
/// // Wire-local flushing (the default) fuses straight through it...
/// let wire_local = StatevectorSimulator::new().compile(&c).unwrap();
/// assert_eq!(wire_local.fusion_stats().unitary_steps_out, 1);
/// assert_eq!(wire_local.fusion_stats().barrier_crossings, 1);
///
/// // ...while the global PR-2 rule cuts the run in two.
/// let global = StatevectorSimulator::new()
///     .with_fusion(FusionConfig::global_flush())
///     .compile(&c)
///     .unwrap();
/// assert_eq!(global.fusion_stats().unitary_steps_out, 2);
/// assert_eq!(global.fusion_stats().barrier_crossings, 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Close every open block at every barrier (the PR-2 rule). Simple, but
    /// mid-circuit measurements erase all fusion progress register-wide.
    Global,
    /// Close only the blocks whose supports overlap the barrier's wires;
    /// disjoint blocks stay open and fuse through the barrier. Sound because
    /// disjoint-support operations commute (see the module docs).
    #[default]
    WireLocal,
}

/// What the fusion pass did to a circuit; exposed for benchmarks, tests and
/// CI assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Unitary gate instructions in the source circuit.
    pub unitaries_in: usize,
    /// Unitary apply steps in the fused plan (blocks plus verbatim gates).
    pub unitary_steps_out: usize,
    /// Fused blocks that absorbed at least two gates.
    pub multi_gate_blocks: usize,
    /// Largest subspace dimension among emitted blocks.
    pub max_block_dim: usize,
    /// Open blocks that stayed alive across a fusion barrier (measurement,
    /// reset, channel, noisy gate or lossy barrier), counted once per
    /// `(block, barrier)` pair. Always zero under [`FlushPolicy::Global`];
    /// nonzero means wire-local flushing let at least one gate run fuse
    /// through a mid-circuit boundary.
    pub barrier_crossings: usize,
}

/// One element of the fused execution order.
///
/// The fusion pass is purely **structural** since PR 5: a block records
/// *which* gate instructions it absorbed, and the block operator itself is
/// materialised by the kernel compiler ([`crate::sim::kernels`]) — the same
/// code path that re-materialises parameter-dependent blocks when a compiled
/// plan is rebound, so compiling a bound circuit and rebinding a compiled
/// parameterized circuit produce bitwise-identical operators.
#[derive(Debug, Clone)]
pub(crate) enum FusedInst {
    /// A (possibly multi-gate) unitary block over `targets` (ascending).
    Block {
        /// Sorted support.
        targets: Vec<usize>,
        /// Instruction indices of the absorbed gates, in program order. The
        /// block operator is the product of the member gates embedded into
        /// `targets`, multiplied in this order (disjoint-support members
        /// commute, so program order is a valid application order).
        gates: Vec<usize>,
    },
    /// A unitary instruction emitted verbatim (it carries noise channels, or
    /// fusion is disabled); `index` refers to the circuit instruction list.
    Gate { index: usize },
    /// A non-unitary instruction (measure/reset/channel/barrier).
    Passthrough { index: usize },
}

/// An open (still-growing) block on the fusion frontier.
struct OpenBlock {
    targets: Vec<usize>,
    sub_dim: usize,
    /// Absorbed instruction indices, ascending (= program order).
    gates: Vec<usize>,
}

/// Runs the fusion pass over `circuit`.
///
/// `fusable[i]` marks instruction `i` as eligible for fusion (a unitary with
/// no attached noise channels); `drop_noop_barriers` removes barriers from
/// the plan when the runtime treats them as no-ops (no idle-loss channel).
pub(crate) fn fuse(
    circuit: &Circuit,
    fusable: &[bool],
    drop_noop_barriers: bool,
    config: &FusionConfig,
) -> Result<(Vec<FusedInst>, FusionStats)> {
    let dims = circuit.dims();
    let mut out = Vec::with_capacity(circuit.len());
    let mut stats = FusionStats::default();

    // Slot-map of open blocks; slots are append-only (freed entries become
    // `None`), so the slot index doubles as a deterministic creation order.
    let mut open: Vec<Option<OpenBlock>> = Vec::new();
    let mut wire: Vec<Option<usize>> = vec![None; circuit.num_qudits()];

    let close = |open: &mut Vec<Option<OpenBlock>>,
                 wire: &mut Vec<Option<usize>>,
                 out: &mut Vec<FusedInst>,
                 stats: &mut FusionStats,
                 slot: usize| {
        let block = open[slot].take().expect("closing a live block");
        for &t in &block.targets {
            wire[t] = None;
        }
        stats.unitary_steps_out += 1;
        stats.max_block_dim = stats.max_block_dim.max(block.sub_dim);
        if block.gates.len() >= 2 {
            stats.multi_gate_blocks += 1;
        }
        out.push(FusedInst::Block { targets: block.targets, gates: block.gates });
    };
    let flush_all = |open: &mut Vec<Option<OpenBlock>>,
                     wire: &mut Vec<Option<usize>>,
                     out: &mut Vec<FusedInst>,
                     stats: &mut FusionStats| {
        for slot in 0..open.len() {
            if open[slot].is_some() {
                close(open, wire, out, stats, slot);
            }
        }
    };
    // Closes only the open blocks whose supports overlap `targets`; the
    // survivors commute with the barrier (disjoint supports), so they may
    // keep growing and be emitted after it.
    let flush_touching = |open: &mut Vec<Option<OpenBlock>>,
                          wire: &mut Vec<Option<usize>>,
                          out: &mut Vec<FusedInst>,
                          stats: &mut FusionStats,
                          targets: &[usize]| {
        let mut slots: Vec<usize> = targets.iter().filter_map(|&t| wire[t]).collect();
        slots.sort_unstable();
        slots.dedup();
        for slot in slots {
            close(open, wire, out, stats, slot);
        }
    };
    // Barrier handling shared by every non-fusable instruction: wire-local
    // flushing when the barrier's wires are known, global otherwise (a lossy
    // barrier decays every wire). `barrier_crossings` counts the blocks that
    // survived, and the disjointness debug assertion is exactly the
    // commutation precondition the re-ordered plan relies on.
    let flush_for_barrier = |open: &mut Vec<Option<OpenBlock>>,
                             wire: &mut Vec<Option<usize>>,
                             out: &mut Vec<FusedInst>,
                             stats: &mut FusionStats,
                             wires: Option<&[usize]>| {
        match wires {
            Some(w) if config.flush == FlushPolicy::WireLocal => {
                flush_touching(open, wire, out, stats, w);
                debug_assert!(
                    open.iter().flatten().all(|b| b.targets.iter().all(|t| !w.contains(t))),
                    "a block overlapping a barrier survived the flush"
                );
            }
            _ => flush_all(open, wire, out, stats),
        }
        stats.barrier_crossings += open.iter().filter(|b| b.is_some()).count();
    };

    for (index, inst) in circuit.instructions().iter().enumerate() {
        match inst {
            Instruction::Unitary { gate, targets } if config.enabled && fusable[index] => {
                stats.unitaries_in += 1;
                let mut slots: Vec<usize> = targets.iter().filter_map(|&t| wire[t]).collect();
                slots.sort_unstable();
                slots.dedup();

                if !slots.is_empty() {
                    // Greedily build the merge set: starting from the gate's
                    // own support, accept each touched block (in creation
                    // order) that keeps the running union within the cost
                    // rule and budget; the rest are closed. Partial merges
                    // matter: a dense pair gate can still absorb a
                    // single-qudit run on one of its wires even when a
                    // neighbouring pair block is too expensive to join.
                    let gate_dim = gate.matrix().rows();
                    let mut union: Vec<usize> = targets.clone();
                    union.sort_unstable();
                    let mut union_dim: usize = union.iter().map(|&t| dims[t]).product();
                    let mut parts_dim = gate_dim;
                    let mut largest_part = gate_dim;
                    let mut accepted = Vec::new();
                    for &s in &slots {
                        let block = open[s].as_ref().expect("live slot");
                        let mut tentative = union.clone();
                        tentative.extend(block.targets.iter().copied());
                        tentative.sort_unstable();
                        tentative.dedup();
                        let t_dim: usize = tentative.iter().map(|&t| dims[t]).product();
                        let t_parts = parts_dim + block.sub_dim;
                        let t_largest = largest_part.max(block.sub_dim);
                        // A merge that leaves the support equal to its
                        // largest constituent's is never growth; anything
                        // bigger must respect the cache budget.
                        let grows = t_dim > t_largest;
                        let within_budget = !grows
                            || (tentative.len() <= config.max_qudits && t_dim <= config.max_dim);
                        if t_dim <= t_parts && within_budget {
                            accepted.push(s);
                            union = tentative;
                            union_dim = t_dim;
                            parts_dim = t_parts;
                            largest_part = t_largest;
                        }
                    }
                    // Close the touched-but-unmerged blocks first; they hold
                    // earlier gates and commute with everything still open.
                    for &s in &slots {
                        if !accepted.contains(&s) {
                            close(&mut open, &mut wire, &mut out, &mut stats, s);
                        }
                    }
                    if !accepted.is_empty() {
                        // Absorb the accepted blocks' members plus this gate;
                        // sorting restores program order (disjoint supports
                        // commute, so program order is a valid application
                        // order for the eventual block product).
                        let mut gates = vec![index];
                        for &s in &accepted {
                            let block = open[s].take().expect("live slot");
                            for &t in &block.targets {
                                wire[t] = None;
                            }
                            gates.extend(block.gates);
                        }
                        gates.sort_unstable();
                        let slot = open.len();
                        for &t in &union {
                            wire[t] = Some(slot);
                        }
                        open.push(Some(OpenBlock { targets: union, sub_dim: union_dim, gates }));
                        continue;
                    }
                }

                // Open a new block holding just this gate, canonicalised to
                // ascending target order. A gate larger than the growth
                // budget still becomes its own (single-gate) block.
                let mut sorted = targets.clone();
                sorted.sort_unstable();
                let sub_dim = gate.matrix().rows();
                let slot = open.len();
                for &t in &sorted {
                    wire[t] = Some(slot);
                }
                open.push(Some(OpenBlock { targets: sorted, sub_dim, gates: vec![index] }));
            }
            Instruction::Unitary { targets, .. } => {
                // A noisy gate (or fusion disabled): it executes verbatim,
                // and the model's channels act on its own targets, so those
                // wires are its barrier support.
                stats.unitaries_in += 1;
                stats.unitary_steps_out += 1;
                flush_for_barrier(&mut open, &mut wire, &mut out, &mut stats, Some(targets));
                out.push(FusedInst::Gate { index });
            }
            Instruction::Barrier if drop_noop_barriers && config.enabled => {
                // A barrier without idle loss is a scheduling hint only; not
                // flushing lets fusion reach across Trotter-step boundaries.
            }
            _ => {
                let wires: Option<&[usize]> = match inst {
                    Instruction::Measure { targets } => Some(targets),
                    Instruction::Reset { target } => Some(std::slice::from_ref(target)),
                    Instruction::Channel { targets, .. } => Some(targets),
                    // A lossy barrier applies idle loss to every qudit.
                    Instruction::Barrier => None,
                    Instruction::Unitary { .. } => unreachable!("handled above"),
                };
                flush_for_barrier(&mut open, &mut wire, &mut out, &mut stats, wires);
                out.push(FusedInst::Passthrough { index });
            }
        }
    }
    flush_all(&mut open, &mut wire, &mut out, &mut stats);
    Ok((out, stats))
}

/// Embeds `matrix` (indexed by `from_targets` order) into the subspace of
/// `to_targets` (ascending, a superset), acting as identity on the extra
/// qudits.
///
/// A direct stride-arithmetic construction rather than
/// [`qudit_core::radix::embed_operator`]: the fusion pass runs once per
/// compile but on every `(circuit, noise, config)` compilation, so one-shot
/// `run()` calls must not pay per-entry digit decompositions here. The
/// density compiler reuses it to embed superoperators into union supports
/// (there, "targets" are positions of the doubled `vec(ρ)` register).
pub(crate) fn embed_to(
    to_targets: &[usize],
    to_dims: &[usize],
    from_targets: &[usize],
    matrix: &CMatrix,
) -> Result<CMatrix> {
    if to_targets == from_targets {
        return Ok(matrix.clone());
    }
    let n: usize = to_dims.iter().product();
    let d_from = matrix.rows();
    // Stride of each union position in the union subspace.
    let mut strides = vec![1usize; to_dims.len()];
    for k in (0..to_dims.len().saturating_sub(1)).rev() {
        strides[k] = strides[k + 1] * to_dims[k + 1];
    }
    let position_of = |t: &usize| -> usize {
        to_targets.iter().position(|u| u == t).expect("subset of the union")
    };
    // Flat union offset of every `from` sub-index (row and column mappings
    // are identical): decompose the sub-index in `from_targets` order.
    let from_dims: Vec<usize> = from_targets.iter().map(|t| to_dims[position_of(t)]).collect();
    let from_strides: Vec<usize> = from_targets.iter().map(|t| strides[position_of(t)]).collect();
    let mut offsets = vec![0usize; d_from];
    for (sub, off) in offsets.iter_mut().enumerate() {
        let mut rem = sub;
        for k in (0..from_dims.len()).rev() {
            *off += (rem % from_dims[k]) * from_strides[k];
            rem /= from_dims[k];
        }
    }
    // Identity (non-`from`) positions of the union.
    let id_positions: Vec<usize> =
        (0..to_targets.len()).filter(|k| !from_targets.contains(&to_targets[*k])).collect();
    let id_dims: Vec<usize> = id_positions.iter().map(|&k| to_dims[k]).collect();
    let id_strides: Vec<usize> = id_positions.iter().map(|&k| strides[k]).collect();
    let id_count: usize = id_dims.iter().product::<usize>().max(1);

    let mut out = CMatrix::zeros(n, n);
    let data = out.as_mut_slice();
    let mut id_digits = vec![0usize; id_dims.len()];
    for id_idx in 0..id_count {
        if id_idx > 0 {
            for k in (0..id_digits.len()).rev() {
                id_digits[k] += 1;
                if id_digits[k] < id_dims[k] {
                    break;
                }
                id_digits[k] = 0;
            }
        }
        let base: usize = id_digits.iter().zip(id_strides.iter()).map(|(&d, &s)| d * s).sum();
        for (r, &off_r) in offsets.iter().enumerate() {
            let row = (base + off_r) * n + base;
            for (c, &v) in matrix.row(r).iter().enumerate() {
                if v != qudit_core::Complex64::ZERO {
                    data[row + offsets[c]] = v;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use qudit_core::apply::OpKind;

    fn fuse_simple(c: &Circuit, config: &FusionConfig) -> (Vec<FusedInst>, FusionStats) {
        let fusable = vec![true; c.len()];
        fuse(c, &fusable, true, config).unwrap()
    }

    /// OpKind of the first compiled apply step (the fused block's operator is
    /// materialised by the kernel compiler since PR 5).
    fn first_step_kind(c: &Circuit) -> OpKind {
        let kernels = crate::sim::kernels::CircuitKernels::with_config(
            c,
            &crate::noise::NoiseModel::noiseless(),
            &FusionConfig::default(),
        )
        .unwrap();
        let crate::sim::kernels::ExecStep::Apply { kind, .. } = &kernels.steps[0] else {
            panic!("expected an apply step");
        };
        kind.clone()
    }

    #[test]
    fn same_support_run_becomes_one_block() {
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        c.push(Gate::clock_z(3), &[0]).unwrap();
        c.push(Gate::shift_x(3), &[0]).unwrap();
        let (plan, stats) = fuse_simple(&c, &FusionConfig::default());
        assert_eq!(plan.len(), 1);
        assert_eq!(stats.unitaries_in, 3);
        assert_eq!(stats.unitary_steps_out, 1);
        assert_eq!(stats.multi_gate_blocks, 1);
        match &plan[0] {
            FusedInst::Block { targets, gates } => {
                assert_eq!(targets, &[0]);
                assert_eq!(gates, &[0, 1, 2], "members recorded in program order");
            }
            other => panic!("expected block, got {other:?}"),
        }
    }

    #[test]
    fn diagonal_times_diagonal_stays_diagonal() {
        let mut c = Circuit::uniform(1, 4);
        c.push(Gate::clock_z(4), &[0]).unwrap();
        c.push(Gate::snap(4, &[0.1, 0.2, 0.3, 0.4]), &[0]).unwrap();
        let (plan, _) = fuse_simple(&c, &FusionConfig::default());
        assert_eq!(plan.len(), 1);
        assert!(matches!(first_step_kind(&c), OpKind::Diagonal(_)));
    }

    #[test]
    fn monomial_times_monomial_stays_monomial() {
        let mut c = Circuit::uniform(1, 4);
        c.push(Gate::shift_x(4), &[0]).unwrap();
        c.push(Gate::weyl(4, 2, 1), &[0]).unwrap();
        let (plan, _) = fuse_simple(&c, &FusionConfig::default());
        assert_eq!(plan.len(), 1);
        assert!(matches!(first_step_kind(&c), OpKind::Monomial { .. }));
    }

    #[test]
    fn single_qudit_gates_are_absorbed_into_covering_two_qudit_block() {
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        c.push(Gate::clock_z(3), &[1]).unwrap();
        c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
        let (plan, stats) = fuse_simple(&c, &FusionConfig::default());
        // F(0), Z(1) and CSUM(0,1) all coalesce into one 9-dim block:
        // the union does not exceed the sum of parts (9 <= 3 + 3 + 9).
        assert_eq!(plan.len(), 1);
        assert_eq!(stats.max_block_dim, 9);
        assert_eq!(stats.multi_gate_blocks, 1);
    }

    #[test]
    fn cost_rule_rejects_union_growth_of_overlapping_pairs() {
        // (0,1) then (1,2): the 27-dim union exceeds 9 + 9, so the blocks
        // stay separate.
        let mut c = Circuit::uniform(3, 3);
        c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
        c.push(Gate::csum(3, 3), &[1, 2]).unwrap();
        let (plan, stats) = fuse_simple(&c, &FusionConfig::default());
        assert_eq!(plan.len(), 2);
        assert_eq!(stats.multi_gate_blocks, 0);
    }

    #[test]
    fn measurement_flushes_open_blocks() {
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        c.measure(&[0]).unwrap();
        c.push(Gate::fourier(3), &[0]).unwrap();
        let (plan, stats) = fuse_simple(&c, &FusionConfig::default());
        assert_eq!(plan.len(), 3);
        assert!(matches!(plan[0], FusedInst::Block { .. }));
        assert!(matches!(plan[1], FusedInst::Passthrough { index: 1 }));
        assert!(matches!(plan[2], FusedInst::Block { .. }));
        assert_eq!(stats.unitary_steps_out, 2);
    }

    #[test]
    fn disabled_config_emits_everything_verbatim() {
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        c.push(Gate::fourier(3), &[0]).unwrap();
        c.barrier();
        let fusable = vec![true; c.len()];
        let (plan, stats) = fuse(&c, &fusable, true, &FusionConfig::disabled()).unwrap();
        assert_eq!(plan.len(), 3);
        assert!(matches!(plan[0], FusedInst::Gate { index: 0 }));
        assert!(matches!(plan[1], FusedInst::Gate { index: 1 }));
        assert!(matches!(plan[2], FusedInst::Passthrough { index: 2 }));
        assert_eq!(stats.multi_gate_blocks, 0);
    }

    #[test]
    fn unsorted_targets_are_canonicalised() {
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::csum(3, 3), &[1, 0]).unwrap();
        let (plan, _) = fuse_simple(&c, &FusionConfig::default());
        let FusedInst::Block { targets, gates } = &plan[0] else { panic!("expected block") };
        assert_eq!(targets, &[0, 1]);
        assert_eq!(gates, &[0]);
        // The compiled operator (materialised by the kernel compiler) embeds
        // the unsorted-target gate into the ascending support.
        let kernels = crate::sim::kernels::CircuitKernels::with_config(
            &c,
            &crate::noise::NoiseModel::noiseless(),
            &FusionConfig::default(),
        )
        .unwrap();
        let crate::sim::kernels::ExecStep::Apply { op, .. } = &kernels.steps[0] else {
            panic!("expected an apply step");
        };
        let expected =
            qudit_core::radix::embed_operator(c.radix(), &crate::gates::csum(3, 3), &[1, 0])
                .unwrap();
        let got = qudit_core::radix::embed_operator(c.radix(), op, &[0, 1]).unwrap();
        assert!((&got - &expected).max_abs() < 1e-12);
    }

    #[test]
    fn disjoint_measurement_does_not_flush_under_wire_local_policy() {
        // A gate run on wire 0, interrupted by a measurement of wire 1: the
        // run must fuse straight through it, and the (deferred) block is
        // emitted after the passthrough.
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        c.measure(&[1]).unwrap();
        c.push(Gate::clock_z(3), &[0]).unwrap();
        let (plan, stats) = fuse_simple(&c, &FusionConfig::default());
        assert_eq!(plan.len(), 2);
        assert!(matches!(plan[0], FusedInst::Passthrough { index: 1 }));
        let FusedInst::Block { targets, gates } = &plan[1] else { panic!("expected block") };
        assert_eq!(targets, &[0]);
        assert_eq!(gates, &[0, 2], "the run fuses straight through the readout");
        assert_eq!(stats.unitary_steps_out, 1);
        assert_eq!(stats.multi_gate_blocks, 1);
        assert_eq!(stats.barrier_crossings, 1);

        // The global policy closes the run at the measurement.
        let (plan, stats) = fuse_simple(&c, &FusionConfig::global_flush());
        assert_eq!(plan.len(), 3);
        assert_eq!(stats.unitary_steps_out, 2);
        assert_eq!(stats.barrier_crossings, 0);
    }

    #[test]
    fn overlapping_measurement_still_flushes_under_wire_local_policy() {
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
        c.measure(&[1]).unwrap();
        let (plan, stats) = fuse_simple(&c, &FusionConfig::default());
        assert_eq!(plan.len(), 2);
        assert!(matches!(plan[0], FusedInst::Block { .. }));
        assert!(matches!(plan[1], FusedInst::Passthrough { index: 1 }));
        assert_eq!(stats.barrier_crossings, 0);
    }

    #[test]
    fn reset_and_channel_barriers_are_wire_local_too() {
        // wire 0 carries a run; wire 1 sees a reset, then a channel. Neither
        // touches wire 0, so the run survives both and crosses two barriers.
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        c.reset(1).unwrap();
        c.push_channel(crate::noise::KrausChannel::photon_loss(3, 0.5).unwrap(), &[1]).unwrap();
        c.push(Gate::shift_x(3), &[0]).unwrap();
        let (plan, stats) = fuse_simple(&c, &FusionConfig::default());
        assert_eq!(plan.len(), 3);
        assert!(matches!(plan[0], FusedInst::Passthrough { index: 1 }));
        assert!(matches!(plan[1], FusedInst::Passthrough { index: 2 }));
        assert!(matches!(plan[2], FusedInst::Block { .. }));
        assert_eq!(stats.unitary_steps_out, 1);
        assert_eq!(stats.barrier_crossings, 2);
    }

    #[test]
    fn noisy_gate_barrier_flushes_only_its_own_wires() {
        // Instruction 1 is marked non-fusable (a noisy gate on wire 1); the
        // run on wire 0 must survive it.
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        c.push(Gate::shift_x(3), &[1]).unwrap();
        c.push(Gate::clock_z(3), &[0]).unwrap();
        let fusable = vec![true, false, true];
        let (plan, stats) = fuse(&c, &fusable, true, &FusionConfig::default()).unwrap();
        assert_eq!(plan.len(), 2);
        assert!(matches!(plan[0], FusedInst::Gate { index: 1 }));
        assert!(matches!(plan[1], FusedInst::Block { .. }));
        assert_eq!(stats.unitary_steps_out, 2, "noisy gate + one fused block");
        assert_eq!(stats.barrier_crossings, 1);

        // Global flush: the noisy gate cuts the wire-0 run in two.
        let (plan, _) = fuse(&c, &fusable, true, &FusionConfig::global_flush()).unwrap();
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn lossy_barrier_flushes_every_wire_even_under_wire_local_policy() {
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        c.barrier();
        c.push(Gate::clock_z(3), &[0]).unwrap();
        // drop_noop_barriers = false models an idle-loss noise model: the
        // barrier decays *every* wire, so nothing may cross it.
        let fusable = vec![true; c.len()];
        let (plan, stats) = fuse(&c, &fusable, false, &FusionConfig::default()).unwrap();
        assert_eq!(plan.len(), 3);
        assert!(matches!(plan[0], FusedInst::Block { .. }));
        assert!(matches!(plan[1], FusedInst::Passthrough { index: 1 }));
        assert!(matches!(plan[2], FusedInst::Block { .. }));
        assert_eq!(stats.barrier_crossings, 0);
    }

    #[test]
    fn syndrome_round_shape_fuses_data_wires_through_ancilla_readout() {
        // The syndrome-extraction shape: data wires 0..3, ancilla wire 4.
        // Each round entangles a rotating data pair with the ancilla, then
        // measures and resets the ancilla. Data gates on the *other* pair
        // must fuse across the round boundary.
        let mut c = Circuit::uniform(5, 3);
        for round in 0..2 {
            let (a, b) = if round == 0 { (0, 1) } else { (2, 3) };
            for q in 0..4 {
                c.push(Gate::fourier(3), &[q]).unwrap();
            }
            c.push(Gate::csum(3, 3), &[a, 4]).unwrap();
            c.push(Gate::csum(3, 3), &[b, 4]).unwrap();
            c.measure(&[4]).unwrap();
            c.reset(4).unwrap();
        }
        let (_, wire_local) = fuse_simple(&c, &FusionConfig::default());
        let (_, global) = fuse_simple(&c, &FusionConfig::global_flush());
        assert!(wire_local.barrier_crossings > 0, "{wire_local:?}");
        assert!(
            wire_local.unitary_steps_out < global.unitary_steps_out,
            "wire-local must emit fewer apply steps: {wire_local:?} vs {global:?}"
        );
    }

    #[test]
    fn fusion_reaches_across_noop_barriers_but_not_lossy_ones() {
        let mut c = Circuit::uniform(1, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        c.barrier();
        c.push(Gate::fourier(3), &[0]).unwrap();
        let fusable = vec![true; c.len()];
        let (plan, _) = fuse(&c, &fusable, true, &FusionConfig::default()).unwrap();
        assert_eq!(plan.len(), 1, "no-op barrier must not break the run");
        let (plan, _) = fuse(&c, &fusable, false, &FusionConfig::default()).unwrap();
        assert_eq!(plan.len(), 3, "lossy barrier must flush and pass through");
    }
}
