//! Precompiled execution plans shared across shots and trajectories.
//!
//! Running a stochastic circuit many times (Monte-Carlo trajectories,
//! per-shot re-runs) repeats the same per-instruction setup work every run:
//! building the stride geometry for each gate's targets, classifying each
//! operator's structure, and constructing the noise model's Kraus channels.
//! [`CircuitKernels`] hoists all of that out of the run loop — and, since
//! PR 2, first runs the [`crate::sim::fusion`] pass so runs of adjacent
//! gates execute as single fused superblocks. A kernel set is built once per
//! `(circuit, noise model, fusion config)` triple and is immutable and
//! `Sync` afterwards, so the parallel trajectory executor shares one
//! instance across worker threads. Mutable per-run scratch lives in the
//! runner.
//!
//! Under the default wire-local flush policy the fused plan is a
//! **re-ordering** of the source circuit: a fused block whose support is
//! disjoint from a measurement/reset/channel can be emitted *after* it (the
//! two commute exactly, see [`crate::sim::fusion`]). Both plan consumers —
//! the shared [`ExecStep`] list the statevector/trajectory runners walk, and
//! the [`DensityKernels`] superoperator frontier — therefore only rely on
//! step order *within* a wire's light-cone, never on global program order.
//! The density frontier applies the same wire-local rule: a per-term
//! `Kraus` fallback or an over-budget sandwich closes only the open
//! superoperator blocks it touches, and idle-loss barrier channels flush
//! (or absorb into) exactly the per-qudit blocks of the wires they decay.

use qudit_core::apply::{matmul_structured, ApplyPlan, OpKind};
use qudit_core::matrix::CMatrix;
use qudit_core::Complex64;

use crate::circuit::{Circuit, Instruction};
use crate::error::{CircuitError, Result};
use crate::gate::Gate;
use crate::noise::{KrausChannel, NoiseModel};
use crate::sim::fusion::{embed_to, fuse, FusedInst, FusionConfig, FusionStats};

/// How to (re-)materialise one apply step's operator under a parameter
/// binding: the constituent gates in program order plus the support the
/// operator is indexed in. The **same** realization path runs at compile
/// time and at `bind` time, so compiling a bound circuit and rebinding a
/// compiled parameterized circuit produce bitwise-identical operators (and
/// therefore bitwise-identical sampling streams).
#[derive(Debug, Clone)]
pub(crate) struct OpRecipe {
    /// Constituents, program order.
    parts: Vec<RecipePart>,
    /// Support the realized operator is indexed in: ascending for fused
    /// blocks, the gate's own target order for verbatim gates.
    pub(crate) targets: Vec<usize>,
    /// Per-target dimensions of `targets`.
    dims: Vec<usize>,
}

/// One constituent of an [`OpRecipe`]. Binding-independent constituents are
/// embedded into the recipe's support once, at compile time; only free
/// constituents are re-realized and re-embedded per binding.
#[derive(Debug, Clone)]
enum RecipePart {
    /// Pre-embedded constant operator.
    Const(CMatrix),
    /// Free-parameter gate, realized per binding.
    Free { gate: Gate, targets: Vec<usize> },
}

impl OpRecipe {
    pub(crate) fn new(
        parts: Vec<(Gate, Vec<usize>)>,
        targets: Vec<usize>,
        dims: &[usize],
    ) -> Result<Self> {
        let target_dims: Vec<usize> = targets.iter().map(|&t| dims[t]).collect();
        let parts = parts
            .into_iter()
            .map(|(gate, gate_targets)| {
                if gate.free_param().is_some() {
                    Ok(RecipePart::Free { gate, targets: gate_targets })
                } else {
                    Ok(RecipePart::Const(embed_to(
                        &targets,
                        &target_dims,
                        &gate_targets,
                        gate.matrix(),
                    )?))
                }
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { parts, targets, dims: target_dims })
    }

    /// `true` if any constituent carries a free parameter (i.e. the operator
    /// must be re-materialised on rebind).
    pub(crate) fn has_free(&self) -> bool {
        self.parts.iter().any(|p| matches!(p, RecipePart::Free { .. }))
    }

    /// The free-parameter indices this recipe reads, ascending and deduped.
    /// [`OpRecipe::realize`] is a pure function of exactly these entries of
    /// the binding, which is what lets a batched bind share one realization
    /// between members that agree on them bitwise.
    pub(crate) fn free_param_indices(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = self
            .parts
            .iter()
            .filter_map(|p| match p {
                RecipePart::Free { gate, .. } => gate.free_param(),
                RecipePart::Const(_) => None,
            })
            .collect();
        idx.sort_unstable();
        idx.dedup();
        idx
    }

    /// `true` if the realized operator is diagonal at **every** binding:
    /// each free constituent has a diagonal generator and each constant
    /// constituent is diagonal.
    pub(crate) fn diagonal_for_all_bindings(&self) -> bool {
        self.parts.iter().all(|p| match p {
            RecipePart::Const(m) => matches!(OpKind::classify(m), OpKind::Diagonal(_)),
            RecipePart::Free { gate, .. } => gate.has_diagonal_generator(),
        })
    }

    /// Materialises the operator at the given binding: each free constituent
    /// is realized ([`Gate::bound_matrix`]) and embedded into the recipe's
    /// support, then all constituents multiply in program order (structured
    /// factors compose without a dense matmul, see [`matmul_structured`]).
    pub(crate) fn realize(&self, params: &[f64]) -> Result<CMatrix> {
        // Constant parts are multiplied by reference — only a recipe whose
        // first part is constant pays one clone (the accumulator seed).
        let mut acc: Option<CMatrix> = None;
        for part in &self.parts {
            acc = Some(match (part, acc) {
                (RecipePart::Const(m), None) => m.clone(),
                (RecipePart::Const(m), Some(prev)) => {
                    matmul_structured(m, &prev).map_err(CircuitError::Core)?
                }
                (RecipePart::Free { gate, targets }, acc) => {
                    let embedded =
                        embed_to(&self.targets, &self.dims, targets, &gate.bound_matrix(params)?)?;
                    match acc {
                        None => embedded,
                        Some(prev) => {
                            matmul_structured(&embedded, &prev).map_err(CircuitError::Core)?
                        }
                    }
                }
            });
        }
        acc.ok_or_else(|| CircuitError::InvalidGate("empty operator recipe".into()))
    }
}

/// A Kraus channel with its application geometry precomputed.
#[derive(Debug, Clone)]
pub(crate) struct ChannelKernel {
    pub channel: KrausChannel,
    pub plan: ApplyPlan,
    /// Structure classification of each Kraus operator.
    pub kinds: Vec<OpKind>,
    /// The qudits the channel acts on (in operator index order).
    pub targets: Vec<usize>,
}

impl ChannelKernel {
    pub(crate) fn new(
        radix: &qudit_core::Radix,
        channel: KrausChannel,
        targets: Vec<usize>,
    ) -> Result<Self> {
        let plan = ApplyPlan::new(radix, &targets).map_err(CircuitError::Core)?;
        let kinds = channel.operators().iter().map(OpKind::classify).collect();
        Ok(Self { channel, plan, kinds, targets })
    }
}

/// One step of the compiled execution plan. Unlike the original instruction
/// list, apply steps own their operator matrix: a step may be a fused
/// superblock that exists nowhere in the circuit.
#[derive(Debug, Clone)]
pub(crate) enum ExecStep {
    /// Apply a (possibly fused) unitary operator, then the noise channels the
    /// model inserts after it. `targets` is the operator's support (in
    /// operator index order), kept for the density compiler's superoperator
    /// folding pass. `recipe` is present iff the operator depends on a free
    /// parameter; [`CircuitKernels::bind`] re-materialises exactly those
    /// steps.
    Apply {
        targets: Vec<usize>,
        plan: ApplyPlan,
        kind: OpKind,
        op: CMatrix,
        noise: Vec<ChannelKernel>,
        recipe: Option<OpRecipe>,
    },
    /// An explicit channel instruction.
    Channel(ChannelKernel),
    /// A computational-basis measurement.
    Measure { targets: Vec<usize> },
    /// Reset of one qudit to `|0⟩`.
    Reset { target: usize },
    /// A barrier at which idle-loss channels apply.
    Barrier,
}

/// The compiled execution plan of a circuit under a noise model and fusion
/// configuration, plus the idle-loss channels applied at barriers.
#[derive(Debug, Clone)]
pub(crate) struct CircuitKernels {
    /// Per-qudit dimensions of the register the plan was compiled for.
    pub dims: Vec<usize>,
    pub steps: Vec<ExecStep>,
    /// Source-instruction indices realized by each step, parallel to
    /// `steps`: the absorbed gate indices (program order) for a fused block,
    /// the single instruction index otherwise. Dropped no-op barriers appear
    /// in no entry. Consumed by `sim::introspect` / `qudit-verify` only —
    /// the run loops never read it.
    pub origins: Vec<Vec<usize>>,
    /// One photon-loss channel per qudit, used at each `Barrier` when the
    /// model has idle loss (empty otherwise).
    pub barrier_loss: Vec<ChannelKernel>,
    /// What the fusion pass did.
    pub stats: FusionStats,
    /// Parameters a binding must supply (`Circuit::num_params` of the source
    /// circuit). A plan compiled from a parameterized circuit starts out
    /// bound at all-zero parameters.
    pub num_params: usize,
}

impl CircuitKernels {
    pub(crate) fn with_config(
        circuit: &Circuit,
        noise: &NoiseModel,
        config: &FusionConfig,
    ) -> Result<Self> {
        let radix = circuit.radix();
        let dims = circuit.dims();

        // Per-gate noise channels; a gate the model decorates is a fusion
        // barrier and executes verbatim.
        let mut gate_noise: Vec<Option<Vec<(KrausChannel, usize)>>> =
            Vec::with_capacity(circuit.len());
        let mut fusable = Vec::with_capacity(circuit.len());
        for inst in circuit.instructions() {
            match inst {
                Instruction::Unitary { targets, .. } => {
                    let channels = noise.channels_after_gate(targets, dims)?;
                    fusable.push(channels.is_empty());
                    gate_noise.push(Some(channels));
                }
                _ => {
                    fusable.push(false);
                    gate_noise.push(None);
                }
            }
        }

        let has_barrier = circuit.instructions().iter().any(|i| matches!(i, Instruction::Barrier));
        let lossy_barriers = noise.idle_photon_loss > 0.0 && has_barrier;
        let mut barrier_loss = Vec::new();
        if lossy_barriers {
            for (q, &d) in dims.iter().enumerate() {
                let loss = KrausChannel::photon_loss(d, noise.idle_photon_loss)?;
                barrier_loss.push(ChannelKernel::new(radix, loss, vec![q])?);
            }
        }

        let (fused, stats) = fuse(circuit, &fusable, !lossy_barriers, config)?;

        // Operators are materialised through the recipe path even at compile
        // time, so a later in-place rebind reproduces them bitwise. A plan
        // compiled from a parameterized circuit starts bound at zeros.
        let num_params = circuit.num_params();
        let zeros = vec![0.0f64; num_params];

        let mut steps = Vec::with_capacity(fused.len());
        let mut origins = Vec::with_capacity(fused.len());
        for item in fused {
            origins.push(match &item {
                FusedInst::Block { gates, .. } => gates.clone(),
                FusedInst::Gate { index } | FusedInst::Passthrough { index } => vec![*index],
            });
            steps.push(match item {
                FusedInst::Block { targets, gates } => {
                    let plan = ApplyPlan::new(radix, &targets).map_err(CircuitError::Core)?;
                    let parts: Vec<(Gate, Vec<usize>)> = gates
                        .iter()
                        .map(|&i| {
                            let Instruction::Unitary { gate, targets } = &circuit.instructions()[i]
                            else {
                                unreachable!("fused blocks only absorb unitaries")
                            };
                            (gate.clone(), targets.clone())
                        })
                        .collect();
                    let recipe = OpRecipe::new(parts, targets.clone(), dims)?;
                    let op = recipe.realize(&zeros)?;
                    let kind = OpKind::classify(&op);
                    let recipe = recipe.has_free().then_some(recipe);
                    ExecStep::Apply { targets, plan, kind, op, noise: Vec::new(), recipe }
                }
                FusedInst::Gate { index } => {
                    let Instruction::Unitary { gate, targets } = &circuit.instructions()[index]
                    else {
                        unreachable!("fusion pass only tags unitaries as gates")
                    };
                    let plan = ApplyPlan::new(radix, targets).map_err(CircuitError::Core)?;
                    let op = gate.bound_matrix(&zeros)?;
                    let kind = OpKind::classify(&op);
                    let noise_channels = gate_noise[index]
                        .take()
                        .expect("unitary instructions carry a channel list")
                        .into_iter()
                        .map(|(channel, qudit)| ChannelKernel::new(radix, channel, vec![qudit]))
                        .collect::<Result<Vec<_>>>()?;
                    let recipe = gate
                        .free_param()
                        .is_some()
                        .then(|| {
                            OpRecipe::new(
                                vec![(gate.clone(), targets.clone())],
                                targets.clone(),
                                dims,
                            )
                        })
                        .transpose()?;
                    ExecStep::Apply {
                        targets: targets.clone(),
                        plan,
                        kind,
                        op,
                        noise: noise_channels,
                        recipe,
                    }
                }
                FusedInst::Passthrough { index } => match &circuit.instructions()[index] {
                    Instruction::Measure { targets } => {
                        ExecStep::Measure { targets: targets.clone() }
                    }
                    Instruction::Reset { target } => ExecStep::Reset { target: *target },
                    Instruction::Channel { channel, targets } => ExecStep::Channel(
                        ChannelKernel::new(radix, channel.clone(), targets.clone())?,
                    ),
                    Instruction::Barrier => ExecStep::Barrier,
                    Instruction::Unitary { .. } => {
                        unreachable!("unitaries never pass through the fusion pass")
                    }
                },
            });
        }
        Ok(Self { dims: dims.to_vec(), steps, origins, barrier_loss, stats, num_params })
    }

    /// Re-materialises the operators (and exact [`OpKind`] classifications)
    /// of every parameter-dependent apply step at the given binding into a
    /// caller-owned [`BindBuffers`] overlay. The plan topology — fusion
    /// decisions, stride plans, step order, noise channels — is
    /// parameter-invariant and never touched, which is what lets many
    /// concurrent requests share one `Arc`'d kernel set while each carries
    /// its own binding.
    ///
    /// The overlay is replaced wholesale on success and left untouched on
    /// error, so a failed rebind never leaves a plan half-bound.
    ///
    /// # Errors
    /// Returns an error if `params` supplies fewer than
    /// [`CircuitKernels::num_params`] values.
    pub(crate) fn bind_into(&self, params: &[f64], binds: &mut BindBuffers) -> Result<()> {
        if params.len() < self.num_params {
            return Err(CircuitError::InvalidGate(format!(
                "binding supplies {} parameters but the plan needs {}",
                params.len(),
                self.num_params
            )));
        }
        let mut overrides = Vec::new();
        for (index, step) in self.steps.iter().enumerate() {
            if let ExecStep::Apply { recipe: Some(recipe), .. } = step {
                let op = recipe.realize(params)?;
                let kind = OpKind::classify(&op);
                overrides.push((index, op, kind));
            }
        }
        binds.overrides = overrides;
        Ok(())
    }

    /// [`CircuitKernels::bind_into`] over a whole population at once, with
    /// the per-step materialisations **memoised**: members whose bindings
    /// agree bitwise on the parameters a recipe actually reads share one
    /// [`OpRecipe::realize`] call (the realized matrix is cloned into each
    /// member's overlay, so [`BindBuffers`] stays unchanged). Structured
    /// populations — a coordinate grid, a line search along one axis — pay
    /// for the distinct values per step, not for the population size.
    ///
    /// Sharing is exact: `realize` is a deterministic pure function of the
    /// parameters [`OpRecipe::free_param_indices`] names, so a memo hit is
    /// bitwise identical to the realization `bind_into` would have produced.
    ///
    /// # Errors
    /// Returns an error if any member supplies fewer than
    /// [`CircuitKernels::num_params`] values.
    pub(crate) fn bind_batch_into(&self, population: &[Vec<f64>]) -> Result<Vec<BindBuffers>> {
        for params in population {
            if params.len() < self.num_params {
                return Err(CircuitError::InvalidGate(format!(
                    "binding supplies {} parameters but the plan needs {}",
                    params.len(),
                    self.num_params
                )));
            }
        }
        let mut cols: Vec<BindBuffers> =
            population.iter().map(|_| BindBuffers::default()).collect();
        let mut memo: Vec<(Vec<u64>, CMatrix, OpKind)> = Vec::new();
        for (index, step) in self.steps.iter().enumerate() {
            let ExecStep::Apply { recipe: Some(recipe), .. } = step else { continue };
            let free = recipe.free_param_indices();
            memo.clear();
            for (b, params) in population.iter().enumerate() {
                let key: Vec<u64> = free.iter().map(|&i| params[i].to_bits()).collect();
                let (op, kind) = match memo.iter().find(|(k, _, _)| *k == key) {
                    Some((_, op, kind)) => (op.clone(), kind.clone()),
                    None => {
                        let op = recipe.realize(params)?;
                        let kind = OpKind::classify(&op);
                        memo.push((key, op.clone(), kind.clone()));
                        (op, kind)
                    }
                };
                cols[b].overrides.push((index, op, kind));
            }
        }
        Ok(cols)
    }
}

/// Per-request parameter-binding overlay over an immutable (`Arc`-shared)
/// plan topology: the realized operator and exact classification of every
/// parameter-dependent step, ascending by step index. Run loops walk the
/// overlay with a monotone cursor ([`BindBuffers::resolve`]), so resolution
/// is O(1) amortised per step. An empty overlay means the compile-time
/// all-zero binding.
///
/// The same type serves both simulators: for statevector plans the matrix is
/// the apply step's operator, for density plans it is the sandwich unitary or
/// the sweep's composed superoperator — the run loop knows which from the
/// step it is resolving.
#[derive(Debug, Clone, Default)]
pub(crate) struct BindBuffers {
    /// `(step index, realized operator, exact classification)`, ascending.
    pub overrides: Vec<(usize, CMatrix, OpKind)>,
}

impl BindBuffers {
    /// Resolves the operator of `step`: the override when the binding
    /// re-materialised this step, the compiled base otherwise. `cursor` must
    /// start at zero and be advanced only by this method, with `step` values
    /// in ascending order (the run-loop access pattern).
    pub fn resolve<'a>(
        &'a self,
        cursor: &mut usize,
        step: usize,
        base_kind: &'a OpKind,
        base_op: &'a CMatrix,
    ) -> (&'a OpKind, &'a CMatrix) {
        while *cursor < self.overrides.len() && self.overrides[*cursor].0 < step {
            *cursor += 1;
        }
        match self.overrides.get(*cursor) {
            Some((s, op, kind)) if *s == step => (kind, op),
            _ => (base_kind, base_op),
        }
    }
}

/// Reusable per-run working memory for the kernel paths.
#[derive(Debug, Default)]
pub(crate) struct RunScratch {
    /// Gather/apply scratch sized to the largest operator block.
    pub block: Vec<Complex64>,
    /// Kraus branch probabilities.
    pub branch_probs: Vec<f64>,
    /// Contiguous single-column buffer for the ensemble executors' gathered
    /// per-column applies (see `sim::ensemble::apply_col`).
    pub col: Vec<Complex64>,
}

// --------------------------------------------------------------------------
// Density-side compilation: superoperator batching over vectorised ρ.
// --------------------------------------------------------------------------

use qudit_core::superop::SuperPlan;
use qudit_core::Radix;

/// Configuration of the density-matrix simulator's superoperator batching
/// (see [`crate::sim::DensityMatrixSimulator::with_superop`]).
///
/// With batching enabled (the default), the density compiler turns every
/// channel whose superoperator `Σ K ⊗ conj(K)` is profitable into a **single
/// strided sweep** over the vectorised density matrix, and folds
/// channel-adjacent unitary runs into the same sweep when that never
/// increases apply cost. Disabled, every channel executes on the per-term
/// Kraus path (`2m` sweeps plus `m` accumulations for an `m`-operator
/// channel), which is the reference the property tests compare against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperopConfig {
    /// Master switch; disabled keeps all channels on the per-term path.
    pub enabled: bool,
    /// Maximum target-subspace dimension `k` a superoperator sweep may span
    /// (the superoperator matrix is `k² × k²`; the default of 16 caps it at
    /// `256 × 256` — a two-qudit `d = 4` channel, 1 MiB).
    pub max_dim: usize,
}

impl Default for SuperopConfig {
    fn default() -> Self {
        Self { enabled: true, max_dim: 16 }
    }
}

impl SuperopConfig {
    /// A configuration with batching switched off (per-term execution).
    pub fn disabled() -> Self {
        Self { enabled: false, ..Self::default() }
    }
}

/// What the density compiler did to an execution plan; exposed for
/// benchmarks, tests and CI assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuperopStats {
    /// Superoperator sweeps in the compiled density plan.
    pub super_steps: usize,
    /// Sweeps that absorbed at least two constituent operations.
    pub multi_op_supers: usize,
    /// Constituent operations (unitaries, channels, measurement dephasing,
    /// resets, idle-loss) absorbed into multi-op sweeps.
    pub ops_folded: usize,
    /// Standalone unitary (two-sided sandwich) steps.
    pub unitary_steps: usize,
    /// Channels kept on the per-term Kraus path.
    pub kraus_steps: usize,
    /// Largest target-subspace dimension among superoperator sweeps.
    pub max_super_dim: usize,
}

/// One step of the compiled **density** execution plan. Measurements, resets
/// and barrier losses from the shared [`ExecStep`] plan are compiled away
/// into their channel forms, so the density run loop is just three arms.
#[derive(Debug, Clone)]
pub(crate) enum DensityStep {
    /// A standalone deterministic map, applied as the two-sided sandwich
    /// `ρ → U ρ U†` (cheaper than its superoperator for `k > 2`).
    Unitary { plan: ApplyPlan, kind: OpKind, op: CMatrix },
    /// One superoperator sweep over vectorised ρ: a whole channel — possibly
    /// with folded adjacent unitaries and further channels — in one pass.
    /// `fallback` records the constituent operations in program order so a
    /// sweep whose matrix fails its runtime trace-preservation check under
    /// [`qudit_core::guard::GuardPolicy::FallBack`] can degrade to the
    /// per-constituent path; it is empty for parameter-dependent sweeps
    /// (their constituents would go stale on rebind, so a defect there fails
    /// hard instead). `defect_tol` is the compile-time trace-preservation
    /// allowance (base tolerance plus the constituents' construction
    /// tolerances, so intentionally lossy channels stay legal).
    Super {
        plan: SuperPlan,
        kind: OpKind,
        sup: CMatrix,
        fallback: Vec<SuperFallback>,
        defect_tol: f64,
    },
    /// Per-term Kraus fallback for channels whose superoperator would be
    /// over budget or cost more than `2m` strided sweeps.
    Kraus(ChannelKernel),
}

/// One constituent of a superoperator sweep's degradation path: the original
/// operation the sweep folded, applied directly when the sweep's matrix
/// fails its runtime health check (see [`DensityStep::Super`]).
#[derive(Debug, Clone)]
pub(crate) enum SuperFallback {
    /// A deterministic map applied as the two-sided sandwich.
    Unitary { plan: ApplyPlan, kind: OpKind, op: CMatrix },
    /// A channel applied on the per-term Kraus path.
    Kraus(ChannelKernel),
}

/// One constituent of a rebindable superoperator sweep: either a constant
/// superoperator (channel, measurement dephasing, reset, idle loss, or a
/// bound unitary's `U ⊗ conj(U)`) or a parameter-dependent unitary whose
/// superoperator is re-derived from its [`OpRecipe`] at every binding.
#[derive(Debug, Clone)]
pub(crate) enum SuperPart {
    /// Binding-independent superoperator, **pre-embedded** into the sweep's
    /// doubled union support at compile time so rebinds never re-embed it.
    Const { sup: CMatrix },
    /// Parameter-dependent unitary; its superoperator is
    /// `U(θ) ⊗ conj(U(θ))` with `U(θ)` realized by the recipe, embedded per
    /// binding.
    Parametric { recipe: OpRecipe },
}

/// Embeds a superoperator over `from` targets into the doubled union support
/// `union ∪ (union + n)` of a register with the given dims.
fn embed_super(sup: &CMatrix, from: &[usize], union: &[usize], dims: &[usize]) -> Result<CMatrix> {
    let n = dims.len();
    let doubled = |ts: &[usize]| -> Vec<usize> {
        let mut d = Vec::with_capacity(2 * ts.len());
        d.extend_from_slice(ts);
        d.extend(ts.iter().map(|&t| t + n));
        d
    };
    let union_doubled_dims: Vec<usize> = {
        let u: Vec<usize> = union.iter().map(|&t| dims[t]).collect();
        u.iter().chain(u.iter()).copied().collect()
    };
    embed_to(&doubled(union), &union_doubled_dims, &doubled(from), sup)
}

/// How to re-materialise one parameter-dependent density step on rebind.
#[derive(Debug, Clone)]
pub(crate) enum DensityRecipe {
    /// A sandwich step: re-realize the unitary.
    Sandwich { step: usize, recipe: OpRecipe },
    /// A superoperator sweep: re-compose the (embedded) part superoperators
    /// over the sweep's ascending union support.
    Super { step: usize, parts: Vec<SuperPart>, targets: Vec<usize> },
}

/// Why a density-compiler constituent item exists: its relation to the
/// source instruction(s) it was lowered from. Consumed by
/// `sim::introspect` / `qudit-verify` only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DensityRole {
    /// The instruction's own map: a (possibly fused) unitary or an explicit
    /// channel.
    Primary,
    /// The `index`-th noise channel the model attaches after a gate.
    GateNoise(usize),
    /// Full dephasing of one measured target (non-selective measurement).
    MeasureDephase(usize),
    /// The reset-to-`|0⟩` channel of a reset instruction.
    Reset,
    /// The idle-loss channel of qudit `usize` at a lossy barrier.
    BarrierLoss(usize),
}

/// Provenance of one density-compiler item: which source instructions it was
/// lowered from, in what role, on which wires. Consumed by
/// `sim::introspect` / `qudit-verify` only — the run loops never read it.
#[derive(Debug, Clone)]
pub struct ItemOrigin {
    /// Source-instruction indices, ascending (= program order for fused
    /// primaries, a single index otherwise).
    pub sources: Vec<usize>,
    /// The item's relation to its source instruction(s).
    pub role: DensityRole,
    /// The wires the item acts on, in the item's operator index order.
    pub targets: Vec<usize>,
    /// `true` iff the item's operator depends on a free parameter.
    pub parametric: bool,
}

/// The compiled density execution plan (see [`DensityStep`]).
#[derive(Debug, Clone)]
pub(crate) struct DensityKernels {
    pub dims: Vec<usize>,
    pub steps: Vec<DensityStep>,
    /// Provenance of every constituent item the compiler folded over,
    /// in item (= linearised program) order.
    pub item_origins: Vec<ItemOrigin>,
    /// Item indices consumed by each emitted step, parallel to `steps`
    /// (ascending within a step = program order of the folded constituents).
    pub step_items: Vec<Vec<usize>>,
    /// What the (shared) fusion pass did.
    pub fusion_stats: FusionStats,
    /// What the superoperator compiler did.
    pub stats: SuperopStats,
    /// Re-materialisation recipes for the parameter-dependent steps.
    pub rebind: Vec<DensityRecipe>,
    /// Parameters a binding must supply.
    pub num_params: usize,
}

/// Composes the superoperator of a sweep from its parts: each part's
/// superoperator is embedded into the doubled union support and multiplied in
/// program order (structured factors short-circuit the dense matmul). Shared
/// verbatim by compile and rebind, so re-binding reproduces the compiled
/// composition bitwise.
fn compose_super_parts(
    parts: &[SuperPart],
    params: &[f64],
    union: &[usize],
    dims: &[usize],
) -> Result<CMatrix> {
    // Constant (pre-embedded) parts multiply by reference; only a sweep whose
    // first part is constant pays one clone (the accumulator seed).
    let mut acc: Option<CMatrix> = None;
    for part in parts {
        acc = Some(match (part, acc) {
            (SuperPart::Const { sup }, None) => sup.clone(),
            (SuperPart::Const { sup }, Some(prev)) => {
                matmul_structured(sup, &prev).map_err(CircuitError::Core)?
            }
            (SuperPart::Parametric { recipe }, acc) => {
                let embedded = embed_super(
                    &SuperPlan::unitary_superop(&recipe.realize(params)?),
                    &recipe.targets,
                    union,
                    dims,
                )?;
                match acc {
                    None => embedded,
                    Some(prev) => {
                        matmul_structured(&embedded, &prev).map_err(CircuitError::Core)?
                    }
                }
            }
        });
    }
    acc.ok_or_else(|| CircuitError::InvalidGate("empty superoperator composition".into()))
}

/// Structure class of an operator or superoperator, used by the density
/// compiler's cost model. The class of a product is predicted conservatively
/// (`diag · diag` stays diagonal, monomial-like products stay monomial,
/// anything else is dense); the emitted sweep is re-classified exactly with
/// [`OpKind::classify`], so the prediction only influences merge decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Structure {
    Diagonal,
    Monomial,
    Dense,
}

impl Structure {
    fn of(kind: &OpKind) -> Self {
        match kind {
            OpKind::Diagonal(_) => Structure::Diagonal,
            OpKind::Monomial { .. } => Structure::Monomial,
            OpKind::Dense => Structure::Dense,
        }
    }

    /// Structure of a product of two operators of these classes.
    fn join(self, other: Structure) -> Structure {
        use Structure::*;
        match (self, other) {
            (Diagonal, Diagonal) => Diagonal,
            (Diagonal | Monomial, Diagonal | Monomial) => Monomial,
            _ => Dense,
        }
    }

    /// Approximate cost of one superoperator sweep on a subspace of
    /// dimension `k`, in units of `N²` multiply-adds.
    fn sweep_cost(self, k: usize) -> usize {
        match self {
            Structure::Diagonal => 1,
            Structure::Monomial => 2,
            Structure::Dense => k * k,
        }
    }
}

/// A constituent operation the density compiler folds over.
enum DensityItem {
    /// A deterministic map (gate, fused block, or single-operator channel).
    /// `recipe` is present iff the operator depends on a free parameter.
    /// `tol` is the trace-preservation allowance the item contributes to a
    /// fold's compile-time validation: `0` for unitaries, the construction
    /// tolerance for single-operator channels (which may be intentionally
    /// lossy).
    Unitary {
        targets: Vec<usize>,
        plan: ApplyPlan,
        kind: OpKind,
        op: CMatrix,
        recipe: Option<OpRecipe>,
        tol: f64,
    },
    /// A multi-operator channel; `sup` is its precomputed superoperator and
    /// classification when the channel is superop-eligible.
    Channel { kernel: ChannelKernel, sup: Option<(CMatrix, OpKind)> },
}

/// An open (still-growing) superoperator block on the density compiler's
/// frontier. Like fusion's open blocks, live blocks have pairwise disjoint
/// supports, so they commute and closing order is irrelevant. Blocks are
/// structural — they record which items they absorbed; the composed
/// superoperator is materialised at close time (and a single-unitary block
/// closes as a plain sandwich, so noiseless circuits never pay the
/// Kronecker).
struct OpenSuper {
    /// Ascending union support.
    targets: Vec<usize>,
    sub_dim: usize,
    /// Absorbed item indices (ascending = program order after sorting).
    items: Vec<usize>,
    class: Structure,
    /// Sum of the constituents' standalone sweep costs (the cost of *not*
    /// folding), used by the merge rule.
    cost: usize,
}

impl DensityKernels {
    /// Compiles the shared execution plan into the density-specific plan:
    /// channels become superoperator sweeps where profitable, and adjacent
    /// operations merge under the cost rule below.
    ///
    /// ## Cost rule
    ///
    /// Each constituent has a standalone cost in units of `N²` multiply-adds:
    /// `2k` for a dense unitary sandwich (2 / 4 for diagonal / monomial) and
    /// `k²` for a dense superoperator sweep (1 / 2 for diagonal / monomial).
    /// A merge into a union of subspace dimension `k_U` is accepted only when
    /// the predicted union sweep cost does not exceed the sum of the
    /// constituents' standalone costs and `k_U` stays within
    /// [`SuperopConfig::max_dim`] — folding therefore **never increases**
    /// apply cost. A dense two-qudit unitary does *not* absorb its per-qudit
    /// noise channels (`k_U² = 256 > 2k + 2k²`), but a single-qudit gate
    /// folds with its channel, runs of same-support channels collapse to one
    /// sweep, and a two-qudit channel absorbs the two-qudit gate it follows.
    ///
    /// ## Parameter dependence
    ///
    /// Items whose operator carries a free parameter are classified
    /// **conservatively** for the cost model — diagonal iff their generators
    /// are diagonal (true at every binding), dense otherwise — so the folding
    /// topology is binding-independent and a compiled plan can be rebound in
    /// place. The emitted sweeps record their constituent parts; `bind`
    /// re-composes exactly those sweeps through the same code path the
    /// compiler used.
    pub(crate) fn compile(kernels: &CircuitKernels, config: &SuperopConfig) -> Result<Self> {
        let radix = Radix::new(kernels.dims.clone()).map_err(CircuitError::Core)?;
        let zeros = vec![0.0f64; kernels.num_params];
        let (items, item_origins) = collect_density_items(kernels, config, &radix)?;
        let mut builder = DensityFrontier {
            radix: &radix,
            dims: &kernels.dims,
            config,
            zeros,
            items: items.into_iter().map(Some).collect(),
            open: Vec::new(),
            wire: vec![None; kernels.dims.len()],
            steps: Vec::new(),
            step_items: Vec::new(),
            rebind: Vec::new(),
            stats: SuperopStats::default(),
        };

        if !config.enabled {
            for id in 0..builder.items.len() {
                builder.emit_verbatim(id)?;
            }
        } else {
            for id in 0..builder.items.len() {
                builder.push_item(id)?;
            }
            for slot in 0..builder.open.len() {
                if builder.open[slot].is_some() {
                    builder.close(slot)?;
                }
            }
        }
        Ok(Self {
            dims: kernels.dims.clone(),
            steps: builder.steps,
            item_origins,
            step_items: builder.step_items,
            fusion_stats: kernels.stats,
            stats: builder.stats,
            rebind: builder.rebind,
            num_params: kernels.num_params,
        })
    }

    /// Re-materialises every parameter-dependent density step at the given
    /// binding into a caller-owned [`BindBuffers`] overlay: sandwich steps
    /// re-realize their unitary, sweeps re-compose their recorded parts. The
    /// folding topology, stride plans and step order are parameter-invariant
    /// and never touched, so an `Arc`-shared density plan serves concurrent
    /// requests that each carry their own binding.
    ///
    /// The overlay is replaced wholesale on success and left untouched on
    /// error.
    ///
    /// # Errors
    /// Returns an error if `params` supplies fewer than `num_params` values.
    pub(crate) fn bind_into(&self, params: &[f64], binds: &mut BindBuffers) -> Result<()> {
        if params.len() < self.num_params {
            return Err(CircuitError::InvalidGate(format!(
                "binding supplies {} parameters but the plan needs {}",
                params.len(),
                self.num_params
            )));
        }
        // `rebind` entries were pushed at `steps.len()` during compilation,
        // so they are already ascending by step index.
        let mut overrides = Vec::with_capacity(self.rebind.len());
        for recipe in &self.rebind {
            match recipe {
                DensityRecipe::Sandwich { step, recipe } => {
                    let op = recipe.realize(params)?;
                    let kind = OpKind::classify(&op);
                    overrides.push((*step, op, kind));
                }
                DensityRecipe::Super { step, parts, targets } => {
                    let sup = compose_super_parts(parts, params, targets, &self.dims)?;
                    let kind = OpKind::classify(&sup);
                    overrides.push((*step, sup, kind));
                }
            }
        }
        binds.overrides = overrides;
        Ok(())
    }
}

/// Working state of the density compiler's superoperator frontier.
struct DensityFrontier<'a> {
    radix: &'a Radix,
    dims: &'a [usize],
    config: &'a SuperopConfig,
    /// The all-zero binding the compiled operators are materialised at.
    zeros: Vec<f64>,
    /// Constituents, consumed (taken) as their blocks close.
    items: Vec<Option<DensityItem>>,
    /// Slot-map of open blocks (freed entries become `None`).
    open: Vec<Option<OpenSuper>>,
    wire: Vec<Option<usize>>,
    steps: Vec<DensityStep>,
    /// Item indices consumed by each emitted step, parallel to `steps`.
    step_items: Vec<Vec<usize>>,
    rebind: Vec<DensityRecipe>,
    stats: SuperopStats,
}

impl DensityFrontier<'_> {
    /// The conservative structure class of an item for the (binding-
    /// independent) cost model.
    fn item_class(item: &DensityItem) -> Structure {
        match item {
            DensityItem::Unitary { kind, recipe, .. } => match recipe {
                Some(r) if r.diagonal_for_all_bindings() => Structure::Diagonal,
                Some(_) => Structure::Dense,
                None => Structure::of(kind),
            },
            DensityItem::Channel { sup, .. } => match sup {
                Some((_, kind)) => Structure::of(kind),
                None => Structure::Dense,
            },
        }
    }

    /// Emits an item verbatim (batching disabled): unitaries as sandwiches,
    /// channels on the per-term Kraus path.
    fn emit_verbatim(&mut self, id: usize) -> Result<()> {
        self.step_items.push(vec![id]);
        match self.items[id].take().expect("items are consumed once") {
            DensityItem::Unitary { plan, kind, op, recipe, .. } => {
                if let Some(recipe) = recipe {
                    self.rebind.push(DensityRecipe::Sandwich { step: self.steps.len(), recipe });
                }
                self.stats.unitary_steps += 1;
                self.steps.push(DensityStep::Unitary { plan, kind, op });
            }
            DensityItem::Channel { kernel, .. } => {
                self.stats.kraus_steps += 1;
                self.steps.push(DensityStep::Kraus(kernel));
            }
        }
        Ok(())
    }

    /// Closes the block in `slot`: a single-unitary block becomes a sandwich
    /// step, anything else one composed superoperator sweep.
    fn close(&mut self, slot: usize) -> Result<()> {
        let block = self.open[slot].take().expect("closing a live block");
        for &t in &block.targets {
            self.wire[t] = None;
        }
        let mut ids = block.items;
        ids.sort_unstable();
        if ids.len() == 1 {
            if let Some(DensityItem::Unitary { .. }) = self.items[ids[0]].as_ref() {
                return self.emit_verbatim(ids[0]);
            }
        }
        let mut parts = Vec::with_capacity(ids.len());
        let mut fallback = Vec::with_capacity(ids.len());
        let mut parametric = false;
        // Base slack for the compose/kron rounding, widened by each
        // constituent's own construction tolerance so intentionally lossy
        // channels (see `KrausChannel::new_with_tolerance`) stay legal.
        let mut defect_tol = qudit_core::guard::GuardConfig::DEFAULT_TOL;
        for id in ids.iter() {
            // Constant parts embed into the union once, here; only the
            // parametric parts re-embed on rebind.
            parts.push(match self.items[*id].take().expect("items are consumed once") {
                DensityItem::Unitary { recipe: Some(recipe), .. } => {
                    parametric = true;
                    SuperPart::Parametric { recipe }
                }
                DensityItem::Unitary { targets, plan, kind, op, recipe: None, tol } => {
                    defect_tol += tol;
                    fallback.push(SuperFallback::Unitary { plan, kind, op: op.clone() });
                    SuperPart::Const {
                        sup: embed_super(
                            &SuperPlan::unitary_superop(&op),
                            &targets,
                            &block.targets,
                            self.dims,
                        )?,
                    }
                }
                DensityItem::Channel { kernel, sup } => {
                    let (sup, _) = sup.expect("merged channels carry their superoperator");
                    defect_tol += kernel.channel.tolerance();
                    let part = SuperPart::Const {
                        sup: embed_super(&sup, &kernel.targets, &block.targets, self.dims)?,
                    };
                    fallback.push(SuperFallback::Kraus(kernel));
                    part
                }
            });
        }
        if parametric {
            // A rebind recomposes the sweep but would leave these payloads
            // stale, so a defect on a parametric sweep fails hard instead.
            fallback.clear();
        }
        let sup = compose_super_parts(&parts, &self.zeros, &block.targets, self.dims)?;
        let defect = SuperPlan::trace_defect(&sup, block.sub_dim);
        if defect > defect_tol || defect.is_nan() {
            return Err(CircuitError::InvalidChannel(format!(
                "folded superoperator on qudits {:?} is not trace preserving \
                 (defect {defect:.3e}, allowed {defect_tol:.3e})",
                block.targets
            )));
        }
        let plan = SuperPlan::new(self.radix, &block.targets).map_err(CircuitError::Core)?;
        let kind = OpKind::classify(&sup);
        self.stats.super_steps += 1;
        self.stats.max_super_dim = self.stats.max_super_dim.max(block.sub_dim);
        if ids.len() >= 2 {
            self.stats.multi_op_supers += 1;
            self.stats.ops_folded += ids.len();
        }
        if parametric {
            self.rebind.push(DensityRecipe::Super {
                step: self.steps.len(),
                parts,
                targets: block.targets,
            });
        }
        self.step_items.push(ids);
        self.steps.push(DensityStep::Super { plan, kind, sup, fallback, defect_tol });
        Ok(())
    }

    /// Closes every open block whose support intersects `targets`; the
    /// remaining blocks commute with the emitted step (disjoint supports).
    /// This is the same wire-local flush rule the fusion pass applies to its
    /// unitary frontier.
    fn flush_touching(&mut self, targets: &[usize]) -> Result<()> {
        let mut slots: Vec<usize> = targets.iter().filter_map(|&t| self.wire[t]).collect();
        slots.sort_unstable();
        slots.dedup();
        for slot in slots {
            self.close(slot)?;
        }
        Ok(())
    }

    /// Feeds one item to the frontier: greedy merge against the touched open
    /// blocks (in creation order) under the cost rule and budget, closing the
    /// blocks that cannot merge.
    fn push_item(&mut self, id: usize) -> Result<()> {
        let item = self.items[id].as_ref().expect("items are pushed once");
        let item_class = Self::item_class(item);
        let (targets, eligible, item_cost) = match item {
            DensityItem::Unitary { targets, plan, .. } => {
                let k = plan.sub_dim();
                let cost = match item_class {
                    Structure::Diagonal => 2,
                    Structure::Monomial => 4,
                    Structure::Dense => 2 * k,
                };
                (targets.clone(), k <= self.config.max_dim, cost)
            }
            DensityItem::Channel { kernel, sup } => {
                let cost = match sup {
                    Some((_, kind)) => Structure::of(kind).sweep_cost(kernel.plan.sub_dim()),
                    None => 0,
                };
                (kernel.targets.clone(), sup.is_some(), cost)
            }
        };
        if !eligible {
            // Too large to ever join a sweep (or an unprofitable/over-budget
            // channel): emit verbatim, flushing overlaps first.
            self.flush_touching(&targets)?;
            return self.emit_verbatim(id);
        }

        let mut slots: Vec<usize> = targets.iter().filter_map(|&t| self.wire[t]).collect();
        slots.sort_unstable();
        slots.dedup();

        let mut union: Vec<usize> = targets.clone();
        union.sort_unstable();
        let mut union_dim = self.radix.subspace_dim(&union).map_err(CircuitError::Core)?;
        let mut parts_cost = item_cost;
        let mut class = item_class;
        let mut accepted = Vec::new();
        for &s in &slots {
            let block = self.open[s].as_ref().expect("live slot");
            let mut tentative = union.clone();
            tentative.extend(block.targets.iter().copied());
            tentative.sort_unstable();
            tentative.dedup();
            let t_dim = self.radix.subspace_dim(&tentative).map_err(CircuitError::Core)?;
            let t_class = class.join(block.class);
            if t_dim <= self.config.max_dim && t_class.sweep_cost(t_dim) <= parts_cost + block.cost
            {
                accepted.push(s);
                union = tentative;
                union_dim = t_dim;
                parts_cost += block.cost;
                class = t_class;
            }
        }
        for &s in &slots {
            if !accepted.contains(&s) {
                self.close(s)?;
            }
        }

        let mut item_ids = vec![id];
        for &s in &accepted {
            let block = self.open[s].take().expect("live slot");
            for &t in &block.targets {
                self.wire[t] = None;
            }
            item_ids.extend(block.items);
        }

        let slot = self.open.len();
        for &t in &union {
            self.wire[t] = Some(slot);
        }
        self.open.push(Some(OpenSuper {
            targets: union,
            sub_dim: union_dim,
            items: item_ids,
            class,
            cost: parts_cost,
        }));
        Ok(())
    }
}

/// Linearises the shared plan into the density compiler's constituent items:
/// gate noise inlined after its gate, measurements as full target dephasing,
/// resets as the `|0⟩⟨i|` channel, barriers as their idle-loss channels.
/// Single-operator channels become unitary items (a one-term Kraus sum *is*
/// a sandwich), and each multi-operator channel precomputes its
/// superoperator when within budget and profitable (dense superoperator
/// sweeps cost `k²`; the per-term path costs `≈ 2mk + 2m`, so a dense
/// superoperator must satisfy `k² ≤ 2mk + 2m`).
fn collect_density_items(
    kernels: &CircuitKernels,
    config: &SuperopConfig,
    radix: &Radix,
) -> Result<(Vec<DensityItem>, Vec<ItemOrigin>)> {
    let mut items = Vec::with_capacity(kernels.steps.len());
    let mut origins: Vec<ItemOrigin> = Vec::with_capacity(kernels.steps.len());
    let push_channel = |items: &mut Vec<DensityItem>, kernel: ChannelKernel| -> Result<()> {
        if kernel.channel.operators().len() == 1 {
            items.push(DensityItem::Unitary {
                targets: kernel.targets.clone(),
                plan: kernel.plan.clone(),
                kind: kernel.kinds[0].clone(),
                op: kernel.channel.operators()[0].clone(),
                recipe: None,
                tol: kernel.channel.tolerance(),
            });
            return Ok(());
        }
        let k = kernel.plan.sub_dim();
        let sup = if config.enabled && k <= config.max_dim {
            let sup =
                SuperPlan::kraus_superop(kernel.channel.operators()).map_err(CircuitError::Core)?;
            // The superoperator's trace defect equals the Kraus completeness
            // defect, so a healthy fold must sit within the channel's own
            // construction tolerance (plus kron rounding slack).
            let defect = SuperPlan::trace_defect(&sup, k);
            let allowed = kernel.channel.tolerance() + 1e-9;
            if defect > allowed || defect.is_nan() {
                return Err(CircuitError::InvalidChannel(format!(
                    "superoperator of channel '{}' is not trace preserving \
                     (defect {defect:.3e}, allowed {allowed:.3e})",
                    kernel.channel.name(),
                )));
            }
            let kind = OpKind::classify(&sup);
            let m = kernel.channel.operators().len();
            let profitable = !matches!(kind, OpKind::Dense) || k * k <= 2 * m * k + 2 * m;
            profitable.then_some((sup, kind))
        } else {
            None
        };
        items.push(DensityItem::Channel { kernel, sup });
        Ok(())
    };

    for (step, sources) in kernels.steps.iter().zip(kernels.origins.iter()) {
        match step {
            ExecStep::Apply { targets, plan, kind, op, noise, recipe } => {
                origins.push(ItemOrigin {
                    sources: sources.clone(),
                    role: DensityRole::Primary,
                    targets: targets.clone(),
                    parametric: recipe.is_some(),
                });
                items.push(DensityItem::Unitary {
                    targets: targets.clone(),
                    plan: plan.clone(),
                    kind: kind.clone(),
                    op: op.clone(),
                    recipe: recipe.clone(),
                    tol: 0.0,
                });
                for (j, ch) in noise.iter().enumerate() {
                    origins.push(ItemOrigin {
                        sources: sources.clone(),
                        role: DensityRole::GateNoise(j),
                        targets: ch.targets.clone(),
                        parametric: false,
                    });
                    push_channel(&mut items, ch.clone())?;
                }
            }
            ExecStep::Channel(ch) => {
                origins.push(ItemOrigin {
                    sources: sources.clone(),
                    role: DensityRole::Primary,
                    targets: ch.targets.clone(),
                    parametric: false,
                });
                push_channel(&mut items, ch.clone())?;
            }
            ExecStep::Measure { targets } => {
                // Non-selective measurement: full dephasing of each target.
                for &t in targets {
                    origins.push(ItemOrigin {
                        sources: sources.clone(),
                        role: DensityRole::MeasureDephase(t),
                        targets: vec![t],
                        parametric: false,
                    });
                    let deph = KrausChannel::dephasing(kernels.dims[t], 1.0)?;
                    push_channel(&mut items, ChannelKernel::new(radix, deph, vec![t])?)?;
                }
            }
            ExecStep::Reset { target } => {
                origins.push(ItemOrigin {
                    sources: sources.clone(),
                    role: DensityRole::Reset,
                    targets: vec![*target],
                    parametric: false,
                });
                let d = kernels.dims[*target];
                let reset = KrausChannel::new("reset", vec![d], reset_channel(d))?;
                push_channel(&mut items, ChannelKernel::new(radix, reset, vec![*target])?)?;
            }
            ExecStep::Barrier => {
                for (q, ch) in kernels.barrier_loss.iter().enumerate() {
                    origins.push(ItemOrigin {
                        sources: sources.clone(),
                        role: DensityRole::BarrierLoss(q),
                        targets: ch.targets.clone(),
                        parametric: false,
                    });
                    push_channel(&mut items, ch.clone())?;
                }
            }
        }
    }
    debug_assert_eq!(items.len(), origins.len());
    Ok((items, origins))
}

/// Kraus operators of the reset-to-`|0⟩` channel: `K_i = |0⟩⟨i|`.
pub(crate) fn reset_channel(d: usize) -> Vec<CMatrix> {
    (0..d)
        .map(|i| {
            let mut k = CMatrix::zeros(d, d);
            k[(0, i)] = qudit_core::complex::c64(1.0, 0.0);
            k
        })
        .collect()
}
