//! Precompiled execution plans shared across shots and trajectories.
//!
//! Running a stochastic circuit many times (Monte-Carlo trajectories,
//! per-shot re-runs) repeats the same per-instruction setup work every run:
//! building the stride geometry for each gate's targets, classifying each
//! operator's structure, and constructing the noise model's Kraus channels.
//! [`CircuitKernels`] hoists all of that out of the run loop — and, since
//! PR 2, first runs the [`crate::sim::fusion`] pass so runs of adjacent
//! gates execute as single fused superblocks. A kernel set is built once per
//! `(circuit, noise model, fusion config)` triple and is immutable and
//! `Sync` afterwards, so the parallel trajectory executor shares one
//! instance across worker threads. Mutable per-run scratch lives in the
//! runner.
//!
//! Under the default wire-local flush policy the fused plan is a
//! **re-ordering** of the source circuit: a fused block whose support is
//! disjoint from a measurement/reset/channel can be emitted *after* it (the
//! two commute exactly, see [`crate::sim::fusion`]). Both plan consumers —
//! the shared [`ExecStep`] list the statevector/trajectory runners walk, and
//! the [`DensityKernels`] superoperator frontier — therefore only rely on
//! step order *within* a wire's light-cone, never on global program order.
//! The density frontier applies the same wire-local rule: a per-term
//! `Kraus` fallback or an over-budget sandwich closes only the open
//! superoperator blocks it touches, and idle-loss barrier channels flush
//! (or absorb into) exactly the per-qudit blocks of the wires they decay.

use qudit_core::apply::{ApplyPlan, OpKind};
use qudit_core::matrix::CMatrix;
use qudit_core::Complex64;

use crate::circuit::{Circuit, Instruction};
use crate::error::{CircuitError, Result};
use crate::noise::{KrausChannel, NoiseModel};
use crate::sim::fusion::{fuse, FusedInst, FusionConfig, FusionStats};

/// A Kraus channel with its application geometry precomputed.
#[derive(Debug, Clone)]
pub(crate) struct ChannelKernel {
    pub channel: KrausChannel,
    pub plan: ApplyPlan,
    /// Structure classification of each Kraus operator.
    pub kinds: Vec<OpKind>,
    /// The qudits the channel acts on (in operator index order).
    pub targets: Vec<usize>,
}

impl ChannelKernel {
    pub(crate) fn new(
        radix: &qudit_core::Radix,
        channel: KrausChannel,
        targets: Vec<usize>,
    ) -> Result<Self> {
        let plan = ApplyPlan::new(radix, &targets).map_err(CircuitError::Core)?;
        let kinds = channel.operators().iter().map(OpKind::classify).collect();
        Ok(Self { channel, plan, kinds, targets })
    }
}

/// One step of the compiled execution plan. Unlike the original instruction
/// list, apply steps own their operator matrix: a step may be a fused
/// superblock that exists nowhere in the circuit.
#[derive(Debug, Clone)]
pub(crate) enum ExecStep {
    /// Apply a (possibly fused) unitary operator, then the noise channels the
    /// model inserts after it. `targets` is the operator's support (in
    /// operator index order), kept for the density compiler's superoperator
    /// folding pass.
    Apply {
        targets: Vec<usize>,
        plan: ApplyPlan,
        kind: OpKind,
        op: CMatrix,
        noise: Vec<ChannelKernel>,
    },
    /// An explicit channel instruction.
    Channel(ChannelKernel),
    /// A computational-basis measurement.
    Measure { targets: Vec<usize> },
    /// Reset of one qudit to `|0⟩`.
    Reset { target: usize },
    /// A barrier at which idle-loss channels apply.
    Barrier,
}

/// The compiled execution plan of a circuit under a noise model and fusion
/// configuration, plus the idle-loss channels applied at barriers.
#[derive(Debug, Clone)]
pub(crate) struct CircuitKernels {
    /// Per-qudit dimensions of the register the plan was compiled for.
    pub dims: Vec<usize>,
    pub steps: Vec<ExecStep>,
    /// One photon-loss channel per qudit, used at each `Barrier` when the
    /// model has idle loss (empty otherwise).
    pub barrier_loss: Vec<ChannelKernel>,
    /// What the fusion pass did.
    pub stats: FusionStats,
}

impl CircuitKernels {
    pub(crate) fn with_config(
        circuit: &Circuit,
        noise: &NoiseModel,
        config: &FusionConfig,
    ) -> Result<Self> {
        let radix = circuit.radix();
        let dims = circuit.dims();

        // Per-gate noise channels; a gate the model decorates is a fusion
        // barrier and executes verbatim.
        let mut gate_noise: Vec<Option<Vec<(KrausChannel, usize)>>> =
            Vec::with_capacity(circuit.len());
        let mut fusable = Vec::with_capacity(circuit.len());
        for inst in circuit.instructions() {
            match inst {
                Instruction::Unitary { targets, .. } => {
                    let channels = noise.channels_after_gate(targets, dims)?;
                    fusable.push(channels.is_empty());
                    gate_noise.push(Some(channels));
                }
                _ => {
                    fusable.push(false);
                    gate_noise.push(None);
                }
            }
        }

        let has_barrier = circuit.instructions().iter().any(|i| matches!(i, Instruction::Barrier));
        let lossy_barriers = noise.idle_photon_loss > 0.0 && has_barrier;
        let mut barrier_loss = Vec::new();
        if lossy_barriers {
            for (q, &d) in dims.iter().enumerate() {
                let loss = KrausChannel::photon_loss(d, noise.idle_photon_loss)?;
                barrier_loss.push(ChannelKernel::new(radix, loss, vec![q])?);
            }
        }

        let (fused, stats) = fuse(circuit, &fusable, !lossy_barriers, config)?;

        let mut steps = Vec::with_capacity(fused.len());
        for item in fused {
            steps.push(match item {
                FusedInst::Block { targets, matrix } => {
                    let plan = ApplyPlan::new(radix, &targets).map_err(CircuitError::Core)?;
                    let kind = OpKind::classify(&matrix);
                    ExecStep::Apply { targets, plan, kind, op: matrix, noise: Vec::new() }
                }
                FusedInst::Gate { index } => {
                    let Instruction::Unitary { gate, targets } = &circuit.instructions()[index]
                    else {
                        unreachable!("fusion pass only tags unitaries as gates")
                    };
                    let plan = ApplyPlan::new(radix, targets).map_err(CircuitError::Core)?;
                    let kind = OpKind::classify(gate.matrix());
                    let noise_channels = gate_noise[index]
                        .take()
                        .expect("unitary instructions carry a channel list")
                        .into_iter()
                        .map(|(channel, qudit)| ChannelKernel::new(radix, channel, vec![qudit]))
                        .collect::<Result<Vec<_>>>()?;
                    ExecStep::Apply {
                        targets: targets.clone(),
                        plan,
                        kind,
                        op: gate.matrix().clone(),
                        noise: noise_channels,
                    }
                }
                FusedInst::Passthrough { index } => match &circuit.instructions()[index] {
                    Instruction::Measure { targets } => {
                        ExecStep::Measure { targets: targets.clone() }
                    }
                    Instruction::Reset { target } => ExecStep::Reset { target: *target },
                    Instruction::Channel { channel, targets } => ExecStep::Channel(
                        ChannelKernel::new(radix, channel.clone(), targets.clone())?,
                    ),
                    Instruction::Barrier => ExecStep::Barrier,
                    Instruction::Unitary { .. } => {
                        unreachable!("unitaries never pass through the fusion pass")
                    }
                },
            });
        }
        Ok(Self { dims: dims.to_vec(), steps, barrier_loss, stats })
    }
}

/// Reusable per-run working memory for the kernel paths.
#[derive(Debug, Default)]
pub(crate) struct RunScratch {
    /// Gather/apply scratch sized to the largest operator block.
    pub block: Vec<Complex64>,
    /// Kraus branch probabilities.
    pub branch_probs: Vec<f64>,
}

// --------------------------------------------------------------------------
// Density-side compilation: superoperator batching over vectorised ρ.
// --------------------------------------------------------------------------

use qudit_core::superop::SuperPlan;
use qudit_core::Radix;

use crate::sim::fusion::embed_to;

/// Configuration of the density-matrix simulator's superoperator batching
/// (see [`crate::sim::DensityMatrixSimulator::with_superop`]).
///
/// With batching enabled (the default), the density compiler turns every
/// channel whose superoperator `Σ K ⊗ conj(K)` is profitable into a **single
/// strided sweep** over the vectorised density matrix, and folds
/// channel-adjacent unitary runs into the same sweep when that never
/// increases apply cost. Disabled, every channel executes on the per-term
/// Kraus path (`2m` sweeps plus `m` accumulations for an `m`-operator
/// channel), which is the reference the property tests compare against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperopConfig {
    /// Master switch; disabled keeps all channels on the per-term path.
    pub enabled: bool,
    /// Maximum target-subspace dimension `k` a superoperator sweep may span
    /// (the superoperator matrix is `k² × k²`; the default of 16 caps it at
    /// `256 × 256` — a two-qudit `d = 4` channel, 1 MiB).
    pub max_dim: usize,
}

impl Default for SuperopConfig {
    fn default() -> Self {
        Self { enabled: true, max_dim: 16 }
    }
}

impl SuperopConfig {
    /// A configuration with batching switched off (per-term execution).
    pub fn disabled() -> Self {
        Self { enabled: false, ..Self::default() }
    }
}

/// What the density compiler did to an execution plan; exposed for
/// benchmarks, tests and CI assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuperopStats {
    /// Superoperator sweeps in the compiled density plan.
    pub super_steps: usize,
    /// Sweeps that absorbed at least two constituent operations.
    pub multi_op_supers: usize,
    /// Constituent operations (unitaries, channels, measurement dephasing,
    /// resets, idle-loss) absorbed into multi-op sweeps.
    pub ops_folded: usize,
    /// Standalone unitary (two-sided sandwich) steps.
    pub unitary_steps: usize,
    /// Channels kept on the per-term Kraus path.
    pub kraus_steps: usize,
    /// Largest target-subspace dimension among superoperator sweeps.
    pub max_super_dim: usize,
}

/// One step of the compiled **density** execution plan. Measurements, resets
/// and barrier losses from the shared [`ExecStep`] plan are compiled away
/// into their channel forms, so the density run loop is just three arms.
#[derive(Debug, Clone)]
pub(crate) enum DensityStep {
    /// A standalone deterministic map, applied as the two-sided sandwich
    /// `ρ → U ρ U†` (cheaper than its superoperator for `k > 2`).
    Unitary { plan: ApplyPlan, kind: OpKind, op: CMatrix },
    /// One superoperator sweep over vectorised ρ: a whole channel — possibly
    /// with folded adjacent unitaries and further channels — in one pass.
    Super { plan: SuperPlan, kind: OpKind, sup: CMatrix },
    /// Per-term Kraus fallback for channels whose superoperator would be
    /// over budget or cost more than `2m` strided sweeps.
    Kraus(ChannelKernel),
}

/// The compiled density execution plan (see [`DensityStep`]).
#[derive(Debug, Clone)]
pub(crate) struct DensityKernels {
    pub dims: Vec<usize>,
    pub steps: Vec<DensityStep>,
    /// What the (shared) fusion pass did.
    pub fusion_stats: FusionStats,
    /// What the superoperator compiler did.
    pub stats: SuperopStats,
}

/// Structure class of an operator or superoperator, used by the density
/// compiler's cost model. The class of a product is predicted conservatively
/// (`diag · diag` stays diagonal, monomial-like products stay monomial,
/// anything else is dense); the emitted sweep is re-classified exactly with
/// [`OpKind::classify`], so the prediction only influences merge decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Structure {
    Diagonal,
    Monomial,
    Dense,
}

impl Structure {
    fn of(kind: &OpKind) -> Self {
        match kind {
            OpKind::Diagonal(_) => Structure::Diagonal,
            OpKind::Monomial { .. } => Structure::Monomial,
            OpKind::Dense => Structure::Dense,
        }
    }

    /// Structure of a product of two operators of these classes.
    fn join(self, other: Structure) -> Structure {
        use Structure::*;
        match (self, other) {
            (Diagonal, Diagonal) => Diagonal,
            (Diagonal | Monomial, Diagonal | Monomial) => Monomial,
            _ => Dense,
        }
    }

    /// Approximate cost of one superoperator sweep on a subspace of
    /// dimension `k`, in units of `N²` multiply-adds.
    fn sweep_cost(self, k: usize) -> usize {
        match self {
            Structure::Diagonal => 1,
            Structure::Monomial => 2,
            Structure::Dense => k * k,
        }
    }
}

/// A constituent operation the density compiler folds over.
enum DensityItem {
    /// A deterministic map (gate, fused block, or single-operator channel).
    Unitary { targets: Vec<usize>, plan: ApplyPlan, kind: OpKind, op: CMatrix },
    /// A multi-operator channel; `sup` is its precomputed superoperator and
    /// classification when the channel is superop-eligible.
    Channel { kernel: ChannelKernel, sup: Option<(CMatrix, OpKind)> },
}

/// A single noiseless unitary held on the frontier: it closes as a sandwich
/// step, and its superoperator `U ⊗ conj(U)` is only built if a later item
/// actually merges with it (noiseless circuits never pay the Kronecker).
struct PendingUnitary {
    plan: ApplyPlan,
    kind: OpKind,
    op: CMatrix,
    /// Original (possibly unsorted) target order the operator is indexed in.
    targets: Vec<usize>,
}

/// An open (still-growing) superoperator block on the density compiler's
/// frontier. Like fusion's open blocks, live blocks have pairwise disjoint
/// supports, so they commute and closing order is irrelevant.
struct OpenSuper {
    /// Ascending union support.
    targets: Vec<usize>,
    sub_dim: usize,
    /// Superoperator over the support (`sub_dim² × sub_dim²`), composed in
    /// program order; `None` iff the block holds a single [`PendingUnitary`]
    /// (derivable on demand at merge time).
    sup: Option<CMatrix>,
    class: Structure,
    /// Sum of the constituents' standalone sweep costs (the cost of *not*
    /// folding), used by the merge rule.
    cost: usize,
    ops: usize,
    /// Set iff the block holds exactly one noiseless unitary; such a block
    /// closes as a sandwich step instead of a superoperator sweep.
    unitary: Option<PendingUnitary>,
}

impl DensityKernels {
    /// Compiles the shared execution plan into the density-specific plan:
    /// channels become superoperator sweeps where profitable, and adjacent
    /// operations merge under the cost rule below.
    ///
    /// ## Cost rule
    ///
    /// Each constituent has a standalone cost in units of `N²` multiply-adds:
    /// `2k` for a dense unitary sandwich (2 / 4 for diagonal / monomial) and
    /// `k²` for a dense superoperator sweep (1 / 2 for diagonal / monomial).
    /// A merge into a union of subspace dimension `k_U` is accepted only when
    /// the predicted union sweep cost does not exceed the sum of the
    /// constituents' standalone costs and `k_U` stays within
    /// [`SuperopConfig::max_dim`] — folding therefore **never increases**
    /// apply cost. A dense two-qudit unitary does *not* absorb its per-qudit
    /// noise channels (`k_U² = 256 > 2k + 2k²`), but a single-qudit gate
    /// folds with its channel, runs of same-support channels collapse to one
    /// sweep, and a two-qudit channel absorbs the two-qudit gate it follows.
    pub(crate) fn compile(kernels: &CircuitKernels, config: &SuperopConfig) -> Result<Self> {
        let radix = Radix::new(kernels.dims.clone()).map_err(CircuitError::Core)?;
        let items = collect_density_items(kernels, config, &radix)?;

        let mut stats = SuperopStats::default();
        let mut steps = Vec::with_capacity(items.len());

        if !config.enabled {
            for item in items {
                match item {
                    DensityItem::Unitary { plan, kind, op, .. } => {
                        stats.unitary_steps += 1;
                        steps.push(DensityStep::Unitary { plan, kind, op });
                    }
                    DensityItem::Channel { kernel, .. } => {
                        stats.kraus_steps += 1;
                        steps.push(DensityStep::Kraus(kernel));
                    }
                }
            }
            return Ok(Self {
                dims: kernels.dims.clone(),
                steps,
                fusion_stats: kernels.stats,
                stats,
            });
        }

        let mut open: Vec<Option<OpenSuper>> = Vec::new();
        let mut wire: Vec<Option<usize>> = vec![None; kernels.dims.len()];

        let close = |open: &mut Vec<Option<OpenSuper>>,
                     wire: &mut Vec<Option<usize>>,
                     steps: &mut Vec<DensityStep>,
                     stats: &mut SuperopStats,
                     slot: usize|
         -> Result<()> {
            let block = open[slot].take().expect("closing a live block");
            for &t in &block.targets {
                wire[t] = None;
            }
            if let Some(PendingUnitary { plan, kind, op, .. }) = block.unitary {
                stats.unitary_steps += 1;
                steps.push(DensityStep::Unitary { plan, kind, op });
            } else {
                let sup = block.sup.expect("non-unitary blocks carry their superoperator");
                let plan = SuperPlan::new(&radix, &block.targets).map_err(CircuitError::Core)?;
                let kind = OpKind::classify(&sup);
                stats.super_steps += 1;
                stats.max_super_dim = stats.max_super_dim.max(block.sub_dim);
                if block.ops >= 2 {
                    stats.multi_op_supers += 1;
                    stats.ops_folded += block.ops;
                }
                steps.push(DensityStep::Super { plan, kind, sup });
            }
            Ok(())
        };
        // Closes every open block whose support intersects `targets`; the
        // remaining blocks commute with the emitted step (disjoint supports).
        // This is the same wire-local flush rule the fusion pass applies to
        // its unitary frontier.
        let flush_touching = |open: &mut Vec<Option<OpenSuper>>,
                              wire: &mut Vec<Option<usize>>,
                              steps: &mut Vec<DensityStep>,
                              stats: &mut SuperopStats,
                              targets: &[usize]|
         -> Result<()> {
            let mut slots: Vec<usize> = targets.iter().filter_map(|&t| wire[t]).collect();
            slots.sort_unstable();
            slots.dedup();
            for slot in slots {
                close(open, wire, steps, stats, slot)?;
            }
            Ok(())
        };

        for item in items {
            // Standalone form of the item: its superoperator (channels carry
            // it; unitaries defer it to merge time), class, cost, and
            // sandwich fallback.
            let (targets, item_sup, item_class, item_cost, sandwich) = match item {
                DensityItem::Unitary { targets, plan, kind, op } => {
                    let k = plan.sub_dim();
                    let class = Structure::of(&kind);
                    let cost = match class {
                        Structure::Diagonal => 2,
                        Structure::Monomial => 4,
                        Structure::Dense => 2 * k,
                    };
                    if k > config.max_dim {
                        // Too large to ever join a superoperator; emit the
                        // sandwich directly (ordering: flush overlaps first).
                        flush_touching(&mut open, &mut wire, &mut steps, &mut stats, &targets)?;
                        stats.unitary_steps += 1;
                        steps.push(DensityStep::Unitary { plan, kind, op });
                        continue;
                    }
                    (
                        targets.clone(),
                        None,
                        class,
                        cost,
                        Some(PendingUnitary { plan, kind, op, targets }),
                    )
                }
                DensityItem::Channel { kernel, sup } => {
                    let Some((sup, sup_kind)) = sup else {
                        // Over budget or unprofitable: per-term path.
                        flush_touching(
                            &mut open,
                            &mut wire,
                            &mut steps,
                            &mut stats,
                            &kernel.targets,
                        )?;
                        stats.kraus_steps += 1;
                        steps.push(DensityStep::Kraus(kernel));
                        continue;
                    };
                    let class = Structure::of(&sup_kind);
                    let cost = class.sweep_cost(kernel.plan.sub_dim());
                    (kernel.targets.clone(), Some(sup), class, cost, None)
                }
            };

            // Greedy merge against the touched open blocks, in creation
            // order, under the cost rule and budget (see the method docs).
            let mut slots: Vec<usize> = targets.iter().filter_map(|&t| wire[t]).collect();
            slots.sort_unstable();
            slots.dedup();

            let mut union: Vec<usize> = targets.clone();
            union.sort_unstable();
            let mut union_dim = radix.subspace_dim(&union).map_err(CircuitError::Core)?;
            let mut parts_cost = item_cost;
            let mut class = item_class;
            let mut accepted = Vec::new();
            for &s in &slots {
                let block = open[s].as_ref().expect("live slot");
                let mut tentative = union.clone();
                tentative.extend(block.targets.iter().copied());
                tentative.sort_unstable();
                tentative.dedup();
                let t_dim = radix.subspace_dim(&tentative).map_err(CircuitError::Core)?;
                let t_class = class.join(block.class);
                if t_dim <= config.max_dim && t_class.sweep_cost(t_dim) <= parts_cost + block.cost {
                    accepted.push(s);
                    union = tentative;
                    union_dim = t_dim;
                    parts_cost += block.cost;
                    class = t_class;
                }
            }
            for &s in &slots {
                if !accepted.contains(&s) {
                    close(&mut open, &mut wire, &mut steps, &mut stats, s)?;
                }
            }

            let n = radix.len();
            let doubled = |ts: &[usize]| -> Vec<usize> {
                let mut d = Vec::with_capacity(2 * ts.len());
                d.extend_from_slice(ts);
                d.extend(ts.iter().map(|&t| t + n));
                d
            };
            let union_doubled = doubled(&union);
            let union_doubled_dims: Vec<usize> = {
                let dims: Vec<usize> = union.iter().map(|&t| kernels.dims[t]).collect();
                dims.iter().chain(dims.iter()).copied().collect()
            };

            let (sup, ops, unitary) = if accepted.is_empty() {
                match sandwich {
                    // A lone unitary defers its superoperator: if nothing
                    // ever merges, the block closes as a plain sandwich and
                    // the Kronecker is never built.
                    Some(pending) => (None, 1, Some(pending)),
                    None => {
                        let item_sup = item_sup.expect("channel items carry their superoperator");
                        let sup = if union == targets {
                            item_sup
                        } else {
                            // Canonicalise unsorted targets to the ascending
                            // union.
                            embed_to(
                                &union_doubled,
                                &union_doubled_dims,
                                &doubled(&targets),
                                &item_sup,
                            )?
                        };
                        (Some(sup), 1, None)
                    }
                }
            } else {
                // Accepted blocks are pairwise disjoint and all precede the
                // item in program order, so their product order is free and
                // the item multiplies last.
                let mut acc: Option<CMatrix> = None;
                let mut ops = 1usize;
                for &s in &accepted {
                    let block = open[s].take().expect("live slot");
                    for &t in &block.targets {
                        wire[t] = None;
                    }
                    ops += block.ops;
                    // Deferred unitary blocks build their superoperator now,
                    // in the operator's original target order.
                    let (block_sup, block_from) = match (block.sup, block.unitary) {
                        (Some(sup), _) => (sup, block.targets),
                        (None, Some(pending)) => {
                            (SuperPlan::unitary_superop(&pending.op), pending.targets)
                        }
                        (None, None) => {
                            unreachable!("blocks without a superoperator hold a unitary")
                        }
                    };
                    let embedded = embed_to(
                        &union_doubled,
                        &union_doubled_dims,
                        &doubled(&block_from),
                        &block_sup,
                    )?;
                    acc = Some(match acc {
                        Some(prev) => embedded.matmul(&prev).map_err(CircuitError::Core)?,
                        None => embedded,
                    });
                }
                let item_sup = match item_sup {
                    Some(sup) => sup,
                    None => SuperPlan::unitary_superop(
                        &sandwich.as_ref().expect("unitary items carry their sandwich").op,
                    ),
                };
                let item_embedded =
                    embed_to(&union_doubled, &union_doubled_dims, &doubled(&targets), &item_sup)?;
                let sup = item_embedded
                    .matmul(&acc.expect("at least one block merged"))
                    .map_err(CircuitError::Core)?;
                (Some(sup), ops, None)
            };

            let slot = open.len();
            for &t in &union {
                wire[t] = Some(slot);
            }
            open.push(Some(OpenSuper {
                targets: union,
                sub_dim: union_dim,
                sup,
                class,
                cost: parts_cost,
                ops,
                unitary,
            }));
        }

        for slot in 0..open.len() {
            if open[slot].is_some() {
                close(&mut open, &mut wire, &mut steps, &mut stats, slot)?;
            }
        }
        Ok(Self { dims: kernels.dims.clone(), steps, fusion_stats: kernels.stats, stats })
    }
}

/// Linearises the shared plan into the density compiler's constituent items:
/// gate noise inlined after its gate, measurements as full target dephasing,
/// resets as the `|0⟩⟨i|` channel, barriers as their idle-loss channels.
/// Single-operator channels become unitary items (a one-term Kraus sum *is*
/// a sandwich), and each multi-operator channel precomputes its
/// superoperator when within budget and profitable (dense superoperator
/// sweeps cost `k²`; the per-term path costs `≈ 2mk + 2m`, so a dense
/// superoperator must satisfy `k² ≤ 2mk + 2m`).
fn collect_density_items(
    kernels: &CircuitKernels,
    config: &SuperopConfig,
    radix: &Radix,
) -> Result<Vec<DensityItem>> {
    let mut items = Vec::with_capacity(kernels.steps.len());
    let push_channel = |items: &mut Vec<DensityItem>, kernel: ChannelKernel| -> Result<()> {
        if kernel.channel.operators().len() == 1 {
            items.push(DensityItem::Unitary {
                targets: kernel.targets.clone(),
                plan: kernel.plan.clone(),
                kind: kernel.kinds[0].clone(),
                op: kernel.channel.operators()[0].clone(),
            });
            return Ok(());
        }
        let k = kernel.plan.sub_dim();
        let sup = if config.enabled && k <= config.max_dim {
            let sup =
                SuperPlan::kraus_superop(kernel.channel.operators()).map_err(CircuitError::Core)?;
            let kind = OpKind::classify(&sup);
            let m = kernel.channel.operators().len();
            let profitable = !matches!(kind, OpKind::Dense) || k * k <= 2 * m * k + 2 * m;
            profitable.then_some((sup, kind))
        } else {
            None
        };
        items.push(DensityItem::Channel { kernel, sup });
        Ok(())
    };

    for step in &kernels.steps {
        match step {
            ExecStep::Apply { targets, plan, kind, op, noise } => {
                items.push(DensityItem::Unitary {
                    targets: targets.clone(),
                    plan: plan.clone(),
                    kind: kind.clone(),
                    op: op.clone(),
                });
                for ch in noise {
                    push_channel(&mut items, ch.clone())?;
                }
            }
            ExecStep::Channel(ch) => push_channel(&mut items, ch.clone())?,
            ExecStep::Measure { targets } => {
                // Non-selective measurement: full dephasing of each target.
                for &t in targets {
                    let deph = KrausChannel::dephasing(kernels.dims[t], 1.0)?;
                    push_channel(&mut items, ChannelKernel::new(radix, deph, vec![t])?)?;
                }
            }
            ExecStep::Reset { target } => {
                let d = kernels.dims[*target];
                let reset = KrausChannel::new("reset", vec![d], reset_channel(d))?;
                push_channel(&mut items, ChannelKernel::new(radix, reset, vec![*target])?)?;
            }
            ExecStep::Barrier => {
                for ch in &kernels.barrier_loss {
                    push_channel(&mut items, ch.clone())?;
                }
            }
        }
    }
    Ok(items)
}

/// Kraus operators of the reset-to-`|0⟩` channel: `K_i = |0⟩⟨i|`.
pub(crate) fn reset_channel(d: usize) -> Vec<CMatrix> {
    (0..d)
        .map(|i| {
            let mut k = CMatrix::zeros(d, d);
            k[(0, i)] = qudit_core::complex::c64(1.0, 0.0);
            k
        })
        .collect()
}
