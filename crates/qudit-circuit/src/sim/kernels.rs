//! Precompiled execution plans shared across shots and trajectories.
//!
//! Running a stochastic circuit many times (Monte-Carlo trajectories,
//! per-shot re-runs) repeats the same per-instruction setup work every run:
//! building the stride geometry for each gate's targets, classifying each
//! operator's structure, and constructing the noise model's Kraus channels.
//! [`CircuitKernels`] hoists all of that out of the run loop — and, since
//! PR 2, first runs the [`crate::sim::fusion`] pass so runs of adjacent
//! gates execute as single fused superblocks. A kernel set is built once per
//! `(circuit, noise model, fusion config)` triple and is immutable and
//! `Sync` afterwards, so the parallel trajectory executor shares one
//! instance across worker threads. Mutable per-run scratch lives in the
//! runner.

use qudit_core::apply::{ApplyPlan, OpKind};
use qudit_core::matrix::CMatrix;
use qudit_core::Complex64;

use crate::circuit::{Circuit, Instruction};
use crate::error::{CircuitError, Result};
use crate::noise::{KrausChannel, NoiseModel};
use crate::sim::fusion::{fuse, FusedInst, FusionConfig, FusionStats};

/// A Kraus channel with its application geometry precomputed.
#[derive(Debug, Clone)]
pub(crate) struct ChannelKernel {
    pub channel: KrausChannel,
    pub plan: ApplyPlan,
    /// Structure classification of each Kraus operator.
    pub kinds: Vec<OpKind>,
}

impl ChannelKernel {
    pub(crate) fn new(
        radix: &qudit_core::Radix,
        channel: KrausChannel,
        targets: Vec<usize>,
    ) -> Result<Self> {
        let plan = ApplyPlan::new(radix, &targets).map_err(CircuitError::Core)?;
        let kinds = channel.operators().iter().map(OpKind::classify).collect();
        Ok(Self { channel, plan, kinds })
    }
}

/// One step of the compiled execution plan. Unlike the original instruction
/// list, apply steps own their operator matrix: a step may be a fused
/// superblock that exists nowhere in the circuit.
#[derive(Debug, Clone)]
pub(crate) enum ExecStep {
    /// Apply a (possibly fused) unitary operator, then the noise channels the
    /// model inserts after it.
    Apply { plan: ApplyPlan, kind: OpKind, op: CMatrix, noise: Vec<ChannelKernel> },
    /// An explicit channel instruction.
    Channel(ChannelKernel),
    /// A computational-basis measurement.
    Measure { targets: Vec<usize> },
    /// Reset of one qudit to `|0⟩`.
    Reset { target: usize },
    /// A barrier at which idle-loss channels apply.
    Barrier,
}

/// The compiled execution plan of a circuit under a noise model and fusion
/// configuration, plus the idle-loss channels applied at barriers.
#[derive(Debug, Clone)]
pub(crate) struct CircuitKernels {
    /// Per-qudit dimensions of the register the plan was compiled for.
    pub dims: Vec<usize>,
    pub steps: Vec<ExecStep>,
    /// One photon-loss channel per qudit, used at each `Barrier` when the
    /// model has idle loss (empty otherwise).
    pub barrier_loss: Vec<ChannelKernel>,
    /// What the fusion pass did.
    pub stats: FusionStats,
}

impl CircuitKernels {
    pub(crate) fn with_config(
        circuit: &Circuit,
        noise: &NoiseModel,
        config: &FusionConfig,
    ) -> Result<Self> {
        let radix = circuit.radix();
        let dims = circuit.dims();

        // Per-gate noise channels; a gate the model decorates is a fusion
        // barrier and executes verbatim.
        let mut gate_noise: Vec<Option<Vec<(KrausChannel, usize)>>> =
            Vec::with_capacity(circuit.len());
        let mut fusable = Vec::with_capacity(circuit.len());
        for inst in circuit.instructions() {
            match inst {
                Instruction::Unitary { targets, .. } => {
                    let channels = noise.channels_after_gate(targets, dims)?;
                    fusable.push(channels.is_empty());
                    gate_noise.push(Some(channels));
                }
                _ => {
                    fusable.push(false);
                    gate_noise.push(None);
                }
            }
        }

        let has_barrier = circuit.instructions().iter().any(|i| matches!(i, Instruction::Barrier));
        let lossy_barriers = noise.idle_photon_loss > 0.0 && has_barrier;
        let mut barrier_loss = Vec::new();
        if lossy_barriers {
            for (q, &d) in dims.iter().enumerate() {
                let loss = KrausChannel::photon_loss(d, noise.idle_photon_loss)?;
                barrier_loss.push(ChannelKernel::new(radix, loss, vec![q])?);
            }
        }

        let (fused, stats) = fuse(circuit, &fusable, !lossy_barriers, config)?;

        let mut steps = Vec::with_capacity(fused.len());
        for item in fused {
            steps.push(match item {
                FusedInst::Block { targets, matrix } => {
                    let plan = ApplyPlan::new(radix, &targets).map_err(CircuitError::Core)?;
                    let kind = OpKind::classify(&matrix);
                    ExecStep::Apply { plan, kind, op: matrix, noise: Vec::new() }
                }
                FusedInst::Gate { index } => {
                    let Instruction::Unitary { gate, targets } = &circuit.instructions()[index]
                    else {
                        unreachable!("fusion pass only tags unitaries as gates")
                    };
                    let plan = ApplyPlan::new(radix, targets).map_err(CircuitError::Core)?;
                    let kind = OpKind::classify(gate.matrix());
                    let noise_channels = gate_noise[index]
                        .take()
                        .expect("unitary instructions carry a channel list")
                        .into_iter()
                        .map(|(channel, qudit)| ChannelKernel::new(radix, channel, vec![qudit]))
                        .collect::<Result<Vec<_>>>()?;
                    ExecStep::Apply { plan, kind, op: gate.matrix().clone(), noise: noise_channels }
                }
                FusedInst::Passthrough { index } => match &circuit.instructions()[index] {
                    Instruction::Measure { targets } => {
                        ExecStep::Measure { targets: targets.clone() }
                    }
                    Instruction::Reset { target } => ExecStep::Reset { target: *target },
                    Instruction::Channel { channel, targets } => ExecStep::Channel(
                        ChannelKernel::new(radix, channel.clone(), targets.clone())?,
                    ),
                    Instruction::Barrier => ExecStep::Barrier,
                    Instruction::Unitary { .. } => {
                        unreachable!("unitaries never pass through the fusion pass")
                    }
                },
            });
        }
        Ok(Self { dims: dims.to_vec(), steps, barrier_loss, stats })
    }
}

/// Reusable per-run working memory for the kernel paths.
#[derive(Debug, Default)]
pub(crate) struct RunScratch {
    /// Gather/apply scratch sized to the largest operator block.
    pub block: Vec<Complex64>,
    /// Kraus branch probabilities.
    pub branch_probs: Vec<f64>,
}
