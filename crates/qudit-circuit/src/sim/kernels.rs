//! Precompiled per-instruction kernels shared across shots and trajectories.
//!
//! Running a stochastic circuit many times (Monte-Carlo trajectories,
//! per-shot re-runs) repeats the same per-instruction setup work every run:
//! building the stride geometry for each gate's targets, classifying each
//! operator's structure, and constructing the noise model's Kraus channels.
//! [`CircuitKernels`] hoists all of that out of the run loop: it is built
//! once per `(circuit, noise model)` pair and is immutable and `Sync`
//! afterwards, so the parallel trajectory executor shares one instance
//! across worker threads. Mutable per-run scratch lives in the runner.

use qudit_core::apply::{ApplyPlan, OpKind};
use qudit_core::Complex64;

use crate::circuit::{Circuit, Instruction};
use crate::error::{CircuitError, Result};
use crate::noise::{KrausChannel, NoiseModel};

/// A Kraus channel with its application geometry precomputed.
#[derive(Debug, Clone)]
pub(crate) struct ChannelKernel {
    pub channel: KrausChannel,
    pub plan: ApplyPlan,
    /// Structure classification of each Kraus operator.
    pub kinds: Vec<OpKind>,
}

impl ChannelKernel {
    pub(crate) fn new(
        radix: &qudit_core::Radix,
        channel: KrausChannel,
        targets: Vec<usize>,
    ) -> Result<Self> {
        let plan = ApplyPlan::new(radix, &targets).map_err(CircuitError::Core)?;
        let kinds = channel.operators().iter().map(OpKind::classify).collect();
        Ok(Self { channel, plan, kinds })
    }
}

/// Precompiled kernel for one instruction.
#[derive(Debug, Clone)]
pub(crate) enum InstKernel {
    /// A unitary gate: its stride plan, operator structure and the noise
    /// channels the model inserts after it.
    Unitary { plan: ApplyPlan, kind: OpKind, noise: Vec<ChannelKernel> },
    /// An explicit channel instruction.
    Channel(ChannelKernel),
    /// Instructions whose per-run cost is not plan-dominated (measure,
    /// reset, barrier); they fall back to the on-the-fly paths.
    Passthrough,
}

/// All per-instruction kernels of a circuit under a noise model, plus the
/// idle-loss channels applied at barriers.
#[derive(Debug, Clone)]
pub(crate) struct CircuitKernels {
    pub per_inst: Vec<InstKernel>,
    /// One photon-loss channel per qudit, used at each `Barrier` when the
    /// model has idle loss (empty otherwise).
    pub barrier_loss: Vec<ChannelKernel>,
}

impl CircuitKernels {
    pub(crate) fn new(circuit: &Circuit, noise: &NoiseModel) -> Result<Self> {
        let radix = circuit.radix();
        let dims = circuit.dims();
        let mut per_inst = Vec::with_capacity(circuit.instructions().len());
        for inst in circuit.instructions() {
            per_inst.push(match inst {
                Instruction::Unitary { gate, targets } => {
                    let plan = ApplyPlan::new(radix, targets).map_err(CircuitError::Core)?;
                    let kind = OpKind::classify(gate.matrix());
                    let noise_channels = noise
                        .channels_after_gate(targets, dims)?
                        .into_iter()
                        .map(|(channel, qudit)| ChannelKernel::new(radix, channel, vec![qudit]))
                        .collect::<Result<Vec<_>>>()?;
                    InstKernel::Unitary { plan, kind, noise: noise_channels }
                }
                Instruction::Channel { channel, targets } => InstKernel::Channel(
                    ChannelKernel::new(radix, channel.clone(), targets.clone())?,
                ),
                _ => InstKernel::Passthrough,
            });
        }
        let mut barrier_loss = Vec::new();
        if noise.idle_photon_loss > 0.0
            && circuit.instructions().iter().any(|i| matches!(i, Instruction::Barrier))
        {
            for (q, &d) in dims.iter().enumerate() {
                let loss = KrausChannel::photon_loss(d, noise.idle_photon_loss)?;
                barrier_loss.push(ChannelKernel::new(radix, loss, vec![q])?);
            }
        }
        Ok(Self { per_inst, barrier_loss })
    }
}

/// Reusable per-run working memory for the kernel paths.
#[derive(Debug, Default)]
pub(crate) struct RunScratch {
    /// Gather/apply scratch sized to the largest operator block.
    pub block: Vec<Complex64>,
    /// Kraus branch probabilities.
    pub branch_probs: Vec<f64>,
}
