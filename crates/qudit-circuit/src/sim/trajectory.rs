//! Monte-Carlo quantum-trajectory simulation.
//!
//! Each trajectory is one stochastic state-vector run (noise channels are
//! unravelled into random Kraus jumps); observables are averaged over
//! trajectories. Memory cost is that of a state vector, so this back-end
//! reaches register sizes the density-matrix simulator cannot, at the price
//! of statistical error `∝ 1/√N`.
//!
//! Trajectories are independent by construction — trajectory `t` seeds its
//! own RNG from `t` — so they run on [`qudit_core::par`] worker threads and
//! reduce in trajectory order, making every estimate **bitwise identical**
//! to the serial loop regardless of thread count. The per-instruction stride
//! plans, operator classifications and noise channels are precompiled once
//! and shared (read-only) by all trajectories — including the wire-local
//! fused plan, which may re-order disjoint-support blocks past mid-circuit
//! measurements (see [`crate::sim::fusion`]; estimates are unchanged because
//! disjoint operations commute).

use std::collections::HashMap;

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use qudit_core::cancel::CancelToken;
use qudit_core::guard::{GuardConfig, RunHealth};
use qudit_core::par;
use qudit_core::state::QuditState;

use crate::circuit::Circuit;
use crate::error::{CircuitError, Result};
use crate::noise::NoiseModel;
use crate::observable::Observable;
use crate::sim::ensemble::{run_trajectory_chunk, EnsembleConfig};
use crate::sim::fusion::FusionConfig;
use crate::sim::kernels::{BindBuffers, CircuitKernels};
use crate::sim::statevector::{CompiledCircuit, StatevectorSimulator};

/// Trajectories per batched-ensemble chunk. Bounds the panel width (memory
/// is `dim × width` amplitudes) while leaving enough members per chunk for
/// branch-prefix grouping to amortise plan traversal and branch-probability
/// work.
const ENSEMBLE_CHUNK: usize = 64;

/// A Monte-Carlo trajectory simulator.
///
/// # Example
///
/// ```
/// use qudit_circuit::noise::NoiseModel;
/// use qudit_circuit::sim::TrajectorySimulator;
/// use qudit_circuit::{Circuit, Gate, Observable};
///
/// let mut c = Circuit::uniform(1, 4);
/// c.push(Gate::shift_x(4), &[0]).unwrap(); // |0⟩ → |1⟩
///
/// let sim = TrajectorySimulator::new(200)
///     .with_seed(3)
///     .with_noise(NoiseModel::cavity(0.2, 0.2, 0.0));
/// let est = sim.expectation(&c, &Observable::number(0, 4)).unwrap();
/// // One photon, 20% loss per gate: ⟨n⟩ ≈ 0.8, within Monte-Carlo error.
/// assert!((est.mean - 0.8).abs() < 5.0 * est.std_error.max(0.02));
/// ```
#[derive(Debug, Clone)]
pub struct TrajectorySimulator {
    n_trajectories: usize,
    seed: u64,
    noise: NoiseModel,
    threads: usize,
    fusion: FusionConfig,
    guard: GuardConfig,
    cancel: Option<CancelToken>,
}

/// Mean and standard error of a trajectory-averaged expectation value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryEstimate {
    /// Sample mean over trajectories.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Number of trajectories used.
    pub n_trajectories: usize,
}

impl TrajectorySimulator {
    /// Creates a simulator averaging over `n_trajectories` runs.
    pub fn new(n_trajectories: usize) -> Self {
        Self {
            n_trajectories: n_trajectories.max(1),
            seed: 0x7247,
            noise: NoiseModel::noiseless(),
            threads: 0,
            fusion: FusionConfig::default(),
            guard: GuardConfig::disabled(),
            cancel: None,
        }
    }

    /// Sets the base random seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches a gate-level noise model.
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the worker-thread count for the trajectory loop (`0` =
    /// automatic). Estimates are bitwise independent of this setting.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the gate-fusion configuration used when compiling the circuit
    /// (enabled by default; see [`crate::sim::fusion`]).
    #[must_use]
    pub fn with_fusion(mut self, fusion: FusionConfig) -> Self {
        self.fusion = fusion;
        self
    }

    /// Attaches a runtime health-guard configuration (disabled by default;
    /// see [`qudit_core::guard`]), forwarded to every trajectory's
    /// statevector run. Per-trajectory [`RunHealth`] reports are summed;
    /// retrieve the aggregate with
    /// [`TrajectorySimulator::expectation_detailed`].
    #[must_use]
    pub fn with_guard(mut self, guard: GuardConfig) -> Self {
        self.guard = guard;
        self
    }

    /// Attaches a cooperative [`CancelToken`], polled between trajectory
    /// batches, between worker-pool chunks inside a batch, and at the guard-
    /// cadence boundaries inside every trajectory's statevector run. A
    /// tripped token surfaces as
    /// [`qudit_core::error::CoreError::Cancelled`]; partial batches are
    /// discarded wholesale, never folded into an estimate.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Number of trajectories.
    pub fn n_trajectories(&self) -> usize {
        self.n_trajectories
    }

    fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            par::max_threads()
        } else {
            self.threads
        }
    }

    /// Compiles a circuit against this simulator's noise model and fusion
    /// configuration into the reusable execution plan all trajectories
    /// share. The plan is rebindable ([`CompiledCircuit::bind`]); pair it
    /// with [`TrajectorySimulator::expectation_bound`] for parameter sweeps.
    ///
    /// # Errors
    /// Returns an error for invalid instructions.
    pub fn compile(&self, circuit: &Circuit) -> Result<CompiledCircuit> {
        Ok(CompiledCircuit {
            topology: Arc::new(CircuitKernels::with_config(circuit, &self.noise, &self.fusion)?),
            binds: BindBuffers::default(),
            noise: self.noise.clone(),
        })
    }

    fn check_compiled(&self, compiled: &CompiledCircuit) -> Result<()> {
        if compiled.noise != self.noise {
            return Err(CircuitError::Unsupported(
                "compiled circuit was built under a different noise model; recompile with \
                 this simulator's model"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Maps `f` over the final state of every trajectory, in parallel, and
    /// returns the per-trajectory results in trajectory order plus the
    /// summed health report.
    fn map_trajectories<T: Send>(
        &self,
        circuit: &Circuit,
        f: impl Fn(usize, &QuditState) -> Result<T> + Sync,
    ) -> Result<(Vec<T>, RunHealth)> {
        let mut all = Vec::with_capacity(self.n_trajectories);
        let health = self.fold_trajectories(circuit, f, &mut all, |acc, value| acc.push(value))?;
        Ok((all, health))
    }

    /// Runs every trajectory, maps its final state with `f`, and folds the
    /// mapped values into `acc` **in trajectory order**. Trajectories are
    /// evaluated in bounded parallel batches, so peak memory holds one
    /// mapped value per in-flight trajectory (≤ one batch), not one per
    /// trajectory — `outcome_distribution` on a large register folds each
    /// probability vector away as soon as its batch completes.
    fn fold_trajectories<T: Send, A>(
        &self,
        circuit: &Circuit,
        f: impl Fn(usize, &QuditState) -> Result<T> + Sync,
        acc: &mut A,
        fold: impl FnMut(&mut A, T),
    ) -> Result<RunHealth> {
        let kernels = CircuitKernels::with_config(circuit, &self.noise, &self.fusion)?;
        self.fold_trajectories_prepared(&kernels, &BindBuffers::default(), f, acc, fold)
    }

    /// [`TrajectorySimulator::fold_trajectories`] over a precompiled kernel
    /// set and binding overlay, the plan-reuse path behind the `_compiled`
    /// entry points. Returns the health reports of all trajectories summed,
    /// plus any worker-pool chunk retries.
    fn fold_trajectories_prepared<T: Send, A>(
        &self,
        kernels: &CircuitKernels,
        binds: &BindBuffers,
        f: impl Fn(usize, &QuditState) -> Result<T> + Sync,
        acc: &mut A,
        mut fold: impl FnMut(&mut A, T),
    ) -> Result<RunHealth> {
        let initial = QuditState::zero(kernels.dims.clone()).map_err(CircuitError::Core)?;
        let mut sv =
            StatevectorSimulator::new().with_noise(self.noise.clone()).with_guard(self.guard);
        if let Some(token) = &self.cancel {
            sv = sv.with_cancel(token.clone());
        }
        let threads = self.resolved_threads();
        let batch = threads.max(1) * 4;
        let mut health = RunHealth::default();
        let mut start = 0;
        while start < self.n_trajectories {
            // Between-batch cancellation checkpoint: a long ensemble stops
            // within one batch even when individual trajectories are short.
            if let Some(token) = &self.cancel {
                token.check(start).map_err(CircuitError::Core)?;
            }
            let len = batch.min(self.n_trajectories - start);
            let run_batch = |i: usize| {
                let t = start + i;
                let mut rng = StdRng::seed_from_u64(self.traj_seed(t));
                let out = sv.run_prepared(kernels, binds, &initial, &mut rng)?;
                Ok::<_, CircuitError>((f(t, &out.state)?, out.health))
            };
            let (results, retries) = match &self.cancel {
                Some(token) => par::par_map_threads_counted_cancel(len, threads, token, run_batch)
                    .map_err(CircuitError::Core)?,
                None => par::par_map_threads_counted(len, threads, run_batch),
            };
            health.retries += retries;
            for r in results {
                let (value, traj_health) = r?;
                health.merge(&traj_health);
                fold(acc, value);
            }
            start += len;
        }
        Ok(health)
    }

    /// Trajectory-averaged expectation value of an observable on the final
    /// state.
    ///
    /// # Errors
    /// Returns an error for invalid instructions or observable dimensions.
    pub fn expectation(
        &self,
        circuit: &Circuit,
        observable: &Observable,
    ) -> Result<TrajectoryEstimate> {
        Ok(self.expectation_detailed(circuit, observable)?.0)
    }

    /// Like [`TrajectorySimulator::expectation`], but also returns the summed
    /// [`RunHealth`] report of all trajectories (all-zero when the guard is
    /// disabled): total checkpoints run, worst observed drift, repairs, and
    /// worker-pool chunk retries across the whole ensemble.
    ///
    /// # Errors
    /// Returns an error for invalid instructions, observable mismatches, or
    /// [`qudit_core::error::CoreError::NumericalHealth`] when an enabled
    /// guard detects damage it is not allowed to repair.
    pub fn expectation_detailed(
        &self,
        circuit: &Circuit,
        observable: &Observable,
    ) -> Result<(TrajectoryEstimate, RunHealth)> {
        let (values, health) =
            self.map_trajectories(circuit, |_, state| observable.expectation(state))?;
        Ok((estimate(&values), health))
    }

    /// Trajectory-averaged expectation through a precompiled plan (see
    /// [`TrajectorySimulator::compile`]): the fusion pass, stride plans and
    /// noise channels are reused across calls.
    ///
    /// # Errors
    /// Returns an error for an observable/dimension mismatch or a noise model
    /// mismatch.
    pub fn expectation_compiled(
        &self,
        compiled: &CompiledCircuit,
        observable: &Observable,
    ) -> Result<TrajectoryEstimate> {
        self.check_compiled(compiled)?;
        let mut values = Vec::with_capacity(self.n_trajectories);
        self.fold_trajectories_prepared(
            &compiled.topology,
            &compiled.binds,
            |_, state| observable.expectation(state),
            &mut values,
            |acc, v| acc.push(v),
        )?;
        Ok(estimate(&values))
    }

    /// Rebinds a compiled plan to `params` and estimates the observable: the
    /// rebind-per-step entry point for noisy variational sweeps.
    ///
    /// # Errors
    /// Returns an error for a short binding or a noise model mismatch.
    pub fn expectation_bound(
        &self,
        compiled: &mut CompiledCircuit,
        params: &[f64],
        observable: &Observable,
    ) -> Result<TrajectoryEstimate> {
        // Validate before binding so a failed call leaves the plan untouched.
        self.check_compiled(compiled)?;
        compiled.bind(params)?;
        self.expectation_compiled(compiled, observable)
    }

    /// Trajectory-averaged probability of each full-register basis outcome.
    ///
    /// # Errors
    /// Returns an error for invalid instructions.
    pub fn outcome_distribution(&self, circuit: &Circuit) -> Result<Vec<f64>> {
        let kernels = CircuitKernels::with_config(circuit, &self.noise, &self.fusion)?;
        self.outcome_distribution_prepared(&kernels, &BindBuffers::default())
    }

    /// Trajectory-averaged outcome distribution through a precompiled plan.
    ///
    /// # Errors
    /// Returns an error for invalid dimensions or a noise model mismatch.
    pub fn outcome_distribution_compiled(&self, compiled: &CompiledCircuit) -> Result<Vec<f64>> {
        self.check_compiled(compiled)?;
        self.outcome_distribution_prepared(&compiled.topology, &compiled.binds)
    }

    /// Rebinds a compiled plan to `params` and returns the trajectory-
    /// averaged outcome distribution.
    ///
    /// # Errors
    /// Returns an error for a short binding or a noise model mismatch.
    pub fn outcome_distribution_bound(
        &self,
        compiled: &mut CompiledCircuit,
        params: &[f64],
    ) -> Result<Vec<f64>> {
        // Validate before binding so a failed call leaves the plan untouched.
        self.check_compiled(compiled)?;
        compiled.bind(params)?;
        self.outcome_distribution_compiled(compiled)
    }

    fn outcome_distribution_prepared(
        &self,
        kernels: &CircuitKernels,
        binds: &BindBuffers,
    ) -> Result<Vec<f64>> {
        let total_dim: usize = kernels.dims.iter().product();
        let mut acc = vec![0.0; total_dim];
        self.fold_trajectories_prepared(
            kernels,
            binds,
            |_, state| Ok(state.probabilities()),
            &mut acc,
            |acc, probs| {
                for (a, p) in acc.iter_mut().zip(probs.iter()) {
                    *a += p;
                }
            },
        )?;
        for p in &mut acc {
            *p /= self.n_trajectories as f64;
        }
        Ok(acc)
    }

    /// Runs the trajectory ensemble as *batched* chunks (see
    /// [`crate::sim::ensemble`]): each chunk of up to [`ENSEMBLE_CHUNK`]
    /// trajectories evolves as one lazily splitting panel, grouped by
    /// Kraus-branch prefix, and `group_f` maps each final group state once.
    /// `fold(t, value)` is then called per trajectory in ascending order —
    /// the exact fold order of the serial loop — so any consumer that is a
    /// pure function of the per-trajectory final states gets bitwise-
    /// identical results.
    fn fold_trajectory_groups<T>(
        &self,
        kernels: &CircuitKernels,
        binds: &BindBuffers,
        group_f: impl Fn(&QuditState) -> Result<T>,
        mut fold: impl FnMut(usize, &T),
    ) -> Result<RunHealth> {
        let initial = QuditState::zero(kernels.dims.clone()).map_err(CircuitError::Core)?;
        let cfg = EnsembleConfig {
            guard: self.guard,
            cancel: self.cancel.as_ref(),
            readout_flip: self.noise.readout_flip,
            // Chunks already fan out at the chunk level; column spans inside
            // a chunk stay serial.
            threads: 1,
        };
        let mut health = RunHealth::default();
        let mut start = 0;
        while start < self.n_trajectories {
            if let Some(token) = &self.cancel {
                token.check(start).map_err(CircuitError::Core)?;
            }
            let len = ENSEMBLE_CHUNK.min(self.n_trajectories - start);
            let members: Vec<(usize, u64)> =
                (start..start + len).map(|t| (t, self.traj_seed(t))).collect();
            let groups = run_trajectory_chunk(&cfg, kernels, binds, &initial, &members)?;
            // One value per branch-prefix group; trajectories then fold in
            // ascending order through the group they belong to.
            let mut group_of: Vec<usize> = vec![0; len];
            let mut values = Vec::with_capacity(groups.len());
            for (g_idx, group) in groups.iter().enumerate() {
                values.push(group_f(&group.state)?);
                health.merge(&group.health.scaled_by(group.members.len()));
                for &t in &group.members {
                    group_of[t - start] = g_idx;
                }
            }
            for (i, &g_idx) in group_of.iter().enumerate() {
                fold(start + i, &values[g_idx]);
            }
            start += len;
        }
        Ok(health)
    }

    /// [`TrajectorySimulator::expectation`] through the batched-ensemble
    /// executor: trajectories evolve as lazily splitting panels instead of
    /// one state vector at a time, with branch probabilities computed once
    /// per branch-prefix group. The estimate is **bitwise identical** to
    /// [`TrajectorySimulator::expectation`] at any chunk width, because every
    /// panel column replays exactly one serial trajectory's arithmetic and
    /// RNG stream, and values fold in trajectory order.
    ///
    /// # Errors
    /// Returns an error for invalid instructions, observable mismatches, a
    /// guard trip in any trajectory, or cancellation.
    pub fn expectation_batched(
        &self,
        circuit: &Circuit,
        observable: &Observable,
    ) -> Result<TrajectoryEstimate> {
        let kernels = CircuitKernels::with_config(circuit, &self.noise, &self.fusion)?;
        self.expectation_batched_prepared(&kernels, &BindBuffers::default(), observable)
    }

    /// [`TrajectorySimulator::expectation_batched`] through a precompiled
    /// plan.
    ///
    /// # Errors
    /// Returns an error for an observable/dimension mismatch or a noise
    /// model mismatch.
    pub fn expectation_compiled_batched(
        &self,
        compiled: &CompiledCircuit,
        observable: &Observable,
    ) -> Result<TrajectoryEstimate> {
        self.check_compiled(compiled)?;
        self.expectation_batched_prepared(&compiled.topology, &compiled.binds, observable)
    }

    /// Rebinds a compiled plan to `params` and estimates the observable via
    /// the batched-ensemble executor.
    ///
    /// # Errors
    /// Returns an error for a short binding or a noise model mismatch.
    pub fn expectation_bound_batched(
        &self,
        compiled: &mut CompiledCircuit,
        params: &[f64],
        observable: &Observable,
    ) -> Result<TrajectoryEstimate> {
        // Validate before binding so a failed call leaves the plan untouched.
        self.check_compiled(compiled)?;
        compiled.bind(params)?;
        self.expectation_compiled_batched(compiled, observable)
    }

    fn expectation_batched_prepared(
        &self,
        kernels: &CircuitKernels,
        binds: &BindBuffers,
        observable: &Observable,
    ) -> Result<TrajectoryEstimate> {
        let mut values = Vec::with_capacity(self.n_trajectories);
        self.fold_trajectory_groups(
            kernels,
            binds,
            |state| observable.expectation(state),
            |_, &v| values.push(v),
        )?;
        Ok(estimate(&values))
    }

    /// [`TrajectorySimulator::outcome_distribution`] through the batched-
    /// ensemble executor; bitwise identical to the serial path.
    ///
    /// # Errors
    /// Returns an error for invalid instructions, a guard trip, or
    /// cancellation.
    pub fn outcome_distribution_batched(&self, circuit: &Circuit) -> Result<Vec<f64>> {
        let kernels = CircuitKernels::with_config(circuit, &self.noise, &self.fusion)?;
        self.outcome_distribution_batched_prepared(&kernels, &BindBuffers::default())
    }

    /// [`TrajectorySimulator::outcome_distribution_compiled`] through the
    /// batched-ensemble executor.
    ///
    /// # Errors
    /// Returns an error for invalid dimensions or a noise model mismatch.
    pub fn outcome_distribution_compiled_batched(
        &self,
        compiled: &CompiledCircuit,
    ) -> Result<Vec<f64>> {
        self.check_compiled(compiled)?;
        self.outcome_distribution_batched_prepared(&compiled.topology, &compiled.binds)
    }

    /// Rebinds a compiled plan to `params` and returns the trajectory-
    /// averaged outcome distribution via the batched-ensemble executor.
    ///
    /// # Errors
    /// Returns an error for a short binding or a noise model mismatch.
    pub fn outcome_distribution_bound_batched(
        &self,
        compiled: &mut CompiledCircuit,
        params: &[f64],
    ) -> Result<Vec<f64>> {
        // Validate before binding so a failed call leaves the plan untouched.
        self.check_compiled(compiled)?;
        compiled.bind(params)?;
        self.outcome_distribution_compiled_batched(compiled)
    }

    fn outcome_distribution_batched_prepared(
        &self,
        kernels: &CircuitKernels,
        binds: &BindBuffers,
    ) -> Result<Vec<f64>> {
        let total_dim: usize = kernels.dims.iter().product();
        let mut acc = vec![0.0; total_dim];
        self.fold_trajectory_groups(
            kernels,
            binds,
            |state| Ok(state.probabilities()),
            |_, probs| {
                for (a, p) in acc.iter_mut().zip(probs.iter()) {
                    *a += p;
                }
            },
        )?;
        for p in &mut acc {
            *p /= self.n_trajectories as f64;
        }
        Ok(acc)
    }

    /// Samples `shots_per_trajectory` measurements from each trajectory and
    /// aggregates the counts.
    ///
    /// # Errors
    /// Returns an error for invalid instructions.
    pub fn sample_counts(
        &self,
        circuit: &Circuit,
        shots_per_trajectory: usize,
    ) -> Result<HashMap<Vec<usize>, usize>> {
        let (per_traj, _) = self.map_trajectories(circuit, |t, state| {
            let mut rng = StdRng::seed_from_u64(self.traj_seed(t).wrapping_add(0xABCD));
            let cdf = state.cdf();
            let radix = state.radix();
            let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
            for _ in 0..shots_per_trajectory {
                // Trajectory states are normalised; the guarded draw keeps a
                // degenerate (underflowed) distribution on the documented
                // ground-outcome convention instead of a zero-weight draw.
                let chosen = cdf.try_draw(&mut rng).unwrap_or(0);
                let mut digits = radix.digits_of(chosen).expect("index in range");
                crate::sim::apply_readout_flip(
                    &mut digits,
                    circuit.dims(),
                    self.noise.readout_flip,
                    &mut rng,
                );
                *counts.entry(digits).or_insert(0) += 1;
            }
            Ok(counts)
        })?;
        let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
        for traj_counts in per_traj {
            for (digits, n) in traj_counts {
                *counts.entry(digits).or_insert(0) += n;
            }
        }
        Ok(counts)
    }

    /// Runs a single trajectory with an index-derived seed.
    ///
    /// # Errors
    /// Returns an error for invalid instructions.
    pub fn run_single(&self, circuit: &Circuit, index: usize) -> Result<QuditState> {
        let mut sv = StatevectorSimulator::with_seed(self.traj_seed(index))
            .with_noise(self.noise.clone())
            .with_guard(self.guard);
        if let Some(token) = &self.cancel {
            sv = sv.with_cancel(token.clone());
        }
        let initial = QuditState::zero(circuit.dims().to_vec()).map_err(CircuitError::Core)?;
        let mut rng = StdRng::seed_from_u64(self.traj_seed(index));
        Ok(sv.run_from_with_rng(circuit, &initial, &mut rng)?.state)
    }

    fn traj_seed(&self, index: usize) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((index as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
    }
}

fn estimate(values: &[f64]) -> TrajectoryEstimate {
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
    } else {
        0.0
    };
    TrajectoryEstimate { mean, std_error: (var / n as f64).sqrt(), n_trajectories: n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use crate::sim::DensityMatrixSimulator;

    #[test]
    fn noiseless_trajectories_are_deterministic() {
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
        let sim = TrajectorySimulator::new(10);
        let obs = Observable::number(1, 3);
        let est = sim.expectation(&c, &obs).unwrap();
        assert!(est.std_error < 1e-12);
        assert!((est.mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trajectory_average_converges_to_density_matrix_result() {
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
        let noise = NoiseModel::cavity(0.08, 0.15, 0.0);
        let obs = Observable::number(1, 3);

        let exact =
            DensityMatrixSimulator::new().with_noise(noise.clone()).expectation(&c, &obs).unwrap();
        let est = TrajectorySimulator::new(600)
            .with_seed(17)
            .with_noise(noise)
            .expectation(&c, &obs)
            .unwrap();
        assert!(
            (est.mean - exact).abs() < 5.0 * est.std_error.max(0.02),
            "trajectory mean {} vs exact {} (stderr {})",
            est.mean,
            exact,
            est.std_error
        );
    }

    #[test]
    fn outcome_distribution_is_normalised() {
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        let sim = TrajectorySimulator::new(50).with_noise(NoiseModel::depolarizing(0.05, 0.1));
        let dist = sim.outcome_distribution(&c).unwrap();
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sample_counts_aggregate_over_trajectories() {
        let mut c = Circuit::uniform(1, 3);
        c.push(Gate::shift_x(3), &[0]).unwrap();
        let sim = TrajectorySimulator::new(4).with_noise(NoiseModel::cavity(0.2, 0.2, 0.0));
        let counts = sim.sample_counts(&c, 100).unwrap();
        let total: usize = counts.values().sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn estimates_are_reproducible() {
        let mut c = Circuit::uniform(1, 4);
        c.push(Gate::fourier(4), &[0]).unwrap();
        let noise = NoiseModel::depolarizing(0.1, 0.1);
        let obs = Observable::number(0, 4);
        let a = TrajectorySimulator::new(30)
            .with_seed(5)
            .with_noise(noise.clone())
            .expectation(&c, &obs)
            .unwrap();
        let b = TrajectorySimulator::new(30)
            .with_seed(5)
            .with_noise(noise)
            .expectation(&c, &obs)
            .unwrap();
        assert_eq!(a.mean, b.mean);
    }
}
