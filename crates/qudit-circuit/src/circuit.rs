//! Circuit intermediate representation for mixed-radix qudit registers.

use qudit_core::matrix::CMatrix;
use qudit_core::radix::{embed_operator, Radix};

use crate::error::{CircuitError, Result};
use crate::gate::Gate;
use crate::noise::KrausChannel;

/// One instruction of a qudit circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum Instruction {
    /// A unitary gate applied to the listed qudits (in gate-matrix order).
    Unitary {
        /// The gate.
        gate: Gate,
        /// Target qudit indices, first index = most significant gate digit.
        targets: Vec<usize>,
    },
    /// A computational-basis measurement of the listed qudits.
    Measure {
        /// Measured qudit indices.
        targets: Vec<usize>,
    },
    /// Reset of one qudit to `|0⟩` (measure and rotate back).
    Reset {
        /// The qudit to reset.
        target: usize,
    },
    /// Explicit noise-channel insertion (used by noise-aware compilation and
    /// the NDAR dissipative schedule).
    Channel {
        /// The Kraus channel.
        channel: KrausChannel,
        /// Target qudit indices.
        targets: Vec<usize>,
    },
    /// A scheduling barrier: forces a new layer in depth computations.
    Barrier,
}

impl Instruction {
    /// The qudits this instruction touches.
    pub fn targets(&self) -> Vec<usize> {
        match self {
            Instruction::Unitary { targets, .. } | Instruction::Measure { targets } => {
                targets.clone()
            }
            Instruction::Reset { target } => vec![*target],
            Instruction::Channel { targets, .. } => targets.clone(),
            Instruction::Barrier => Vec::new(),
        }
    }
}

/// A quantum circuit on a mixed-radix qudit register.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    radix: Radix,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// Creates an empty circuit on a register with the given per-qudit
    /// dimensions.
    ///
    /// # Panics
    /// Panics if any dimension is below 2 (programming error at construction
    /// time, consistent with collection constructors).
    pub fn new(dims: Vec<usize>) -> Self {
        let radix = Radix::new(dims).expect("qudit dimensions must be at least 2");
        Self { radix, instructions: Vec::new() }
    }

    /// Creates an empty circuit of `n` qudits of uniform dimension `d`.
    pub fn uniform(n: usize, d: usize) -> Self {
        Self::new(vec![d; n])
    }

    /// The register description.
    pub fn radix(&self) -> &Radix {
        &self.radix
    }

    /// Per-qudit dimensions.
    pub fn dims(&self) -> &[usize] {
        self.radix.dims()
    }

    /// Number of qudits.
    pub fn num_qudits(&self) -> usize {
        self.radix.len()
    }

    /// Total Hilbert-space dimension.
    pub fn total_dim(&self) -> usize {
        self.radix.total_dim()
    }

    /// The instruction list.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions (of all kinds).
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Returns `true` if the circuit has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Appends a gate acting on the listed targets.
    ///
    /// # Errors
    /// Returns an error if targets are out of range, repeated, or their
    /// dimensions do not match the gate's.
    pub fn push(&mut self, gate: Gate, targets: &[usize]) -> Result<()> {
        self.radix.check_targets(targets).map_err(CircuitError::Core)?;
        if targets.len() != gate.num_qudits() {
            return Err(CircuitError::InvalidTargets(format!(
                "gate {} acts on {} qudits but {} targets given",
                gate.name(),
                gate.num_qudits(),
                targets.len()
            )));
        }
        for (pos, &t) in targets.iter().enumerate() {
            if self.radix.dims()[t] != gate.dims()[pos] {
                return Err(CircuitError::InvalidTargets(format!(
                    "gate {} expects dimension {} at position {pos} but qudit {t} has dimension {}",
                    gate.name(),
                    gate.dims()[pos],
                    self.radix.dims()[t]
                )));
            }
        }
        self.instructions.push(Instruction::Unitary { gate, targets: targets.to_vec() });
        Ok(())
    }

    /// Appends a measurement of the listed qudits.
    ///
    /// # Errors
    /// Returns an error for invalid targets.
    pub fn measure(&mut self, targets: &[usize]) -> Result<()> {
        self.radix.check_targets(targets).map_err(CircuitError::Core)?;
        self.instructions.push(Instruction::Measure { targets: targets.to_vec() });
        Ok(())
    }

    /// Appends a measurement of every qudit.
    pub fn measure_all(&mut self) {
        let all: Vec<usize> = (0..self.num_qudits()).collect();
        self.instructions.push(Instruction::Measure { targets: all });
    }

    /// Appends a reset of one qudit to `|0⟩`.
    ///
    /// # Errors
    /// Returns an error for an invalid target.
    pub fn reset(&mut self, target: usize) -> Result<()> {
        self.radix.check_targets(&[target]).map_err(CircuitError::Core)?;
        self.instructions.push(Instruction::Reset { target });
        Ok(())
    }

    /// Appends an explicit noise channel on the listed qudits.
    ///
    /// # Errors
    /// Returns an error if targets are invalid or dimensions disagree with the
    /// channel.
    pub fn push_channel(&mut self, channel: KrausChannel, targets: &[usize]) -> Result<()> {
        self.radix.check_targets(targets).map_err(CircuitError::Core)?;
        if targets.len() != channel.dims().len() {
            return Err(CircuitError::InvalidTargets(format!(
                "channel {} acts on {} qudits but {} targets given",
                channel.name(),
                channel.dims().len(),
                targets.len()
            )));
        }
        for (pos, &t) in targets.iter().enumerate() {
            if self.radix.dims()[t] != channel.dims()[pos] {
                return Err(CircuitError::InvalidTargets(format!(
                    "channel {} expects dimension {} at position {pos} but qudit {t} has dimension {}",
                    channel.name(),
                    channel.dims()[pos],
                    self.radix.dims()[t]
                )));
            }
        }
        self.instructions.push(Instruction::Channel { channel, targets: targets.to_vec() });
        Ok(())
    }

    /// Appends a scheduling barrier.
    pub fn barrier(&mut self) {
        self.instructions.push(Instruction::Barrier);
    }

    /// Appends every instruction of `other` (registers must match).
    ///
    /// # Errors
    /// Returns an error if the registers differ.
    pub fn extend(&mut self, other: &Circuit) -> Result<()> {
        if other.radix != self.radix {
            return Err(CircuitError::InvalidTargets(format!(
                "cannot extend circuit on {:?} with circuit on {:?}",
                self.dims(),
                other.dims()
            )));
        }
        self.instructions.extend(other.instructions.iter().cloned());
        Ok(())
    }

    /// Number of parameters a binding for this circuit must supply: one more
    /// than the largest [`crate::gate::Param::Free`] index carried by any
    /// gate, or zero for a fully bound circuit.
    pub fn num_params(&self) -> usize {
        self.instructions
            .iter()
            .filter_map(|inst| match inst {
                Instruction::Unitary { gate, .. } => gate.free_param(),
                _ => None,
            })
            .max()
            .map_or(0, |idx| idx + 1)
    }

    /// Returns the circuit with every free gate parameter bound to the value
    /// `params` supplies (see [`crate::gate::Gate::bound`]); the structure —
    /// instructions, targets, measurements, channels — is unchanged.
    ///
    /// Running `compile(circuit.with_bound(θ))` is equivalent to compiling
    /// the parameterized circuit once and rebinding the plan in place with
    /// `CompiledCircuit::bind(θ)`; the latter skips recompilation.
    ///
    /// # Errors
    /// Returns an error if `params` is shorter than [`Circuit::num_params`].
    pub fn with_bound(&self, params: &[f64]) -> Result<Circuit> {
        let mut instructions = Vec::with_capacity(self.instructions.len());
        for inst in &self.instructions {
            instructions.push(match inst {
                Instruction::Unitary { gate, targets } => {
                    Instruction::Unitary { gate: gate.bound(params)?, targets: targets.clone() }
                }
                other => other.clone(),
            });
        }
        Ok(Circuit { radix: self.radix.clone(), instructions })
    }

    /// Number of unitary gate instructions.
    pub fn gate_count(&self) -> usize {
        self.instructions.iter().filter(|i| matches!(i, Instruction::Unitary { .. })).count()
    }

    /// Number of unitary gates acting on at least two qudits.
    pub fn multi_qudit_gate_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i, Instruction::Unitary { targets, .. } if targets.len() >= 2))
            .count()
    }

    /// Per-gate-name counts, useful for resource estimates.
    pub fn gate_histogram(&self) -> std::collections::BTreeMap<String, usize> {
        let mut hist = std::collections::BTreeMap::new();
        for inst in &self.instructions {
            if let Instruction::Unitary { gate, .. } = inst {
                *hist.entry(gate.name().to_string()).or_insert(0) += 1;
            }
        }
        hist
    }

    /// Circuit depth: the number of layers under greedy ASAP scheduling where
    /// instructions touching disjoint qudits share a layer. Barriers close all
    /// layers.
    pub fn depth(&self) -> usize {
        let mut qudit_depth = vec![0usize; self.num_qudits()];
        let mut barrier_floor = 0usize;
        let mut max_depth = 0usize;
        for inst in &self.instructions {
            if matches!(inst, Instruction::Barrier) {
                barrier_floor = max_depth;
                continue;
            }
            let targets = inst.targets();
            if targets.is_empty() {
                continue;
            }
            let start =
                targets.iter().map(|&t| qudit_depth[t]).max().unwrap_or(0).max(barrier_floor);
            let new_depth = start + 1;
            for &t in &targets {
                qudit_depth[t] = new_depth;
            }
            max_depth = max_depth.max(new_depth);
        }
        max_depth
    }

    /// Builds the full unitary of the circuit (requires a purely unitary
    /// circuit: no measurements, resets or channels, and no unbound free
    /// parameters — bind them first with [`Circuit::with_bound`]).
    ///
    /// # Errors
    /// Returns [`CircuitError::Unsupported`] for non-unitary instructions or
    /// unbound parameters.
    pub fn unitary(&self) -> Result<CMatrix> {
        if self.num_params() > 0 {
            return Err(CircuitError::Unsupported(
                "circuit carries free parameters; bind them with with_bound first".into(),
            ));
        }
        let mut u = CMatrix::identity(self.total_dim());
        for inst in &self.instructions {
            match inst {
                Instruction::Unitary { gate, targets } => {
                    let full = embed_operator(&self.radix, gate.matrix(), targets)
                        .map_err(CircuitError::Core)?;
                    u = full.matmul(&u).map_err(CircuitError::Core)?;
                }
                Instruction::Barrier => {}
                other => {
                    return Err(CircuitError::Unsupported(format!(
                        "cannot build a unitary for a circuit containing {other:?}"
                    )));
                }
            }
        }
        Ok(u)
    }

    /// A 64-bit **structural hash** of the circuit: register dimensions,
    /// instruction kinds and order, targets, gate identities (name, dims,
    /// matrix bit patterns, parameter), and channel identities. Two circuits
    /// hash equal iff they would compile to the same execution plan under a
    /// fixed simulator configuration, so the hash is the plan-cache key of
    /// the serving layer — note in particular that a *free* parameter hashes
    /// by its index, not its value, which is exactly right for a cache of
    /// rebindable plans (one cached plan serves every binding).
    ///
    /// The hash is FNV-1a over a canonical byte encoding; it is stable within
    /// a process run and across runs on the same platform, but is not a
    /// cryptographic commitment.
    pub fn structural_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        let eat_usize = |eat: &mut dyn FnMut(&[u8]), v: usize| eat(&(v as u64).to_le_bytes());
        let eat_matrix = |eat: &mut dyn FnMut(&[u8]), m: &CMatrix| {
            eat(&(m.rows() as u64).to_le_bytes());
            eat(&(m.cols() as u64).to_le_bytes());
            for z in m.as_slice() {
                eat(&z.re.to_bits().to_le_bytes());
                eat(&z.im.to_bits().to_le_bytes());
            }
        };
        eat_usize(&mut eat, self.radix.len());
        for &d in self.radix.dims() {
            eat_usize(&mut eat, d);
        }
        for inst in &self.instructions {
            match inst {
                Instruction::Unitary { gate, targets } => {
                    eat(&[0]);
                    eat(gate.name().as_bytes());
                    eat(&[0xFF]); // name terminator, so "ab"+"c" != "a"+"bc"
                    for &d in gate.dims() {
                        eat_usize(&mut eat, d);
                    }
                    eat_matrix(&mut eat, gate.matrix());
                    match gate.param() {
                        None => eat(&[0]),
                        Some(crate::gate::Param::Bound(v)) => {
                            eat(&[1]);
                            eat(&v.to_bits().to_le_bytes());
                        }
                        Some(crate::gate::Param::Free(idx)) => {
                            eat(&[2]);
                            eat_usize(&mut eat, idx);
                        }
                    }
                    for &t in targets {
                        eat_usize(&mut eat, t);
                    }
                }
                Instruction::Measure { targets } => {
                    eat(&[1]);
                    eat_usize(&mut eat, targets.len());
                    for &t in targets {
                        eat_usize(&mut eat, t);
                    }
                }
                Instruction::Reset { target } => {
                    eat(&[2]);
                    eat_usize(&mut eat, *target);
                }
                Instruction::Channel { channel, targets } => {
                    eat(&[3]);
                    eat(channel.name().as_bytes());
                    eat(&[0xFF]);
                    for &d in channel.dims() {
                        eat_usize(&mut eat, d);
                    }
                    eat(&channel.tolerance().to_bits().to_le_bytes());
                    eat_usize(&mut eat, channel.operators().len());
                    for op in channel.operators() {
                        eat_matrix(&mut eat, op);
                    }
                    for &t in targets {
                        eat_usize(&mut eat, t);
                    }
                }
                Instruction::Barrier => eat(&[4]),
            }
        }
        h
    }

    /// The inverse circuit: daggered gates in reverse order.
    ///
    /// # Errors
    /// Returns [`CircuitError::Unsupported`] if the circuit contains
    /// non-unitary instructions.
    pub fn inverse(&self) -> Result<Circuit> {
        let mut inv = Circuit::new(self.dims().to_vec());
        for inst in self.instructions.iter().rev() {
            match inst {
                Instruction::Unitary { gate, targets } => {
                    inv.push(gate.dagger(), targets)?;
                }
                Instruction::Barrier => inv.barrier(),
                other => {
                    return Err(CircuitError::Unsupported(format!(
                        "cannot invert a circuit containing {other:?}"
                    )));
                }
            }
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::KrausChannel;
    use qudit_core::metrics::process_fidelity;

    #[test]
    fn push_validates_targets_and_dims() {
        let mut c = Circuit::new(vec![3, 3, 2]);
        assert!(c.push(Gate::fourier(3), &[0]).is_ok());
        assert!(c.push(Gate::fourier(3), &[2]).is_err()); // dimension mismatch
        assert!(c.push(Gate::fourier(3), &[7]).is_err()); // out of range
        assert!(c.push(Gate::csum(3, 3), &[0, 0]).is_err()); // duplicate
        assert!(c.push(Gate::csum(3, 3), &[0]).is_err()); // arity mismatch
        assert!(c.push(Gate::csum(3, 2), &[1, 2]).is_ok()); // mixed dims ok
    }

    #[test]
    fn gate_counts_and_histogram() {
        let mut c = Circuit::uniform(3, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        c.push(Gate::fourier(3), &[1]).unwrap();
        c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
        c.push(Gate::csum(3, 3), &[1, 2]).unwrap();
        c.measure_all();
        assert_eq!(c.gate_count(), 4);
        assert_eq!(c.multi_qudit_gate_count(), 2);
        assert_eq!(c.gate_histogram()["F3"], 2);
        assert_eq!(c.gate_histogram()["CSUM3,3"], 2);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn depth_with_parallel_gates_and_barriers() {
        let mut c = Circuit::uniform(4, 3);
        // Layer 1: gates on 0 and 1 in parallel with gates on 2 and 3.
        c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
        c.push(Gate::csum(3, 3), &[2, 3]).unwrap();
        assert_eq!(c.depth(), 1);
        // Layer 2: overlapping gate.
        c.push(Gate::csum(3, 3), &[1, 2]).unwrap();
        assert_eq!(c.depth(), 2);
        // Barrier forces later single-qudit gate into a new layer.
        c.barrier();
        c.push(Gate::fourier(3), &[3]).unwrap();
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn unitary_of_fourier_circuit() {
        let mut c = Circuit::new(vec![3]);
        c.push(Gate::fourier(3), &[0]).unwrap();
        c.push(Gate::fourier(3).dagger(), &[0]).unwrap();
        let u = c.unitary().unwrap();
        assert!(process_fidelity(&u, &CMatrix::identity(3)).unwrap() > 1.0 - 1e-10);
    }

    #[test]
    fn unitary_rejects_measurement() {
        let mut c = Circuit::new(vec![2]);
        c.measure_all();
        assert!(c.unitary().is_err());
    }

    #[test]
    fn inverse_circuit_undoes_forward_circuit() {
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
        c.push(Gate::snap(3, &[0.1, 0.7, -0.4]), &[1]).unwrap();
        let mut full = c.clone();
        full.extend(&c.inverse().unwrap()).unwrap();
        let u = full.unitary().unwrap();
        assert!(process_fidelity(&u, &CMatrix::identity(9)).unwrap() > 1.0 - 1e-9);
    }

    #[test]
    fn extend_requires_same_register() {
        let mut a = Circuit::uniform(2, 3);
        let b = Circuit::uniform(2, 4);
        assert!(a.extend(&b).is_err());
    }

    #[test]
    fn channel_insertion_validation() {
        let mut c = Circuit::uniform(2, 3);
        let ch = KrausChannel::photon_loss(3, 0.1).unwrap();
        assert!(c.push_channel(ch.clone(), &[1]).is_ok());
        assert!(c.push_channel(ch.clone(), &[0, 1]).is_err());
        let ch2 = KrausChannel::photon_loss(4, 0.1).unwrap();
        assert!(c.push_channel(ch2, &[0]).is_err());
        assert!(c.unitary().is_err());
    }

    #[test]
    fn parameterized_circuits_bind_and_guard_unitary() {
        use crate::gate::Param;
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::fourier(3), &[0]).unwrap();
        let sep = Gate::parameterized(
            "sep",
            vec![3],
            &qudit_core::matrix::CMatrix::diag_real(&[0.0, 1.0, 2.0]),
            Param::Free(1),
        )
        .unwrap();
        c.push(sep, &[1]).unwrap();
        assert_eq!(c.num_params(), 2);
        assert!(c.unitary().is_err(), "free parameters must block unitary()");
        let bound = c.with_bound(&[0.0, 0.4]).unwrap();
        assert_eq!(bound.num_params(), 0);
        assert!(bound.unitary().is_ok());
        assert!(c.with_bound(&[0.1]).is_err(), "short bindings rejected");
    }

    #[test]
    fn structural_hash_distinguishes_structure() {
        let mut a = Circuit::uniform(2, 3);
        a.push(Gate::fourier(3), &[0]).unwrap();
        a.push(Gate::csum(3, 3), &[0, 1]).unwrap();
        assert_eq!(a.structural_hash(), a.clone().structural_hash());

        // Different targets, same gates.
        let mut b = Circuit::uniform(2, 3);
        b.push(Gate::fourier(3), &[1]).unwrap();
        b.push(Gate::csum(3, 3), &[0, 1]).unwrap();
        assert_ne!(a.structural_hash(), b.structural_hash());

        // Extra instruction.
        let mut c = a.clone();
        c.measure(&[0]).unwrap();
        assert_ne!(a.structural_hash(), c.structural_hash());
        // Measure vs reset on the same target.
        let mut d = a.clone();
        d.reset(0).unwrap();
        assert_ne!(c.structural_hash(), d.structural_hash());

        // Register dimensions are structural even with no instructions.
        assert_ne!(
            Circuit::uniform(2, 3).structural_hash(),
            Circuit::uniform(2, 4).structural_hash()
        );
        assert_ne!(
            Circuit::uniform(2, 3).structural_hash(),
            Circuit::uniform(3, 3).structural_hash()
        );
    }

    #[test]
    fn structural_hash_keys_free_params_by_index_and_bound_by_value() {
        use crate::gate::Param;
        let phase = |p: Param| {
            Gate::parameterized(
                "sep",
                vec![3],
                &qudit_core::matrix::CMatrix::diag_real(&[0.0, 1.0, 2.0]),
                p,
            )
            .unwrap()
        };
        let with_param = |p: Param| {
            let mut c = Circuit::uniform(1, 3);
            c.push(phase(p), &[0]).unwrap();
            c
        };
        // Two bound values are different plans; two circuits sharing a free
        // index are the same rebindable plan.
        assert_ne!(
            with_param(Param::Bound(0.3)).structural_hash(),
            with_param(Param::Bound(0.7)).structural_hash()
        );
        assert_eq!(
            with_param(Param::Free(0)).structural_hash(),
            with_param(Param::Free(0)).structural_hash()
        );
        assert_ne!(
            with_param(Param::Free(0)).structural_hash(),
            with_param(Param::Free(1)).structural_hash()
        );
        assert_ne!(
            with_param(Param::Free(0)).structural_hash(),
            with_param(Param::Bound(0.0)).structural_hash()
        );
    }

    #[test]
    fn reset_and_measure_instructions() {
        let mut c = Circuit::uniform(2, 4);
        c.reset(1).unwrap();
        c.measure(&[0]).unwrap();
        assert!(c.reset(5).is_err());
        assert!(c.measure(&[0, 0]).is_err());
        assert_eq!(c.len(), 2);
    }
}
