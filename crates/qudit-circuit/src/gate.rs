//! The [`Gate`] type: a named unitary with explicit per-qudit dimensions,
//! optionally carrying a symbolic parameter (see [`Param`]).

use qudit_core::apply::OpKind;
use qudit_core::complex::{c64, Complex64};
use qudit_core::linalg::{eigh, expm_hermitian, HermitianEig};
use qudit_core::matrix::CMatrix;

use crate::error::{CircuitError, Result};
use crate::gates;

/// A symbolic gate parameter: either a concrete value or a reference into a
/// parameter vector supplied later (at [`Gate::bound`] /
/// [`crate::Circuit::with_bound`] / `CompiledCircuit::bind` time).
///
/// Parameterized gates realize their matrix as `exp(-i θ G)` from a fixed
/// Hermitian generator `G` (see [`Gate::parameterized`]); only the angle `θ`
/// is symbolic, so the circuit *structure* — targets, fusion decisions,
/// stride plans — is independent of the binding and a compiled plan can be
/// rebound in place.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Param {
    /// A concrete angle.
    Bound(f64),
    /// The angle at this index of the parameter vector.
    Free(usize),
}

impl Param {
    /// The parameter-vector index for a free parameter, `None` when bound.
    pub fn free_index(&self) -> Option<usize> {
        match self {
            Param::Free(idx) => Some(*idx),
            Param::Bound(_) => None,
        }
    }

    /// Resolves the angle under `params`.
    ///
    /// # Errors
    /// Returns an error if a free index is out of range.
    pub fn resolve(&self, params: &[f64]) -> Result<f64> {
        match self {
            Param::Bound(v) => Ok(*v),
            Param::Free(idx) => params.get(*idx).copied().ok_or_else(|| {
                CircuitError::InvalidGate(format!(
                    "free parameter {idx} out of range for a binding of length {}",
                    params.len()
                ))
            }),
        }
    }
}

/// The spectral form of a parameterized gate's generator, precomputed once so
/// every realization `exp(-i θ G) = V diag(e^{-i θ λ}) V†` costs two small
/// matrix products (or `O(d)` when the generator is diagonal) instead of an
/// eigendecomposition.
#[derive(Debug, Clone, PartialEq)]
struct GateForm {
    spectrum: Spectrum,
    /// The symbolic angle.
    param: Param,
}

/// Generator spectrum of a [`GateForm`].
#[derive(Debug, Clone)]
enum Spectrum {
    /// Diagonal generator: the diagonal entries in their original order (not
    /// sorted), so realization preserves the per-level structure exactly.
    Diagonal(Vec<f64>),
    /// General Hermitian generator, diagonalised once at construction.
    Dense(HermitianEig),
}

impl PartialEq for Spectrum {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Spectrum::Diagonal(a), Spectrum::Diagonal(b)) => a == b,
            (Spectrum::Dense(a), Spectrum::Dense(b)) => {
                a.values == b.values && a.vectors == b.vectors
            }
            _ => false,
        }
    }
}

impl GateForm {
    /// Materializes `exp(-i θ G)` at the given angle, allocation-lean: this
    /// runs on every plan rebind. For the dense case it is exactly the
    /// [`expm_hermitian`] computation with the eigendecomposition amortised
    /// away, so a gate realized here is bitwise identical to one built by
    /// [`Gate::from_generator`] at the same angle.
    fn realize(&self, theta: f64) -> CMatrix {
        // Both arms evaluate the per-eigenvalue phase with the exact
        // expression `expm_hermitian` uses, so realized matrices are bitwise
        // reproducible across realizations and construction paths.
        let phase = |l: f64| (c64(0.0, -theta) * l).exp();
        match &self.spectrum {
            Spectrum::Diagonal(eigvals) => {
                CMatrix::diag(&eigvals.iter().map(|&l| phase(l)).collect::<Vec<_>>())
            }
            Spectrum::Dense(eig) => eig.apply_function(phase),
        }
    }

    /// The spectrum with every eigenvalue negated (`G → -G`), for daggering.
    fn negated(&self) -> Spectrum {
        match &self.spectrum {
            Spectrum::Diagonal(eigvals) => Spectrum::Diagonal(eigvals.iter().map(|l| -l).collect()),
            Spectrum::Dense(eig) => Spectrum::Dense(HermitianEig {
                values: eig.values.iter().map(|l| -l).collect(),
                vectors: eig.vectors.clone(),
            }),
        }
    }
}

/// A gate: a unitary operator together with the dimensions of the qudits it
/// acts on and a human-readable name.
///
/// The matrix is indexed with the **first** acted-on qudit as the most
/// significant digit, matching the order of the `targets` slice passed to
/// [`crate::Circuit::push`].
///
/// A gate may additionally carry a symbolic parameter ([`Param`]) with a
/// generator-based realization; see [`Gate::parameterized`].
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    name: String,
    dims: Vec<usize>,
    matrix: CMatrix,
    /// Present for parameterized gates: the generator's spectral form.
    form: Option<GateForm>,
}

impl Gate {
    /// Creates a gate from an explicit matrix.
    ///
    /// # Errors
    /// Returns an error if the matrix is not square, its dimension does not
    /// equal the product of `dims`, or it is not unitary to `1e-8`.
    pub fn custom(name: impl Into<String>, dims: Vec<usize>, matrix: CMatrix) -> Result<Self> {
        let total: usize = dims.iter().product();
        if !matrix.is_square() || matrix.rows() != total {
            return Err(CircuitError::InvalidGate(format!(
                "matrix is {}x{} but dims {:?} require {total}x{total}",
                matrix.rows(),
                matrix.cols(),
                dims
            )));
        }
        if !matrix.is_unitary(1e-8) {
            return Err(CircuitError::InvalidGate("matrix is not unitary".into()));
        }
        Ok(Self { name: name.into(), dims, matrix, form: None })
    }

    /// Creates a gate from a possibly non-unitary matrix without the
    /// unitarity check. Intended for effective non-unitary operators in
    /// trajectory simulations; regular circuits should use [`Gate::custom`].
    pub fn custom_unchecked(name: impl Into<String>, dims: Vec<usize>, matrix: CMatrix) -> Self {
        Self { name: name.into(), dims, matrix, form: None }
    }

    /// Creates the gate `exp(-i H t)` from a Hermitian generator.
    ///
    /// # Errors
    /// Returns an error if the generator is not Hermitian or has the wrong
    /// dimension.
    pub fn from_generator(
        name: impl Into<String>,
        dims: Vec<usize>,
        h: &CMatrix,
        t: f64,
    ) -> Result<Self> {
        let total: usize = dims.iter().product();
        if h.rows() != total || !h.is_square() {
            return Err(CircuitError::InvalidGate(format!(
                "generator is {}x{} but dims {:?} require {total}x{total}",
                h.rows(),
                h.cols(),
                dims
            )));
        }
        if !h.is_hermitian(1e-8) {
            return Err(CircuitError::InvalidGate("generator is not Hermitian".into()));
        }
        let u = expm_hermitian(h, c64(0.0, -t))
            .map_err(|e| CircuitError::InvalidGate(e.to_string()))?;
        Ok(Self { name: name.into(), dims, matrix: u, form: None })
    }

    /// Creates a **parameterized** gate `exp(-i θ G)` from a Hermitian
    /// generator `G`, where the angle `θ` is symbolic (see [`Param`]).
    ///
    /// The generator's eigendecomposition is computed once here; every later
    /// realization — [`Gate::bound`], [`crate::Circuit::with_bound`], or an
    /// in-place `CompiledCircuit::bind` — reuses it, so rebinding a circuit
    /// never re-diagonalises. A gate with `Param::Bound(t)` is bitwise
    /// identical to [`Gate::from_generator`] at `t`; a gate with
    /// `Param::Free(i)` stores the matrix realized at `θ = 0` (the identity)
    /// until it is bound.
    ///
    /// # Errors
    /// Returns an error if the generator is not Hermitian, has the wrong
    /// dimension, or fails to diagonalise.
    pub fn parameterized(
        name: impl Into<String>,
        dims: Vec<usize>,
        generator: &CMatrix,
        param: Param,
    ) -> Result<Self> {
        let total: usize = dims.iter().product();
        if generator.rows() != total || !generator.is_square() {
            return Err(CircuitError::InvalidGate(format!(
                "generator is {}x{} but dims {:?} require {total}x{total}",
                generator.rows(),
                generator.cols(),
                dims
            )));
        }
        if !generator.is_hermitian(1e-8) {
            return Err(CircuitError::InvalidGate("generator is not Hermitian".into()));
        }
        // Diagonal generators skip the eigensolver and keep their per-level
        // order, so realized matrices are exactly diagonal at every angle
        // (and classify as such in the simulators' fast paths).
        let form = if matches!(OpKind::classify(generator), OpKind::Diagonal(_)) {
            GateForm {
                spectrum: Spectrum::Diagonal((0..total).map(|i| generator.get(i, i).re).collect()),
                param,
            }
        } else {
            let eig = eigh(generator).map_err(|e| CircuitError::InvalidGate(e.to_string()))?;
            GateForm { spectrum: Spectrum::Dense(eig), param }
        };
        let matrix = match param {
            Param::Bound(t) => form.realize(t),
            Param::Free(_) => form.realize(0.0),
        };
        Ok(Self { name: name.into(), dims, matrix, form: Some(form) })
    }

    // ----- single-qudit constructors -----

    /// Identity gate on a `d`-level qudit.
    pub fn identity(d: usize) -> Self {
        Self { name: format!("I{d}"), dims: vec![d], matrix: gates::identity(d), form: None }
    }

    /// Generalised Pauli-X (cyclic shift).
    pub fn shift_x(d: usize) -> Self {
        Self { name: format!("X{d}"), dims: vec![d], matrix: gates::shift_x(d), form: None }
    }

    /// Generalised Pauli-Z (clock).
    pub fn clock_z(d: usize) -> Self {
        Self { name: format!("Z{d}"), dims: vec![d], matrix: gates::clock_z(d), form: None }
    }

    /// Weyl operator `X^a Z^b`.
    pub fn weyl(d: usize, a: usize, b: usize) -> Self {
        Self {
            name: format!("W{d}({a},{b})"),
            dims: vec![d],
            matrix: gates::weyl(d, a, b),
            form: None,
        }
    }

    /// Discrete Fourier transform (qudit Hadamard).
    pub fn fourier(d: usize) -> Self {
        Self { name: format!("F{d}"), dims: vec![d], matrix: gates::fourier(d), form: None }
    }

    /// SNAP gate with the given per-level phases.
    pub fn snap(d: usize, phases: &[f64]) -> Self {
        Self { name: format!("SNAP{d}"), dims: vec![d], matrix: gates::snap(d, phases), form: None }
    }

    /// Truncated displacement gate `D(α)`.
    pub fn displacement(d: usize, alpha: Complex64) -> Self {
        Self {
            name: format!("D({:.3}{:+.3}i)", alpha.re, alpha.im),
            dims: vec![d],
            matrix: gates::displacement(d, alpha),
            form: None,
        }
    }

    /// Rotation in the `{|j⟩, |k⟩}` subspace.
    pub fn rot_subspace(d: usize, j: usize, k: usize, theta: f64, phi: f64) -> Self {
        Self {
            name: format!("R{j}{k}({theta:.3},{phi:.3})"),
            dims: vec![d],
            matrix: gates::rot_subspace(d, j, k, theta, phi),
            form: None,
        }
    }

    /// Phase on a single level.
    pub fn phase_on_level(d: usize, level: usize, theta: f64) -> Self {
        Self {
            name: format!("P{level}({theta:.3})"),
            dims: vec![d],
            matrix: gates::phase_on_level(d, level, theta),
            form: None,
        }
    }

    /// QAOA nearest-level mixer `exp(-iβ Σ|k⟩⟨k+1| + h.c.)`.
    pub fn x_mixer(d: usize, beta: f64) -> Self {
        Self {
            name: format!("Mix({beta:.3})"),
            dims: vec![d],
            matrix: gates::x_mixer(d, beta),
            form: None,
        }
    }

    /// QAOA fully-connected mixer.
    pub fn full_mixer(d: usize, beta: f64) -> Self {
        Self {
            name: format!("FullMix({beta:.3})"),
            dims: vec![d],
            matrix: gates::full_mixer(d, beta),
            form: None,
        }
    }

    /// Diagonal phase gate `exp(-iγ diag(w))`.
    pub fn diagonal_phase(weights: &[f64], gamma: f64) -> Self {
        Self {
            name: format!("Diag({gamma:.3})"),
            dims: vec![weights.len()],
            matrix: gates::diagonal_phase(weights, gamma),
            form: None,
        }
    }

    // ----- two-qudit constructors -----

    /// CSUM gate `|a⟩|b⟩ ↦ |a⟩|(b+a) mod d_t⟩` (control first).
    pub fn csum(d_control: usize, d_target: usize) -> Self {
        Self {
            name: format!("CSUM{d_control},{d_target}"),
            dims: vec![d_control, d_target],
            matrix: gates::csum(d_control, d_target),
            form: None,
        }
    }

    /// Inverse CSUM.
    pub fn csum_inverse(d_control: usize, d_target: usize) -> Self {
        Self {
            name: format!("CSUM†{d_control},{d_target}"),
            dims: vec![d_control, d_target],
            matrix: gates::csum_inverse(d_control, d_target),
            form: None,
        }
    }

    /// Controlled-phase gate `CZ_d`.
    pub fn cphase(d_control: usize, d_target: usize) -> Self {
        Self {
            name: format!("CZ{d_control},{d_target}"),
            dims: vec![d_control, d_target],
            matrix: gates::cphase(d_control, d_target),
            form: None,
        }
    }

    /// Weighted controlled phase `exp(-iγ a·b)`.
    pub fn cphase_weighted(d_control: usize, d_target: usize, gamma: f64) -> Self {
        Self {
            name: format!("CZZ({gamma:.3})"),
            dims: vec![d_control, d_target],
            matrix: gates::cphase_weighted(d_control, d_target, gamma),
            form: None,
        }
    }

    /// SWAP of two `d`-level qudits.
    pub fn swap(d: usize) -> Self {
        Self { name: format!("SWAP{d}"), dims: vec![d, d], matrix: gates::swap(d), form: None }
    }

    /// Beam-splitter interaction between two `d`-level bosonic modes.
    pub fn beam_splitter(d: usize, theta: f64, phi: f64) -> Self {
        Self {
            name: format!("BS({theta:.3},{phi:.3})"),
            dims: vec![d, d],
            matrix: gates::beam_splitter(d, theta, phi),
            form: None,
        }
    }

    /// Cross-Kerr interaction `exp(-iχt n̂⊗n̂)`.
    pub fn cross_kerr(d1: usize, d2: usize, chi_t: f64) -> Self {
        Self {
            name: format!("XKerr({chi_t:.3})"),
            dims: vec![d1, d2],
            matrix: gates::cross_kerr(d1, d2, chi_t),
            form: None,
        }
    }

    /// Controlled unitary triggered on a specific control level.
    pub fn controlled_on_level(d_control: usize, trigger: usize, u: &Gate) -> Self {
        let d_t = u.matrix.rows();
        let name = format!("C[{trigger}]{}", u.name);
        // A parameterized inner gate stays parameterized:
        // `C[t] exp(-iθG) = exp(-iθ · |t⟩⟨t| ⊗ G)`, so the controlled gate
        // carries the same symbolic angle instead of silently freezing the
        // inner gate at its current matrix. The controlled generator's
        // spectrum is derived directly from the inner gate's — the inner
        // eigenvalues in the trigger block, zeros elsewhere, eigenvectors
        // block-embedded into the identity — so no re-diagonalisation (and
        // no convergence/Hermiticity failure path) is involved.
        if let (Some(form), true) = (&u.form, trigger < d_control) {
            let dim = d_control * d_t;
            let block = trigger * d_t;
            let spectrum = match &form.spectrum {
                Spectrum::Diagonal(inner) => {
                    let mut eigvals = vec![0.0; dim];
                    eigvals[block..block + d_t].copy_from_slice(inner);
                    Spectrum::Diagonal(eigvals)
                }
                Spectrum::Dense(eig) => {
                    let mut values = vec![0.0; dim];
                    values[block..block + d_t].copy_from_slice(&eig.values);
                    let mut vectors = CMatrix::identity(dim);
                    for i in 0..d_t {
                        for j in 0..d_t {
                            vectors[(block + i, block + j)] = eig.vectors.get(i, j);
                        }
                    }
                    Spectrum::Dense(HermitianEig { values, vectors })
                }
            };
            let controlled_form = GateForm { spectrum, param: form.param };
            let matrix = match form.param {
                Param::Bound(t) => controlled_form.realize(t),
                Param::Free(_) => controlled_form.realize(0.0),
            };
            return Self { name, dims: vec![d_control, d_t], matrix, form: Some(controlled_form) };
        }
        Self {
            name,
            dims: vec![d_control, d_t],
            matrix: gates::controlled_on_level(d_control, trigger, &u.matrix),
            form: None,
        }
    }

    // ----- accessors -----

    /// Gate name (for reports and debugging).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dimensions of the qudits this gate acts on, in target order.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of qudits the gate acts on.
    pub fn num_qudits(&self) -> usize {
        self.dims.len()
    }

    /// The unitary matrix. For a gate with a free parameter this is the
    /// matrix realized at `θ = 0` (the identity); use [`Gate::bound_matrix`]
    /// or [`Gate::bound`] to realize it at a concrete binding.
    pub fn matrix(&self) -> &CMatrix {
        &self.matrix
    }

    /// The gate's symbolic parameter, if it is parameterized.
    pub fn param(&self) -> Option<Param> {
        self.form.as_ref().map(|f| f.param)
    }

    /// The parameter-vector index this gate reads, if it carries a free
    /// parameter.
    pub fn free_param(&self) -> Option<usize> {
        self.form.as_ref().and_then(|f| f.param.free_index())
    }

    /// `true` if the gate carries a generator-based parameter (bound or
    /// free).
    pub fn is_parameterized(&self) -> bool {
        self.form.is_some()
    }

    /// `true` if the gate's generator is diagonal, in which case the realized
    /// matrix is diagonal at **every** binding. Always `false` for
    /// non-parameterized gates (whose structure is read off their matrix
    /// directly). Used by the compilers' parameter-independent cost models.
    pub fn has_diagonal_generator(&self) -> bool {
        self.form.as_ref().is_some_and(|f| matches!(f.spectrum, Spectrum::Diagonal(_)))
    }

    /// The matrix under a parameter binding: a free parameter is realized at
    /// `params[index]`; bound and non-parameterized gates return their stored
    /// matrix. Realizing the same binding twice is bitwise reproducible.
    ///
    /// # Errors
    /// Returns an error if the gate's free index is out of range for
    /// `params`.
    pub fn bound_matrix(&self, params: &[f64]) -> Result<CMatrix> {
        match &self.form {
            Some(form) if form.param.free_index().is_some() => {
                Ok(form.realize(form.param.resolve(params)?))
            }
            _ => Ok(self.matrix.clone()),
        }
    }

    /// Returns the gate with its free parameter (if any) bound to the value
    /// `params` supplies; bound and non-parameterized gates are returned
    /// unchanged. The result keeps its spectral form, so it can be inspected
    /// or re-used, but carries no free parameters.
    ///
    /// # Errors
    /// Returns an error if the gate's free index is out of range for
    /// `params`.
    pub fn bound(&self, params: &[f64]) -> Result<Gate> {
        let Some(form) = &self.form else {
            return Ok(self.clone());
        };
        let Some(_) = form.param.free_index() else {
            return Ok(self.clone());
        };
        let theta = form.param.resolve(params)?;
        let mut bound_form = form.clone();
        bound_form.param = Param::Bound(theta);
        let matrix = bound_form.realize(theta);
        Ok(Gate {
            name: self.name.clone(),
            dims: self.dims.clone(),
            matrix,
            form: Some(bound_form),
        })
    }

    /// The inverse (adjoint) gate. A parameterized gate stays parameterized:
    /// `exp(-i θ G)† = exp(-i θ (-G))`, so the form's eigenvalues are
    /// negated and the same symbolic angle is kept.
    pub fn dagger(&self) -> Gate {
        let form = self.form.as_ref().map(|f| GateForm { spectrum: f.negated(), param: f.param });
        Gate {
            name: format!("{}†", self.name),
            dims: self.dims.clone(),
            matrix: self.matrix.dagger(),
            form,
        }
    }

    /// Renames the gate in place (builder style).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Returns `true` if the matrix is unitary to the given tolerance.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.matrix.is_unitary(tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::matrix::CMatrix;

    #[test]
    fn custom_gate_validation() {
        let ok = Gate::custom("id", vec![2, 2], CMatrix::identity(4));
        assert!(ok.is_ok());
        let wrong_dim = Gate::custom("id", vec![2, 2], CMatrix::identity(3));
        assert!(wrong_dim.is_err());
        let not_unitary = Gate::custom("bad", vec![2], CMatrix::zeros(2, 2));
        assert!(not_unitary.is_err());
    }

    #[test]
    fn from_generator_builds_unitary() {
        let h = gates::number_operator(4);
        let g = Gate::from_generator("exp", vec![4], &h, 0.3).unwrap();
        assert!(g.is_unitary(1e-10));
        assert!((g.matrix()[(2, 2)] - Complex64::cis(-0.6)).abs() < 1e-10);
    }

    #[test]
    fn from_generator_rejects_non_hermitian() {
        let m = gates::annihilation(3);
        assert!(Gate::from_generator("bad", vec![3], &m, 1.0).is_err());
    }

    #[test]
    fn dagger_inverts_gate() {
        let g = Gate::fourier(5);
        let prod = g.matrix().matmul(g.dagger().matrix()).unwrap();
        assert!((&prod - &CMatrix::identity(5)).max_abs() < 1e-10);
        assert!(g.dagger().name().contains('†'));
    }

    #[test]
    fn constructors_set_dims() {
        assert_eq!(Gate::csum(3, 4).dims(), &[3, 4]);
        assert_eq!(Gate::csum(3, 4).num_qudits(), 2);
        assert_eq!(Gate::snap(6, &[0.1; 6]).dims(), &[6]);
        assert_eq!(Gate::beam_splitter(5, 0.3, 0.0).dims(), &[5, 5]);
    }

    #[test]
    fn all_standard_gates_are_unitary() {
        let tol = 1e-9;
        for d in [2, 3, 5] {
            assert!(Gate::shift_x(d).is_unitary(tol));
            assert!(Gate::clock_z(d).is_unitary(tol));
            assert!(Gate::fourier(d).is_unitary(tol));
            assert!(Gate::x_mixer(d, 0.7).is_unitary(tol));
            assert!(Gate::full_mixer(d, 0.7).is_unitary(tol));
            assert!(Gate::csum(d, d).is_unitary(tol));
            assert!(Gate::cphase(d, d).is_unitary(tol));
            assert!(Gate::swap(d).is_unitary(tol));
            assert!(Gate::displacement(d, c64(0.3, 0.1)).is_unitary(tol));
        }
    }

    #[test]
    fn named_builder_changes_name() {
        let g = Gate::shift_x(3).named("increment");
        assert_eq!(g.name(), "increment");
    }

    #[test]
    fn parameterized_bound_matches_from_generator_bitwise() {
        // Dense generator (the QAOA ring mixer Hamiltonian).
        let mut h = CMatrix::zeros(4, 4);
        for k in 0..3 {
            h[(k, k + 1)] = Complex64::ONE;
            h[(k + 1, k)] = Complex64::ONE;
        }
        for t in [0.0, 0.37, -1.2] {
            let p = Gate::parameterized("mix", vec![4], &h, Param::Bound(t)).unwrap();
            let g = Gate::from_generator("mix", vec![4], &h, t).unwrap();
            assert_eq!(p.matrix().as_slice(), g.matrix().as_slice(), "t = {t}");
        }
    }

    #[test]
    fn free_parameter_realizes_identity_until_bound() {
        let h = gates::number_operator(3);
        let g = Gate::parameterized("phase", vec![3], &h, Param::Free(2)).unwrap();
        assert!(g.is_parameterized());
        assert!(g.has_diagonal_generator());
        assert_eq!(g.free_param(), Some(2));
        assert!((g.matrix() - &CMatrix::identity(3)).max_abs() < 1e-15);
        // Binding realizes at params[2] and clears the free index.
        let params = [0.0, 0.0, 0.8];
        let bound = g.bound(&params).unwrap();
        assert_eq!(bound.free_param(), None);
        assert_eq!(bound.param(), Some(Param::Bound(0.8)));
        assert!((bound.matrix()[(2, 2)] - Complex64::cis(-1.6)).abs() < 1e-12);
        // bound_matrix realizes without constructing a gate, bitwise equal.
        let m = g.bound_matrix(&params).unwrap();
        assert_eq!(m.as_slice(), bound.matrix().as_slice());
        // Realizing the same binding twice is bitwise reproducible.
        assert_eq!(
            g.bound_matrix(&params).unwrap().as_slice(),
            g.bound_matrix(&params).unwrap().as_slice()
        );
        // Out-of-range bindings are rejected.
        assert!(g.bound(&[0.1]).is_err());
        assert!(g.bound_matrix(&[0.1, 0.2]).is_err());
    }

    #[test]
    fn diagonal_generator_stays_exactly_diagonal_at_every_binding() {
        use qudit_core::apply::OpKind;
        let weights = CMatrix::diag_real(&[0.0, 1.0, 0.0, 2.5]);
        let g = Gate::parameterized("sep", vec![4], &weights, Param::Free(0)).unwrap();
        for theta in [0.0, 0.3, 2.0, -0.7] {
            let m = g.bound_matrix(&[theta]).unwrap();
            assert!(matches!(OpKind::classify(&m), OpKind::Diagonal(_)), "theta = {theta}");
            assert!((m[(1, 1)] - Complex64::cis(-theta)).abs() < 1e-12);
        }
    }

    #[test]
    fn parameterized_dagger_negates_the_generator() {
        let mut h = CMatrix::zeros(3, 3);
        h[(0, 1)] = Complex64::ONE;
        h[(1, 0)] = Complex64::ONE;
        let g = Gate::parameterized("rot", vec![3], &h, Param::Free(0)).unwrap();
        let inv = g.dagger();
        assert_eq!(inv.free_param(), Some(0));
        let theta = 0.63;
        let forward = g.bound_matrix(&[theta]).unwrap();
        let backward = inv.bound_matrix(&[theta]).unwrap();
        let prod = forward.matmul(&backward).unwrap();
        assert!((&prod - &CMatrix::identity(3)).max_abs() < 1e-10);
    }

    #[test]
    fn controlled_on_level_propagates_free_parameters() {
        let h = gates::number_operator(3);
        let inner = Gate::parameterized("phase", vec![3], &h, Param::Free(0)).unwrap();
        let controlled = Gate::controlled_on_level(2, 1, &inner);
        assert_eq!(controlled.free_param(), Some(0), "the symbolic angle must survive");
        assert!(controlled.has_diagonal_generator());
        let theta = 0.9;
        let bound = controlled.bound_matrix(&[theta]).unwrap();
        let expected = gates::controlled_on_level(2, 1, inner.bound(&[theta]).unwrap().matrix());
        assert!((&bound - &expected).max_abs() < 1e-10);
        // Dense inner generators propagate too.
        let dense =
            Gate::parameterized("mix", vec![3], &gates::x_mixer_generator(3), Param::Free(0))
                .unwrap();
        let cdense = Gate::controlled_on_level(2, 0, &dense);
        assert_eq!(cdense.free_param(), Some(0));
        let bound = cdense.bound_matrix(&[theta]).unwrap();
        let expected = gates::controlled_on_level(2, 0, dense.bound(&[theta]).unwrap().matrix());
        assert!((&bound - &expected).max_abs() < 1e-9);
    }

    #[test]
    fn parameterized_rejects_bad_generators() {
        assert!(
            Gate::parameterized("bad", vec![3], &gates::annihilation(3), Param::Free(0)).is_err()
        );
        assert!(Gate::parameterized("bad", vec![2], &CMatrix::identity(3), Param::Free(0)).is_err());
    }
}
