//! The [`Gate`] type: a named unitary with explicit per-qudit dimensions.

use qudit_core::complex::{c64, Complex64};
use qudit_core::linalg::expm_hermitian;
use qudit_core::matrix::CMatrix;

use crate::error::{CircuitError, Result};
use crate::gates;

/// A gate: a unitary operator together with the dimensions of the qudits it
/// acts on and a human-readable name.
///
/// The matrix is indexed with the **first** acted-on qudit as the most
/// significant digit, matching the order of the `targets` slice passed to
/// [`crate::Circuit::push`].
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    name: String,
    dims: Vec<usize>,
    matrix: CMatrix,
}

impl Gate {
    /// Creates a gate from an explicit matrix.
    ///
    /// # Errors
    /// Returns an error if the matrix is not square, its dimension does not
    /// equal the product of `dims`, or it is not unitary to `1e-8`.
    pub fn custom(name: impl Into<String>, dims: Vec<usize>, matrix: CMatrix) -> Result<Self> {
        let total: usize = dims.iter().product();
        if !matrix.is_square() || matrix.rows() != total {
            return Err(CircuitError::InvalidGate(format!(
                "matrix is {}x{} but dims {:?} require {total}x{total}",
                matrix.rows(),
                matrix.cols(),
                dims
            )));
        }
        if !matrix.is_unitary(1e-8) {
            return Err(CircuitError::InvalidGate("matrix is not unitary".into()));
        }
        Ok(Self { name: name.into(), dims, matrix })
    }

    /// Creates a gate from a possibly non-unitary matrix without the
    /// unitarity check. Intended for effective non-unitary operators in
    /// trajectory simulations; regular circuits should use [`Gate::custom`].
    pub fn custom_unchecked(name: impl Into<String>, dims: Vec<usize>, matrix: CMatrix) -> Self {
        Self { name: name.into(), dims, matrix }
    }

    /// Creates the gate `exp(-i H t)` from a Hermitian generator.
    ///
    /// # Errors
    /// Returns an error if the generator is not Hermitian or has the wrong
    /// dimension.
    pub fn from_generator(
        name: impl Into<String>,
        dims: Vec<usize>,
        h: &CMatrix,
        t: f64,
    ) -> Result<Self> {
        let total: usize = dims.iter().product();
        if h.rows() != total || !h.is_square() {
            return Err(CircuitError::InvalidGate(format!(
                "generator is {}x{} but dims {:?} require {total}x{total}",
                h.rows(),
                h.cols(),
                dims
            )));
        }
        if !h.is_hermitian(1e-8) {
            return Err(CircuitError::InvalidGate("generator is not Hermitian".into()));
        }
        let u = expm_hermitian(h, c64(0.0, -t))
            .map_err(|e| CircuitError::InvalidGate(e.to_string()))?;
        Ok(Self { name: name.into(), dims, matrix: u })
    }

    // ----- single-qudit constructors -----

    /// Identity gate on a `d`-level qudit.
    pub fn identity(d: usize) -> Self {
        Self { name: format!("I{d}"), dims: vec![d], matrix: gates::identity(d) }
    }

    /// Generalised Pauli-X (cyclic shift).
    pub fn shift_x(d: usize) -> Self {
        Self { name: format!("X{d}"), dims: vec![d], matrix: gates::shift_x(d) }
    }

    /// Generalised Pauli-Z (clock).
    pub fn clock_z(d: usize) -> Self {
        Self { name: format!("Z{d}"), dims: vec![d], matrix: gates::clock_z(d) }
    }

    /// Weyl operator `X^a Z^b`.
    pub fn weyl(d: usize, a: usize, b: usize) -> Self {
        Self { name: format!("W{d}({a},{b})"), dims: vec![d], matrix: gates::weyl(d, a, b) }
    }

    /// Discrete Fourier transform (qudit Hadamard).
    pub fn fourier(d: usize) -> Self {
        Self { name: format!("F{d}"), dims: vec![d], matrix: gates::fourier(d) }
    }

    /// SNAP gate with the given per-level phases.
    pub fn snap(d: usize, phases: &[f64]) -> Self {
        Self { name: format!("SNAP{d}"), dims: vec![d], matrix: gates::snap(d, phases) }
    }

    /// Truncated displacement gate `D(α)`.
    pub fn displacement(d: usize, alpha: Complex64) -> Self {
        Self {
            name: format!("D({:.3}{:+.3}i)", alpha.re, alpha.im),
            dims: vec![d],
            matrix: gates::displacement(d, alpha),
        }
    }

    /// Rotation in the `{|j⟩, |k⟩}` subspace.
    pub fn rot_subspace(d: usize, j: usize, k: usize, theta: f64, phi: f64) -> Self {
        Self {
            name: format!("R{j}{k}({theta:.3},{phi:.3})"),
            dims: vec![d],
            matrix: gates::rot_subspace(d, j, k, theta, phi),
        }
    }

    /// Phase on a single level.
    pub fn phase_on_level(d: usize, level: usize, theta: f64) -> Self {
        Self {
            name: format!("P{level}({theta:.3})"),
            dims: vec![d],
            matrix: gates::phase_on_level(d, level, theta),
        }
    }

    /// QAOA nearest-level mixer `exp(-iβ Σ|k⟩⟨k+1| + h.c.)`.
    pub fn x_mixer(d: usize, beta: f64) -> Self {
        Self { name: format!("Mix({beta:.3})"), dims: vec![d], matrix: gates::x_mixer(d, beta) }
    }

    /// QAOA fully-connected mixer.
    pub fn full_mixer(d: usize, beta: f64) -> Self {
        Self {
            name: format!("FullMix({beta:.3})"),
            dims: vec![d],
            matrix: gates::full_mixer(d, beta),
        }
    }

    /// Diagonal phase gate `exp(-iγ diag(w))`.
    pub fn diagonal_phase(weights: &[f64], gamma: f64) -> Self {
        Self {
            name: format!("Diag({gamma:.3})"),
            dims: vec![weights.len()],
            matrix: gates::diagonal_phase(weights, gamma),
        }
    }

    // ----- two-qudit constructors -----

    /// CSUM gate `|a⟩|b⟩ ↦ |a⟩|(b+a) mod d_t⟩` (control first).
    pub fn csum(d_control: usize, d_target: usize) -> Self {
        Self {
            name: format!("CSUM{d_control},{d_target}"),
            dims: vec![d_control, d_target],
            matrix: gates::csum(d_control, d_target),
        }
    }

    /// Inverse CSUM.
    pub fn csum_inverse(d_control: usize, d_target: usize) -> Self {
        Self {
            name: format!("CSUM†{d_control},{d_target}"),
            dims: vec![d_control, d_target],
            matrix: gates::csum_inverse(d_control, d_target),
        }
    }

    /// Controlled-phase gate `CZ_d`.
    pub fn cphase(d_control: usize, d_target: usize) -> Self {
        Self {
            name: format!("CZ{d_control},{d_target}"),
            dims: vec![d_control, d_target],
            matrix: gates::cphase(d_control, d_target),
        }
    }

    /// Weighted controlled phase `exp(-iγ a·b)`.
    pub fn cphase_weighted(d_control: usize, d_target: usize, gamma: f64) -> Self {
        Self {
            name: format!("CZZ({gamma:.3})"),
            dims: vec![d_control, d_target],
            matrix: gates::cphase_weighted(d_control, d_target, gamma),
        }
    }

    /// SWAP of two `d`-level qudits.
    pub fn swap(d: usize) -> Self {
        Self { name: format!("SWAP{d}"), dims: vec![d, d], matrix: gates::swap(d) }
    }

    /// Beam-splitter interaction between two `d`-level bosonic modes.
    pub fn beam_splitter(d: usize, theta: f64, phi: f64) -> Self {
        Self {
            name: format!("BS({theta:.3},{phi:.3})"),
            dims: vec![d, d],
            matrix: gates::beam_splitter(d, theta, phi),
        }
    }

    /// Cross-Kerr interaction `exp(-iχt n̂⊗n̂)`.
    pub fn cross_kerr(d1: usize, d2: usize, chi_t: f64) -> Self {
        Self {
            name: format!("XKerr({chi_t:.3})"),
            dims: vec![d1, d2],
            matrix: gates::cross_kerr(d1, d2, chi_t),
        }
    }

    /// Controlled unitary triggered on a specific control level.
    pub fn controlled_on_level(d_control: usize, trigger: usize, u: &Gate) -> Self {
        Self {
            name: format!("C[{trigger}]{}", u.name),
            dims: vec![d_control, u.matrix.rows()],
            matrix: gates::controlled_on_level(d_control, trigger, &u.matrix),
        }
    }

    // ----- accessors -----

    /// Gate name (for reports and debugging).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dimensions of the qudits this gate acts on, in target order.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of qudits the gate acts on.
    pub fn num_qudits(&self) -> usize {
        self.dims.len()
    }

    /// The unitary matrix.
    pub fn matrix(&self) -> &CMatrix {
        &self.matrix
    }

    /// The inverse (adjoint) gate.
    pub fn dagger(&self) -> Gate {
        Gate {
            name: format!("{}†", self.name),
            dims: self.dims.clone(),
            matrix: self.matrix.dagger(),
        }
    }

    /// Renames the gate in place (builder style).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Returns `true` if the matrix is unitary to the given tolerance.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.matrix.is_unitary(tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::matrix::CMatrix;

    #[test]
    fn custom_gate_validation() {
        let ok = Gate::custom("id", vec![2, 2], CMatrix::identity(4));
        assert!(ok.is_ok());
        let wrong_dim = Gate::custom("id", vec![2, 2], CMatrix::identity(3));
        assert!(wrong_dim.is_err());
        let not_unitary = Gate::custom("bad", vec![2], CMatrix::zeros(2, 2));
        assert!(not_unitary.is_err());
    }

    #[test]
    fn from_generator_builds_unitary() {
        let h = gates::number_operator(4);
        let g = Gate::from_generator("exp", vec![4], &h, 0.3).unwrap();
        assert!(g.is_unitary(1e-10));
        assert!((g.matrix()[(2, 2)] - Complex64::cis(-0.6)).abs() < 1e-10);
    }

    #[test]
    fn from_generator_rejects_non_hermitian() {
        let m = gates::annihilation(3);
        assert!(Gate::from_generator("bad", vec![3], &m, 1.0).is_err());
    }

    #[test]
    fn dagger_inverts_gate() {
        let g = Gate::fourier(5);
        let prod = g.matrix().matmul(g.dagger().matrix()).unwrap();
        assert!((&prod - &CMatrix::identity(5)).max_abs() < 1e-10);
        assert!(g.dagger().name().contains('†'));
    }

    #[test]
    fn constructors_set_dims() {
        assert_eq!(Gate::csum(3, 4).dims(), &[3, 4]);
        assert_eq!(Gate::csum(3, 4).num_qudits(), 2);
        assert_eq!(Gate::snap(6, &[0.1; 6]).dims(), &[6]);
        assert_eq!(Gate::beam_splitter(5, 0.3, 0.0).dims(), &[5, 5]);
    }

    #[test]
    fn all_standard_gates_are_unitary() {
        let tol = 1e-9;
        for d in [2, 3, 5] {
            assert!(Gate::shift_x(d).is_unitary(tol));
            assert!(Gate::clock_z(d).is_unitary(tol));
            assert!(Gate::fourier(d).is_unitary(tol));
            assert!(Gate::x_mixer(d, 0.7).is_unitary(tol));
            assert!(Gate::full_mixer(d, 0.7).is_unitary(tol));
            assert!(Gate::csum(d, d).is_unitary(tol));
            assert!(Gate::cphase(d, d).is_unitary(tol));
            assert!(Gate::swap(d).is_unitary(tol));
            assert!(Gate::displacement(d, c64(0.3, 0.1)).is_unitary(tol));
        }
    }

    #[test]
    fn named_builder_changes_name() {
        let g = Gate::shift_x(3).named("increment");
        assert_eq!(g.name(), "increment");
    }
}
