//! Error types for the gate-model layer.

use std::fmt;

use qudit_core::error::CoreError;

/// Result alias used throughout `qudit-circuit`.
pub type Result<T> = std::result::Result<T, CircuitError>;

/// Errors produced by circuit construction and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A gate definition was invalid (wrong shape, not unitary, ...).
    InvalidGate(String),
    /// A gate or channel was applied to invalid targets.
    InvalidTargets(String),
    /// A noise channel definition was invalid (e.g. not trace preserving).
    InvalidChannel(String),
    /// The requested operation is unsupported for this circuit (e.g. building
    /// the unitary of a circuit containing measurements).
    Unsupported(String),
    /// An error bubbled up from the numerics substrate.
    Core(CoreError),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::InvalidGate(msg) => write!(f, "invalid gate: {msg}"),
            CircuitError::InvalidTargets(msg) => write!(f, "invalid targets: {msg}"),
            CircuitError::InvalidChannel(msg) => write!(f, "invalid channel: {msg}"),
            CircuitError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            CircuitError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl std::error::Error for CircuitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CircuitError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for CircuitError {
    fn from(e: CoreError) -> Self {
        CircuitError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: CircuitError = CoreError::InvalidDimension(1).into();
        assert!(e.to_string().contains("core error"));
        assert!(CircuitError::InvalidGate("x".into()).to_string().contains("invalid gate"));
    }
}
