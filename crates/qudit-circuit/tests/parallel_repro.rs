//! Parallel-execution invariants: trajectory and shot loops must produce
//! results that are bitwise independent of the worker-thread count, and
//! reproducible from a fixed seed.

use qudit_circuit::gate::Gate;
use qudit_circuit::noise::NoiseModel;
use qudit_circuit::sim::{StatevectorSimulator, TrajectorySimulator};
use qudit_circuit::{Circuit, Observable};

fn noisy_circuit() -> Circuit {
    let mut c = Circuit::uniform(3, 3);
    c.push(Gate::fourier(3), &[0]).unwrap();
    c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
    c.push(Gate::csum(3, 3), &[1, 2]).unwrap();
    c.push(Gate::shift_x(3), &[2]).unwrap();
    c
}

#[test]
fn trajectory_expectation_is_bitwise_thread_invariant() {
    let c = noisy_circuit();
    let noise = NoiseModel::cavity(0.08, 0.15, 0.0);
    let obs = Observable::number(1, 3);
    let estimates: Vec<_> = [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| {
            TrajectorySimulator::new(48)
                .with_seed(17)
                .with_noise(noise.clone())
                .with_threads(threads)
                .expectation(&c, &obs)
                .unwrap()
        })
        .collect();
    for est in &estimates[1..] {
        // Bitwise: the reduction order is fixed, not merely statistically equal.
        assert_eq!(est.mean.to_bits(), estimates[0].mean.to_bits());
        assert_eq!(est.std_error.to_bits(), estimates[0].std_error.to_bits());
    }
}

#[test]
fn trajectory_outcome_distribution_is_thread_invariant() {
    let c = noisy_circuit();
    let noise = NoiseModel::depolarizing(0.05, 0.1);
    let serial = TrajectorySimulator::new(32)
        .with_seed(3)
        .with_noise(noise.clone())
        .with_threads(1)
        .outcome_distribution(&c)
        .unwrap();
    let parallel = TrajectorySimulator::new(32)
        .with_seed(3)
        .with_noise(noise)
        .with_threads(4)
        .outcome_distribution(&c)
        .unwrap();
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(parallel.iter()) {
        assert_eq!(s.to_bits(), p.to_bits());
    }
}

#[test]
fn trajectory_sample_counts_are_thread_invariant() {
    let c = noisy_circuit();
    let noise = NoiseModel::cavity(0.1, 0.2, 0.0).with_readout_flip(0.02);
    let serial = TrajectorySimulator::new(16)
        .with_seed(9)
        .with_noise(noise.clone())
        .with_threads(1)
        .sample_counts(&c, 200)
        .unwrap();
    let parallel = TrajectorySimulator::new(16)
        .with_seed(9)
        .with_noise(noise)
        .with_threads(4)
        .sample_counts(&c, 200)
        .unwrap();
    assert_eq!(serial, parallel);
    assert_eq!(serial.values().sum::<usize>(), 16 * 200);
}

#[test]
fn parallel_estimates_are_reproducible_for_fixed_seed() {
    let c = noisy_circuit();
    let noise = NoiseModel::depolarizing(0.1, 0.1);
    let obs = Observable::number(0, 3);
    let a = TrajectorySimulator::new(64)
        .with_seed(5)
        .with_noise(noise.clone())
        .expectation(&c, &obs)
        .unwrap();
    let b =
        TrajectorySimulator::new(64).with_seed(5).with_noise(noise).expectation(&c, &obs).unwrap();
    assert_eq!(a.mean.to_bits(), b.mean.to_bits());
    assert_eq!(a.std_error.to_bits(), b.std_error.to_bits());
    assert_eq!(a.n_trajectories, 64);
}

#[test]
fn stochastic_statevector_shots_are_thread_invariant() {
    let mut c = noisy_circuit();
    c.measure(&[0]).unwrap(); // forces per-shot re-runs
    let serial =
        StatevectorSimulator::with_seed(33).with_threads(1).sample_counts(&c, 400).unwrap();
    let parallel =
        StatevectorSimulator::with_seed(33).with_threads(8).sample_counts(&c, 400).unwrap();
    assert_eq!(serial, parallel);
    assert_eq!(serial.values().sum::<usize>(), 400);
}
