//! Property tests for the gate-fusion pipeline: fused execution must equal
//! unfused gate-by-gate execution on randomized mixed-radix circuits mixing
//! diagonal, monomial and dense gates, with mid-circuit measurements (which
//! flush fusion runs) and noise-channel boundaries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qudit_circuit::noise::{KrausChannel, NoiseModel};
use qudit_circuit::sim::{FusionConfig, StatevectorSimulator, TrajectorySimulator};
use qudit_circuit::{Circuit, Gate, Observable};
use qudit_core::random::haar_unitary;

const TOL: f64 = 1e-12;

/// A random gate on a register with the given dimensions: a mix of diagonal
/// (SNAP, clock), monomial (shift, Weyl, CSUM) and dense (Fourier, Haar)
/// operators on one or two qudits, with randomly ordered targets.
fn push_random_gate(c: &mut Circuit, dims: &[usize], rng: &mut StdRng) {
    let n = dims.len();
    let two_qudit = n >= 2 && rng.gen::<f64>() < 0.4;
    if two_qudit {
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        match rng.gen_range(0..3) {
            0 => c.push(Gate::csum(dims[a], dims[b]), &[a, b]).unwrap(),
            1 => {
                let d = dims[a] * dims[b];
                let u = haar_unitary(rng, d).unwrap();
                c.push(Gate::custom("haar2", vec![dims[a], dims[b]], u).unwrap(), &[a, b]).unwrap();
            }
            _ => {
                // Diagonal two-qudit controlled-phase-like gate.
                let d = dims[a] * dims[b];
                let phases: Vec<f64> =
                    (0..d).map(|_| rng.gen::<f64>() * std::f64::consts::TAU).collect();
                let m = qudit_core::matrix::CMatrix::diag(
                    &phases.iter().map(|&p| qudit_core::Complex64::cis(p)).collect::<Vec<_>>(),
                );
                c.push(Gate::custom("cdiag", vec![dims[a], dims[b]], m).unwrap(), &[a, b]).unwrap();
            }
        }
    } else {
        let q = rng.gen_range(0..n);
        let d = dims[q];
        match rng.gen_range(0..5) {
            0 => {
                let phases: Vec<f64> =
                    (0..d).map(|_| rng.gen::<f64>() * std::f64::consts::TAU).collect();
                c.push(Gate::snap(d, &phases), &[q]).unwrap();
            }
            1 => c.push(Gate::clock_z(d), &[q]).unwrap(),
            2 => c.push(Gate::shift_x(d), &[q]).unwrap(),
            3 => c.push(Gate::weyl(d, rng.gen_range(0..d), rng.gen_range(0..d)), &[q]).unwrap(),
            _ => c.push(Gate::fourier(d), &[q]).unwrap(),
        }
    }
}

fn random_dims(rng: &mut StdRng) -> Vec<usize> {
    let n = rng.gen_range(3..=5);
    (0..n).map(|_| rng.gen_range(2..=4)).collect()
}

fn amplitudes_match(a: &qudit_core::QuditState, b: &qudit_core::QuditState) {
    assert_eq!(a.dim(), b.dim());
    for (x, y) in a.amplitudes().iter().zip(b.amplitudes().iter()) {
        assert!((*x - *y).abs() < TOL, "{x:?} vs {y:?}");
    }
}

#[test]
fn fused_equals_unfused_on_random_unitary_circuits() {
    for trial in 0..25 {
        let mut rng = StdRng::seed_from_u64(1000 + trial);
        let dims = random_dims(&mut rng);
        let mut c = Circuit::new(dims.clone());
        for _ in 0..rng.gen_range(5..25) {
            push_random_gate(&mut c, &dims, &mut rng);
            if rng.gen::<f64>() < 0.15 {
                c.barrier();
            }
        }
        let fused = StatevectorSimulator::with_seed(7).run(&c).unwrap();
        let unfused = StatevectorSimulator::with_seed(7)
            .with_fusion(FusionConfig::disabled())
            .run(&c)
            .unwrap();
        amplitudes_match(&fused, &unfused);
        // Debug builds also translation-validate the fused plan statically.
        #[cfg(debug_assertions)]
        {
            let plan = StatevectorSimulator::new().compile(&c).unwrap();
            qudit_verify::verify_statevector(&c, &plan, &qudit_verify::VerifyConfig::default())
                .unwrap();
        }
    }
}

#[test]
fn fused_equals_unfused_with_mid_circuit_measurements() {
    for trial in 0..15 {
        let mut rng = StdRng::seed_from_u64(2000 + trial);
        let dims = random_dims(&mut rng);
        let mut c = Circuit::new(dims.clone());
        for _ in 0..rng.gen_range(6..20) {
            push_random_gate(&mut c, &dims, &mut rng);
            if rng.gen::<f64>() < 0.2 {
                // Mid-circuit measurement or reset: flushes the fusion run.
                let q = rng.gen_range(0..dims.len());
                if rng.gen::<bool>() {
                    c.measure(&[q]).unwrap();
                } else {
                    c.reset(q).unwrap();
                }
            }
        }
        c.measure_all();
        let seed = 31 + trial;
        let fused = StatevectorSimulator::with_seed(seed).run_detailed(&c).unwrap();
        let unfused = StatevectorSimulator::with_seed(seed)
            .with_fusion(FusionConfig::disabled())
            .run_detailed(&c)
            .unwrap();
        assert_eq!(fused.measurements, unfused.measurements, "trial {trial}");
        amplitudes_match(&fused.state, &unfused.state);
    }
}

#[test]
fn fused_equals_unfused_across_noise_channel_boundaries() {
    for trial in 0..15 {
        let mut rng = StdRng::seed_from_u64(3000 + trial);
        let dims = random_dims(&mut rng);
        let mut c = Circuit::new(dims.clone());
        for _ in 0..rng.gen_range(6..18) {
            push_random_gate(&mut c, &dims, &mut rng);
            if rng.gen::<f64>() < 0.25 {
                let q = rng.gen_range(0..dims.len());
                c.push_channel(KrausChannel::photon_loss(dims[q], 0.2).unwrap(), &[q]).unwrap();
            }
        }
        let seed = 91 + trial;
        let fused = StatevectorSimulator::with_seed(seed).run(&c).unwrap();
        let unfused = StatevectorSimulator::with_seed(seed)
            .with_fusion(FusionConfig::disabled())
            .run(&c)
            .unwrap();
        amplitudes_match(&fused, &unfused);
    }
}

#[test]
fn fused_equals_unfused_under_gate_level_noise_model() {
    // With a gate-attached noise model every gate is a fusion barrier; the
    // compiled plan must reproduce the verbatim run bit for bit apart from
    // rounding.
    let mut rng = StdRng::seed_from_u64(4000);
    let dims = vec![3, 3, 2];
    let mut c = Circuit::new(dims.clone());
    for _ in 0..12 {
        push_random_gate(&mut c, &dims, &mut rng);
    }
    let noise = NoiseModel::depolarizing(0.02, 0.05);
    for seed in [5, 6, 7] {
        let fused =
            StatevectorSimulator::with_seed(seed).with_noise(noise.clone()).run(&c).unwrap();
        let unfused = StatevectorSimulator::with_seed(seed)
            .with_noise(noise.clone())
            .with_fusion(FusionConfig::disabled())
            .run(&c)
            .unwrap();
        amplitudes_match(&fused, &unfused);
    }
}

#[test]
fn fused_budget_variations_agree() {
    // Different budgets change the blocking, never the state.
    let mut rng = StdRng::seed_from_u64(5000);
    let dims = vec![2, 3, 2, 2];
    let mut c = Circuit::new(dims.clone());
    for _ in 0..20 {
        push_random_gate(&mut c, &dims, &mut rng);
    }
    let reference =
        StatevectorSimulator::new().with_fusion(FusionConfig::disabled()).run(&c).unwrap();
    for (max_qudits, max_dim) in [(2, 9), (3, 16), (4, 64), (4, 4096)] {
        let cfg = FusionConfig { enabled: true, max_qudits, max_dim, ..FusionConfig::default() };
        let fused = StatevectorSimulator::new().with_fusion(cfg).run(&c).unwrap();
        amplitudes_match(&fused, &reference);
    }
}

#[test]
fn compiled_circuit_reuse_matches_fresh_runs() {
    let mut rng = StdRng::seed_from_u64(6000);
    let dims = vec![3, 2, 3];
    let mut c = Circuit::new(dims.clone());
    for _ in 0..15 {
        push_random_gate(&mut c, &dims, &mut rng);
    }
    let sim = StatevectorSimulator::with_seed(11);
    let compiled = sim.compile(&c).unwrap();
    assert!(compiled.fusion_stats().unitary_steps_out <= compiled.fusion_stats().unitaries_in);
    #[cfg(debug_assertions)]
    qudit_verify::verify_statevector(&c, &compiled, &qudit_verify::VerifyConfig::default())
        .unwrap();
    let fresh = sim.run_detailed(&c).unwrap();
    for _ in 0..3 {
        let rerun = sim.run_compiled(&compiled).unwrap();
        amplitudes_match(&rerun.state, &fresh.state);
    }
}

#[test]
fn compiled_circuit_rejects_mismatched_noise_model() {
    let mut c = Circuit::uniform(2, 3);
    c.push(Gate::fourier(3), &[0]).unwrap();
    let compiled = StatevectorSimulator::new().compile(&c).unwrap();
    // Same (noiseless) model: fine.
    assert!(StatevectorSimulator::with_seed(9).run_compiled(&compiled).is_ok());
    // Different model: the plan's baked-in channels would not match.
    let noisy = StatevectorSimulator::new().with_noise(NoiseModel::depolarizing(0.05, 0.1));
    assert!(noisy.run_compiled(&compiled).is_err());
}

#[test]
fn trajectory_estimates_agree_with_and_without_fusion() {
    let mut c = Circuit::uniform(3, 3);
    c.push(Gate::fourier(3), &[0]).unwrap();
    c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
    c.push(Gate::csum(3, 3), &[1, 2]).unwrap();
    c.push(Gate::clock_z(3), &[2]).unwrap();
    c.push(Gate::shift_x(3), &[2]).unwrap();
    let obs = Observable::number(2, 3);
    // Noiseless: deterministic, so fusion on/off must agree to rounding.
    let on = TrajectorySimulator::new(8).with_seed(3).expectation(&c, &obs).unwrap();
    let off = TrajectorySimulator::new(8)
        .with_seed(3)
        .with_fusion(FusionConfig::disabled())
        .expectation(&c, &obs)
        .unwrap();
    assert!((on.mean - off.mean).abs() < 1e-10);
}

#[test]
fn pool_backed_sampling_is_thread_count_invariant_with_fusion() {
    let mut c = Circuit::uniform(2, 3);
    c.push(Gate::fourier(3), &[0]).unwrap();
    c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
    c.measure(&[0]).unwrap();
    let noise = NoiseModel::cavity(0.1, 0.15, 0.0);
    let reference = StatevectorSimulator::with_seed(77)
        .with_noise(noise.clone())
        .with_threads(1)
        .sample_counts(&c, 400)
        .unwrap();
    for threads in [2, 3, 8] {
        let counts = StatevectorSimulator::with_seed(77)
            .with_noise(noise.clone())
            .with_threads(threads)
            .sample_counts(&c, 400)
            .unwrap();
        assert_eq!(counts, reference, "threads = {threads}");
    }
}
