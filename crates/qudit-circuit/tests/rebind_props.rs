//! Property tests for the parameterized circuit IR and rebindable compiled
//! plans: for every simulator back-end, rebinding a compiled plan must equal
//! recompiling the bound circuit — `compile(c).bind(θ).run ≡
//! compile(c.with_bound(θ)).run` — at 1e-12 on randomized mixed-radix
//! parameterized circuits with mid-circuit measurements and noise channels.
//! For the stochastic back-ends (statevector, trajectory) the agreement is
//! pinned **bitwise**: rebound and rebuilt plans materialise bitwise-
//! identical operators, so measurement records, shot counts and trajectory
//! estimates coincide exactly and RNG streams stay aligned.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qudit_circuit::noise::{KrausChannel, NoiseModel};
use qudit_circuit::sim::{
    DensityMatrixSimulator, FusionConfig, StatevectorSimulator, SuperopConfig, TrajectorySimulator,
};
use qudit_circuit::{Circuit, Gate, Observable, Param};
use qudit_core::matrix::CMatrix;
use qudit_core::Complex64;

const TOL: f64 = 1e-12;

/// A random Hermitian generator of dimension `d`.
fn random_hermitian(rng: &mut StdRng, d: usize) -> CMatrix {
    let a = CMatrix::from_fn(d, d, |_, _| {
        Complex64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5)
    });
    a.hermitian_part()
}

/// Pushes a random parameterized gate reading parameter `idx`: a diagonal
/// phase separator, a dense mixer-style rotation, or a two-qudit diagonal
/// coupler — the gate families the application crates sweep.
fn push_random_param_gate(c: &mut Circuit, dims: &[usize], idx: usize, rng: &mut StdRng) {
    let n = dims.len();
    let q = rng.gen_range(0..n);
    let d = dims[q];
    match rng.gen_range(0..3) {
        0 => {
            let weights: Vec<f64> = (0..d).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
            let g = Gate::parameterized(
                format!("sep{idx}"),
                vec![d],
                &CMatrix::diag_real(&weights),
                Param::Free(idx),
            )
            .unwrap();
            c.push(g, &[q]).unwrap();
        }
        1 => {
            let h = random_hermitian(rng, d);
            let g =
                Gate::parameterized(format!("mix{idx}"), vec![d], &h, Param::Free(idx)).unwrap();
            c.push(g, &[q]).unwrap();
        }
        _ if n >= 2 => {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n - 1);
            if b >= a {
                b += 1;
            }
            let dd = dims[a] * dims[b];
            let weights: Vec<f64> = (0..dd).map(|_| rng.gen::<f64>()).collect();
            let g = Gate::parameterized(
                format!("zz{idx}"),
                vec![dims[a], dims[b]],
                &CMatrix::diag_real(&weights),
                Param::Free(idx),
            )
            .unwrap();
            c.push(g, &[a, b]).unwrap();
        }
        _ => {
            let h = random_hermitian(rng, d);
            let g =
                Gate::parameterized(format!("mix{idx}"), vec![d], &h, Param::Free(idx)).unwrap();
            c.push(g, &[q]).unwrap();
        }
    }
}

fn push_random_const_gate(c: &mut Circuit, dims: &[usize], rng: &mut StdRng) {
    let n = dims.len();
    if n >= 2 && rng.gen::<f64>() < 0.35 {
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        c.push(Gate::csum(dims[a], dims[b]), &[a, b]).unwrap();
    } else {
        let q = rng.gen_range(0..n);
        match rng.gen_range(0..3) {
            0 => c.push(Gate::fourier(dims[q]), &[q]).unwrap(),
            1 => c.push(Gate::shift_x(dims[q]), &[q]).unwrap(),
            _ => c.push(Gate::clock_z(dims[q]), &[q]).unwrap(),
        }
    }
}

/// A randomized parameterized circuit with `num_params` free angles, mixing
/// parameterized and constant gates with mid-circuit measurements, resets and
/// explicit noise channels.
fn random_param_circuit(
    rng: &mut StdRng,
    num_params: usize,
    stochastic: bool,
) -> (Circuit, Vec<usize>) {
    let n = rng.gen_range(3..=4);
    let dims: Vec<usize> = (0..n).map(|_| rng.gen_range(2..=3)).collect();
    let mut c = Circuit::new(dims.clone());
    let len = rng.gen_range(10..=18);
    let mut used = Vec::new();
    for step in 0..len {
        let roll = rng.gen::<f64>();
        if roll < 0.35 {
            let idx = step % num_params;
            used.push(idx);
            push_random_param_gate(&mut c, &dims, idx, rng);
        } else if roll < 0.75 || !stochastic {
            push_random_const_gate(&mut c, &dims, rng);
        } else if roll < 0.85 {
            let q = rng.gen_range(0..n);
            c.measure(&[q]).unwrap();
        } else if roll < 0.92 {
            let q = rng.gen_range(0..n);
            c.reset(q).unwrap();
        } else {
            let q = rng.gen_range(0..n);
            let ch = if rng.gen::<bool>() {
                KrausChannel::photon_loss(dims[q], 0.2).unwrap()
            } else {
                KrausChannel::depolarizing(dims[q], 0.15).unwrap()
            };
            c.push_channel(ch, &[q]).unwrap();
        }
    }
    // Make sure every parameter index is actually read at least once.
    for idx in 0..num_params {
        if !used.contains(&idx) {
            push_random_param_gate(&mut c, &dims, idx, rng);
        }
    }
    (c, dims)
}

fn random_binding(rng: &mut StdRng, num_params: usize) -> Vec<f64> {
    (0..num_params).map(|_| rng.gen::<f64>() * 3.0 - 1.5).collect()
}

#[test]
fn statevector_rebind_is_bitwise_identical_to_rebuild() {
    for trial in 0..20 {
        let mut rng = StdRng::seed_from_u64(7000 + trial);
        let num_params = 3;
        let (c, _) = random_param_circuit(&mut rng, num_params, true);
        assert_eq!(c.num_params(), num_params);
        let sim = StatevectorSimulator::with_seed(42 + trial);
        let mut plan = sim.compile(&c).unwrap();
        let steps = plan.num_steps();
        // Two successive rebinds of the same plan, each compared against a
        // from-scratch compile of the bound circuit.
        for round in 0..2 {
            let theta = random_binding(&mut rng, num_params);
            let rebound = sim.run_bound(&mut plan, &theta).unwrap();
            let rebuilt = sim.run_detailed(&c.with_bound(&theta).unwrap()).unwrap();
            assert_eq!(
                rebound.measurements, rebuilt.measurements,
                "trial {trial}, round {round}: measurement records must be bitwise identical"
            );
            assert_eq!(
                rebound.state.amplitudes(),
                rebuilt.state.amplitudes(),
                "trial {trial}, round {round}: states must be bitwise identical"
            );
            assert_eq!(plan.num_steps(), steps, "rebinding must not change the plan topology");
            // Debug builds translation-validate the freshly rebound plan:
            // every override must carry exactly the recipe-at-θ operator.
            #[cfg(debug_assertions)]
            qudit_verify::verify_statevector_bound(
                &c,
                &plan,
                &theta,
                &qudit_verify::VerifyConfig::default(),
            )
            .unwrap();
        }
    }
}

#[test]
fn rebinding_back_to_an_earlier_binding_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(99);
    let (c, _) = random_param_circuit(&mut rng, 2, false);
    let sim = StatevectorSimulator::with_seed(5);
    let mut plan = sim.compile(&c).unwrap();
    let theta1 = random_binding(&mut rng, 2);
    let theta2 = random_binding(&mut rng, 2);
    let first = sim.run_bound(&mut plan, &theta1).unwrap();
    let _ = sim.run_bound(&mut plan, &theta2).unwrap();
    let again = sim.run_bound(&mut plan, &theta1).unwrap();
    assert_eq!(first.state.amplitudes(), again.state.amplitudes());
}

#[test]
fn rebind_rejects_short_bindings_and_zero_binding_matches_compile() {
    let mut rng = StdRng::seed_from_u64(123);
    let (c, _) = random_param_circuit(&mut rng, 3, false);
    let sim = StatevectorSimulator::new();
    let mut plan = sim.compile(&c).unwrap();
    assert_eq!(plan.num_params(), 3);
    assert!(plan.bind(&[0.1]).is_err(), "short bindings must be rejected");
    // A freshly compiled parameterized plan is bound at zeros.
    let at_compile = sim.run_compiled(&plan).unwrap();
    let at_zeros = sim.run_bound(&mut plan, &[0.0; 3]).unwrap();
    assert_eq!(at_compile.state.amplitudes(), at_zeros.state.amplitudes());
}

#[test]
fn rebind_matches_rebuild_with_fusion_disabled_and_gate_noise() {
    for trial in 0..8 {
        let mut rng = StdRng::seed_from_u64(4400 + trial);
        let (c, _) = random_param_circuit(&mut rng, 2, true);
        let noise = NoiseModel::depolarizing(0.02, 0.05);
        for fusion in [FusionConfig::default(), FusionConfig::disabled()] {
            let sim = StatevectorSimulator::with_seed(17 + trial)
                .with_noise(noise.clone())
                .with_fusion(fusion.clone());
            let mut plan = sim.compile(&c).unwrap();
            let theta = random_binding(&mut rng, 2);
            let rebound = sim.run_bound(&mut plan, &theta).unwrap();
            let rebuilt = sim.run_detailed(&c.with_bound(&theta).unwrap()).unwrap();
            assert_eq!(rebound.measurements, rebuilt.measurements);
            assert_eq!(rebound.state.amplitudes(), rebuilt.state.amplitudes());
        }
    }
}

#[test]
fn trajectory_rebind_estimates_are_bitwise_identical_to_rebuild() {
    for trial in 0..6 {
        let mut rng = StdRng::seed_from_u64(5100 + trial);
        let (c, dims) = random_param_circuit(&mut rng, 2, true);
        let noise = NoiseModel::cavity(0.05, 0.1, 0.0);
        let obs = Observable::number(0, dims[0]);
        let sim = TrajectorySimulator::new(40).with_seed(31 + trial).with_noise(noise.clone());
        let mut plan = sim.compile(&c).unwrap();
        for _ in 0..2 {
            let theta = random_binding(&mut rng, 2);
            let rebound = sim.expectation_bound(&mut plan, &theta, &obs).unwrap();
            let rebuilt = sim.expectation(&c.with_bound(&theta).unwrap(), &obs).unwrap();
            assert_eq!(rebound.mean, rebuilt.mean, "trial {trial}");
            assert_eq!(rebound.std_error, rebuilt.std_error, "trial {trial}");
            // The averaged outcome distribution agrees bitwise too.
            let dist_rebound = sim.outcome_distribution_bound(&mut plan, &theta).unwrap();
            let dist_rebuilt = sim.outcome_distribution(&c.with_bound(&theta).unwrap()).unwrap();
            assert_eq!(dist_rebound, dist_rebuilt, "trial {trial}");
        }
    }
}

#[test]
fn density_rebind_matches_rebuild_at_tolerance() {
    // The density compiler classifies free-parameter items conservatively, so
    // the rebound plan's folding topology may differ from the plan compiled
    // from the bound circuit — both are exact re-orderings, equal to
    // rounding.
    for trial in 0..10 {
        let mut rng = StdRng::seed_from_u64(6200 + trial);
        let (c, _) = random_param_circuit(&mut rng, 2, true);
        let noise = NoiseModel::depolarizing(0.01, 0.03);
        for superop in [SuperopConfig::default(), SuperopConfig::disabled()] {
            let sim = DensityMatrixSimulator::new()
                .with_noise(noise.clone())
                .with_superop(superop.clone());
            let mut plan = sim.compile(&c).unwrap();
            for _ in 0..2 {
                let theta = random_binding(&mut rng, 2);
                let rebound = sim.run_bound(&mut plan, &theta).unwrap();
                let rebuilt = sim.run(&c.with_bound(&theta).unwrap()).unwrap();
                let diff = (rebound.matrix() - rebuilt.matrix()).max_abs();
                assert!(diff < TOL, "trial {trial}: rebound vs rebuilt diff {diff}");
                assert!((rebound.trace() - 1.0).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn density_parallel_sweeps_are_bitwise_thread_invariant() {
    let mut rng = StdRng::seed_from_u64(8080);
    let (c, _) = random_param_circuit(&mut rng, 2, true);
    let noise = NoiseModel::depolarizing(0.02, 0.02);
    let theta = random_binding(&mut rng, 2);
    let bound = c.with_bound(&theta).unwrap();
    let serial = DensityMatrixSimulator::new()
        .with_noise(noise.clone())
        .with_threads(1)
        .run(&bound)
        .unwrap();
    for threads in [2usize, 4] {
        let parallel = DensityMatrixSimulator::new()
            .with_noise(noise.clone())
            .with_threads(threads)
            .run(&bound)
            .unwrap();
        assert_eq!(serial.matrix().as_slice(), parallel.matrix().as_slice(), "threads = {threads}");
    }
}

#[test]
fn rebound_shot_counts_are_bitwise_identical_to_rebuild() {
    // sample_counts re-runs the plan per shot with index-derived seeds, and
    // channel branch selection / readout flips consume further variates;
    // bitwise-equal counts between the rebound-plan circuit and the rebuilt
    // circuit pin the whole RNG stream alignment.
    let mut rng = StdRng::seed_from_u64(909);
    let (c, _) = random_param_circuit(&mut rng, 2, true);
    let theta = random_binding(&mut rng, 2);
    let bound = c.with_bound(&theta).unwrap();
    let noise = NoiseModel::depolarizing(0.02, 0.04).with_readout_flip(0.05);
    let sim = StatevectorSimulator::with_seed(77).with_noise(noise);
    // Rebound plan and rebuilt circuit land on bitwise-identical states and
    // records under the simulator's fixed seed...
    let mut plan = sim.compile(&c).unwrap();
    let rebound = sim.run_bound(&mut plan, &theta).unwrap();
    let rebuilt = sim.run_detailed(&bound).unwrap();
    assert_eq!(rebound.measurements, rebuilt.measurements);
    assert_eq!(rebound.state.amplitudes(), rebuilt.state.amplitudes());
    // ...and the per-shot sampler sees identical counts for the bound
    // circuit however the binding was produced.
    let counts_a = sim.sample_counts(&bound, 200).unwrap();
    let counts_b = sim.sample_counts(&c.with_bound(&theta).unwrap(), 200).unwrap();
    assert_eq!(counts_a, counts_b);
}
