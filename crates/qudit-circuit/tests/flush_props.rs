//! Property tests for wire-local fusion flushing on syndrome-extraction-style
//! circuits: repeated ancilla measure + reset rounds interleaved with
//! entangling layers on random mixed-radix registers. Wire-local flushing
//! re-orders disjoint-support blocks past mid-circuit measurements, so these
//! tests pin, for all three simulators,
//!
//! * wire-local ≡ global-flush ≡ unfused final states at `1e-12`,
//! * **bitwise identical** measurement records and shot counts across flush
//!   policies (the RNG-stream alignment guarantee: every stochastic draw
//!   consumes the same variates against the same distribution in the same
//!   order; outcome equality is exact except on a ~1 ulp boundary knife
//!   edge with probability ~1e-16 per draw, which these seeded workloads
//!   never hit — see the `fusion` module docs), and
//! * that the circuits actually exercise the feature (blocks do cross
//!   barriers under the wire-local policy).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qudit_circuit::noise::NoiseModel;
use qudit_circuit::sim::{
    DensityMatrixSimulator, FusionConfig, StatevectorSimulator, TrajectorySimulator,
};
use qudit_circuit::{Circuit, Gate, Observable};

const TOL: f64 = 1e-12;

fn wire_local() -> FusionConfig {
    FusionConfig::default()
}

fn global_flush() -> FusionConfig {
    FusionConfig::global_flush()
}

fn unfused() -> FusionConfig {
    FusionConfig::disabled()
}

/// A random single-qudit gate (diagonal, monomial or dense) on wire `q`.
fn push_random_1q(c: &mut Circuit, dims: &[usize], q: usize, rng: &mut StdRng) {
    let d = dims[q];
    match rng.gen_range(0..5) {
        0 => {
            let phases: Vec<f64> =
                (0..d).map(|_| rng.gen::<f64>() * std::f64::consts::TAU).collect();
            c.push(Gate::snap(d, &phases), &[q]).unwrap();
        }
        1 => c.push(Gate::clock_z(d), &[q]).unwrap(),
        2 => c.push(Gate::shift_x(d), &[q]).unwrap(),
        3 => c.push(Gate::weyl(d, rng.gen_range(0..d), rng.gen_range(0..d)), &[q]).unwrap(),
        _ => c.push(Gate::fourier(d), &[q]).unwrap(),
    }
}

/// A randomized syndrome-extraction-style circuit on a mixed-radix register:
/// the last qudit is the ancilla; each round applies gate runs on the data
/// wires, entangles a random data subset with the ancilla (stabilizer-style
/// CSUMs), measures the ancilla and resets it. Data wires outside the
/// round's subset have runs that must survive the readout under wire-local
/// flushing.
fn random_syndrome_circuit(rng: &mut StdRng) -> Circuit {
    let n_data = rng.gen_range(3..=4);
    let mut dims: Vec<usize> = (0..n_data).map(|_| rng.gen_range(2..=4)).collect();
    dims.push(rng.gen_range(2..=3)); // ancilla
    let anc = n_data;
    let mut c = Circuit::new(dims.clone());
    let rounds = rng.gen_range(2..=4);
    for _ in 0..rounds {
        // Data dynamics: a short run on every data wire.
        for q in 0..n_data {
            for _ in 0..rng.gen_range(1..=3) {
                push_random_1q(&mut c, &dims, q, rng);
            }
        }
        // Occasionally a two-qudit data gate.
        if rng.gen::<f64>() < 0.5 {
            let a = rng.gen_range(0..n_data - 1);
            c.push(Gate::csum(dims[a], dims[a + 1]), &[a, a + 1]).unwrap();
        }
        // Stabilizer readout: entangle a random data subset with the ancilla.
        let k = rng.gen_range(1..=2);
        let mut subset: Vec<usize> = (0..n_data).collect();
        for _ in 0..n_data - k {
            subset.remove(rng.gen_range(0..subset.len()));
        }
        for &q in &subset {
            c.push(Gate::csum(dims[q], dims[anc]), &[q, anc]).unwrap();
        }
        c.measure(&[anc]).unwrap();
        c.reset(anc).unwrap();
    }
    c.measure_all();
    c
}

fn amplitudes_match(a: &qudit_core::QuditState, b: &qudit_core::QuditState, context: &str) {
    assert_eq!(a.dim(), b.dim());
    for (x, y) in a.amplitudes().iter().zip(b.amplitudes().iter()) {
        assert!((*x - *y).abs() < TOL, "{context}: {x:?} vs {y:?}");
    }
}

#[test]
fn statevector_wire_local_equals_global_equals_unfused() {
    let mut crossed = 0usize;
    for trial in 0..20 {
        let mut rng = StdRng::seed_from_u64(9000 + trial);
        let c = random_syndrome_circuit(&mut rng);
        let seed = 120 + trial;
        let runs: Vec<_> = [wire_local(), global_flush(), unfused()]
            .into_iter()
            .map(|cfg| {
                StatevectorSimulator::with_seed(seed).with_fusion(cfg).run_detailed(&c).unwrap()
            })
            .collect();
        // Bitwise identical measurement records: the RNG-stream alignment
        // guarantee (same draws, same distributions, same order).
        assert_eq!(runs[0].measurements, runs[1].measurements, "trial {trial}");
        assert_eq!(runs[0].measurements, runs[2].measurements, "trial {trial}");
        amplitudes_match(&runs[0].state, &runs[1].state, &format!("trial {trial} wl/global"));
        amplitudes_match(&runs[0].state, &runs[2].state, &format!("trial {trial} wl/unfused"));

        let stats = StatevectorSimulator::new().compile(&c).unwrap().fusion_stats();
        crossed += stats.barrier_crossings;
    }
    assert!(crossed > 0, "the workload must exercise wire-local crossings");
}

#[test]
fn shot_sampling_is_bitwise_identical_across_flush_policies() {
    for trial in 0..6 {
        let mut rng = StdRng::seed_from_u64(9500 + trial);
        let c = random_syndrome_circuit(&mut rng);
        let sample = |cfg: FusionConfig, threads: usize| {
            StatevectorSimulator::with_seed(400 + trial)
                .with_fusion(cfg)
                .with_threads(threads)
                .sample_counts(&c, 150)
                .unwrap()
        };
        let reference = sample(wire_local(), 1);
        assert_eq!(sample(global_flush(), 1), reference, "trial {trial} global");
        assert_eq!(sample(unfused(), 1), reference, "trial {trial} unfused");
        // Thread-count invariance must survive the re-ordered plan too.
        assert_eq!(sample(wire_local(), 4), reference, "trial {trial} threads");
    }
}

#[test]
fn trajectory_sampling_is_bitwise_identical_across_flush_policies() {
    let mut rng = StdRng::seed_from_u64(9900);
    let c = random_syndrome_circuit(&mut rng);
    let noise = NoiseModel::cavity(0.05, 0.1, 0.0);
    let counts = |cfg: FusionConfig| {
        TrajectorySimulator::new(12)
            .with_seed(5)
            .with_noise(noise.clone())
            .with_fusion(cfg)
            .sample_counts(&c, 40)
            .unwrap()
    };
    let reference = counts(wire_local());
    assert_eq!(counts(global_flush()), reference);
    assert_eq!(counts(unfused()), reference);
}

#[test]
fn trajectory_estimates_agree_across_flush_policies_under_noise() {
    for trial in 0..4 {
        let mut rng = StdRng::seed_from_u64(10_000 + trial);
        let c = random_syndrome_circuit(&mut rng);
        let noise = NoiseModel::depolarizing(0.01, 0.03);
        let obs = Observable::number(0, c.dims()[0]);
        let estimate = |cfg: FusionConfig| {
            TrajectorySimulator::new(16)
                .with_seed(70 + trial)
                .with_noise(noise.clone())
                .with_fusion(cfg)
                .expectation(&c, &obs)
                .unwrap()
                .mean
        };
        let wl = estimate(wire_local());
        // Per-trajectory RNG streams stay aligned, so the estimates match to
        // rounding, not just statistically.
        assert!((wl - estimate(global_flush())).abs() < 1e-10, "trial {trial}");
        assert!((wl - estimate(unfused())).abs() < 1e-10, "trial {trial}");
    }
}

#[test]
fn density_wire_local_equals_global_equals_unfused() {
    for trial in 0..10 {
        let mut rng = StdRng::seed_from_u64(11_000 + trial);
        let c = random_syndrome_circuit(&mut rng);
        // Mix of gate-level noise (noisy gates are barriers) and noiseless
        // trials (pure wire-local reordering).
        let noise = if trial % 2 == 0 {
            NoiseModel::noiseless()
        } else {
            NoiseModel::depolarizing(0.01, 0.02)
        };
        let run = |cfg: FusionConfig| {
            DensityMatrixSimulator::new()
                .with_noise(noise.clone())
                .with_fusion(cfg)
                .run(&c)
                .unwrap()
        };
        let wl = run(wire_local());
        let gl = run(global_flush());
        let un = run(unfused());
        let d1 = (wl.matrix() - gl.matrix()).max_abs();
        let d2 = (wl.matrix() - un.matrix()).max_abs();
        assert!(d1 < TOL, "trial {trial}: wire-local vs global differ by {d1}");
        assert!(d2 < TOL, "trial {trial}: wire-local vs unfused differ by {d2}");
    }
}

#[test]
fn density_policies_agree_with_idle_loss_barriers() {
    // Lossy barriers decay every wire and must flush globally even under the
    // wire-local policy; the three policies still agree exactly.
    let mut rng = StdRng::seed_from_u64(12_000);
    let dims = vec![3, 2, 3];
    let mut c = Circuit::new(dims.clone());
    for round in 0..3 {
        for q in 0..dims.len() {
            push_random_1q(&mut c, &dims, q, &mut rng);
        }
        c.barrier();
        c.measure(&[round % dims.len()]).unwrap();
    }
    let noise = NoiseModel::cavity(0.0, 0.0, 0.2);
    let run = |cfg: FusionConfig| {
        DensityMatrixSimulator::new().with_noise(noise.clone()).with_fusion(cfg).run(&c).unwrap()
    };
    let wl = run(wire_local());
    let gl = run(global_flush());
    let un = run(unfused());
    assert!((wl.matrix() - gl.matrix()).max_abs() < TOL);
    assert!((wl.matrix() - un.matrix()).max_abs() < TOL);
}

#[test]
fn wire_local_compiles_fewer_apply_steps_on_syndrome_workloads() {
    // The point of the feature: across random syndrome circuits, wire-local
    // flushing must never emit more apply steps than the global policy, and
    // must strictly beat it on a majority of trials.
    let mut strictly_better = 0usize;
    let trials = 20;
    for trial in 0..trials {
        let mut rng = StdRng::seed_from_u64(13_000 + trial);
        let c = random_syndrome_circuit(&mut rng);
        let wl_plan = StatevectorSimulator::new().with_fusion(wire_local()).compile(&c).unwrap();
        let gl_plan = StatevectorSimulator::new().with_fusion(global_flush()).compile(&c).unwrap();
        // Debug builds translation-validate both flush policies' plans — in
        // particular the wire-local barrier crossings must all be proven
        // disjoint-support reorderings.
        #[cfg(debug_assertions)]
        {
            let vcfg = qudit_verify::VerifyConfig::default();
            qudit_verify::verify_statevector(&c, &wl_plan, &vcfg.clone().with_fusion(wire_local()))
                .unwrap();
            qudit_verify::verify_statevector(&c, &gl_plan, &vcfg.with_fusion(global_flush()))
                .unwrap();
        }
        let wl = wl_plan.fusion_stats();
        let gl = gl_plan.fusion_stats();
        assert!(
            wl.unitary_steps_out <= gl.unitary_steps_out,
            "trial {trial}: wire-local regressed: {wl:?} vs {gl:?}"
        );
        if wl.unitary_steps_out < gl.unitary_steps_out {
            strictly_better += 1;
        }
        assert_eq!(gl.barrier_crossings, 0, "global flush can never cross barriers");
    }
    assert!(
        strictly_better * 2 > trials as usize,
        "wire-local should strictly win on most syndrome circuits ({strictly_better}/{trials})"
    );
}
