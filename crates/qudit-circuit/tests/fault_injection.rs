//! Fault-injection property tests for the runtime health guards
//! (`qudit_core::guard`), compiled only under the `fault-inject` feature.
//!
//! Each test arms deterministic faults on the test thread, runs a simulator
//! with guards enabled, and proves the guard detects (or repairs, or degrades
//! around) exactly that fault class — and that clean guarded runs are
//! bitwise identical to unguarded ones.
#![cfg(feature = "fault-inject")]

use qudit_circuit::error::CircuitError;
use qudit_circuit::noise::{KrausChannel, NoiseModel};
use qudit_circuit::sim::{
    DensityMatrixSimulator, GuardConfig, GuardPolicy, HealthMetric, StatevectorSimulator,
    TrajectorySimulator,
};
use qudit_circuit::{Circuit, Gate, Observable};
use qudit_core::error::CoreError;
use qudit_core::guard::inject::{self, Fault};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic pseudo-random mixed-radix circuit: single-qudit Fourier /
/// shift / phase gates and two-qudit CSUMs.
fn random_circuit(dims: &[usize], depth: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(dims.to_vec());
    for _ in 0..depth {
        if dims.len() >= 2 && rng.gen_bool(0.3) {
            let a = rng.gen_range(0..dims.len());
            let mut b = rng.gen_range(0..dims.len());
            while b == a {
                b = rng.gen_range(0..dims.len());
            }
            c.push(Gate::csum(dims[a], dims[b]), &[a, b]).unwrap();
        } else {
            let q = rng.gen_range(0..dims.len());
            match rng.gen_range(0..3usize) {
                0 => c.push(Gate::fourier(dims[q]), &[q]).unwrap(),
                1 => c.push(Gate::shift_x(dims[q]), &[q]).unwrap(),
                _ => {
                    c.push(Gate::phase_on_level(dims[q], 1, rng.gen::<f64>() * 3.0), &[q]).unwrap()
                }
            }
        }
    }
    c
}

fn assert_health_error(err: CircuitError, expected: HealthMetric) {
    match err {
        CircuitError::Core(CoreError::NumericalHealth { metric, .. }) => {
            assert_eq!(metric, expected, "wrong health metric");
        }
        other => panic!("expected NumericalHealth({expected:?}), got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Detection: every injector class is caught at the default cadence.
// ---------------------------------------------------------------------------

#[test]
fn nan_poke_detected_on_statevector() {
    let c = random_circuit(&[3, 4], 12, 11);
    let sim = StatevectorSimulator::new().with_guard(GuardConfig::enabled());
    inject::arm(Fault::NanPoke { step: 0, index: 0 });
    let err = sim.run_detailed(&c).unwrap_err();
    inject::disarm_all();
    assert_health_error(err, HealthMetric::NonFinite);
}

#[test]
fn nan_poke_detected_on_density_matrix() {
    let c = random_circuit(&[2, 3], 10, 5);
    let sim = DensityMatrixSimulator::new().with_guard(GuardConfig::enabled());
    let compiled = sim.compile(&c).unwrap();
    inject::arm(Fault::NanPoke { step: 0, index: 0 });
    let err = sim.run_compiled_detailed(&compiled).unwrap_err();
    inject::disarm_all();
    assert_health_error(err, HealthMetric::NonFinite);
}

#[test]
fn nan_poke_detected_on_trajectory_backend() {
    // State faults are thread-local, so the trajectory loop must run on the
    // arming thread: threads = 1 degrades the pool dispatch to a serial loop.
    let c = random_circuit(&[3], 8, 2);
    let sim = TrajectorySimulator::new(4).with_threads(1).with_guard(GuardConfig::enabled());
    inject::arm(Fault::NanPoke { step: 0, index: 1 });
    let err = sim.expectation(&c, &Observable::number(0, 3)).unwrap_err();
    inject::disarm_all();
    assert_health_error(err, HealthMetric::NonFinite);
}

#[test]
fn amplitude_perturbation_detected_and_repaired() {
    let mut c = Circuit::uniform(1, 3);
    c.push(Gate::fourier(3), &[0]).unwrap();
    c.push(Gate::shift_x(3), &[0]).unwrap();

    // After the first step the state is uniform positive-real, so adding to
    // an amplitude strictly increases the norm: detection is deterministic.
    inject::arm(Fault::AmplitudePerturb { step: 0, index: 0, delta: 0.5 });
    let fail = StatevectorSimulator::new().with_guard(GuardConfig::enabled());
    let err = fail.run_detailed(&c).unwrap_err();
    inject::disarm_all();
    assert_health_error(err, HealthMetric::Norm);

    inject::arm(Fault::AmplitudePerturb { step: 0, index: 0, delta: 0.5 });
    let repair = StatevectorSimulator::new()
        .with_guard(GuardConfig::enabled().with_policy(GuardPolicy::RenormalizeAndCount));
    let out = repair.run_detailed(&c).unwrap();
    inject::disarm_all();
    assert!(out.health.renormalizations >= 1, "repair not recorded: {:?}", out.health);
    assert!((out.state.norm_sqr() - 1.0).abs() < 1e-9, "state left unnormalised");
}

#[test]
fn norm_drift_detected_and_repaired_on_both_exact_backends() {
    let c = random_circuit(&[2, 3], 12, 7);

    // Statevector.
    inject::arm(Fault::NormScale { step: 0, factor: 1.001 });
    let err = StatevectorSimulator::new()
        .with_guard(GuardConfig::enabled())
        .run_detailed(&c)
        .unwrap_err();
    inject::disarm_all();
    assert_health_error(err, HealthMetric::Norm);

    // Density matrix: trace drift instead of norm drift.
    let dsim = DensityMatrixSimulator::new().with_guard(GuardConfig::enabled());
    let compiled = dsim.compile(&c).unwrap();
    inject::arm(Fault::NormScale { step: 0, factor: 1.001 });
    let err = dsim.run_compiled_detailed(&compiled).unwrap_err();
    inject::disarm_all();
    assert_health_error(err, HealthMetric::Trace);

    // Both repairable under RenormalizeAndCount.
    inject::arm(Fault::NormScale { step: 0, factor: 1.001 });
    let out = StatevectorSimulator::new()
        .with_guard(GuardConfig::enabled().with_policy(GuardPolicy::RenormalizeAndCount))
        .run_detailed(&c)
        .unwrap();
    inject::disarm_all();
    assert!(out.health.renormalizations >= 1);

    let dsim = DensityMatrixSimulator::new()
        .with_guard(GuardConfig::enabled().with_policy(GuardPolicy::RenormalizeAndCount));
    let compiled = dsim.compile(&c).unwrap();
    inject::arm(Fault::NormScale { step: 0, factor: 1.001 });
    let (rho, health) = dsim.run_compiled_detailed(&compiled).unwrap();
    inject::disarm_all();
    assert!(health.renormalizations >= 1);
    assert!((rho.trace() - 1.0).abs() < 1e-9, "trace left unrepaired");
}

#[test]
fn superop_corruption_triggers_fallback_and_reproduces_clean_result() {
    // A multi-operator channel compiles to a superoperator sweep; corrupting
    // the sweep under FallBack must degrade to the per-constituent path and
    // reproduce the clean result (up to sweep-vs-per-term rounding).
    let mut c = Circuit::uniform(1, 3);
    c.push(Gate::fourier(3), &[0]).unwrap();
    c.push_channel(KrausChannel::photon_loss(3, 0.2).unwrap(), &[0]).unwrap();
    c.push(Gate::fourier(3), &[0]).unwrap();

    let plain = DensityMatrixSimulator::new();
    let compiled = plain.compile(&c).unwrap();
    assert!(compiled.superop_stats().super_steps >= 1, "expected a superoperator sweep");
    let clean = plain.run_compiled(&compiled).unwrap();

    let guarded = DensityMatrixSimulator::new()
        .with_guard(GuardConfig::enabled().with_policy(GuardPolicy::FallBack));
    // Step indices of the Super steps are private; arming every step is
    // harmless because only superoperator sweeps consult this fault class.
    for step in 0..compiled.num_steps() {
        inject::arm(Fault::SuperopCorrupt { step, delta: 0.5 });
    }
    let (rho, health) = guarded.run_compiled_detailed(&compiled).unwrap();
    inject::disarm_all();
    assert!(health.fallbacks >= 1, "fallback not engaged: {health:?}");
    assert!(
        (rho.matrix() - clean.matrix()).max_abs() < 1e-12,
        "fallback result diverged from clean run"
    );
}

#[test]
fn superop_corruption_detected_by_checkpoint_under_fail_policy() {
    let mut c = Circuit::uniform(1, 3);
    c.push(Gate::fourier(3), &[0]).unwrap();
    c.push_channel(KrausChannel::photon_loss(3, 0.2).unwrap(), &[0]).unwrap();

    let sim = DensityMatrixSimulator::new().with_guard(GuardConfig::enabled());
    let compiled = sim.compile(&c).unwrap();
    for step in 0..compiled.num_steps() {
        inject::arm(Fault::SuperopCorrupt { step, delta: 0.5 });
    }
    let err = sim.run_compiled_detailed(&compiled).unwrap_err();
    inject::disarm_all();
    // The corrupted sweep inflates the trace; the cadence checkpoint flags it.
    assert_health_error(err, HealthMetric::Trace);
}

#[test]
fn chunk_panic_is_retried_and_bitwise_identical_on_trajectories() {
    let c = random_circuit(&[3, 3], 10, 23);
    let obs = Observable::number(1, 3);
    let noise = NoiseModel::depolarizing(0.05, 0.05);
    let sim = TrajectorySimulator::new(16)
        .with_threads(4)
        .with_noise(noise)
        .with_guard(GuardConfig::enabled());

    let (clean, clean_health) = sim.expectation_detailed(&c, &obs).unwrap();
    assert_eq!(clean_health.retries, 0);

    inject::arm(Fault::ChunkPanic { chunk: 1 });
    let (recovered, health) = sim.expectation_detailed(&c, &obs).unwrap();
    inject::disarm_all();
    assert_eq!(health.retries, 1, "panicked chunk not retried: {health:?}");
    assert_eq!(recovered.mean, clean.mean, "retried run is not bitwise identical");
    assert_eq!(recovered.std_error, clean.std_error);
}

#[test]
fn slow_chunk_changes_nothing() {
    // A delayed chunk forces out-of-order completion; chunk-indexed
    // reassembly must keep the estimate bitwise identical, with no retries.
    let c = random_circuit(&[2, 3], 8, 31);
    let obs = Observable::number(0, 2);
    let sim = TrajectorySimulator::new(12)
        .with_threads(3)
        .with_noise(NoiseModel::depolarizing(0.02, 0.02))
        .with_guard(GuardConfig::enabled());

    let (clean, _) = sim.expectation_detailed(&c, &obs).unwrap();
    inject::arm(Fault::ChunkSlow { chunk: 1, millis: 50 });
    let (slowed, health) = sim.expectation_detailed(&c, &obs).unwrap();
    inject::disarm_all();
    assert_eq!(health.retries, 0);
    assert_eq!(slowed.mean, clean.mean);
}

// ---------------------------------------------------------------------------
// Batched ensemble: a fault in one column stays in that column.
// ---------------------------------------------------------------------------

#[test]
fn nan_poke_in_one_ensemble_column_is_attributed_without_poisoning_batch_mates() {
    use qudit_circuit::{Gate as G, Param};
    use qudit_core::matrix::CMatrix;

    // A parameterized circuit whose plan keeps several steps, so the poked
    // panel keeps evolving (full-width batched applies included) after the
    // fault lands.
    let dims = vec![3, 2];
    let mut c = Circuit::new(dims);
    c.push(G::fourier(3), &[0]).unwrap();
    let sep =
        G::parameterized("sep", vec![3], &CMatrix::diag_real(&[0.0, 1.0, 2.0]), Param::Free(0))
            .unwrap();
    c.push(sep, &[0]).unwrap();
    c.push(G::csum(3, 2), &[0, 1]).unwrap();
    c.push(G::fourier(2), &[1]).unwrap();

    let population: Vec<Vec<f64>> = vec![vec![0.2], vec![0.7], vec![1.1], vec![1.6]];
    let width = population.len();
    let sim = StatevectorSimulator::with_seed(5).with_guard(GuardConfig::enabled().with_cadence(1));
    let plan = sim.compile(&c).unwrap();
    let batch = plan.bind_batch(&population).unwrap();

    // The ensemble panel interleaves columns: flat index `i*width + b` is
    // register index `i` of column `b`. Poking index 1 lands in column 1.
    let poisoned = 1usize;
    inject::arm(Fault::NanPoke { step: 0, index: poisoned });
    let ensemble = sim.run_ensemble(&plan, &batch).unwrap();
    inject::disarm_all();

    for (b, col) in ensemble.iter().enumerate() {
        if b == poisoned {
            let err = col.as_ref().unwrap_err();
            match err {
                CircuitError::Core(CoreError::NumericalHealth { metric, .. }) => {
                    assert_eq!(*metric, HealthMetric::NonFinite, "wrong metric for column {b}");
                }
                other => panic!("column {b}: expected NumericalHealth, got {other:?}"),
            }
        } else {
            // Batch-mates finish and match their clean serial runs bitwise:
            // the batched kernels are column-local, so the NaN never leaks.
            let out = col.as_ref().unwrap_or_else(|e| {
                panic!("column {b} poisoned by a fault in column {poisoned}: {e:?}")
            });
            let mut serial_plan = plan.clone();
            let clean = sim.run_bound(&mut serial_plan, &population[b]).unwrap();
            assert_eq!(out.state.amplitudes(), clean.state.amplitudes(), "column {b}");
            assert_eq!(out.health.renormalizations, 0, "column {b}: {:?}", out.health);
        }
    }
    assert_eq!(ensemble.len(), width);
}

// ---------------------------------------------------------------------------
// Zero false positives & bitwise cleanliness on healthy runs.
// ---------------------------------------------------------------------------

#[test]
fn clean_guarded_runs_are_bitwise_identical_across_backends() {
    let shapes: [(&[usize], usize); 3] = [(&[2, 3], 14), (&[3, 4], 10), (&[2, 2, 3], 12)];
    for (seed, &(dims, depth)) in shapes.iter().enumerate() {
        let c = random_circuit(dims, depth, seed as u64 * 97 + 1);
        let noise = NoiseModel::depolarizing(0.01, 0.02);
        // RenormalizeAndCount would mutate the state if any check misfired,
        // so bitwise equality here proves zero false positives.
        let guard = GuardConfig::enabled().with_policy(GuardPolicy::RenormalizeAndCount);

        // Statevector (stochastic unravelling, same seed).
        let plain = StatevectorSimulator::with_seed(9).with_noise(noise.clone());
        let guarded = plain.clone().with_guard(guard);
        let a = plain.run_detailed(&c).unwrap();
        let b = guarded.run_detailed(&c).unwrap();
        assert_eq!(a.state.amplitudes(), b.state.amplitudes(), "statevector diverged");
        assert_eq!(a.measurements, b.measurements);
        assert_eq!(b.health.renormalizations, 0, "false positive: {:?}", b.health);
        assert!(b.health.checks_run >= 1);
        assert!(b.health.max_drift <= 1e-6);

        // Density matrix.
        let plain = DensityMatrixSimulator::new().with_noise(noise.clone());
        let rho_a = plain.run(&c).unwrap();
        let guarded = plain.clone().with_guard(guard);
        let compiled = guarded.compile(&c).unwrap();
        let (rho_b, health) = guarded.run_compiled_detailed(&compiled).unwrap();
        assert_eq!((rho_a.matrix() - rho_b.matrix()).max_abs(), 0.0, "density matrix diverged");
        assert_eq!(health.renormalizations, 0);
        assert!(health.checks_run >= 1);

        // Trajectories.
        let plain = TrajectorySimulator::new(8).with_seed(3).with_noise(noise);
        let est_a = plain.expectation(&c, &Observable::number(0, dims[0])).unwrap();
        let guarded = plain.clone().with_guard(guard);
        let (est_b, health) =
            guarded.expectation_detailed(&c, &Observable::number(0, dims[0])).unwrap();
        assert_eq!(est_a.mean, est_b.mean, "trajectory estimate diverged");
        assert_eq!(health.renormalizations, 0);
        assert!(health.checks_run >= 8, "expected at least one check per trajectory");
    }
}

#[test]
fn guarded_fail_policy_never_trips_on_healthy_random_circuits() {
    for seed in 0..6u64 {
        let c = random_circuit(&[3, 4], 16, seed * 13 + 5);
        let noise = NoiseModel::cavity(0.05, 0.05, 0.0);
        StatevectorSimulator::new()
            .with_noise(noise.clone())
            .with_guard(GuardConfig::enabled())
            .run_detailed(&c)
            .expect("false positive on statevector");
        DensityMatrixSimulator::new()
            .with_noise(noise.clone())
            .with_guard(GuardConfig::enabled())
            .run(&c)
            .expect("false positive on density matrix");
        TrajectorySimulator::new(4)
            .with_noise(noise)
            .with_guard(GuardConfig::enabled())
            .expectation(&c, &Observable::number(1, 4))
            .expect("false positive on trajectories");
    }
}

// ---------------------------------------------------------------------------
// RunHealth accounting is exact.
// ---------------------------------------------------------------------------

#[test]
fn statevector_checkpoint_count_is_exact() {
    let c = random_circuit(&[2, 3], 15, 41);
    for cadence in [1usize, 3, 8] {
        let sim =
            StatevectorSimulator::new().with_guard(GuardConfig::enabled().with_cadence(cadence));
        let compiled = sim.compile(&c).unwrap();
        let steps = compiled.num_steps();
        let out = sim.run_compiled(&compiled).unwrap();
        // One check per full cadence window plus the final checkpoint.
        assert_eq!(out.health.checks_run, steps / cadence + 1, "cadence {cadence}, {steps} steps");
    }
}

#[test]
fn density_checkpoint_count_is_exact() {
    let c = random_circuit(&[3, 3], 12, 43);
    let cadence = 2usize;
    let sim = DensityMatrixSimulator::new()
        .with_noise(NoiseModel::depolarizing(0.01, 0.01))
        .with_guard(GuardConfig::enabled().with_cadence(cadence));
    let compiled = sim.compile(&c).unwrap();
    let (_, health) = sim.run_compiled_detailed(&compiled).unwrap();
    assert_eq!(health.checks_run, compiled.num_steps() / cadence + 1);
}

#[test]
fn disabled_guard_reports_all_zero_health() {
    let c = random_circuit(&[3], 6, 3);
    let out = StatevectorSimulator::new().run_detailed(&c).unwrap();
    assert_eq!(out.health, Default::default());
}

// ---------------------------------------------------------------------------
// Mid-sweep cancellation leaves a bitwise-reproducible partial state.
// ---------------------------------------------------------------------------

#[test]
fn mid_sweep_cancellation_partial_state_is_bitwise_identical_across_thread_counts() {
    use qudit_circuit::sim::{CancelReason, CancelToken};

    // A check budget of 2 with cadence 1 trips the token at the checkpoint
    // after step 1; `CaptureState` snapshots ρ right after step 1 executes,
    // i.e. the exact state the run held when it was cancelled. The density
    // loop runs on the caller thread (workers only split superoperator
    // sweeps), so both the cancellation step and the partial state must be
    // bitwise identical across thread counts.
    let c = random_circuit(&[3, 3], 8, 71);
    let run = |threads: usize| {
        inject::disarm_all();
        inject::arm(Fault::CaptureState { step: 1 });
        let token = CancelToken::new().with_check_budget(2);
        let err = DensityMatrixSimulator::new()
            .with_noise(NoiseModel::depolarizing(0.05, 0.02))
            .with_threads(threads)
            .with_guard(GuardConfig::disabled().with_cadence(1))
            .with_cancel(token)
            .run(&c)
            .unwrap_err();
        let partial = inject::take_captured().expect("step 1 ran before the cancel checkpoint");
        inject::disarm_all();
        (err, partial)
    };

    let (err_1, state_1) = run(1);
    let (err_4, state_4) = run(4);
    assert_eq!(
        err_1,
        CircuitError::Core(CoreError::Cancelled { step: 1, reason: CancelReason::Requested })
    );
    assert_eq!(err_1, err_4, "cancellation point must not depend on thread count");
    assert_eq!(state_1, state_4, "partial state at cancellation must be bitwise identical");
}
