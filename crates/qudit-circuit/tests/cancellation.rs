//! Cooperative-cancellation integration tests: a [`CancelToken`] threaded
//! through each simulator stops the run at a deterministic checkpoint and
//! surfaces as `CoreError::Cancelled { step, reason }`, while an untripped
//! token leaves results bitwise untouched. Also pins the guard-cadence edge
//! case at the simulator level: a cadence longer than the plan still runs
//! exactly one (final) health check.

use std::time::Duration;

use qudit_circuit::error::CircuitError;
use qudit_circuit::noise::NoiseModel;
use qudit_circuit::sim::{
    CancelReason, CancelToken, DensityMatrixSimulator, GuardConfig, StatevectorSimulator,
    TrajectorySimulator,
};
use qudit_circuit::{Circuit, Gate, Observable};
use qudit_core::error::CoreError;

/// A small deterministic qutrit-pair circuit with measurement barriers, so
/// the compiled plan keeps at least four distinct execution steps (fusion
/// cannot merge across a measurement).
fn barriered_circuit() -> Circuit {
    let mut c = Circuit::new(vec![3, 3]);
    c.push(Gate::fourier(3), &[0]).unwrap();
    c.measure(&[0]).unwrap();
    c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
    c.measure(&[1]).unwrap();
    c.push(Gate::shift_x(3), &[1]).unwrap();
    c
}

/// A purely unitary circuit (no measurements, no channels) whose run is
/// deterministic, for bitwise comparisons.
fn unitary_circuit() -> Circuit {
    let mut c = Circuit::new(vec![3, 3]);
    c.push(Gate::fourier(3), &[0]).unwrap();
    c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
    c.push(Gate::phase_on_level(3, 1, 0.7), &[1]).unwrap();
    c
}

fn cancelled(step: usize, reason: CancelReason) -> CircuitError {
    CircuitError::Core(CoreError::Cancelled { step, reason })
}

// ---------------------------------------------------------------------------
// An untripped token is free: results are bitwise identical.
// ---------------------------------------------------------------------------

#[test]
fn untripped_token_leaves_statevector_run_bitwise_identical() {
    let c = unitary_circuit();
    let plain = StatevectorSimulator::new().run(&c).unwrap();
    let tokened = StatevectorSimulator::new().with_cancel(CancelToken::new()).run(&c).unwrap();
    assert_eq!(plain.amplitudes(), tokened.amplitudes());
}

#[test]
fn untripped_token_leaves_density_run_bitwise_identical() {
    let c = unitary_circuit();
    let noise = NoiseModel::depolarizing(0.05, 0.02);
    let plain = DensityMatrixSimulator::new().with_noise(noise.clone()).run(&c).unwrap();
    let tokened = DensityMatrixSimulator::new()
        .with_noise(noise)
        .with_cancel(CancelToken::new())
        .run(&c)
        .unwrap();
    assert_eq!(plain.matrix().as_slice(), tokened.matrix().as_slice());
}

// ---------------------------------------------------------------------------
// Pre-tripped tokens stop at the entry checkpoint: zero work is done.
// ---------------------------------------------------------------------------

#[test]
fn pre_tripped_token_cancels_statevector_at_entry() {
    let token = CancelToken::new();
    token.cancel();
    let err = StatevectorSimulator::new().with_cancel(token).run(&barriered_circuit()).unwrap_err();
    assert_eq!(err, cancelled(0, CancelReason::Requested));
}

#[test]
fn pre_tripped_token_cancels_stochastic_sampling_sweep() {
    // The barriered circuit has measurements, so sampling takes the
    // per-shot parallel path — the token is checked at pool entry.
    let token = CancelToken::new();
    token.cancel();
    let err = StatevectorSimulator::new()
        .with_threads(4)
        .with_cancel(token)
        .sample_counts(&barriered_circuit(), 64)
        .unwrap_err();
    assert_eq!(err, cancelled(0, CancelReason::Requested));
}

#[test]
fn expired_deadline_cancels_density_run_at_entry() {
    let token = CancelToken::with_deadline(Duration::ZERO);
    let err = DensityMatrixSimulator::new()
        .with_noise(NoiseModel::depolarizing(0.05, 0.02))
        .with_cancel(token)
        .run(&barriered_circuit())
        .unwrap_err();
    assert_eq!(err, cancelled(0, CancelReason::DeadlineExceeded));
}

// ---------------------------------------------------------------------------
// Check budgets trip at an exact, reproducible step.
// ---------------------------------------------------------------------------

#[test]
fn check_budget_cancels_statevector_at_deterministic_step() {
    // Budget 2 with cadence 1: the entry check and the post-step-0 check
    // succeed, the post-step-1 check trips — the error names step 1.
    let token = CancelToken::new().with_check_budget(2);
    let err = StatevectorSimulator::new()
        .with_guard(GuardConfig::disabled().with_cadence(1))
        .with_cancel(token)
        .run(&barriered_circuit())
        .unwrap_err();
    assert_eq!(err, cancelled(1, CancelReason::Requested));
}

#[test]
fn check_budget_cancellation_step_is_thread_count_invariant() {
    // The density run loop executes on the caller thread (workers only
    // parallelise individual superoperator sweeps), so the budget is spent
    // identically regardless of the thread count.
    let run = |threads: usize| -> CircuitError {
        let token = CancelToken::new().with_check_budget(2);
        DensityMatrixSimulator::new()
            .with_noise(NoiseModel::depolarizing(0.05, 0.02))
            .with_threads(threads)
            .with_guard(GuardConfig::disabled().with_cadence(1))
            .with_cancel(token)
            .run(&barriered_circuit())
            .unwrap_err()
    };
    let single = run(1);
    let pooled = run(4);
    assert_eq!(single, cancelled(1, CancelReason::Requested));
    assert_eq!(single, pooled);
}

#[test]
fn check_budget_cancels_trajectory_ensemble_before_dispatch() {
    // Budget 1: the between-batch check at the top of the ensemble loop
    // spends it, and the pool-entry check trips before any trajectory runs.
    let token = CancelToken::new().with_check_budget(1);
    let err = TrajectorySimulator::new(16)
        .with_noise(NoiseModel::depolarizing(0.1, 0.05))
        .with_threads(4)
        .with_cancel(token)
        .expectation(&unitary_circuit(), &Observable::number(0, 3))
        .unwrap_err();
    assert_eq!(err, cancelled(0, CancelReason::Requested));
}

#[test]
fn cancellation_respects_guard_cadence() {
    // Cadence 2 with budget 2: the entry check and the post-step-1 check
    // (the first cadence boundary) spend the budget; the next boundary after
    // step 3 trips. Steps 2 and 3 run to completion first — the checkpoint
    // cadence bounds how much work a cancellation can waste.
    let token = CancelToken::new().with_check_budget(2);
    let err = StatevectorSimulator::new()
        .with_guard(GuardConfig::disabled().with_cadence(2))
        .with_cancel(token)
        .run(&barriered_circuit())
        .unwrap_err();
    assert_eq!(err, cancelled(3, CancelReason::Requested));
}

// ---------------------------------------------------------------------------
// Guard cadence beyond the plan length still runs the one final check.
// ---------------------------------------------------------------------------

#[test]
fn statevector_cadence_beyond_plan_runs_exactly_one_check() {
    let out = StatevectorSimulator::new()
        .with_guard(GuardConfig::enabled().with_cadence(1000))
        .run_detailed(&unitary_circuit())
        .unwrap();
    assert_eq!(out.health.checks_run, 1);
}

#[test]
fn density_cadence_beyond_plan_runs_exactly_one_check() {
    let sim = DensityMatrixSimulator::new()
        .with_noise(NoiseModel::depolarizing(0.05, 0.02))
        .with_guard(GuardConfig::enabled().with_cadence(1000));
    let compiled = sim.compile(&unitary_circuit()).unwrap();
    let (_, health) = sim.run_compiled_detailed(&compiled).unwrap();
    assert_eq!(health.checks_run, 1);
}
