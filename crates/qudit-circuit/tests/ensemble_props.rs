//! Property tests for batched ensemble execution (`qudit_circuit::sim`
//! ensemble executors): a population of bindings run as one panel pass must
//! be **bitwise identical**, column for column, to the serial `run_bound`
//! loop — states, measurement records, and guard health reports alike — and
//! batched trajectories (lazily splitting branch-prefix panels) must
//! reproduce the serial trajectory fold bitwise, mid-circuit measurement
//! splits, guard checkpoints, readout flips and all. Density-backed
//! consumers pin the same populations at 1e-12. Cancellation mid-batch
//! fails the whole ensemble pass with the standard `Cancelled` error.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qudit_circuit::error::CircuitError;
use qudit_circuit::noise::{KrausChannel, NoiseModel};
use qudit_circuit::sim::{
    CancelToken, DensityMatrixSimulator, FusionConfig, GuardConfig, GuardPolicy,
    StatevectorSimulator, TrajectorySimulator,
};
use qudit_circuit::{Circuit, Gate, Observable, Param};
use qudit_core::error::CoreError;
use qudit_core::matrix::CMatrix;
use qudit_core::Complex64;

const TOL: f64 = 1e-12;

fn random_hermitian(rng: &mut StdRng, d: usize) -> CMatrix {
    let a = CMatrix::from_fn(d, d, |_, _| {
        Complex64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5)
    });
    a.hermitian_part()
}

fn push_random_param_gate(c: &mut Circuit, dims: &[usize], idx: usize, rng: &mut StdRng) {
    let n = dims.len();
    let q = rng.gen_range(0..n);
    let d = dims[q];
    match rng.gen_range(0..3) {
        0 => {
            let weights: Vec<f64> = (0..d).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
            let g = Gate::parameterized(
                format!("sep{idx}"),
                vec![d],
                &CMatrix::diag_real(&weights),
                Param::Free(idx),
            )
            .unwrap();
            c.push(g, &[q]).unwrap();
        }
        1 => {
            let h = random_hermitian(rng, d);
            let g =
                Gate::parameterized(format!("mix{idx}"), vec![d], &h, Param::Free(idx)).unwrap();
            c.push(g, &[q]).unwrap();
        }
        _ if n >= 2 => {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n - 1);
            if b >= a {
                b += 1;
            }
            let dd = dims[a] * dims[b];
            let weights: Vec<f64> = (0..dd).map(|_| rng.gen::<f64>()).collect();
            let g = Gate::parameterized(
                format!("zz{idx}"),
                vec![dims[a], dims[b]],
                &CMatrix::diag_real(&weights),
                Param::Free(idx),
            )
            .unwrap();
            c.push(g, &[a, b]).unwrap();
        }
        _ => {
            let h = random_hermitian(rng, d);
            let g =
                Gate::parameterized(format!("mix{idx}"), vec![d], &h, Param::Free(idx)).unwrap();
            c.push(g, &[q]).unwrap();
        }
    }
}

fn push_random_const_gate(c: &mut Circuit, dims: &[usize], rng: &mut StdRng) {
    let n = dims.len();
    if n >= 2 && rng.gen::<f64>() < 0.35 {
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        c.push(Gate::csum(dims[a], dims[b]), &[a, b]).unwrap();
    } else {
        let q = rng.gen_range(0..n);
        match rng.gen_range(0..3) {
            0 => c.push(Gate::fourier(dims[q]), &[q]).unwrap(),
            1 => c.push(Gate::shift_x(dims[q]), &[q]).unwrap(),
            _ => c.push(Gate::clock_z(dims[q]), &[q]).unwrap(),
        }
    }
}

/// A randomized parameterized circuit with `num_params` free angles; with
/// `stochastic` it mixes in mid-circuit measurements, resets and explicit
/// Kraus channels, the ingredients that force branch handling in the
/// ensemble executors.
fn random_param_circuit(
    rng: &mut StdRng,
    num_params: usize,
    stochastic: bool,
) -> (Circuit, Vec<usize>) {
    let n = rng.gen_range(2..=3);
    let dims: Vec<usize> = (0..n).map(|_| rng.gen_range(2..=3)).collect();
    let mut c = Circuit::new(dims.clone());
    let len = rng.gen_range(10..=16);
    let mut used = Vec::new();
    for step in 0..len {
        let roll = rng.gen::<f64>();
        if roll < 0.35 {
            let idx = step % num_params;
            used.push(idx);
            push_random_param_gate(&mut c, &dims, idx, rng);
        } else if roll < 0.75 || !stochastic {
            push_random_const_gate(&mut c, &dims, rng);
        } else if roll < 0.85 {
            let q = rng.gen_range(0..n);
            c.measure(&[q]).unwrap();
        } else if roll < 0.92 {
            let q = rng.gen_range(0..n);
            c.reset(q).unwrap();
        } else {
            let q = rng.gen_range(0..n);
            let ch = if rng.gen::<bool>() {
                KrausChannel::photon_loss(dims[q], 0.2).unwrap()
            } else {
                KrausChannel::depolarizing(dims[q], 0.15).unwrap()
            };
            c.push_channel(ch, &[q]).unwrap();
        }
    }
    for idx in 0..num_params {
        if !used.contains(&idx) {
            push_random_param_gate(&mut c, &dims, idx, rng);
        }
    }
    (c, dims)
}

fn random_population(rng: &mut StdRng, num_params: usize, size: usize) -> Vec<Vec<f64>> {
    (0..size).map(|_| (0..num_params).map(|_| rng.gen::<f64>() * 3.0 - 1.5).collect()).collect()
}

// ---------------------------------------------------------------------------
// Parameter-batched statevector runs.
// ---------------------------------------------------------------------------

#[test]
fn ensemble_population_is_bitwise_identical_to_serial_run_bound() {
    // Stochastic circuits (measurements, resets, Kraus channels) under a
    // gate-level noise model with readout error and an enabled guard: the
    // full RunOutput — state, measurement records, health report — must be
    // bitwise identical per column.
    for trial in 0..12 {
        let mut rng = StdRng::seed_from_u64(91_000 + trial);
        let num_params = 3;
        let (c, _) = random_param_circuit(&mut rng, num_params, true);
        let noise = NoiseModel::depolarizing(0.02, 0.04).with_readout_flip(0.05);
        let guard =
            GuardConfig::enabled().with_cadence(3).with_policy(GuardPolicy::RenormalizeAndCount);
        let sim = StatevectorSimulator::with_seed(400 + trial).with_noise(noise).with_guard(guard);
        let plan = sim.compile(&c).unwrap();
        let population = random_population(&mut rng, num_params, 5);
        let batch = plan.bind_batch(&population).unwrap();
        assert_eq!(batch.len(), population.len());

        let ensemble = sim.run_ensemble(&plan, &batch).unwrap();
        assert_eq!(ensemble.len(), population.len());
        for (b, params) in population.iter().enumerate() {
            let mut serial_plan = plan.clone();
            let serial = sim.run_bound(&mut serial_plan, params).unwrap();
            let col = ensemble[b].as_ref().unwrap_or_else(|e| {
                panic!("trial {trial}, column {b}: ensemble run failed: {e:?}")
            });
            assert_eq!(
                col.state.amplitudes(),
                serial.state.amplitudes(),
                "trial {trial}, column {b}: states must be bitwise identical"
            );
            assert_eq!(col.measurements, serial.measurements, "trial {trial}, column {b}");
            assert_eq!(col.health, serial.health, "trial {trial}, column {b}");
        }
    }
}

#[test]
fn ensemble_width_one_and_duplicate_bindings_behave() {
    let mut rng = StdRng::seed_from_u64(555);
    let (c, _) = random_param_circuit(&mut rng, 2, true);
    let sim = StatevectorSimulator::with_seed(8).with_noise(NoiseModel::depolarizing(0.03, 0.03));
    let plan = sim.compile(&c).unwrap();
    let theta: Vec<f64> = vec![0.4, -0.9];
    // Duplicate bindings share the simulator seed, so every column replays
    // the identical serial run.
    let batch = plan.bind_batch(&[theta.clone(), theta.clone(), theta.clone()]).unwrap();
    let ensemble = sim.run_ensemble(&plan, &batch).unwrap();
    let mut serial_plan = plan.clone();
    let serial = sim.run_bound(&mut serial_plan, &theta).unwrap();
    for (b, col) in ensemble.iter().enumerate() {
        let col = col.as_ref().unwrap();
        assert_eq!(col.state.amplitudes(), serial.state.amplitudes(), "column {b}");
        assert_eq!(col.measurements, serial.measurements, "column {b}");
    }
    // Empty populations are a no-op.
    let empty = plan.bind_batch(&[]).unwrap();
    assert!(empty.is_empty());
    assert!(sim.run_ensemble(&plan, &empty).unwrap().is_empty());
}

#[test]
fn ensemble_population_matches_density_backend_at_tolerance() {
    // Deterministic (noiseless, measurement-free) populations: every
    // ensemble column's probability vector must match the exact
    // density-matrix evolution of the same bound circuit at 1e-12.
    for trial in 0..6 {
        let mut rng = StdRng::seed_from_u64(77_000 + trial);
        let num_params = 2;
        let (c, _) = random_param_circuit(&mut rng, num_params, false);
        let sim = StatevectorSimulator::new();
        let plan = sim.compile(&c).unwrap();
        let population = random_population(&mut rng, num_params, 4);
        let batch = plan.bind_batch(&population).unwrap();
        let ensemble = sim.run_ensemble(&plan, &batch).unwrap();
        let dsim = DensityMatrixSimulator::new();
        for (b, params) in population.iter().enumerate() {
            let col = ensemble[b].as_ref().unwrap();
            let rho = dsim.run(&c.with_bound(params).unwrap()).unwrap();
            let sv_probs = col.state.probabilities();
            for (i, (p, q)) in sv_probs.iter().zip(rho.probabilities().iter()).enumerate() {
                assert!((p - q).abs() < TOL, "trial {trial}, column {b}, outcome {i}: {p} vs {q}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Batched trajectories.
// ---------------------------------------------------------------------------

#[test]
fn batched_trajectories_are_bitwise_identical_to_serial_fold() {
    // 70 trajectories crosses the 64-trajectory chunk boundary; stochastic
    // circuits force branch-prefix splits at channels, measurements and
    // resets; readout error consumes extra RNG draws that must stay
    // stream-aligned; the enabled guard runs per-group checkpoints.
    for trial in 0..6 {
        let mut rng = StdRng::seed_from_u64(33_000 + trial);
        let (c, dims) = random_param_circuit(&mut rng, 2, true);
        let noise = NoiseModel::depolarizing(0.03, 0.05).with_readout_flip(0.04);
        let obs = Observable::number(0, dims[0]);
        let sim = TrajectorySimulator::new(70)
            .with_seed(900 + trial)
            .with_noise(noise)
            .with_guard(GuardConfig::enabled().with_policy(GuardPolicy::RenormalizeAndCount));

        let serial = sim.expectation(&c, &obs).unwrap();
        let batched = sim.expectation_batched(&c, &obs).unwrap();
        assert_eq!(batched.mean, serial.mean, "trial {trial}: means must be bitwise identical");
        assert_eq!(batched.std_error, serial.std_error, "trial {trial}");
        assert_eq!(batched.n_trajectories, serial.n_trajectories);

        let dist_serial = sim.outcome_distribution(&c).unwrap();
        let dist_batched = sim.outcome_distribution_batched(&c).unwrap();
        assert_eq!(dist_batched, dist_serial, "trial {trial}: distributions must be bitwise equal");
    }
}

#[test]
fn batched_trajectory_compiled_and_bound_paths_match_serial() {
    let mut rng = StdRng::seed_from_u64(4242);
    let (c, dims) = random_param_circuit(&mut rng, 2, true);
    let noise = NoiseModel::cavity(0.05, 0.1, 0.0);
    let obs = Observable::number(0, dims[0]);
    let sim = TrajectorySimulator::new(40).with_seed(13).with_noise(noise);
    let mut plan_serial = sim.compile(&c).unwrap();
    let mut plan_batched = sim.compile(&c).unwrap();
    for round in 0..2 {
        let theta: Vec<f64> = (0..2).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
        let serial = sim.expectation_bound(&mut plan_serial, &theta, &obs).unwrap();
        let batched = sim.expectation_bound_batched(&mut plan_batched, &theta, &obs).unwrap();
        assert_eq!(batched.mean, serial.mean, "round {round}");
        assert_eq!(batched.std_error, serial.std_error, "round {round}");
        let dist_serial = sim.outcome_distribution_bound(&mut plan_serial, &theta).unwrap();
        let dist_batched =
            sim.outcome_distribution_bound_batched(&mut plan_batched, &theta).unwrap();
        assert_eq!(dist_batched, dist_serial, "round {round}");
    }
    // Compiled (no rebind) path too.
    let serial = sim.expectation_compiled(&plan_serial, &obs).unwrap();
    let batched = sim.expectation_compiled_batched(&plan_batched, &obs).unwrap();
    assert_eq!(batched.mean, serial.mean);
    assert_eq!(batched.std_error, serial.std_error);
}

#[test]
fn batched_trajectories_converge_to_density_result() {
    // The density back-end is exact; the batched trajectory average must
    // approach it like the serial average does (and bitwise-equals the
    // serial average, so this is a consistency anchor, not a statistics
    // test: the tolerance is the Monte-Carlo error bar).
    let mut c = Circuit::uniform(2, 3);
    c.push(Gate::fourier(3), &[0]).unwrap();
    c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
    let noise = NoiseModel::cavity(0.08, 0.15, 0.0);
    let obs = Observable::number(1, 3);
    let exact =
        DensityMatrixSimulator::new().with_noise(noise.clone()).expectation(&c, &obs).unwrap();
    let est = TrajectorySimulator::new(600)
        .with_seed(17)
        .with_noise(noise)
        .expectation_batched(&c, &obs)
        .unwrap();
    assert!(
        (est.mean - exact).abs() < 5.0 * est.std_error.max(0.02),
        "batched mean {} vs exact {} (stderr {})",
        est.mean,
        exact,
        est.std_error
    );
}

// ---------------------------------------------------------------------------
// Cancellation mid-batch.
// ---------------------------------------------------------------------------

#[test]
fn cancellation_mid_batch_fails_the_whole_ensemble_pass() {
    let mut rng = StdRng::seed_from_u64(616);
    let (c, _) = random_param_circuit(&mut rng, 2, false);
    let token = CancelToken::new().with_check_budget(2);
    // Fusion off keeps one plan step per gate, so the check budget runs out
    // mid-sweep rather than after the (fused) plan has already finished.
    let sim = StatevectorSimulator::new()
        .with_fusion(FusionConfig::disabled())
        .with_guard(GuardConfig::disabled().with_cadence(1))
        .with_cancel(token);
    let plan = sim.compile(&c).unwrap();
    let population = random_population(&mut rng, 2, 4);
    let batch = plan.bind_batch(&population).unwrap();
    // The budget trips at the first cadence boundary: the whole pass fails
    // with the standard Cancelled error rather than per-column failures.
    let err = sim.run_ensemble(&plan, &batch).unwrap_err();
    assert!(
        matches!(err, CircuitError::Core(CoreError::Cancelled { .. })),
        "expected whole-pass cancellation, got {err:?}"
    );
}

#[test]
fn cancellation_mid_batch_stops_batched_trajectories() {
    let mut rng = StdRng::seed_from_u64(617);
    let (c, dims) = random_param_circuit(&mut rng, 2, true);
    let token = CancelToken::new().with_check_budget(3);
    let sim = TrajectorySimulator::new(50)
        .with_noise(NoiseModel::depolarizing(0.02, 0.02))
        .with_guard(GuardConfig::disabled().with_cadence(1))
        .with_cancel(token);
    let err = sim.expectation_batched(&c, &Observable::number(0, dims[0])).unwrap_err();
    assert!(
        matches!(err, CircuitError::Core(CoreError::Cancelled { .. })),
        "expected cancellation, got {err:?}"
    );
}

// ---------------------------------------------------------------------------
// Input validation.
// ---------------------------------------------------------------------------

#[test]
fn ensemble_rejects_mismatched_seeds_and_short_bindings() {
    let mut rng = StdRng::seed_from_u64(618);
    let (c, dims) = random_param_circuit(&mut rng, 2, false);
    let sim = StatevectorSimulator::new();
    let plan = sim.compile(&c).unwrap();
    assert!(plan.bind_batch(&[vec![0.1]]).is_err(), "short member bindings must be rejected");
    let batch = plan.bind_batch(&[vec![0.1, 0.2], vec![0.3, 0.4]]).unwrap();
    let initial = qudit_core::QuditState::zero(dims).unwrap();
    assert!(
        sim.run_ensemble_seeded(&plan, &batch, &initial, &[1]).is_err(),
        "seed/batch width mismatch must be rejected"
    );
}
