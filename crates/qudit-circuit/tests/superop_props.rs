//! Property tests for the density simulator's superoperator batching: the
//! batched path (channels as single sweeps over vectorised ρ, with
//! channel-adjacent unitary folding) must equal the per-term Kraus path on
//! randomized mixed-radix circuits mixing diagonal, monomial and dense gates
//! with explicit channels, gate-level noise, measurements, resets and lossy
//! barriers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qudit_circuit::noise::{KrausChannel, NoiseModel};
use qudit_circuit::sim::{DensityMatrixSimulator, FusionConfig, SuperopConfig};
use qudit_circuit::{Circuit, Gate};
use qudit_core::random::haar_unitary;
use qudit_core::DensityMatrix;

const TOL: f64 = 1e-12;

/// A random gate mixing diagonal, monomial and dense structure on one or two
/// qudits, with randomly ordered targets.
fn push_random_gate(c: &mut Circuit, dims: &[usize], rng: &mut StdRng) {
    let n = dims.len();
    let two_qudit = n >= 2 && rng.gen::<f64>() < 0.4;
    if two_qudit {
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        match rng.gen_range(0..3) {
            0 => c.push(Gate::csum(dims[a], dims[b]), &[a, b]).unwrap(),
            1 => {
                let d = dims[a] * dims[b];
                let u = haar_unitary(rng, d).unwrap();
                c.push(Gate::custom("haar2", vec![dims[a], dims[b]], u).unwrap(), &[a, b]).unwrap();
            }
            _ => {
                let d = dims[a] * dims[b];
                let phases: Vec<f64> =
                    (0..d).map(|_| rng.gen::<f64>() * std::f64::consts::TAU).collect();
                let m = qudit_core::matrix::CMatrix::diag(
                    &phases.iter().map(|&p| qudit_core::Complex64::cis(p)).collect::<Vec<_>>(),
                );
                c.push(Gate::custom("cdiag", vec![dims[a], dims[b]], m).unwrap(), &[a, b]).unwrap();
            }
        }
    } else {
        let q = rng.gen_range(0..n);
        let d = dims[q];
        match rng.gen_range(0..5) {
            0 => {
                let phases: Vec<f64> =
                    (0..d).map(|_| rng.gen::<f64>() * std::f64::consts::TAU).collect();
                c.push(Gate::snap(d, &phases), &[q]).unwrap();
            }
            1 => c.push(Gate::clock_z(d), &[q]).unwrap(),
            2 => c.push(Gate::shift_x(d), &[q]).unwrap(),
            3 => c.push(Gate::weyl(d, rng.gen_range(0..d), rng.gen_range(0..d)), &[q]).unwrap(),
            _ => c.push(Gate::fourier(d), &[q]).unwrap(),
        }
    }
}

/// A random explicit channel on one qudit (or two for registers that allow a
/// small product dimension): photon loss, dephasing, depolarising or thermal.
fn push_random_channel(c: &mut Circuit, dims: &[usize], rng: &mut StdRng) {
    let n = dims.len();
    if n >= 2 && rng.gen::<f64>() < 0.25 {
        let a = rng.gen_range(0..n - 1);
        let b = a + 1;
        let ch = KrausChannel::two_qudit_depolarizing(dims[a], dims[b], 0.1).unwrap();
        c.push_channel(ch, &[a, b]).unwrap();
        return;
    }
    let q = rng.gen_range(0..n);
    let d = dims[q];
    let ch = match rng.gen_range(0..4) {
        0 => KrausChannel::photon_loss(d, 0.3).unwrap(),
        1 => KrausChannel::dephasing(d, 0.4).unwrap(),
        2 => KrausChannel::depolarizing(d, 0.2).unwrap(),
        _ => KrausChannel::thermal_excitation(d, 0.1).unwrap(),
    };
    c.push_channel(ch, &[q]).unwrap();
}

fn random_dims(rng: &mut StdRng) -> Vec<usize> {
    let n = rng.gen_range(2..=4);
    (0..n).map(|_| rng.gen_range(2..=4)).collect()
}

fn matrices_match(a: &DensityMatrix, b: &DensityMatrix, context: &str) {
    let diff = (a.matrix() - b.matrix()).max_abs();
    assert!(diff < TOL, "{context}: batched and per-term differ by {diff}");
}

/// Runs the same circuit through the batched and the per-term density paths.
fn compare(c: &Circuit, noise: &NoiseModel, context: &str) {
    let batched = DensityMatrixSimulator::new().with_noise(noise.clone()).run(c).unwrap();
    let per_term = DensityMatrixSimulator::new()
        .with_noise(noise.clone())
        .with_superop(SuperopConfig::disabled())
        .run(c)
        .unwrap();
    matrices_match(&batched, &per_term, context);
}

#[test]
fn batched_equals_per_term_on_random_channel_circuits() {
    for trial in 0..20 {
        let mut rng = StdRng::seed_from_u64(9000 + trial);
        let dims = random_dims(&mut rng);
        let mut c = Circuit::new(dims.clone());
        for _ in 0..rng.gen_range(4..12) {
            push_random_gate(&mut c, &dims, &mut rng);
            if rng.gen::<f64>() < 0.4 {
                push_random_channel(&mut c, &dims, &mut rng);
            }
        }
        compare(&c, &NoiseModel::noiseless(), &format!("trial {trial}"));
    }
}

#[test]
fn batched_equals_per_term_under_gate_level_noise() {
    for trial in 0..10 {
        let mut rng = StdRng::seed_from_u64(9500 + trial);
        let dims = random_dims(&mut rng);
        let mut c = Circuit::new(dims.clone());
        for _ in 0..rng.gen_range(4..10) {
            push_random_gate(&mut c, &dims, &mut rng);
        }
        let noise = NoiseModel::depolarizing(0.01, 0.03);
        compare(&c, &noise, &format!("trial {trial}"));
    }
}

#[test]
fn batched_equals_per_term_with_measure_reset_and_lossy_barriers() {
    for trial in 0..10 {
        let mut rng = StdRng::seed_from_u64(9700 + trial);
        let dims = random_dims(&mut rng);
        let mut c = Circuit::new(dims.clone());
        for _ in 0..rng.gen_range(5..12) {
            push_random_gate(&mut c, &dims, &mut rng);
            let r: f64 = rng.gen();
            if r < 0.15 {
                let q = rng.gen_range(0..dims.len());
                c.measure(&[q]).unwrap();
            } else if r < 0.25 {
                let q = rng.gen_range(0..dims.len());
                c.reset(q).unwrap();
            } else if r < 0.35 {
                c.barrier();
            }
        }
        // Idle photon loss turns every barrier into per-qudit loss channels.
        let noise = NoiseModel::cavity(0.02, 0.05, 0.1);
        compare(&c, &noise, &format!("trial {trial}"));
    }
}

#[test]
fn superop_budget_variations_agree() {
    let mut rng = StdRng::seed_from_u64(9900);
    let dims = vec![2, 3, 4];
    let mut c = Circuit::new(dims.clone());
    for _ in 0..12 {
        push_random_gate(&mut c, &dims, &mut rng);
        if rng.gen::<f64>() < 0.5 {
            push_random_channel(&mut c, &dims, &mut rng);
        }
    }
    let noise = NoiseModel::depolarizing(0.02, 0.02);
    let reference = DensityMatrixSimulator::new()
        .with_noise(noise.clone())
        .with_superop(SuperopConfig::disabled())
        .run(&c)
        .unwrap();
    for max_dim in [2, 4, 8, 16, 64] {
        let batched = DensityMatrixSimulator::new()
            .with_noise(noise.clone())
            .with_superop(SuperopConfig { enabled: true, max_dim })
            .run(&c)
            .unwrap();
        matrices_match(&batched, &reference, &format!("max_dim {max_dim}"));
    }
}

#[test]
fn batched_equals_per_term_with_fusion_disabled() {
    // With fusion off, same-support unitary runs reach the density compiler
    // unfused and must still fold/execute correctly.
    let mut rng = StdRng::seed_from_u64(9950);
    let dims = vec![3, 3];
    let mut c = Circuit::new(dims.clone());
    for _ in 0..10 {
        push_random_gate(&mut c, &dims, &mut rng);
        if rng.gen::<f64>() < 0.3 {
            push_random_channel(&mut c, &dims, &mut rng);
        }
    }
    let noise = NoiseModel::depolarizing(0.02, 0.02);
    let batched = DensityMatrixSimulator::new()
        .with_noise(noise.clone())
        .with_fusion(FusionConfig::disabled())
        .run(&c)
        .unwrap();
    let per_term = DensityMatrixSimulator::new()
        .with_noise(noise.clone())
        .with_fusion(FusionConfig::disabled())
        .with_superop(SuperopConfig::disabled())
        .run(&c)
        .unwrap();
    matrices_match(&batched, &per_term, "fusion disabled");
}

#[test]
fn compiled_density_circuit_reuse_matches_fresh_runs() {
    let mut rng = StdRng::seed_from_u64(9960);
    let dims = vec![3, 2, 3];
    let mut c = Circuit::new(dims.clone());
    for _ in 0..10 {
        push_random_gate(&mut c, &dims, &mut rng);
        if rng.gen::<f64>() < 0.4 {
            push_random_channel(&mut c, &dims, &mut rng);
        }
    }
    let sim = DensityMatrixSimulator::new().with_noise(NoiseModel::depolarizing(0.01, 0.02));
    let compiled = sim.compile(&c).unwrap();
    // Debug builds translation-validate the density plan, sweeps included.
    #[cfg(debug_assertions)]
    qudit_verify::verify_density(
        &c,
        &compiled,
        &qudit_verify::VerifyConfig::default().with_noise(NoiseModel::depolarizing(0.01, 0.02)),
    )
    .unwrap();
    let stats = compiled.superop_stats();
    assert!(stats.super_steps > 0, "superoperator sweeps must engage: {stats:?}");
    let fresh = sim.run(&c).unwrap();
    for _ in 0..3 {
        let rerun = sim.run_compiled(&compiled).unwrap();
        matrices_match(&rerun, &fresh, "compiled reuse");
    }
}

#[test]
fn compiled_density_circuit_rejects_mismatched_noise_model() {
    let mut c = Circuit::uniform(2, 3);
    c.push(Gate::fourier(3), &[0]).unwrap();
    let compiled = DensityMatrixSimulator::new().compile(&c).unwrap();
    assert!(DensityMatrixSimulator::new().run_compiled(&compiled).is_ok());
    let noisy = DensityMatrixSimulator::new().with_noise(NoiseModel::depolarizing(0.05, 0.1));
    assert!(noisy.run_compiled(&compiled).is_err());
}

#[test]
fn noisy_single_qudit_gate_folds_with_its_channel() {
    // A single-qudit gate with its attached depolarising channel is one
    // superoperator sweep (k² ≤ sandwich + channel sweep), and a run of them
    // on the same wire collapses further.
    let mut c = Circuit::uniform(1, 4);
    c.push(Gate::fourier(4), &[0]).unwrap();
    c.push(Gate::clock_z(4), &[0]).unwrap();
    let sim = DensityMatrixSimulator::new().with_noise(NoiseModel::depolarizing(0.01, 0.02));
    let compiled = sim.compile(&c).unwrap();
    let stats = compiled.superop_stats();
    assert_eq!(stats.super_steps, 1, "{stats:?}");
    assert_eq!(stats.unitary_steps, 0, "{stats:?}");
    // Two gates + two channels folded into the single sweep.
    assert_eq!(stats.ops_folded, 4, "{stats:?}");
}

#[test]
fn dense_two_qudit_gate_keeps_sandwich_but_channels_batch() {
    // For a two-qudit gate with per-qudit channels the cost rule keeps the
    // gate on the sandwich path (k_U² = 256 would exceed 2k + 2k²) while each
    // channel still becomes one sweep.
    let mut c = Circuit::uniform(2, 4);
    c.push(Gate::csum(4, 4), &[0, 1]).unwrap();
    let sim = DensityMatrixSimulator::new().with_noise(NoiseModel::depolarizing(0.01, 0.02));
    let compiled = sim.compile(&c).unwrap();
    let stats = compiled.superop_stats();
    assert_eq!(stats.unitary_steps, 1, "{stats:?}");
    assert_eq!(stats.super_steps, 2, "{stats:?}");
    assert_eq!(stats.kraus_steps, 0, "{stats:?}");
}

#[test]
fn measurement_compiles_to_diagonal_superop_sweeps() {
    // Non-selective measurement dephasing has a diagonal superoperator: the
    // compiled plan should contain superoperator sweeps and no per-run
    // channel construction, and still equal the per-term path.
    let mut c = Circuit::uniform(2, 3);
    c.push(Gate::fourier(3), &[0]).unwrap();
    c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
    c.measure_all();
    compare(&c, &NoiseModel::noiseless(), "measurement dephasing");
    let compiled = DensityMatrixSimulator::new().compile(&c).unwrap();
    assert!(compiled.superop_stats().super_steps >= 1);
}
