//! Adversarial tests for `Circuit::structural_hash`, the key of the serving
//! layer's plan cache. A silent collision there would hand a job a plan
//! compiled for a *different* circuit, so these tests attack the canonical
//! encoding directly: target permutations, parameter-slot swaps, gate/channel
//! confusion, name-boundary ambiguity, and a broad distinctness sweep.

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qudit_circuit::noise::KrausChannel;
use qudit_circuit::{Circuit, Gate, Param};
use qudit_core::matrix::CMatrix;
use qudit_core::random::haar_unitary;

#[test]
fn permuted_targets_hash_differently() {
    // Same gate object, reversed wire order: structurally different circuits
    // (the operator acts with control and target exchanged).
    let mut a = Circuit::uniform(2, 3);
    a.push(Gate::csum(3, 3), &[0, 1]).unwrap();
    let mut b = Circuit::uniform(2, 3);
    b.push(Gate::csum(3, 3), &[1, 0]).unwrap();
    assert_ne!(a.structural_hash(), b.structural_hash());

    // Three-qudit permutations, pairwise distinct.
    let mut rng = StdRng::seed_from_u64(41);
    let u = haar_unitary(&mut rng, 8).unwrap();
    let gate = Gate::custom("h3", vec![2, 2, 2], u).unwrap();
    let mut seen = HashSet::new();
    for targets in [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
        let mut c = Circuit::uniform(3, 2);
        c.push(gate.clone(), &targets).unwrap();
        assert!(seen.insert(c.structural_hash()), "collision at targets {targets:?}");
    }
}

#[test]
fn swapping_free_parameter_slots_changes_the_hash() {
    // Identical gate sequence, but the two free-parameter indices trade
    // places — binding [a, b] means different circuits, so the cache must
    // not conflate them.
    let h = CMatrix::diag_real(&[0.3, -0.2, 0.8]);
    let build = |first: usize, second: usize| {
        let mut c = Circuit::uniform(2, 3);
        c.push(Gate::parameterized("p", vec![3], &h, Param::Free(first)).unwrap(), &[0]).unwrap();
        c.push(Gate::parameterized("p", vec![3], &h, Param::Free(second)).unwrap(), &[1]).unwrap();
        c
    };
    assert_ne!(build(0, 1).structural_hash(), build(1, 0).structural_hash());
}

#[test]
fn bound_value_and_free_index_never_collide() {
    // `Param::Bound(v)` hashes the value's bits, `Param::Free(idx)` the
    // index — the tag byte keeps Bound(f64::from_bits-like coincidences)
    // apart from every free slot.
    let h = CMatrix::diag_real(&[0.1, 0.9]);
    let mut hashes = HashSet::new();
    for param in [Param::Bound(0.0), Param::Bound(1.0), Param::Free(0), Param::Free(1)] {
        let mut c = Circuit::uniform(1, 2);
        c.push(Gate::parameterized("p", vec![2], &h, param).unwrap(), &[0]).unwrap();
        assert!(hashes.insert(c.structural_hash()), "collision at {param:?}");
    }
}

#[test]
fn unitary_gate_and_single_kraus_channel_do_not_collide() {
    // The same matrix on the same wires, once as a gate and once as a
    // one-operator channel: different instruction kinds, different hashes.
    let mut rng = StdRng::seed_from_u64(42);
    let u = haar_unitary(&mut rng, 3).unwrap();
    let mut gate = Circuit::uniform(1, 3);
    gate.push(Gate::custom("op", vec![3], u.clone()).unwrap(), &[0]).unwrap();
    let mut channel = Circuit::uniform(1, 3);
    channel.push_channel(KrausChannel::new("op", vec![3], vec![u]).unwrap(), &[0]).unwrap();
    assert_ne!(gate.structural_hash(), channel.structural_hash());
}

#[test]
fn gate_name_concatenation_boundaries_do_not_collide() {
    // "ab" then "c" vs "a" then "bc": without a name terminator the two
    // instruction streams would feed identical name bytes to the hash.
    let mut rng = StdRng::seed_from_u64(43);
    let u = haar_unitary(&mut rng, 2).unwrap();
    let build = |first: &str, second: &str| {
        let mut c = Circuit::uniform(2, 2);
        c.push(Gate::custom(first, vec![2], u.clone()).unwrap(), &[0]).unwrap();
        c.push(Gate::custom(second, vec![2], u.clone()).unwrap(), &[1]).unwrap();
        c.structural_hash()
    };
    assert_ne!(build("ab", "c"), build("a", "bc"));
}

#[test]
fn measure_target_lists_do_not_collide_across_instruction_boundaries() {
    // measure([0]) + measure([1]) vs measure([0, 1]): the target-count
    // prefix must keep adjacent measure instructions from running together.
    let mut split = Circuit::uniform(2, 3);
    split.measure(&[0]).unwrap();
    split.measure(&[1]).unwrap();
    let mut joint = Circuit::uniform(2, 3);
    joint.measure(&[0, 1]).unwrap();
    assert_ne!(split.structural_hash(), joint.structural_hash());
}

#[test]
fn two_hundred_random_circuits_hash_distinctly() {
    // A broad distinctness sweep: 200 structurally distinct random circuits
    // (every circuit carries at least one random-phase SNAP gate, so no two
    // are byte-identical) must produce 200 distinct hashes. With a sound
    // 64-bit hash the collision odds here are ~1e-15; a collision means the
    // encoding dropped structure.
    let mut hashes: HashMap<u64, u64> = HashMap::new();
    for trial in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(77_000 + trial);
        let n = rng.gen_range(2..=4);
        let dims: Vec<usize> = (0..n).map(|_| rng.gen_range(2..=4)).collect();
        let mut c = Circuit::new(dims.clone());
        let phases: Vec<f64> =
            (0..dims[0]).map(|_| rng.gen::<f64>() * std::f64::consts::TAU).collect();
        c.push(Gate::snap(dims[0], &phases), &[0]).unwrap();
        for _ in 0..rng.gen_range(0..8) {
            let q = rng.gen_range(0..n);
            match rng.gen_range(0..4) {
                0 => c.push(Gate::fourier(dims[q]), &[q]).unwrap(),
                1 => c.push(Gate::shift_x(dims[q]), &[q]).unwrap(),
                2 => c.measure(&[q]).unwrap(),
                _ => c.push_channel(KrausChannel::dephasing(dims[q], 0.25).unwrap(), &[q]).unwrap(),
            }
        }
        if let Some(prev) = hashes.insert(c.structural_hash(), trial) {
            panic!("hash collision between trials {prev} and {trial}");
        }
    }
}

#[test]
fn hash_is_stable_under_clone_and_repeated_calls() {
    let mut rng = StdRng::seed_from_u64(5);
    let u = haar_unitary(&mut rng, 6).unwrap();
    let mut c = Circuit::new(vec![2, 3]);
    c.push(Gate::custom("u", vec![2, 3], u).unwrap(), &[0, 1]).unwrap();
    c.measure_all();
    let h = c.structural_hash();
    assert_eq!(h, c.structural_hash());
    assert_eq!(h, c.clone().structural_hash());
}
