//! Classical baselines for the coloring experiments: greedy (DSATUR-style),
//! simulated annealing and uniform random assignment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::ColoringProblem;

/// Uniformly random assignment.
pub fn random_assignment(problem: &ColoringProblem, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..problem.graph.num_nodes()).map(|_| rng.gen_range(0..problem.colors)).collect()
}

/// Greedy coloring in saturation-degree (DSATUR) order: repeatedly colour the
/// node with the most distinctly-coloured neighbours, choosing the colour
/// that creates the fewest conflicts.
pub fn greedy_coloring(problem: &ColoringProblem) -> Vec<usize> {
    let n = problem.graph.num_nodes();
    let k = problem.colors;
    let mut assignment: Vec<Option<usize>> = vec![None; n];
    for _ in 0..n {
        // Pick the uncoloured node with the highest saturation, ties by degree.
        let mut best_node = None;
        let mut best_key = (0usize, 0usize);
        for v in 0..n {
            if assignment[v].is_some() {
                continue;
            }
            let neighbors = problem.graph.neighbors(v);
            let saturation = {
                let mut seen: Vec<usize> =
                    neighbors.iter().filter_map(|&u| assignment[u]).collect();
                seen.sort_unstable();
                seen.dedup();
                seen.len()
            };
            let key = (saturation, neighbors.len());
            if best_node.is_none() || key > best_key {
                best_node = Some(v);
                best_key = key;
            }
        }
        let v = best_node.expect("an uncoloured node exists");
        // Choose the colour minimising conflicts with already-coloured neighbours.
        let neighbors = problem.graph.neighbors(v);
        let mut best_color = 0;
        let mut best_conflicts = usize::MAX;
        for c in 0..k {
            let conflicts = neighbors.iter().filter(|&&u| assignment[u] == Some(c)).count();
            if conflicts < best_conflicts {
                best_conflicts = conflicts;
                best_color = c;
            }
        }
        assignment[v] = Some(best_color);
    }
    assignment.into_iter().map(|c| c.expect("all nodes coloured")).collect()
}

/// Simulated annealing on single-node colour flips.
pub fn simulated_annealing(problem: &ColoringProblem, iterations: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = problem.graph.num_nodes();
    let k = problem.colors;
    let mut current = random_assignment(problem, seed);
    let mut current_value = problem.properly_colored(&current) as i64;
    let mut best = current.clone();
    let mut best_value = current_value;
    for step in 0..iterations.max(1) {
        let temperature = 1.5 * (1.0 - step as f64 / iterations.max(1) as f64) + 0.01;
        let node = rng.gen_range(0..n);
        let old_color = current[node];
        let mut new_color = rng.gen_range(0..k - 1);
        if new_color >= old_color {
            new_color += 1;
        }
        current[node] = new_color;
        let value = problem.properly_colored(&current) as i64;
        let delta = value - current_value;
        if delta >= 0 || rng.gen::<f64>() < (delta as f64 / temperature).exp() {
            current_value = value;
            if value > best_value {
                best_value = value;
                best = current.clone();
            }
        } else {
            current[node] = old_color;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn greedy_properly_colors_easy_graphs() {
        let problem = ColoringProblem::new(Graph::cycle(6).unwrap(), 2).unwrap();
        let coloring = greedy_coloring(&problem);
        assert!(problem.is_proper(&coloring));
        let problem3 = ColoringProblem::new(Graph::cycle(5).unwrap(), 3).unwrap();
        assert!(problem3.is_proper(&greedy_coloring(&problem3)));
    }

    #[test]
    fn greedy_beats_random_on_planted_instances() {
        let (g, _) = Graph::planted_colorable(20, 3, 0.4, 3).unwrap();
        let problem = ColoringProblem::new(g, 3).unwrap();
        let greedy = problem.properly_colored(&greedy_coloring(&problem));
        let random = problem.properly_colored(&random_assignment(&problem, 1));
        assert!(greedy >= random);
    }

    #[test]
    fn annealing_improves_over_its_random_start() {
        let (g, _) = Graph::planted_colorable(15, 3, 0.5, 9).unwrap();
        let problem = ColoringProblem::new(g, 3).unwrap();
        let start = problem.properly_colored(&random_assignment(&problem, 42));
        let annealed = problem.properly_colored(&simulated_annealing(&problem, 3000, 42));
        assert!(annealed >= start);
        assert!(annealed as f64 >= 0.9 * problem.graph.num_edges() as f64);
    }

    #[test]
    fn random_assignment_is_deterministic_per_seed() {
        let problem = ColoringProblem::new(Graph::complete(6).unwrap(), 3).unwrap();
        assert_eq!(random_assignment(&problem, 5), random_assignment(&problem, 5));
        assert!(random_assignment(&problem, 5).iter().all(|&c| c < 3));
    }
}
