//! Derivative-free classical outer-loop optimisers for variational circuits.

/// Maximises `f` by cyclic coordinate ascent with an adaptive step size.
///
/// Starting from `initial`, each round tries `± step` moves on every
/// coordinate, keeping improvements; the step shrinks when a full round makes
/// no progress. Deterministic and dependency-free — sufficient for the small
/// parameter counts (2p QAOA angles) used here.
pub fn coordinate_ascent(
    initial: &[f64],
    mut f: impl FnMut(&[f64]) -> f64,
    rounds: usize,
    initial_step: f64,
) -> (Vec<f64>, f64) {
    let mut x = initial.to_vec();
    let mut best = f(&x);
    let mut step = initial_step;
    for _ in 0..rounds {
        let mut improved = false;
        for i in 0..x.len() {
            for delta in [step, -step] {
                let mut trial = x.clone();
                trial[i] += delta;
                let value = f(&trial);
                if value > best {
                    best = value;
                    x = trial;
                    improved = true;
                }
            }
        }
        if !improved {
            step *= 0.5;
            if step < 1e-4 {
                break;
            }
        }
    }
    (x, best)
}

/// Coarse grid search over `[lo, hi]^dims` with `points` samples per axis,
/// returning the best grid point. Intended as an initialiser for
/// [`coordinate_ascent`]; the grid size grows as `points^dims`, so keep
/// `dims ≤ 3`.
pub fn grid_search(
    dims: usize,
    lo: f64,
    hi: f64,
    points: usize,
    mut f: impl FnMut(&[f64]) -> f64,
) -> (Vec<f64>, f64) {
    let mut best_x = vec![lo; dims];
    let mut best_val = f64::NEG_INFINITY;
    for x in grid_points(dims, lo, hi, points) {
        let value = f(&x);
        if value > best_val {
            best_val = value;
            best_x = x;
        }
    }
    (best_x, best_val)
}

/// The grid [`grid_search`] walks, in its exact evaluation order — for
/// callers that want to evaluate the whole grid as one *population* (e.g. a
/// batched ensemble pass) and take the argmax themselves.
pub fn grid_points(dims: usize, lo: f64, hi: f64, points: usize) -> Vec<Vec<f64>> {
    assert!(points >= 2 && dims >= 1, "grid search needs at least 2 points and 1 dimension");
    let total = points.pow(dims as u32);
    let mut grid = Vec::with_capacity(total);
    for code in 0..total {
        let mut c = code;
        let mut x = Vec::with_capacity(dims);
        for _ in 0..dims {
            let idx = c % points;
            c /= points;
            x.push(lo + (hi - lo) * idx as f64 / (points - 1) as f64);
        }
        grid.push(x);
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinate_ascent_finds_quadratic_maximum() {
        let target = [1.5, -0.7, 0.3];
        let f = |x: &[f64]| -> f64 {
            -x.iter().zip(target.iter()).map(|(a, b)| (a - b).powi(2)).sum::<f64>()
        };
        let (x, value) = coordinate_ascent(&[0.0, 0.0, 0.0], f, 200, 0.5);
        for (a, b) in x.iter().zip(target.iter()) {
            assert!((a - b).abs() < 1e-2, "x = {x:?}");
        }
        assert!(value > -1e-3);
    }

    #[test]
    fn grid_search_finds_coarse_maximum() {
        let f = |x: &[f64]| -(x[0] - 0.5).powi(2) - (x[1] + 0.25).powi(2);
        let (x, _) = grid_search(2, -1.0, 1.0, 9, f);
        assert!((x[0] - 0.5).abs() < 0.26);
        assert!((x[1] + 0.25).abs() < 0.26);
    }

    #[test]
    fn grid_then_ascent_composes() {
        let f = |x: &[f64]| x[0].sin() + (2.0 * x[1]).cos();
        let (x0, _) = grid_search(2, 0.0, 3.0, 5, f);
        let (_, best) = coordinate_ascent(&x0, f, 100, 0.2);
        assert!(best > 1.9);
    }
}
