//! Noise-Directed Adaptive Remapping (NDAR) for qudit QAOA.
//!
//! Photon loss drives every cavity qudit towards `|0⟩`. NDAR turns this bias
//! into a search primitive: after each round, relabel the colours of every
//! node so that the best assignment found so far sits exactly on the
//! attractor state `|0…0⟩`. The dissipative dynamics then concentrates
//! probability around the incumbent solution, and the QAOA layers explore its
//! neighbourhood — the qudit generalisation of the Z2-gauge remapping used on
//! the 84-qubit experiment the paper cites.

use qudit_circuit::noise::NoiseModel;
use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::graph::ColoringProblem;
use crate::qaoa::{QaoaConfig, QuditQaoa};

/// NDAR loop configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NdarConfig {
    /// Number of adaptive remapping rounds.
    pub rounds: usize,
    /// QAOA configuration used inside each round.
    pub qaoa: QaoaConfig,
    /// Samples drawn per round.
    pub shots_per_round: usize,
}

impl Default for NdarConfig {
    fn default() -> Self {
        Self { rounds: 4, qaoa: QaoaConfig::default(), shots_per_round: 48 }
    }
}

/// Result of an NDAR (or plain restarted QAOA) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NdarResult {
    /// Best assignment found overall (logical colours).
    pub best_assignment: Vec<usize>,
    /// Properly coloured edges of the best assignment.
    pub best_value: usize,
    /// Best value seen up to and including each round.
    pub best_value_per_round: Vec<usize>,
    /// Whether adaptive remapping was enabled.
    pub adaptive: bool,
}

/// Runs the NDAR loop on a coloring problem under the given (dissipative)
/// noise model.
///
/// With `adaptive = false` the same budget is spent on independent QAOA
/// rounds without remapping — the ablation baseline.
///
/// # Errors
/// Returns an error if simulation fails.
pub fn run_ndar(
    problem: &ColoringProblem,
    config: &NdarConfig,
    noise: &NoiseModel,
    adaptive: bool,
) -> Result<NdarResult> {
    let n = problem.graph.num_nodes();
    let d = problem.colors;
    let mut best_assignment = vec![0usize; n];
    let mut best_value = problem.properly_colored(&best_assignment);
    let mut best_per_round = Vec::with_capacity(config.rounds);

    for round in 0..config.rounds {
        // Vary the seed between rounds so plain restarts are not identical.
        let mut round_config = config.qaoa;
        round_config.seed = config.qaoa.seed.wrapping_add(round as u64 * 0x9E37);
        let mut qaoa = QuditQaoa::new(problem.clone(), round_config);
        if adaptive {
            qaoa.set_gauge(gauge_for_incumbent(&best_assignment, d))?;
        }

        let outcome = qaoa.optimize(noise)?;
        let samples = qaoa.sample_assignments(
            &outcome.gammas,
            &outcome.betas,
            noise,
            config.shots_per_round,
        )?;
        for (assignment, value) in samples
            .into_iter()
            .chain(std::iter::once((outcome.best_assignment.clone(), outcome.best_value)))
        {
            if value > best_value {
                best_value = value;
                best_assignment = assignment;
            }
        }
        best_per_round.push(best_value);
    }
    Ok(NdarResult { best_assignment, best_value, best_value_per_round: best_per_round, adaptive })
}

/// Builds the per-node gauge that maps physical level 0 to the incumbent's
/// colour on that node (and cyclically relabels the rest).
pub fn gauge_for_incumbent(assignment: &[usize], colors: usize) -> Vec<Vec<usize>> {
    assignment.iter().map(|&c| (0..colors).map(|l| (c + l) % colors).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn small_problem() -> ColoringProblem {
        // A 5-cycle with 3 colours: optimum colours all 5 edges.
        ColoringProblem::new(Graph::cycle(5).unwrap(), 3).unwrap()
    }

    fn fast_config() -> NdarConfig {
        NdarConfig {
            rounds: 3,
            qaoa: QaoaConfig {
                layers: 1,
                trajectories: 20,
                optimizer_rounds: 8,
                ..Default::default()
            },
            shots_per_round: 24,
        }
    }

    #[test]
    fn gauge_for_incumbent_maps_zero_to_incumbent_colour() {
        let gauge = gauge_for_incumbent(&[2, 0, 1], 3);
        assert_eq!(gauge[0][0], 2);
        assert_eq!(gauge[1][0], 0);
        assert_eq!(gauge[2][0], 1);
        // Each entry is a permutation.
        for perm in &gauge {
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
        }
    }

    #[test]
    fn ndar_improves_monotonically_over_rounds() {
        let noise = NoiseModel::cavity(0.05, 0.1, 0.0);
        let result = run_ndar(&small_problem(), &fast_config(), &noise, true).unwrap();
        assert_eq!(result.best_value_per_round.len(), 3);
        for w in result.best_value_per_round.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(result.adaptive);
        assert_eq!(result.best_value, *result.best_value_per_round.last().unwrap());
    }

    #[test]
    fn ndar_finds_good_colorings_under_strong_loss() {
        // Even under strong photon loss the adaptive loop should reach a
        // near-optimal coloring of the 5-cycle (optimum = 5).
        let noise = NoiseModel::cavity(0.1, 0.2, 0.0);
        let result = run_ndar(&small_problem(), &fast_config(), &noise, true).unwrap();
        assert!(result.best_value >= 4, "best value {}", result.best_value);
    }

    #[test]
    fn adaptive_at_least_matches_plain_restarts_under_loss() {
        let noise = NoiseModel::cavity(0.15, 0.3, 0.0);
        let problem = small_problem();
        let adaptive = run_ndar(&problem, &fast_config(), &noise, true).unwrap();
        let plain = run_ndar(&problem, &fast_config(), &noise, false).unwrap();
        assert!(
            adaptive.best_value >= plain.best_value,
            "adaptive {} vs plain {}",
            adaptive.best_value,
            plain.best_value
        );
    }

    #[test]
    fn noiseless_ndar_reaches_the_optimum() {
        let result =
            run_ndar(&small_problem(), &fast_config(), &NoiseModel::noiseless(), true).unwrap();
        assert_eq!(result.best_value, 5);
        assert!(small_problem().is_proper(&result.best_assignment));
    }
}
