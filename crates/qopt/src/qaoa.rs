//! Qudit one-hot QAOA for graph coloring.
//!
//! Each graph node is one qudit whose dimension equals the number of colours,
//! so the one-hot constraint "exactly one colour per node" is enforced by the
//! hardware itself — the mechanism the paper highlights as the natural
//! advantage of qudit processors for constrained optimisation. The phase
//! separator applies a phase to every monochromatic edge; the mixer is a
//! single-qudit rotation that moves population between colours.

use qudit_circuit::gates;
use qudit_circuit::noise::NoiseModel;
use qudit_circuit::sim::{CompiledCircuit, StatevectorSimulator, TrajectorySimulator};
use qudit_circuit::{Circuit, Gate, Param};
use qudit_core::matrix::CMatrix;
use qudit_core::radix::Radix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::error::{QoptError, Result};
use crate::graph::ColoringProblem;
use crate::optimizer::{coordinate_ascent, grid_points};

/// Mixer variant for the colour degree of freedom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MixerKind {
    /// Nearest-level hopping `Σ |k⟩⟨k+1| + h.c.` (hardware-cheapest).
    Ring,
    /// All-to-all colour mixing `Σ_{j<k} |j⟩⟨k| + h.c.`.
    Full,
}

/// QAOA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QaoaConfig {
    /// Number of alternating layers `p`.
    pub layers: usize,
    /// Mixer variant.
    pub mixer: MixerKind,
    /// Trajectories used for noisy expectation estimates.
    pub trajectories: usize,
    /// Classical-optimiser rounds.
    pub optimizer_rounds: usize,
    /// Random seed (sampling and trajectories).
    pub seed: u64,
}

impl Default for QaoaConfig {
    fn default() -> Self {
        Self { layers: 1, mixer: MixerKind::Ring, trajectories: 40, optimizer_rounds: 40, seed: 11 }
    }
}

/// Outcome of a QAOA optimisation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QaoaOutcome {
    /// Optimised phase-separator angles γ (one per layer).
    pub gammas: Vec<f64>,
    /// Optimised mixer angles β (one per layer).
    pub betas: Vec<f64>,
    /// Expected number of properly coloured edges at the optimum.
    pub expected_value: f64,
    /// Best sampled assignment (logical colours per node).
    pub best_assignment: Vec<usize>,
    /// Properly coloured edges of the best sampled assignment.
    pub best_value: usize,
}

/// The simulation back-end of a compiled [`QaoaEvaluator`].
#[derive(Debug, Clone)]
enum QaoaBackend {
    /// Noiseless: exact statevector probabilities.
    Statevector { sim: StatevectorSimulator, plan: CompiledCircuit },
    /// Noisy: trajectory-averaged outcome distribution.
    Trajectory { sim: TrajectorySimulator, plan: CompiledCircuit },
}

/// A compiled, rebindable QAOA evaluator: the parameterized ansatz's fused
/// execution plan plus the simulator it was compiled against. Each
/// [`QuditQaoa::expected_value_bound`] call rebinds the plan in place
/// (`CompiledCircuit::bind`) — no circuit rebuild, no re-fusion, no
/// stride-plan reconstruction per optimizer step.
#[derive(Debug, Clone)]
pub struct QaoaEvaluator {
    layers: usize,
    backend: QaoaBackend,
}

impl QaoaEvaluator {
    /// Number of QAOA layers the underlying ansatz was built with.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Per-qudit dimensions of the compiled ansatz register.
    fn dims(&self) -> &[usize] {
        match &self.backend {
            QaoaBackend::Statevector { plan, .. } | QaoaBackend::Trajectory { plan, .. } => {
                plan.dims()
            }
        }
    }

    /// The outcome distribution at a parameter binding (rebinds in place).
    fn distribution(&mut self, params: &[f64]) -> Result<Vec<f64>> {
        match &mut self.backend {
            QaoaBackend::Statevector { sim, plan } => {
                Ok(sim.run_bound(plan, params).map_err(QoptError::Circuit)?.state.probabilities())
            }
            QaoaBackend::Trajectory { sim, plan } => {
                sim.outcome_distribution_bound(plan, params).map_err(QoptError::Circuit)
            }
        }
    }

    /// Outcome distributions for a whole **population** of parameter bindings.
    ///
    /// Statevector backend: the population is realised with
    /// `CompiledCircuit::bind_batch` and executed as one ensemble pass —
    /// every execution step is decoded once and applied to all members as a
    /// panel, which is where the optimiser's grid/population evaluations get
    /// their batching win. Trajectory backend: each member runs through the
    /// chunked batched-trajectory path. Both produce results bitwise
    /// identical to calling [`QaoaEvaluator::distribution`] per member.
    fn distributions(&mut self, population: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        match &mut self.backend {
            QaoaBackend::Statevector { sim, plan } => {
                let batch = plan.bind_batch(population).map_err(QoptError::Circuit)?;
                let outputs = sim.run_ensemble(plan, &batch).map_err(QoptError::Circuit)?;
                outputs
                    .into_iter()
                    .map(|col| Ok(col.map_err(QoptError::Circuit)?.state.probabilities()))
                    .collect()
            }
            QaoaBackend::Trajectory { sim, plan } => population
                .iter()
                .map(|params| {
                    sim.outcome_distribution_bound_batched(plan, params).map_err(QoptError::Circuit)
                })
                .collect(),
        }
    }
}

/// A qudit one-hot QAOA instance, optionally with a per-node colour
/// relabelling ("gauge") used by the NDAR loop.
#[derive(Debug, Clone)]
pub struct QuditQaoa {
    problem: ColoringProblem,
    config: QaoaConfig,
    /// `gauge[v][physical_level] = logical colour`; identity by default.
    gauge: Vec<Vec<usize>>,
}

impl QuditQaoa {
    /// Creates a QAOA instance with the identity gauge.
    pub fn new(problem: ColoringProblem, config: QaoaConfig) -> Self {
        let d = problem.colors;
        let gauge = vec![(0..d).collect::<Vec<usize>>(); problem.graph.num_nodes()];
        Self { problem, config, gauge }
    }

    /// The coloring problem.
    pub fn problem(&self) -> &ColoringProblem {
        &self.problem
    }

    /// Sets the per-node colour relabelling (used by NDAR). `gauge[v][l]` is
    /// the logical colour represented by physical level `l` of node `v`.
    ///
    /// # Errors
    /// Returns an error if any entry is not a permutation of the colours.
    pub fn set_gauge(&mut self, gauge: Vec<Vec<usize>>) -> Result<()> {
        let d = self.problem.colors;
        if gauge.len() != self.problem.graph.num_nodes() {
            return Err(QoptError::InvalidConfig("gauge must cover every node".into()));
        }
        for perm in &gauge {
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            if sorted != (0..d).collect::<Vec<usize>>() {
                return Err(QoptError::InvalidConfig(format!(
                    "gauge entry {perm:?} is not a permutation of 0..{d}"
                )));
            }
        }
        self.gauge = gauge;
        Ok(())
    }

    /// The current gauge.
    pub fn gauge(&self) -> &[Vec<usize>] {
        &self.gauge
    }

    /// Decodes a physical measurement (levels per node) into logical colours
    /// through the gauge.
    pub fn decode(&self, physical: &[usize]) -> Vec<usize> {
        physical.iter().enumerate().map(|(v, &l)| self.gauge[v][l]).collect()
    }

    /// Builds the **parameterized ansatz** once: γ of layer `l` is free
    /// parameter `l`, β of layer `l` is free parameter `layers + l` (the
    /// packing [`QuditQaoa::pack_angles`] produces). The structure — targets,
    /// fusion decisions, stride plans — is angle-independent, so a compiled
    /// plan is rebound per optimizer step instead of rebuilt.
    ///
    /// # Errors
    /// Returns an error if a gate fails to validate.
    pub fn ansatz(&self) -> Result<Circuit> {
        let p = self.config.layers;
        let d = self.problem.colors;
        let n = self.problem.graph.num_nodes();
        let mut circuit = Circuit::uniform(n, d);
        // Uniform superposition over colours on every node.
        for v in 0..n {
            circuit.push(Gate::fourier(d), &[v]).map_err(QoptError::Circuit)?;
        }
        let mixer_h = match self.config.mixer {
            MixerKind::Ring => gates::x_mixer_generator(d),
            MixerKind::Full => gates::full_mixer_generator(d),
        };
        for layer in 0..p {
            // Phase separation: a phase on every monochromatic edge (in the
            // gauge-transformed logical colours).
            for &(a, b) in self.problem.graph.edges() {
                let gate = self.edge_phase_gate(a, b, Param::Free(layer));
                circuit.push(gate, &[a, b]).map_err(QoptError::Circuit)?;
            }
            // Mixing on every node.
            let mixer = Gate::parameterized(
                format!("Mix[{layer}]"),
                vec![d],
                &mixer_h,
                Param::Free(p + layer),
            )
            .map_err(QoptError::Circuit)?;
            for v in 0..n {
                circuit.push(mixer.clone(), &[v]).map_err(QoptError::Circuit)?;
            }
            circuit.barrier();
        }
        Ok(circuit)
    }

    /// Packs per-layer angle schedules into the ansatz's parameter vector.
    ///
    /// # Errors
    /// Returns an error if the angle lists do not match the layer count.
    pub fn pack_angles(&self, gammas: &[f64], betas: &[f64]) -> Result<Vec<f64>> {
        if gammas.len() != self.config.layers || betas.len() != self.config.layers {
            return Err(QoptError::InvalidConfig(format!(
                "expected {} angles per schedule, got {} gammas / {} betas",
                self.config.layers,
                gammas.len(),
                betas.len()
            )));
        }
        Ok(gammas.iter().chain(betas.iter()).copied().collect())
    }

    /// Builds the QAOA circuit for concrete angles: the parameterized ansatz
    /// bound at `(γ, β)`.
    ///
    /// # Errors
    /// Returns an error if the angle lists do not match the layer count.
    pub fn circuit(&self, gammas: &[f64], betas: &[f64]) -> Result<Circuit> {
        let params = self.pack_angles(gammas, betas)?;
        self.ansatz()?.with_bound(&params).map_err(QoptError::Circuit)
    }

    /// The two-qudit phase-separation gate for one edge, `exp(−iγ P)` with
    /// `P` the projector onto pairs of physical levels that decode to the
    /// same logical colour; `γ` may be symbolic.
    fn edge_phase_gate(&self, a: usize, b: usize, gamma: Param) -> Gate {
        let d = self.problem.colors;
        let weights: Vec<f64> = (0..d * d)
            .map(|idx| {
                let la = idx / d;
                let lb = idx % d;
                if self.gauge[a][la] == self.gauge[b][lb] {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        Gate::parameterized(
            format!("CPhase({a},{b})"),
            vec![d, d],
            &CMatrix::diag_real(&weights),
            gamma,
        )
        .expect("diagonal projector generator is Hermitian")
    }

    /// Compiles the parameterized ansatz into a rebindable evaluator for the
    /// given noise model: one fused execution plan, rebound per angle set
    /// (noiseless: statevector; noisy: trajectory averaging). This is the
    /// plan-reuse path [`QuditQaoa::optimize`] drives — circuit construction,
    /// generator eigendecompositions, gate fusion and stride-plan building
    /// all happen exactly once per optimisation run.
    ///
    /// # Errors
    /// Returns an error if compilation fails.
    pub fn evaluator(&self, noise: &NoiseModel) -> Result<QaoaEvaluator> {
        let ansatz = self.ansatz()?;
        let backend = if noise.is_noiseless() {
            let sim = StatevectorSimulator::with_seed(self.config.seed);
            let plan = sim.compile(&ansatz).map_err(QoptError::Circuit)?;
            QaoaBackend::Statevector { sim, plan }
        } else {
            let sim = TrajectorySimulator::new(self.config.trajectories)
                .with_seed(self.config.seed)
                .with_noise(noise.clone());
            let plan = sim.compile(&ansatz).map_err(QoptError::Circuit)?;
            QaoaBackend::Trajectory { sim, plan }
        };
        Ok(QaoaEvaluator { layers: self.config.layers, backend })
    }

    /// Expected number of properly coloured edges at the rebound angles,
    /// through a compiled evaluator (see [`QuditQaoa::evaluator`]).
    ///
    /// # Errors
    /// Returns an error if the angle lists do not match the layer count or
    /// simulation fails.
    pub fn expected_value_bound(
        &self,
        eval: &mut QaoaEvaluator,
        gammas: &[f64],
        betas: &[f64],
    ) -> Result<f64> {
        let params = self.pack_angles(gammas, betas)?;
        let distribution = eval.distribution(&params)?;
        Ok(self.distribution_value(eval.dims(), &distribution))
    }

    /// Expected objective for a whole population of `(γ, β)` schedules in
    /// one batched evaluation (see [`QaoaEvaluator`]'s ensemble path). The
    /// returned values are bitwise identical to calling
    /// [`QuditQaoa::expected_value_bound`] on each schedule in order.
    ///
    /// # Errors
    /// Returns an error if an angle list does not match the layer count or
    /// simulation fails.
    pub fn expected_values_population(
        &self,
        eval: &mut QaoaEvaluator,
        schedules: &[(Vec<f64>, Vec<f64>)],
    ) -> Result<Vec<f64>> {
        let population: Vec<Vec<f64>> =
            schedules.iter().map(|(g, b)| self.pack_angles(g, b)).collect::<Result<_>>()?;
        let distributions = eval.distributions(&population)?;
        Ok(distributions.iter().map(|d| self.distribution_value(eval.dims(), d)).collect())
    }

    /// Expected number of properly coloured edges of the circuit output.
    ///
    /// Noiseless: exact from the state vector. Noisy: averaged over quantum
    /// trajectories. One-shot convenience over [`QuditQaoa::evaluator`] /
    /// [`QuditQaoa::expected_value_bound`].
    ///
    /// # Errors
    /// Returns an error if simulation fails.
    pub fn expected_value(&self, gammas: &[f64], betas: &[f64], noise: &NoiseModel) -> Result<f64> {
        let mut eval = self.evaluator(noise)?;
        self.expected_value_bound(&mut eval, gammas, betas)
    }

    fn distribution_value(&self, dims: &[usize], distribution: &[f64]) -> f64 {
        let radix = Radix::new(dims.to_vec()).expect("valid dims");
        distribution
            .iter()
            .enumerate()
            .map(|(idx, &p)| {
                if p == 0.0 {
                    return 0.0;
                }
                let physical = radix.digits_of(idx).expect("index in range");
                let logical = self.decode(&physical);
                p * self.problem.properly_colored(&logical) as f64
            })
            .sum()
    }

    /// Optimises the angles (grid initialisation for p = 1, coordinate ascent
    /// refinement) and samples candidate solutions at the optimum.
    ///
    /// # Errors
    /// Returns an error if simulation fails.
    pub fn optimize(&self, noise: &NoiseModel) -> Result<QaoaOutcome> {
        let p = self.config.layers;
        // One compiled plan for the whole optimisation: every objective
        // evaluation below rebinds it in place instead of rebuilding and
        // recompiling the circuit.
        let mut eval = self.evaluator(noise)?;
        // Initial angles. For p = 1 the whole 5×5 grid is evaluated as a
        // single population (one ensemble pass on the statevector backend)
        // and the argmax taken in `grid_search`'s exact iteration order, so
        // the chosen point matches the serial grid search bitwise.
        let initial: Vec<f64> = if p == 1 {
            let grid = grid_points(2, 0.1, 1.2, 5);
            let schedules: Vec<(Vec<f64>, Vec<f64>)> =
                grid.iter().map(|x| (vec![x[0]], vec![x[1]])).collect();
            let values = self.expected_values_population(&mut eval, &schedules)?;
            let mut best = grid[0].clone();
            let mut best_val = f64::NEG_INFINITY;
            for (x, &value) in grid.iter().zip(values.iter()) {
                if value > best_val {
                    best_val = value;
                    best = x.clone();
                }
            }
            best
        } else {
            (0..2 * p).map(|i| 0.3 + 0.1 * i as f64).collect()
        };
        let (angles, expected) = coordinate_ascent(
            &initial,
            |x| {
                let (g, b) = x.split_at(p);
                self.expected_value_bound(&mut eval, g, b).unwrap_or(0.0)
            },
            self.config.optimizer_rounds,
            0.25,
        );
        let (gammas, betas) = angles.split_at(p);
        let samples = self.sample_assignments(gammas, betas, noise, 64)?;
        let (best_assignment, best_value) = samples
            .into_iter()
            .max_by_key(|(_, v)| *v)
            .unwrap_or((vec![0; self.problem.graph.num_nodes()], 0));
        Ok(QaoaOutcome {
            gammas: gammas.to_vec(),
            betas: betas.to_vec(),
            expected_value: expected,
            best_assignment,
            best_value,
        })
    }

    /// Samples `shots` assignments (decoded to logical colours) with their
    /// objective values.
    ///
    /// # Errors
    /// Returns an error if simulation fails.
    pub fn sample_assignments(
        &self,
        gammas: &[f64],
        betas: &[f64],
        noise: &NoiseModel,
        shots: usize,
    ) -> Result<Vec<(Vec<usize>, usize)>> {
        let circuit = self.circuit(gammas, betas)?;
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(77));
        let mut out = Vec::with_capacity(shots);
        if noise.is_noiseless() {
            let state = StatevectorSimulator::with_seed(self.config.seed)
                .run(&circuit)
                .map_err(QoptError::Circuit)?;
            for _ in 0..shots {
                let physical = state.sample(&mut rng);
                let logical = self.decode(&physical);
                let value = self.problem.properly_colored(&logical);
                out.push((logical, value));
            }
        } else {
            let sim = TrajectorySimulator::new(shots)
                .with_seed(self.config.seed)
                .with_noise(noise.clone());
            for t in 0..shots {
                let state = sim.run_single(&circuit, t).map_err(QoptError::Circuit)?;
                let physical = state.sample(&mut rng);
                let logical = self.decode(&physical);
                let value = self.problem.properly_colored(&logical);
                out.push((logical, value));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn triangle_problem() -> ColoringProblem {
        ColoringProblem::new(Graph::complete(3).unwrap(), 3).unwrap()
    }

    #[test]
    fn circuit_structure_counts() {
        let qaoa =
            QuditQaoa::new(triangle_problem(), QaoaConfig { layers: 2, ..Default::default() });
        let c = qaoa.circuit(&[0.3, 0.2], &[0.4, 0.1]).unwrap();
        // 3 Fourier + per layer (3 edges + 3 mixers) × 2 layers.
        assert_eq!(c.gate_count(), 3 + 2 * 6);
        assert_eq!(c.multi_qudit_gate_count(), 6);
        assert!(qaoa.circuit(&[0.3], &[0.4, 0.1]).is_err());
    }

    #[test]
    fn uniform_superposition_gives_expected_random_value() {
        // At γ = β = 0 the state is the uniform distribution over colourings;
        // each edge is properly coloured with probability (d-1)/d = 2/3.
        let qaoa = QuditQaoa::new(triangle_problem(), QaoaConfig::default());
        let value = qaoa.expected_value(&[0.0], &[0.0], &NoiseModel::noiseless()).unwrap();
        assert!((value - 3.0 * 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn optimised_qaoa_beats_random_guessing() {
        let qaoa = QuditQaoa::new(
            triangle_problem(),
            QaoaConfig { layers: 1, optimizer_rounds: 25, ..Default::default() },
        );
        let outcome = qaoa.optimize(&NoiseModel::noiseless()).unwrap();
        assert!(outcome.expected_value > 2.0, "expected value {}", outcome.expected_value);
        // The triangle is 3-colorable, so the best sample should colour all 3 edges.
        assert_eq!(outcome.best_value, 3);
        assert!(qaoa.problem().is_proper(&outcome.best_assignment));
    }

    #[test]
    fn gauge_relabelling_preserves_objective_statistics() {
        let problem = triangle_problem();
        let mut qaoa = QuditQaoa::new(problem, QaoaConfig::default());
        let base = qaoa.expected_value(&[0.5], &[0.3], &NoiseModel::noiseless()).unwrap();
        // A global colour relabelling leaves the expected objective unchanged.
        qaoa.set_gauge(vec![vec![1, 2, 0]; 3]).unwrap();
        let relabelled = qaoa.expected_value(&[0.5], &[0.3], &NoiseModel::noiseless()).unwrap();
        assert!((base - relabelled).abs() < 1e-9);
        // Invalid gauges rejected.
        assert!(qaoa.set_gauge(vec![vec![0, 0, 1]; 3]).is_err());
        assert!(qaoa.set_gauge(vec![vec![0, 1, 2]; 2]).is_err());
    }

    #[test]
    fn decode_applies_permutation() {
        let mut qaoa = QuditQaoa::new(triangle_problem(), QaoaConfig::default());
        qaoa.set_gauge(vec![vec![2, 0, 1], vec![0, 1, 2], vec![1, 2, 0]]).unwrap();
        assert_eq!(qaoa.decode(&[0, 1, 2]), vec![2, 1, 0]);
    }

    #[test]
    fn rebound_evaluator_matches_rebuilt_circuits() {
        let qaoa =
            QuditQaoa::new(triangle_problem(), QaoaConfig { layers: 2, ..Default::default() });
        let ansatz = qaoa.ansatz().unwrap();
        assert_eq!(ansatz.num_params(), 4, "2 gammas + 2 betas");
        let mut eval = qaoa.evaluator(&NoiseModel::noiseless()).unwrap();
        for (g, b) in [([0.3, 0.1], [0.5, 0.2]), ([0.9, 0.4], [0.2, 0.7])] {
            let swept = qaoa.expected_value_bound(&mut eval, &g, &b).unwrap();
            // Reference: build + simulate the bound circuit from scratch.
            let circuit = qaoa.circuit(&g, &b).unwrap();
            let probs = StatevectorSimulator::with_seed(qaoa.config.seed)
                .run(&circuit)
                .unwrap()
                .probabilities();
            let rebuilt = qaoa.distribution_value(circuit.dims(), &probs);
            assert!((swept - rebuilt).abs() < 1e-12, "{swept} vs {rebuilt}");
        }
        // The noisy (trajectory) backend rebinds identically too.
        let noise = NoiseModel::depolarizing(0.02, 0.02);
        let mut noisy_eval = qaoa.evaluator(&noise).unwrap();
        let swept = qaoa.expected_value_bound(&mut noisy_eval, &[0.4, 0.2], &[0.3, 0.1]).unwrap();
        let rebuilt = qaoa.expected_value(&[0.4, 0.2], &[0.3, 0.1], &noise).unwrap();
        assert!((swept - rebuilt).abs() < 1e-12, "{swept} vs {rebuilt}");
    }

    #[test]
    fn population_evaluation_is_bitwise_identical_to_serial() {
        let qaoa =
            QuditQaoa::new(triangle_problem(), QaoaConfig { layers: 1, ..Default::default() });
        let schedules: Vec<(Vec<f64>, Vec<f64>)> =
            grid_points(2, 0.1, 1.2, 5).into_iter().map(|x| (vec![x[0]], vec![x[1]])).collect();
        // Noiseless backend: one ensemble pass over the whole grid.
        let mut eval = qaoa.evaluator(&NoiseModel::noiseless()).unwrap();
        let batched = qaoa.expected_values_population(&mut eval, &schedules).unwrap();
        let mut serial_eval = qaoa.evaluator(&NoiseModel::noiseless()).unwrap();
        for ((g, b), &value) in schedules.iter().zip(batched.iter()) {
            let reference = qaoa.expected_value_bound(&mut serial_eval, g, b).unwrap();
            assert_eq!(value.to_bits(), reference.to_bits(), "{value} vs {reference}");
        }
        // The population argmax (in enumeration order) reproduces the serial
        // grid search's chosen point exactly.
        let (serial_best, _) = crate::optimizer::grid_search(2, 0.1, 1.2, 5, |x| {
            qaoa.expected_value_bound(&mut serial_eval, &[x[0]], &[x[1]]).unwrap_or(0.0)
        });
        let best_idx = batched
            .iter()
            .enumerate()
            .fold((0, f64::NEG_INFINITY), |acc, (i, &v)| if v > acc.1 { (i, v) } else { acc })
            .0;
        let (bg, bb) = &schedules[best_idx];
        assert_eq!(serial_best, vec![bg[0], bb[0]]);
        // Noisy (trajectory) backend goes through the batched trajectory
        // fold, which is itself bitwise-identical to the serial fold.
        let noise = NoiseModel::depolarizing(0.03, 0.03);
        let mut noisy_eval = qaoa.evaluator(&noise).unwrap();
        let pair = [schedules[3].clone(), schedules[17].clone()];
        let noisy_batched = qaoa.expected_values_population(&mut noisy_eval, &pair).unwrap();
        let mut noisy_serial = qaoa.evaluator(&noise).unwrap();
        for ((g, b), &value) in pair.iter().zip(noisy_batched.iter()) {
            let reference = qaoa.expected_value_bound(&mut noisy_serial, g, b).unwrap();
            assert_eq!(value.to_bits(), reference.to_bits(), "{value} vs {reference}");
        }
    }

    #[test]
    fn noise_degrades_expected_value() {
        let qaoa = QuditQaoa::new(
            triangle_problem(),
            QaoaConfig { layers: 1, trajectories: 60, ..Default::default() },
        );
        let clean = qaoa.expected_value(&[0.6], &[0.4], &NoiseModel::noiseless()).unwrap();
        let noisy =
            qaoa.expected_value(&[0.6], &[0.4], &NoiseModel::depolarizing(0.05, 0.1)).unwrap();
        // Depolarising noise pushes the distribution towards uniform (value 2.0),
        // so a better-than-random clean value must degrade.
        if clean > 2.1 {
            assert!(noisy < clean + 0.05);
        }
    }

    #[test]
    fn sampling_returns_valid_colorings() {
        let qaoa = QuditQaoa::new(triangle_problem(), QaoaConfig::default());
        let samples =
            qaoa.sample_assignments(&[0.4], &[0.3], &NoiseModel::noiseless(), 20).unwrap();
        assert_eq!(samples.len(), 20);
        for (assignment, value) in samples {
            assert_eq!(assignment.len(), 3);
            assert!(assignment.iter().all(|&c| c < 3));
            assert_eq!(value, qaoa.problem().properly_colored(&assignment));
        }
    }
}
