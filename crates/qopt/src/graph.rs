//! Graphs and the max-k-coloring problem (maximise properly coloured edges).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::{QoptError, Result};

/// An undirected simple graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    nodes: usize,
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Creates a graph from an edge list (self-loops and duplicates rejected).
    ///
    /// # Errors
    /// Returns an error for self-loops, out-of-range endpoints or duplicate
    /// edges.
    pub fn new(nodes: usize, edges: Vec<(usize, usize)>) -> Result<Self> {
        let mut seen = std::collections::BTreeSet::new();
        for &(a, b) in &edges {
            if a == b {
                return Err(QoptError::InvalidProblem(format!("self-loop on node {a}")));
            }
            if a >= nodes || b >= nodes {
                return Err(QoptError::InvalidProblem(format!(
                    "edge ({a},{b}) out of range for {nodes} nodes"
                )));
            }
            if !seen.insert((a.min(b), a.max(b))) {
                return Err(QoptError::InvalidProblem(format!("duplicate edge ({a},{b})")));
            }
        }
        Ok(Self { nodes, edges })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge list.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Neighbours of a node.
    pub fn neighbors(&self, node: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == node {
                    Some(b)
                } else if b == node {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Degree of a node.
    pub fn degree(&self, node: usize) -> usize {
        self.neighbors(node).len()
    }

    /// A cycle graph `C_n`.
    ///
    /// # Errors
    /// Returns an error for fewer than 3 nodes.
    pub fn cycle(n: usize) -> Result<Self> {
        if n < 3 {
            return Err(QoptError::InvalidProblem("cycle needs at least 3 nodes".into()));
        }
        Self::new(n, (0..n).map(|i| (i, (i + 1) % n)).collect())
    }

    /// The complete graph `K_n`.
    ///
    /// # Errors
    /// Returns an error for fewer than 2 nodes.
    pub fn complete(n: usize) -> Result<Self> {
        if n < 2 {
            return Err(QoptError::InvalidProblem("complete graph needs at least 2 nodes".into()));
        }
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
            }
        }
        Self::new(n, edges)
    }

    /// An Erdős–Rényi random graph `G(n, p)` with a deterministic seed.
    ///
    /// # Errors
    /// Returns an error for invalid `p`.
    pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) {
            return Err(QoptError::InvalidProblem(format!("edge probability {p} outside [0,1]")));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.gen::<f64>() < p {
                    edges.push((a, b));
                }
            }
        }
        Self::new(n, edges)
    }

    /// A random near-`k`-regular graph built by edge pairing (used for the
    /// paper's 3-regular coloring instances). The result is simple; a few
    /// nodes may end up with degree below `k` when pairings collide.
    ///
    /// # Errors
    /// Returns an error if `k >= n`.
    pub fn random_regular(n: usize, k: usize, seed: u64) -> Result<Self> {
        if k >= n {
            return Err(QoptError::InvalidProblem(format!(
                "degree {k} must be below node count {n}"
            )));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = std::collections::BTreeSet::new();
        let mut degree = vec![0usize; n];
        // Repeated random pairing passes.
        for _ in 0..20 {
            let mut stubs: Vec<usize> = (0..n).filter(|&v| degree[v] < k).collect();
            stubs.shuffle(&mut rng);
            let mut i = 0;
            while i + 1 < stubs.len() {
                let (a, b) = (stubs[i], stubs[i + 1]);
                i += 2;
                if a == b || degree[a] >= k || degree[b] >= k {
                    continue;
                }
                if edges.insert((a.min(b), a.max(b))) {
                    degree[a] += 1;
                    degree[b] += 1;
                }
            }
            if degree.iter().all(|&d| d >= k) {
                break;
            }
        }
        Self::new(n, edges.into_iter().collect())
    }

    /// A graph guaranteed to be `k`-colorable: nodes are pre-assigned to `k`
    /// groups and edges only connect different groups. Returns the graph and
    /// the planted coloring.
    ///
    /// # Errors
    /// Returns an error for `k < 2`.
    pub fn planted_colorable(
        n: usize,
        k: usize,
        edge_probability: f64,
        seed: u64,
    ) -> Result<(Self, Vec<usize>)> {
        if k < 2 {
            return Err(QoptError::InvalidProblem("need at least 2 colors".into()));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let planted: Vec<usize> = (0..n).map(|i| i % k).collect();
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if planted[a] != planted[b] && rng.gen::<f64>() < edge_probability {
                    edges.push((a, b));
                }
            }
        }
        Ok((Self::new(n, edges)?, planted))
    }
}

/// The max-k-coloring problem: maximise the number of properly coloured edges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColoringProblem {
    /// The graph.
    pub graph: Graph,
    /// Number of colours (the qudit dimension in the one-hot encoding).
    pub colors: usize,
}

impl ColoringProblem {
    /// Creates a coloring problem.
    ///
    /// # Errors
    /// Returns an error for fewer than 2 colors.
    pub fn new(graph: Graph, colors: usize) -> Result<Self> {
        if colors < 2 {
            return Err(QoptError::InvalidProblem("need at least 2 colors".into()));
        }
        Ok(Self { graph, colors })
    }

    /// Number of properly coloured edges under an assignment.
    ///
    /// # Panics
    /// Panics if the assignment is shorter than the node count (programming
    /// error).
    pub fn properly_colored(&self, assignment: &[usize]) -> usize {
        self.graph.edges().iter().filter(|&&(a, b)| assignment[a] != assignment[b]).count()
    }

    /// Number of conflicting (monochromatic) edges.
    pub fn conflicts(&self, assignment: &[usize]) -> usize {
        self.graph.num_edges() - self.properly_colored(assignment)
    }

    /// Approximation ratio of an assignment relative to the best possible
    /// value (`best` computed elsewhere, e.g. by brute force or a planted
    /// optimum).
    pub fn approximation_ratio(&self, assignment: &[usize], best: usize) -> f64 {
        if best == 0 {
            return 1.0;
        }
        self.properly_colored(assignment) as f64 / best as f64
    }

    /// Brute-force optimum (properly colored edges of the best assignment).
    /// Exponential in the node count; intended for ≤ 10 nodes.
    pub fn brute_force_optimum(&self) -> (Vec<usize>, usize) {
        let n = self.graph.num_nodes();
        let k = self.colors;
        let mut best_value = 0;
        let mut best_assign = vec![0; n];
        let total = k.pow(n as u32);
        for code in 0..total {
            let mut c = code;
            let mut assignment = vec![0usize; n];
            for slot in assignment.iter_mut() {
                *slot = c % k;
                c /= k;
            }
            let value = self.properly_colored(&assignment);
            if value > best_value {
                best_value = value;
                best_assign = assignment;
                if best_value == self.graph.num_edges() {
                    break;
                }
            }
        }
        (best_assign, best_value)
    }

    /// Returns `true` if the assignment is a proper coloring (no conflicts).
    pub fn is_proper(&self, assignment: &[usize]) -> bool {
        self.conflicts(assignment) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_construction_validation() {
        assert!(Graph::new(3, vec![(0, 0)]).is_err());
        assert!(Graph::new(3, vec![(0, 5)]).is_err());
        assert!(Graph::new(3, vec![(0, 1), (1, 0)]).is_err());
        let g = Graph::new(3, vec![(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(0), vec![1]);
    }

    #[test]
    fn standard_graph_families() {
        assert_eq!(Graph::cycle(5).unwrap().num_edges(), 5);
        assert_eq!(Graph::complete(4).unwrap().num_edges(), 6);
        assert!(Graph::cycle(2).is_err());
        let er = Graph::erdos_renyi(10, 0.5, 1).unwrap();
        assert!(er.num_edges() > 5 && er.num_edges() < 40);
        // Determinism.
        assert_eq!(Graph::erdos_renyi(10, 0.5, 1).unwrap(), er);
    }

    #[test]
    fn random_regular_has_bounded_degree() {
        let g = Graph::random_regular(12, 3, 7).unwrap();
        for v in 0..12 {
            assert!(g.degree(v) <= 3);
        }
        // Most nodes reach full degree.
        let full = (0..12).filter(|&v| g.degree(v) == 3).count();
        assert!(full >= 8, "only {full} nodes reached degree 3");
        assert!(Graph::random_regular(4, 4, 0).is_err());
    }

    #[test]
    fn planted_colorable_graph_is_proper_under_planted_coloring() {
        let (g, planted) = Graph::planted_colorable(12, 3, 0.6, 5).unwrap();
        let problem = ColoringProblem::new(g, 3).unwrap();
        assert!(problem.is_proper(&planted));
        assert!(problem.graph.num_edges() > 10);
    }

    #[test]
    fn coloring_cost_functions() {
        let g = Graph::cycle(4).unwrap();
        let p = ColoringProblem::new(g, 2).unwrap();
        assert_eq!(p.properly_colored(&[0, 1, 0, 1]), 4);
        assert_eq!(p.conflicts(&[0, 0, 0, 0]), 4);
        // [0,1,0,0] colours edges (0,1) and (1,2) properly but leaves (2,3) and (3,0) in conflict.
        assert!((p.approximation_ratio(&[0, 1, 0, 0], 4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn brute_force_finds_proper_coloring_of_odd_cycle() {
        // C5 is not 2-colorable (best = 4 of 5 edges) but is 3-colorable.
        let g = Graph::cycle(5).unwrap();
        let p2 = ColoringProblem::new(g.clone(), 2).unwrap();
        let (_, best2) = p2.brute_force_optimum();
        assert_eq!(best2, 4);
        let p3 = ColoringProblem::new(g, 3).unwrap();
        let (assign3, best3) = p3.brute_force_optimum();
        assert_eq!(best3, 5);
        assert!(p3.is_proper(&assign3));
    }
}
