//! Error types for the combinatorial-optimisation application crate.

use std::fmt;

/// Result alias used throughout `qopt`.
pub type Result<T> = std::result::Result<T, QoptError>;

/// Errors produced by problem construction and the quantum/classical solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QoptError {
    /// The problem instance was invalid.
    InvalidProblem(String),
    /// A solver configuration was invalid.
    InvalidConfig(String),
    /// An error bubbled up from the numerics substrate.
    Core(qudit_core::CoreError),
    /// An error bubbled up from the circuit layer.
    Circuit(qudit_circuit::CircuitError),
}

impl fmt::Display for QoptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QoptError::InvalidProblem(msg) => write!(f, "invalid problem: {msg}"),
            QoptError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            QoptError::Core(e) => write!(f, "core error: {e}"),
            QoptError::Circuit(e) => write!(f, "circuit error: {e}"),
        }
    }
}

impl std::error::Error for QoptError {}

impl From<qudit_core::CoreError> for QoptError {
    fn from(e: qudit_core::CoreError) -> Self {
        QoptError::Core(e)
    }
}

impl From<qudit_circuit::CircuitError> for QoptError {
    fn from(e: qudit_circuit::CircuitError) -> Self {
        QoptError::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        assert!(QoptError::InvalidProblem("x".into()).to_string().contains("invalid problem"));
        let e: QoptError = qudit_core::CoreError::InvalidDimension(1).into();
        assert!(e.to_string().contains("core error"));
    }
}
