//! Qudit quantum random access codes (QRACs) for large coloring instances.
//!
//! To optimise over more variables than there are cavity modes, several graph
//! nodes are packed into one qudit: node slot `j` of a qudit is read out in
//! the `j`-th mutually unbiased basis (computational basis, Fourier basis,
//! ...). A product state over the qudits is optimised classically against the
//! relaxed objective (the probability that each edge is properly coloured
//! given the per-slot marginals), then rounded to a concrete coloring — the
//! qudit generalisation of the qubit quantum-relaxation pipeline the paper
//! cites, which it notes has not yet been extended to qudits.

use qudit_circuit::gates;
use qudit_core::complex::{c64, Complex64};
use qudit_core::matrix::CMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::{QoptError, Result};
use crate::graph::ColoringProblem;

/// Configuration of the QRAC relaxation solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QracConfig {
    /// Nodes packed per qudit (1 or 2 slots are supported; slot 0 reads the
    /// computational basis, slot 1 the Fourier basis).
    pub nodes_per_qudit: usize,
    /// Coordinate-ascent sweeps over the state parameters.
    pub optimizer_sweeps: usize,
    /// Random restarts for the rounding step.
    pub rounding_samples: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for QracConfig {
    fn default() -> Self {
        Self { nodes_per_qudit: 2, optimizer_sweeps: 30, rounding_samples: 32, seed: 7 }
    }
}

/// Result of the QRAC relaxation-and-rounding pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QracResult {
    /// Rounded coloring.
    pub assignment: Vec<usize>,
    /// Properly coloured edges of the rounded coloring.
    pub value: usize,
    /// Number of qudits used.
    pub qudits_used: usize,
    /// Relaxed objective value reached before rounding.
    pub relaxed_value: f64,
}

/// The QRAC solver.
#[derive(Debug, Clone)]
pub struct QracSolver {
    problem: ColoringProblem,
    config: QracConfig,
    /// `node_slot[v] = (qudit, slot)`.
    node_slot: Vec<(usize, usize)>,
    num_qudits: usize,
}

impl QracSolver {
    /// Creates a solver, packing nodes into qudits in index order.
    ///
    /// # Errors
    /// Returns an error for unsupported packing factors.
    pub fn new(problem: ColoringProblem, config: QracConfig) -> Result<Self> {
        if config.nodes_per_qudit == 0 || config.nodes_per_qudit > 2 {
            return Err(QoptError::InvalidConfig(
                "nodes_per_qudit must be 1 or 2 (computational + Fourier readout)".into(),
            ));
        }
        let n = problem.graph.num_nodes();
        let m = config.nodes_per_qudit;
        let node_slot: Vec<(usize, usize)> = (0..n).map(|v| (v / m, v % m)).collect();
        let num_qudits = n.div_ceil(m);
        Ok(Self { problem, config, node_slot, num_qudits })
    }

    /// Number of qudits the encoding uses.
    pub fn qudits_used(&self) -> usize {
        self.num_qudits
    }

    /// Runs the relaxation and rounding pipeline.
    ///
    /// # Errors
    /// Returns an error if the marginals cannot be computed.
    pub fn solve(&self) -> Result<QracResult> {
        let d = self.problem.colors;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        // State parameters: (re, im) amplitudes per level per qudit.
        let mut params: Vec<Vec<(f64, f64)>> = (0..self.num_qudits)
            .map(|_| (0..d).map(|_| (rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5)).collect())
            .collect();

        let mut best_relaxed = self.relaxed_objective(&params)?;
        let step0 = 0.4;
        for sweep in 0..self.config.optimizer_sweeps {
            let step = step0 * (1.0 - sweep as f64 / self.config.optimizer_sweeps as f64) + 0.02;
            for q in 0..self.num_qudits {
                for level in 0..d {
                    for component in 0..2 {
                        for delta in [step, -step] {
                            let mut trial = params.clone();
                            if component == 0 {
                                trial[q][level].0 += delta;
                            } else {
                                trial[q][level].1 += delta;
                            }
                            let value = self.relaxed_objective(&trial)?;
                            if value > best_relaxed {
                                best_relaxed = value;
                                params = trial;
                            }
                        }
                    }
                }
            }
        }

        // Rounding: argmax of each node's marginal, plus sampled roundings.
        let marginals = self.marginals(&params)?;
        let mut best_assignment: Vec<usize> = marginals
            .iter()
            .map(|probs| {
                probs
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .map(|(c, _)| c)
                    .unwrap_or(0)
            })
            .collect();
        let mut best_value = self.problem.properly_colored(&best_assignment);
        for _ in 0..self.config.rounding_samples {
            let candidate: Vec<usize> =
                marginals.iter().map(|probs| sample_from(probs, &mut rng)).collect();
            let value = self.problem.properly_colored(&candidate);
            if value > best_value {
                best_value = value;
                best_assignment = candidate;
            }
        }
        Ok(QracResult {
            assignment: best_assignment,
            value: best_value,
            qudits_used: self.num_qudits,
            relaxed_value: best_relaxed,
        })
    }

    /// Per-node colour marginals induced by the product state.
    fn marginals(&self, params: &[Vec<(f64, f64)>]) -> Result<Vec<Vec<f64>>> {
        let d = self.problem.colors;
        let fourier = gates::fourier(d);
        let states: Vec<Vec<Complex64>> = params.iter().map(|p| normalise(p)).collect();
        let mut out = Vec::with_capacity(self.node_slot.len());
        for &(qudit, slot) in &self.node_slot {
            let state = &states[qudit];
            let probs: Vec<f64> = match slot {
                0 => state.iter().map(|a| a.norm_sqr()).collect(),
                _ => {
                    // Fourier-basis readout: probabilities of F†|ψ⟩.
                    let rotated = fourier.dagger().matvec(state).map_err(QoptError::Core)?;
                    rotated.iter().map(|a| a.norm_sqr()).collect()
                }
            };
            out.push(probs);
        }
        Ok(out)
    }

    /// Relaxed objective: expected number of properly coloured edges under
    /// independent per-node marginals.
    fn relaxed_objective(&self, params: &[Vec<(f64, f64)>]) -> Result<f64> {
        let marginals = self.marginals(params)?;
        let mut total = 0.0;
        for &(a, b) in self.problem.graph.edges() {
            let pa = &marginals[a];
            let pb = &marginals[b];
            let same: f64 = pa.iter().zip(pb.iter()).map(|(x, y)| x * y).sum();
            total += 1.0 - same;
        }
        Ok(total)
    }
}

fn normalise(params: &[(f64, f64)]) -> Vec<Complex64> {
    let raw: Vec<Complex64> = params.iter().map(|&(re, im)| c64(re, im)).collect();
    let norm: f64 = raw.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
    if norm < 1e-12 {
        let d = params.len();
        return (0..d).map(|k| if k == 0 { Complex64::ONE } else { Complex64::ZERO }).collect();
    }
    raw.into_iter().map(|z| z / norm).collect()
}

fn sample_from<R: Rng + ?Sized>(probs: &[f64], rng: &mut R) -> usize {
    let total: f64 = probs.iter().sum();
    let mut r = rng.gen::<f64>() * total;
    for (i, &p) in probs.iter().enumerate() {
        if r < p {
            return i;
        }
        r -= p;
    }
    probs.len() - 1
}

/// Convenience: the ideal Fourier-readout matrix used by slot-1 decoding,
/// exposed for tests and documentation.
pub fn slot_basis(d: usize, slot: usize) -> CMatrix {
    match slot {
        0 => CMatrix::identity(d),
        _ => gates::fourier(d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::random_assignment;
    use crate::graph::Graph;

    #[test]
    fn packing_halves_the_qudit_count() {
        let (g, _) = Graph::planted_colorable(10, 3, 0.5, 1).unwrap();
        let problem = ColoringProblem::new(g, 3).unwrap();
        let solver = QracSolver::new(problem.clone(), QracConfig::default()).unwrap();
        assert_eq!(solver.qudits_used(), 5);
        let single =
            QracSolver::new(problem, QracConfig { nodes_per_qudit: 1, ..Default::default() })
                .unwrap();
        assert_eq!(single.qudits_used(), 10);
        assert!(QracSolver::new(
            ColoringProblem::new(Graph::cycle(4).unwrap(), 3).unwrap(),
            QracConfig { nodes_per_qudit: 3, ..Default::default() }
        )
        .is_err());
    }

    #[test]
    fn qrac_beats_random_assignment_on_planted_instances() {
        let (g, _) = Graph::planted_colorable(12, 3, 0.5, 21).unwrap();
        let problem = ColoringProblem::new(g, 3).unwrap();
        let solver = QracSolver::new(
            problem.clone(),
            QracConfig { optimizer_sweeps: 15, ..Default::default() },
        )
        .unwrap();
        let result = solver.solve().unwrap();
        let random_value = problem.properly_colored(&random_assignment(&problem, 3));
        assert!(
            result.value >= random_value,
            "QRAC {} should be at least random {}",
            result.value,
            random_value
        );
        assert_eq!(result.assignment.len(), 12);
        assert!(result.assignment.iter().all(|&c| c < 3));
        assert!(result.relaxed_value <= problem.graph.num_edges() as f64 + 1e-9);
    }

    #[test]
    fn relaxed_objective_is_bounded_by_edge_count() {
        let problem = ColoringProblem::new(Graph::complete(4).unwrap(), 3).unwrap();
        let solver = QracSolver::new(problem.clone(), QracConfig::default()).unwrap();
        let result = solver.solve().unwrap();
        assert!(result.relaxed_value <= problem.graph.num_edges() as f64 + 1e-9);
        assert!(result.relaxed_value >= 0.0);
    }

    #[test]
    fn slot_bases_are_mutually_unbiased() {
        let d = 3;
        let b0 = slot_basis(d, 0);
        let b1 = slot_basis(d, 1);
        let overlap = b0.dagger().matmul(&b1).unwrap();
        for i in 0..d {
            for j in 0..d {
                assert!((overlap[(i, j)].abs() - 1.0 / (d as f64).sqrt()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (g, _) = Graph::planted_colorable(8, 3, 0.6, 2).unwrap();
        let problem = ColoringProblem::new(g, 3).unwrap();
        let cfg = QracConfig { optimizer_sweeps: 8, ..Default::default() };
        let a = QracSolver::new(problem.clone(), cfg).unwrap().solve().unwrap();
        let b = QracSolver::new(problem, cfg).unwrap().solve().unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.value, b.value);
    }
}
