//! # qopt — combinatorial optimisation on cavity qudits
//!
//! Application B of the paper: graph coloring with qudit one-hot QAOA,
//! Noise-Directed Adaptive Remapping (NDAR) that exploits photon loss as a
//! search primitive, and qudit quantum random access codes (QRACs) for
//! instances larger than the mode count.
//!
//! * [`graph`] — graphs, generators and the max-k-coloring objective.
//! * [`qaoa`] — qudit one-hot QAOA (phase separator + colour mixers).
//! * [`ndar`] — the dissipation-driven adaptive remapping loop.
//! * [`qrac`] — the packed-node quantum relaxation and rounding pipeline.
//! * [`baselines`] — greedy, simulated-annealing and random baselines.
//! * [`optimizer`] — derivative-free outer-loop optimisers.
//!
//! ## Example
//!
//! ```
//! use qopt::graph::{ColoringProblem, Graph};
//! use qopt::qaoa::{QaoaConfig, QuditQaoa};
//! use qudit_circuit::noise::NoiseModel;
//!
//! let problem = ColoringProblem::new(Graph::cycle(5).unwrap(), 3).unwrap();
//! let qaoa = QuditQaoa::new(problem, QaoaConfig { layers: 1, ..Default::default() });
//! let value = qaoa.expected_value(&[0.0], &[0.0], &NoiseModel::noiseless()).unwrap();
//! // The uniform superposition properly colours 2/3 of the 5 edges on average.
//! assert!((value - 5.0 * 2.0 / 3.0).abs() < 1e-9);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod error;
pub mod graph;
pub mod ndar;
pub mod optimizer;
pub mod qaoa;
pub mod qrac;

pub use error::{QoptError, Result};
pub use graph::{ColoringProblem, Graph};
pub use ndar::{run_ndar, NdarConfig, NdarResult};
pub use qaoa::{MixerKind, QaoaConfig, QaoaOutcome, QuditQaoa};
pub use qrac::{QracConfig, QracResult, QracSolver};
