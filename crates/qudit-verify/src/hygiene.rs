//! Repo-hygiene auditing (the `repo_lint` binary).
//!
//! A zero-dependency source auditor enforcing the workspace's source-level
//! invariants. It lexes Rust the honest way — strings, char literals, raw
//! strings and nested block comments are recognised, so a `"unsafe"` string
//! literal or a doc-comment mention of `.unwrap()` never trips a rule:
//!
//! * **`SAFETY:` comments** — every `unsafe` keyword is immediately preceded
//!   by a comment containing `SAFETY:` explaining why the invariants hold.
//! * **Crate-level gates** — every crate root carries
//!   `#![forbid(unsafe_code)]` (or `#![deny(unsafe_code)]` for the two
//!   crates with audited blocks).
//! * **Hot-path panic ratchet** — `.unwrap()` / `.expect(` in the kernel
//!   hot paths must not grow beyond the recorded per-file budgets.
//! * **Shims-only dependencies** — every dependency in every manifest
//!   resolves by `path` or `workspace`, never the registry.
//! * **Benchmark schema** — each `BENCH_<n>.json` parses and carries the
//!   fields the regression tooling reads.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// The hygiene rule a violation falls under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum HygieneRule {
    /// An `unsafe` keyword without an adjacent `// SAFETY:` comment.
    SafetyComment,
    /// A crate root without an `unsafe_code` lint gate.
    UnsafeGate,
    /// `.unwrap()` / `.expect(` growth in a hot-path module.
    PanicRatchet,
    /// A manifest dependency that would resolve via the registry.
    RegistryDependency,
    /// A malformed benchmark artefact.
    BenchSchema,
}

impl fmt::Display for HygieneRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HygieneRule::SafetyComment => "safety-comment",
            HygieneRule::UnsafeGate => "unsafe-gate",
            HygieneRule::PanicRatchet => "panic-ratchet",
            HygieneRule::RegistryDependency => "registry-dependency",
            HygieneRule::BenchSchema => "bench-schema",
        })
    }
}

/// One audit finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The rule that fired.
    pub rule: HygieneRule,
    /// Repo-relative path of the offending file.
    pub path: PathBuf,
    /// 1-indexed line, when the finding anchors to one.
    pub line: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(l) => write!(f, "[{}] {}:{}: {}", self.rule, self.path.display(), l, self.message),
            None => write!(f, "[{}] {}: {}", self.rule, self.path.display(), self.message),
        }
    }
}

/// Hot-path modules and the number of `.unwrap()` / `.expect(` calls each is
/// allowed outside its test module. The budgets are a ratchet: they record
/// the audited state of the tree, may go down freely, and going up means a
/// reviewed change to this table.
const PANIC_BUDGETS: &[(&str, usize)] = &[
    ("crates/qudit-core/src/apply.rs", 2),
    ("crates/qudit-core/src/superop.rs", 0),
    ("crates/qudit-core/src/par.rs", 6),
    ("crates/qudit-circuit/src/sim/kernels.rs", 8),
    ("crates/qudit-circuit/src/sim/statevector.rs", 1),
    ("crates/qudit-circuit/src/sim/density.rs", 0),
    ("crates/qudit-circuit/src/sim/fusion.rs", 4),
    ("crates/qudit-circuit/src/sim/trajectory.rs", 1),
    // Batched ensemble execution: the panel kernels and the chunked
    // trajectory/binding executors are hot paths like their serial twins.
    ("crates/qudit-core/src/ensemble.rs", 0),
    ("crates/qudit-circuit/src/sim/ensemble.rs", 2),
];

/// How many lines above an `unsafe` keyword a `SAFETY:` comment may sit.
const SAFETY_WINDOW: usize = 6;

/// Audits the workspace rooted at `root` and returns every violation found
/// (empty = clean tree).
///
/// # Errors
/// Returns an error only for I/O failures while walking the tree; findings
/// are data, not errors.
pub fn audit_repo(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut rust_files = Vec::new();
    let mut manifests = Vec::new();
    walk(root, root, &mut rust_files, &mut manifests)?;
    rust_files.sort();
    manifests.sort();

    let mut out = Vec::new();
    for rel in &rust_files {
        let src = fs::read_to_string(root.join(rel))?;
        let masked = mask_source(&src);
        check_safety_comments(rel, &masked, &mut out);
        if rel.ends_with("src/lib.rs") {
            check_unsafe_gate(rel, &masked, &mut out);
        }
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if let Some(&(_, budget)) = PANIC_BUDGETS.iter().find(|(p, _)| *p == rel_str) {
            check_panic_ratchet(rel, &masked, budget, &mut out);
        }
    }
    for rel in &manifests {
        let src = fs::read_to_string(root.join(rel))?;
        check_manifest(rel, &src, &mut out);
    }
    check_bench_files(root, &mut out)?;
    Ok(out)
}

fn walk(
    root: &Path,
    dir: &Path,
    rust_files: &mut Vec<PathBuf>,
    manifests: &mut Vec<PathBuf>,
) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == ".git" || name == "target" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, rust_files, manifests)?;
        } else if name.ends_with(".rs") {
            rust_files.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        } else if name == "Cargo.toml" {
            manifests.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Rust lexing: mask strings and comments, remember where comments were.
// ---------------------------------------------------------------------------

/// A source file with string/char-literal and comment *contents* blanked out
/// (newlines preserved, so byte offsets still map to the same lines), plus
/// the comment text per line for the `SAFETY:` rule.
struct Masked {
    /// The code with literals and comments replaced by spaces.
    code: String,
    /// `comment_lines[i]` = concatenated comment text on 1-indexed line `i+1`.
    comment_lines: Vec<String>,
}

#[allow(clippy::too_many_lines)]
fn mask_source(src: &str) -> Masked {
    let bytes = src.as_bytes();
    let mut code = String::with_capacity(src.len());
    let mut comment_lines: Vec<String> = vec![String::new(); src.lines().count() + 1];
    let mut line = 0usize;
    let mut i = 0usize;

    let push_comment = |comment_lines: &mut Vec<String>, line: usize, ch: char| {
        if let Some(buf) = comment_lines.get_mut(line) {
            buf.push(ch);
        }
    };
    // Emits a masked character: newlines survive, everything else blanks.
    macro_rules! blank {
        ($ch:expr) => {
            if $ch == '\n' {
                code.push('\n');
                line += 1;
            } else {
                code.push(' ');
            }
        };
    }

    while i < bytes.len() {
        let ch = bytes[i] as char;
        // Line comment.
        if ch == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                push_comment(&mut comment_lines, line, bytes[i] as char);
                code.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if ch == '/' && bytes.get(i + 1) == Some(&b'*') {
            let mut depth = 0usize;
            while i < bytes.len() {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    push_comment(&mut comment_lines, line, '/');
                    push_comment(&mut comment_lines, line, '*');
                    code.push_str("  ");
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    code.push_str("  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    let c = bytes[i] as char;
                    push_comment(&mut comment_lines, line, c);
                    blank!(c);
                    i += 1;
                }
            }
            continue;
        }
        // Raw (and raw-byte) string literals: r"...", r#"..."#, br"...".
        let prev_is_ident = i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
        if !prev_is_ident && (ch == 'r' || (ch == 'b' && bytes.get(i + 1) == Some(&b'r'))) {
            let after_r = if ch == 'b' { i + 2 } else { i + 1 };
            let mut hashes = 0usize;
            let mut j = after_r;
            while j < bytes.len() && bytes[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'"' {
                // Emit the prefix verbatim (it is code, not contents).
                for _ in i..=j {
                    code.push(' ');
                }
                i = j + 1;
                let terminator: String =
                    std::iter::once('"').chain(std::iter::repeat_n('#', hashes)).collect();
                while i < bytes.len() && !bytes[i..].starts_with(terminator.as_bytes()) {
                    blank!(bytes[i] as char);
                    i += 1;
                }
                for _ in 0..terminator.len().min(bytes.len() - i) {
                    code.push(' ');
                    i += 1;
                }
                continue;
            }
        }
        // Ordinary string literal.
        if ch == '"' {
            code.push(' ');
            i += 1;
            while i < bytes.len() {
                let c = bytes[i] as char;
                if c == '\\' {
                    code.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '"' {
                    code.push(' ');
                    i += 1;
                    break;
                }
                blank!(c);
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime: 'x' or '\n' is a literal, 'a in
        // `&'a str` is not.
        if ch == '\'' {
            let is_char = match bytes.get(i + 1) {
                Some(b'\\') => true,
                Some(_) => bytes.get(i + 2) == Some(&b'\''),
                None => false,
            };
            if is_char {
                code.push(' ');
                i += 1;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c == '\\' {
                        code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    code.push(' ');
                    i += 1;
                    if c == '\'' {
                        break;
                    }
                }
                continue;
            }
        }
        if ch == '\n' {
            code.push('\n');
            line += 1;
        } else {
            code.push(ch);
        }
        i += 1;
    }
    Masked { code, comment_lines }
}

/// 0-indexed line of byte offset `pos` in `text`.
fn line_of(text: &str, pos: usize) -> usize {
    text.as_bytes()[..pos].iter().filter(|&&b| b == b'\n').count()
}

/// Finds word-boundary occurrences of `word` in already-masked code.
fn find_tokens(code: &str, word: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(at) = code[from..].find(word) {
        let pos = from + at;
        let before_ok =
            pos == 0 || !(bytes[pos - 1].is_ascii_alphanumeric() || bytes[pos - 1] == b'_');
        let end = pos + word.len();
        let after_ok =
            end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if before_ok && after_ok {
            out.push(pos);
        }
        from = pos + word.len();
    }
    out
}

fn check_safety_comments(path: &Path, masked: &Masked, out: &mut Vec<Violation>) {
    for pos in find_tokens(&masked.code, "unsafe") {
        let line = line_of(&masked.code, pos);
        // Walk upward from the `unsafe` token: comment lines extend the
        // search indefinitely (block-style SAFETY comments can be long);
        // only intervening *code* lines spend the window budget.
        let mut documented = false;
        let mut budget = SAFETY_WINDOW;
        let mut l = line + 1;
        while l > 0 {
            l -= 1;
            match masked.comment_lines.get(l) {
                Some(c) if c.contains("SAFETY:") => {
                    documented = true;
                    break;
                }
                Some(c) if !c.is_empty() => {}
                _ => {
                    if budget == 0 {
                        break;
                    }
                    budget -= 1;
                }
            }
        }
        if !documented {
            out.push(Violation {
                rule: HygieneRule::SafetyComment,
                path: path.to_path_buf(),
                line: Some(line + 1),
                message: format!(
                    "`unsafe` without a `// SAFETY:` comment within the preceding \
                     {SAFETY_WINDOW} lines"
                ),
            });
        }
    }
}

fn check_unsafe_gate(path: &Path, masked: &Masked, out: &mut Vec<Violation>) {
    let gated = ["#![forbid(unsafe_code)]", "#![deny(unsafe_code)]"]
        .iter()
        .any(|g| masked.code.contains(g));
    if !gated {
        out.push(Violation {
            rule: HygieneRule::UnsafeGate,
            path: path.to_path_buf(),
            line: None,
            message: "crate root carries neither #![forbid(unsafe_code)] nor \
                      #![deny(unsafe_code)]"
                .to_string(),
        });
    }
}

fn check_panic_ratchet(path: &Path, masked: &Masked, budget: usize, out: &mut Vec<Violation>) {
    // The ratchet covers shipping code only; unit tests below the
    // `#[cfg(test)]` marker unwrap freely.
    let cut = masked.code.find("#[cfg(test)]").unwrap_or(masked.code.len());
    let code = &masked.code[..cut];
    let count = code.matches(".unwrap()").count() + code.matches(".expect(").count();
    if count > budget {
        out.push(Violation {
            rule: HygieneRule::PanicRatchet,
            path: path.to_path_buf(),
            line: None,
            message: format!(
                "{count} `.unwrap()`/`.expect(` calls outside tests exceed the recorded \
                 budget of {budget}; handle the error or lower-bound the budget in a \
                 reviewed change"
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Manifest audit: every dependency must resolve by path or workspace.
// ---------------------------------------------------------------------------

fn check_manifest(path: &Path, src: &str, out: &mut Vec<Violation>) {
    let mut in_dep_section = false;
    let mut dep_subtable: Option<(usize, bool)> = None; // header line, saw path/workspace
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            // Close a pending `[dependencies.name]` subtable.
            if let Some((hline, ok)) = dep_subtable.take() {
                if !ok {
                    push_registry(path, hline, out);
                }
            }
            let section = line.trim_matches(['[', ']']);
            let is_dep_table = section.ends_with("dependencies");
            let is_dep_entry = section.contains("dependencies.");
            in_dep_section = is_dep_table;
            if is_dep_entry {
                dep_subtable = Some((idx + 1, false));
            }
            continue;
        }
        if let Some((_, ok)) = &mut dep_subtable {
            if line.starts_with("path") || line.starts_with("workspace") {
                *ok = true;
            }
            continue;
        }
        if in_dep_section && line.contains('=') {
            let local = line.contains("path") || line.contains("workspace");
            if !local {
                push_registry(path, idx + 1, out);
            }
        }
    }
    if let Some((hline, ok)) = dep_subtable {
        if !ok {
            push_registry(path, hline, out);
        }
    }
}

fn push_registry(path: &Path, line: usize, out: &mut Vec<Violation>) {
    out.push(Violation {
        rule: HygieneRule::RegistryDependency,
        path: path.to_path_buf(),
        line: Some(line),
        message: "dependency does not resolve by `path` or `workspace`; the build \
                  environment has no registry access (see shims/README.md)"
            .to_string(),
    });
}

// ---------------------------------------------------------------------------
// Benchmark artefact schema.
// ---------------------------------------------------------------------------

fn check_bench_files(root: &Path, out: &mut Vec<Violation>) -> std::io::Result<()> {
    for entry in fs::read_dir(root)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        let Some(index) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        let rel = PathBuf::from(&name);
        let src = fs::read_to_string(entry.path())?;
        match json::parse(&src) {
            Err(e) => out.push(Violation {
                rule: HygieneRule::BenchSchema,
                path: rel,
                line: None,
                message: format!("not valid JSON: {e}"),
            }),
            Ok(doc) => validate_bench(&rel, index, &doc, out),
        }
    }
    Ok(())
}

fn validate_bench(path: &Path, index: u64, doc: &json::Value, out: &mut Vec<Violation>) {
    let mut bad = |message: String| {
        out.push(Violation {
            rule: HygieneRule::BenchSchema,
            path: path.to_path_buf(),
            line: None,
            message,
        });
    };
    let json::Value::Object(top) = doc else {
        bad("top level is not an object".to_string());
        return;
    };
    match top.iter().find(|(k, _)| k == "bench").map(|(_, v)| v) {
        Some(json::Value::Number(n)) if *n == index as f64 => {}
        Some(_) => bad(format!("\"bench\" does not equal the filename index {index}")),
        None => bad("missing \"bench\" field".to_string()),
    }
    match top.iter().find(|(k, _)| k == "results").map(|(_, v)| v) {
        Some(json::Value::Array(rows)) => {
            if rows.is_empty() {
                bad("\"results\" is empty".to_string());
            }
            for (i, row) in rows.iter().enumerate() {
                let json::Value::Object(fields) = row else {
                    bad(format!("results[{i}] is not an object"));
                    continue;
                };
                let has_name =
                    fields.iter().any(|(k, v)| k == "name" && matches!(v, json::Value::String(_)));
                if !has_name {
                    bad(format!("results[{i}] lacks a string \"name\""));
                }
                let has_number = fields.iter().any(|(_, v)| matches!(v, json::Value::Number(_)));
                if !has_number {
                    bad(format!("results[{i}] records no numeric measurement"));
                }
            }
        }
        Some(_) => bad("\"results\" is not an array".to_string()),
        None => bad("missing \"results\" array".to_string()),
    }
}

/// A minimal JSON reader — just enough to validate benchmark artefacts
/// without a serde dependency (object keys keep file order).
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number (f64 precision suffices for validation).
        Number(f64),
        /// A string (escapes decoded).
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, in file order.
        Object(Vec<(String, Value)>),
    }

    /// Parses a complete JSON document.
    pub fn parse(src: &str) -> Result<Value, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == ch {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {pos}", ch as char))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".to_string()),
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    skip_ws(b, pos);
                    let key = parse_string(b, pos)?;
                    expect(b, pos, b':')?;
                    let value = parse_value(b, pos)?;
                    fields.push((key, value));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                    }
                }
            }
            Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
            Some(b't') => parse_literal(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_literal(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_literal(b, pos, "null", Value::Null),
            Some(_) => parse_number(b, pos),
        }
    }

    fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {pos}"))
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}"));
        }
        *pos += 1;
        let mut out = String::new();
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            *pos += 4;
                        }
                        Some(&c) => out.push(c as char),
                        None => return Err("truncated escape".to_string()),
                    }
                    *pos += 1;
                }
                c => {
                    out.push(c as char);
                    *pos += 1;
                }
            }
        }
        Err("unterminated string".to_string())
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_masks_strings_comments_and_raw_strings() {
        let src = concat!(
            "// this mentions .unwrap() and unsafe in a comment\n",
            "let a = \"unsafe in a string\";\n",
            "let b = r#\"raw .unwrap() \"# ;\n",
            "/* block\n * unsafe inside\n */\n",
            "let c = 'u';\n",
        );
        let masked = mask_source(src);
        assert!(find_tokens(&masked.code, "unsafe").is_empty(), "{}", masked.code);
        assert_eq!(masked.code.matches(".unwrap()").count(), 0);
        // Comment text is preserved per line for the SAFETY rule.
        assert!(masked.comment_lines[0].contains("unsafe"));
        // Newlines survive masking, so line mapping is stable.
        assert_eq!(masked.code.lines().count(), src.lines().count());
    }

    #[test]
    fn lexer_survives_multibyte_characters() {
        // '†' is multibyte; the lexer must stay on byte boundaries without
        // panicking and keep line accounting intact.
        let src = "// K†K accumulation\nlet d = \"B† = B\"; // dagger †\nunsafe {}\n";
        let masked = mask_source(src);
        let toks = find_tokens(&masked.code, "unsafe");
        assert_eq!(toks.len(), 1);
        assert_eq!(line_of(&masked.code, toks[0]), 2);
    }

    #[test]
    fn safety_walk_accepts_long_comment_blocks_and_rejects_distant_ones() {
        // A block-style SAFETY comment with one code line between it and the
        // `unsafe` token is accepted: comment lines never spend the budget.
        let documented = concat!(
            "// SAFETY: the transmute below is sound because\n",
            "// the payload is repr(C) and both lifetimes are 'static,\n",
            "// as checked by the constructor.\n",
            "let job = make_job();\n",
            "unsafe { run(job) }\n",
        );
        let mut out = Vec::new();
        check_safety_comments(Path::new("x.rs"), &mask_source(documented), &mut out);
        assert!(out.is_empty(), "{out:?}");

        // More than SAFETY_WINDOW code lines of separation exhausts it.
        let mut far = String::from("// SAFETY: too far away\n");
        for i in 0..=SAFETY_WINDOW {
            far.push_str(&format!("let x{i} = {i};\n"));
        }
        far.push_str("unsafe {}\n");
        let mut out = Vec::new();
        check_safety_comments(Path::new("x.rs"), &mask_source(&far), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, HygieneRule::SafetyComment);
    }

    #[test]
    fn panic_ratchet_ignores_the_test_module() {
        let src = concat!(
            "fn hot() { x().unwrap(); y().expect(\"y\"); }\n",
            "#[cfg(test)]\n",
            "mod tests { fn t() { z().unwrap(); } }\n",
        );
        let masked = mask_source(src);
        let mut out = Vec::new();
        check_panic_ratchet(Path::new("x.rs"), &masked, 2, &mut out);
        assert!(out.is_empty(), "{out:?}");
        check_panic_ratchet(Path::new("x.rs"), &masked, 1, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, HygieneRule::PanicRatchet);
    }

    #[test]
    fn manifest_audit_flags_registry_dependencies_only() {
        let clean = concat!(
            "[dependencies]\n",
            "qudit-core = { workspace = true }\n",
            "rand = { path = \"../../shims/rand\" }\n",
            "[dependencies.qudit-circuit]\n",
            "workspace = true\n",
            "[dev-dependencies]\n",
            "criterion = { workspace = true }\n",
        );
        let mut out = Vec::new();
        check_manifest(Path::new("Cargo.toml"), clean, &mut out);
        assert!(out.is_empty(), "{out:?}");

        let dirty = "[dependencies]\nserde = \"1.0\"\n[dependencies.rayon]\nversion = \"1\"\n";
        let mut out = Vec::new();
        check_manifest(Path::new("Cargo.toml"), dirty, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|v| v.rule == HygieneRule::RegistryDependency));
    }

    #[test]
    fn bench_schema_validation_catches_malformed_artefacts() {
        let good = r#"{"bench": 8, "results": [{"name": "apply", "ns": 12.5}]}"#;
        let doc = json::parse(good).unwrap();
        let mut out = Vec::new();
        validate_bench(Path::new("BENCH_8.json"), 8, &doc, &mut out);
        assert!(out.is_empty(), "{out:?}");

        let wrong_index =
            json::parse(r#"{"bench": 7, "results": [{"name": "a", "ns": 1}]}"#).unwrap();
        let mut out = Vec::new();
        validate_bench(Path::new("BENCH_8.json"), 8, &wrong_index, &mut out);
        assert_eq!(out.len(), 1);

        let no_number = json::parse(r#"{"bench": 8, "results": [{"name": "a"}]}"#).unwrap();
        let mut out = Vec::new();
        validate_bench(Path::new("BENCH_8.json"), 8, &no_number, &mut out);
        assert_eq!(out.len(), 1);
        assert!(json::parse("{\"bench\": }").is_err());
    }

    #[test]
    fn audit_runs_clean_on_this_workspace() {
        // The auditor's own acceptance test: the committed tree is clean.
        // (Walks upward to the workspace root so `cargo test -p` works from
        // the crate directory too.)
        let mut root = std::env::current_dir().unwrap();
        while !root.join("Cargo.toml").exists() || !root.join("crates").is_dir() {
            assert!(root.pop(), "workspace root not found");
        }
        let violations = audit_repo(&root).unwrap();
        assert!(violations.is_empty(), "{violations:#?}");
    }
}
