//! Static analysis for the qudit-cavity workspace.
//!
//! Three independent layers, none of which execute a circuit:
//!
//! * [`verify`] — **translation validation**: prove a compiled statevector or
//!   density plan faithful to its source [`qudit_circuit::Circuit`] by
//!   re-deriving every step through an independent code path. Run it after
//!   compilation in debug builds, in property suites, and on plan-cache
//!   inserts.
//! * [`lint`] — a **circuit linter**: structural diagnostics over the IR
//!   (unbound parameters, dead wires, gates after measurement, near-tolerance
//!   channels, fusion hotspots) for authors of circuits, before they compile
//!   or run anything.
//! * [`hygiene`] — a **repo auditor** behind the `repo_lint` binary: a
//!   zero-dependency lexer that enforces the workspace's source-level
//!   invariants (`SAFETY:` comments, `unsafe_code` lint gates, hot-path
//!   panic bans, shims-only dependencies, benchmark schema).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hygiene;
pub mod lint;
pub mod verify;

pub use lint::{lint_circuit, Diagnostic, LintCode, Severity};
pub use verify::{
    expected_guard_checks, verify_density, verify_density_bound, verify_ensemble_health,
    verify_run_health, verify_statevector, verify_statevector_bound, Check, VerifyConfig,
    VerifyError, VerifyReport,
};
