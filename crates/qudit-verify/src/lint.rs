//! A structural linter over the circuit IR.
//!
//! [`lint_circuit`] walks a [`Circuit`] *before* compilation and reports
//! author-facing diagnostics: suspicious parameterisation, wires that do
//! nothing, operations on collapsed state, channels that sit uncomfortably
//! close to their CPTP tolerance, and shapes the fusion pass can never help
//! with. Lints are heuristics about intent — a lint-clean circuit is not
//! thereby *verified* (that is [`crate::verify`]'s job), and a flagged
//! circuit still compiles and runs.

use std::fmt;

use qudit_circuit::sim::FusionConfig;
use qudit_circuit::{Circuit, Instruction};
use qudit_core::matrix::CMatrix;

/// Stable identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LintCode {
    /// A parameter slot below `num_params` is referenced by no gate: a
    /// binding must supply a value nothing consumes (usually an off-by-one
    /// in parameter indices).
    UnboundParam,
    /// A wire is touched by no instruction (barriers excluded): the register
    /// is larger than the circuit.
    DeadWire,
    /// A unitary or channel acts on a measured wire that was never reset:
    /// it operates on collapsed state, which is rarely intended.
    GateAfterMeasure,
    /// A wire is re-measured with no intervening operation: the second
    /// record always duplicates the first.
    RedundantMeasure,
    /// A channel's CPTP defect is within an order of magnitude of its
    /// tolerance: numerical drift (or a sweep's summed allowance) can push
    /// it over at run time.
    CptpDefectNearTol,
    /// A channel carries an identically-zero Kraus operator: a branch that
    /// can never fire, usually a degenerate strength parameter.
    ZeroKraus,
    /// An instruction's own footprint already exceeds the fusion budget, so
    /// no surrounding run can absorb it: a permanent fusion barrier.
    FusionHotspot,
}

impl LintCode {
    /// The code's stable kebab-case name (used in reports and docs).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::UnboundParam => "unbound-param",
            LintCode::DeadWire => "dead-wire",
            LintCode::GateAfterMeasure => "gate-after-measure",
            LintCode::RedundantMeasure => "redundant-measure",
            LintCode::CptpDefectNearTol => "cptp-defect-near-tol",
            LintCode::ZeroKraus => "zero-kraus",
            LintCode::FusionHotspot => "fusion-hotspot",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How seriously to take a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth knowing; often deliberate.
    Info,
    /// Almost certainly a mistake, but the circuit still runs.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
        })
    }
}

/// One linter finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule that fired.
    pub code: LintCode,
    /// How seriously to take it.
    pub severity: Severity,
    /// The instruction the finding anchors to (`None` for circuit-level
    /// findings such as dead wires).
    pub instruction: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.instruction {
            Some(i) => {
                write!(f, "{}[{}] instruction {}: {}", self.severity, self.code, i, self.message)
            }
            None => write!(f, "{}[{}] {}", self.severity, self.code, self.message),
        }
    }
}

/// Linter thresholds.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// The fusion budget used by the [`LintCode::FusionHotspot`] rule.
    pub fusion: FusionConfig,
    /// [`LintCode::CptpDefectNearTol`] fires when `defect * factor >=
    /// tolerance`.
    pub near_tol_factor: f64,
}

impl Default for LintConfig {
    fn default() -> Self {
        Self { fusion: FusionConfig::default(), near_tol_factor: 10.0 }
    }
}

/// What has happened to a wire so far, for the collapse-tracking lints.
#[derive(Clone, Copy, PartialEq, Eq)]
enum WireState {
    /// Untouched since creation (or since a reset).
    Fresh,
    /// Acted on by a gate or channel.
    Live,
    /// Measured, not operated on since.
    Measured,
}

/// Lints `circuit` with default thresholds. See [`lint_circuit_with`].
#[must_use]
pub fn lint_circuit(circuit: &Circuit) -> Vec<Diagnostic> {
    lint_circuit_with(circuit, &LintConfig::default())
}

/// Lints `circuit`, returning every finding in instruction order (circuit-
/// level findings last). An empty vector means no rule fired.
#[must_use]
pub fn lint_circuit_with(circuit: &Circuit, config: &LintConfig) -> Vec<Diagnostic> {
    let dims = circuit.dims();
    let mut out = Vec::new();
    let mut referenced_params = vec![false; circuit.num_params()];
    let mut touched = vec![false; dims.len()];
    let mut state = vec![WireState::Fresh; dims.len()];

    for (i, inst) in circuit.instructions().iter().enumerate() {
        match inst {
            Instruction::Unitary { gate, targets } => {
                if let Some(p) = gate.free_param() {
                    if p < referenced_params.len() {
                        referenced_params[p] = true;
                    }
                }
                flag_collapsed(&mut out, &mut state, targets, i, "gate");
                for &t in targets {
                    touched[t] = true;
                    state[t] = WireState::Live;
                }
                let sub: usize = targets.iter().map(|&t| dims[t]).product();
                if config.fusion.enabled
                    && (targets.len() > config.fusion.max_qudits || sub > config.fusion.max_dim)
                {
                    out.push(Diagnostic {
                        code: LintCode::FusionHotspot,
                        severity: Severity::Info,
                        instruction: Some(i),
                        message: format!(
                            "gate '{}' spans {} qudits (dim {sub}), beyond the fusion budget \
                             ({} qudits / dim {}); adjacent gates cannot fuse across it",
                            gate.name(),
                            targets.len(),
                            config.fusion.max_qudits,
                            config.fusion.max_dim
                        ),
                    });
                }
            }
            Instruction::Channel { channel, targets } => {
                flag_collapsed(&mut out, &mut state, targets, i, "channel");
                for &t in targets {
                    touched[t] = true;
                    state[t] = WireState::Live;
                }
                lint_channel(&mut out, channel, i, config);
            }
            Instruction::Measure { targets } => {
                for &t in targets {
                    touched[t] = true;
                    if state[t] == WireState::Measured {
                        out.push(Diagnostic {
                            code: LintCode::RedundantMeasure,
                            severity: Severity::Warning,
                            instruction: Some(i),
                            message: format!(
                                "wire {t} is re-measured with no intervening operation; the \
                                 record duplicates the previous measurement"
                            ),
                        });
                    }
                    state[t] = WireState::Measured;
                }
            }
            Instruction::Reset { target } => {
                touched[*target] = true;
                state[*target] = WireState::Fresh;
            }
            Instruction::Barrier => {}
        }
    }

    for (p, seen) in referenced_params.iter().enumerate() {
        if !seen {
            out.push(Diagnostic {
                code: LintCode::UnboundParam,
                severity: Severity::Warning,
                instruction: None,
                message: format!(
                    "parameter slot {p} is below the circuit's parameter count ({}) but no gate \
                     references it; bindings must supply a value nothing consumes",
                    circuit.num_params()
                ),
            });
        }
    }
    for (w, seen) in touched.iter().enumerate() {
        if !seen {
            out.push(Diagnostic {
                code: LintCode::DeadWire,
                severity: Severity::Warning,
                instruction: None,
                message: format!("wire {w} (dimension {}) is touched by no instruction", dims[w]),
            });
        }
    }
    out
}

fn flag_collapsed(
    out: &mut Vec<Diagnostic>,
    state: &mut [WireState],
    targets: &[usize],
    index: usize,
    what: &str,
) {
    for &t in targets {
        if state[t] == WireState::Measured {
            out.push(Diagnostic {
                code: LintCode::GateAfterMeasure,
                severity: Severity::Warning,
                instruction: Some(index),
                message: format!(
                    "{what} acts on wire {t}, which was measured and never reset; it operates \
                     on collapsed state"
                ),
            });
        }
    }
}

fn lint_channel(
    out: &mut Vec<Diagnostic>,
    channel: &qudit_circuit::KrausChannel,
    index: usize,
    config: &LintConfig,
) {
    for (k, op) in channel.operators().iter().enumerate() {
        if op.max_abs() == 0.0 {
            out.push(Diagnostic {
                code: LintCode::ZeroKraus,
                severity: Severity::Warning,
                instruction: Some(index),
                message: format!(
                    "channel '{}' Kraus operator {k} is identically zero; the branch can \
                     never fire",
                    channel.name()
                ),
            });
        }
    }
    let defect = cptp_defect(channel.operators());
    if defect > 0.0 && defect * config.near_tol_factor >= channel.tolerance() {
        out.push(Diagnostic {
            code: LintCode::CptpDefectNearTol,
            severity: Severity::Warning,
            instruction: Some(index),
            message: format!(
                "channel '{}' CPTP defect {defect:.3e} is within {}× of its tolerance \
                 {:.3e}; numerical drift can push it over at run time",
                channel.name(),
                config.near_tol_factor,
                channel.tolerance()
            ),
        });
    }
}

/// `max |Σ K†K − I|`, the channel's distance from trace preservation.
fn cptp_defect(ops: &[CMatrix]) -> f64 {
    let d = ops[0].cols();
    let mut sum = CMatrix::zeros(d, d);
    for op in ops {
        let term = op.dagger().matmul(op).expect("K†K is square");
        for r in 0..d {
            for c in 0..d {
                sum.set(r, c, sum.get(r, c) + term.get(r, c));
            }
        }
    }
    let mut defect = 0.0f64;
    for r in 0..d {
        for c in 0..d {
            let expect = if r == c { 1.0 } else { 0.0 };
            defect = defect.max((sum.get(r, c) - qudit_core::complex::c64(expect, 0.0)).abs());
        }
    }
    defect
}
