//! Translation validation of compiled execution plans.
//!
//! [`verify_statevector`] and [`verify_density`] statically prove a compiled
//! plan faithful to its source [`Circuit`] **without executing it**. Every
//! re-derivation here goes through an independent code path from the
//! compiler's own: operators are embedded with [`qudit_core::radix::embed_operator`]
//! and composed with dense [`CMatrix::matmul`] (not the fusion pass's
//! structured embed/matmul), superoperators are rebuilt from raw Kronecker
//! products, and the cost/budget rules are restated from their documented
//! invariants rather than replayed through the greedy frontier. A bug shared
//! by compiler and checker would have to be introduced twice.
//!
//! What is proven, per plan:
//!
//! * **Instruction accounting** — every source instruction is realized
//!   exactly once (dropped barriers only when they are provably no-ops).
//! * **Ordering** — any two instructions with overlapping supports execute
//!   in program order; fusion and superoperator folding may only commute
//!   operations across *disjoint* supports.
//! * **Plan consistency** — every [`qudit_core::apply::ApplyPlan`] /
//!   [`qudit_core::superop::SuperPlan`] matches a freshly built plan for its
//!   step's targets, and every structure classification is sound for the
//!   matrix it describes.
//! * **Semantics** — each step's operator equals the product of its source
//!   instructions' operators, re-derived independently; each density sweep's
//!   superoperator equals the product of its constituents' superoperators.
//! * **Fusion budget** — a fused block never costs more than its members
//!   applied separately, and growth respects the configured budget.
//! * **Superoperator cost rule** — a fold's sweep cost never exceeds the sum
//!   of its constituents' standalone costs, within the dimension budget.
//! * **Binding invariance** — rebindable steps re-materialise correctly at
//!   sampled bindings, and `diagonal-at-every-binding` claims hold there.
//! * **Trace preservation** — each sweep's compile-time defect allowance
//!   equals the documented formula and its matrix sits within it.
//! * **Guard accounting** — [`verify_run_health`] checks the checkpoint
//!   count formula against a run's reported health.

use std::fmt;

use qudit_circuit::sim::introspect::{self, ChannelView, DensityRole, DensityStepView, StepView};
use qudit_circuit::sim::{CompiledCircuit, CompiledDensityCircuit, FusionConfig, SuperopConfig};
use qudit_circuit::{Circuit, Instruction, KrausChannel, NoiseModel};
use qudit_core::apply::{ApplyPlan, OpKind};
use qudit_core::complex::{c64, Complex64};
use qudit_core::guard::{GuardConfig, RunHealth};
use qudit_core::matrix::CMatrix;
use qudit_core::radix::{embed_operator, Radix};
use qudit_core::superop::SuperPlan;

/// The property a failed verification violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Check {
    /// Register dimensions or parameter count disagree.
    Shape,
    /// An instruction is missing, duplicated, or realized by the wrong kind
    /// of step.
    Accounting,
    /// Two operations with overlapping supports were reordered.
    Ordering,
    /// A precomputed stride plan or structure classification does not match
    /// its step.
    PlanConsistency,
    /// A rebindable/diagonal classification claim is wrong.
    Classification,
    /// A step's operator differs from the one its sources define.
    Semantics,
    /// A fused block violates the fusion cost or growth budget.
    FusionBudget,
    /// A superoperator fold violates the cost rule or dimension budget.
    CostRule,
    /// A sweep's trace-preservation allowance or defect is wrong.
    TracePreservation,
    /// A sweep's degradation fallback is inconsistent with its constituents.
    Fallback,
    /// A binding override is missing, stale, or misplaced.
    Binding,
    /// A run's health report disagrees with the checkpoint formula.
    Guard,
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Check::Shape => "shape",
            Check::Accounting => "accounting",
            Check::Ordering => "ordering",
            Check::PlanConsistency => "plan-consistency",
            Check::Classification => "classification",
            Check::Semantics => "semantics",
            Check::FusionBudget => "fusion-budget",
            Check::CostRule => "cost-rule",
            Check::TracePreservation => "trace-preservation",
            Check::Fallback => "fallback",
            Check::Binding => "binding",
            Check::Guard => "guard",
        };
        f.write_str(s)
    }
}

/// A verification failure: the plan is not a faithful translation of its
/// source circuit (or the checker could not establish that it is).
#[derive(Debug, Clone)]
pub struct VerifyError {
    /// The violated property.
    pub check: Check,
    /// The plan step the failure anchors to, when one exists.
    pub step: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.step {
            Some(s) => write!(f, "[{}] step {}: {}", self.check, s, self.message),
            None => write!(f, "[{}] {}", self.check, self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

fn fail<T>(
    check: Check,
    step: impl Into<Option<usize>>,
    message: String,
) -> Result<T, VerifyError> {
    Err(VerifyError { check, step: step.into(), message })
}

/// What a successful verification covered (all counters are lower-bounded
/// by the corpus tests, so a silently-vacuous checker cannot pass them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Steps walked.
    pub steps: usize,
    /// Multi-gate fused blocks proven.
    pub fused_blocks: usize,
    /// Superoperator sweeps proven.
    pub sweeps: usize,
    /// Per-term Kraus steps checked.
    pub kraus_steps: usize,
    /// Density constituent items checked.
    pub items: usize,
    /// Operators re-derived and compared entry-wise.
    pub operators_compared: usize,
    /// Random bindings sampled for invariance checks.
    pub bindings_sampled: usize,
}

/// Verifier configuration: the compile-time configuration the plan claims to
/// honour, plus checker tolerances.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// The fusion budget the plan was compiled under.
    pub fusion: FusionConfig,
    /// The superoperator budget the plan was compiled under.
    pub superop: SuperopConfig,
    /// The noise model the plan was compiled under.
    pub noise: NoiseModel,
    /// Entry-wise tolerance for operator comparisons.
    pub tol: f64,
    /// Skip entry-wise operator re-derivation for steps whose subspace
    /// dimension exceeds this (structural checks still run).
    pub max_dense_dim: usize,
    /// Number of deterministic pseudo-random bindings sampled per rebindable
    /// step for the binding-invariance checks.
    pub sample_bindings: usize,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        Self {
            fusion: FusionConfig::default(),
            superop: SuperopConfig::default(),
            noise: NoiseModel::noiseless(),
            tol: 1e-9,
            max_dense_dim: 4096,
            sample_bindings: 2,
        }
    }
}

impl VerifyConfig {
    /// Replaces the assumed noise model.
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Replaces the assumed fusion configuration.
    #[must_use]
    pub fn with_fusion(mut self, fusion: FusionConfig) -> Self {
        self.fusion = fusion;
        self
    }

    /// Replaces the assumed superoperator configuration.
    #[must_use]
    pub fn with_superop(mut self, superop: SuperopConfig) -> Self {
        self.superop = superop;
        self
    }
}

// ---------------------------------------------------------------------------
// Independent structure classification and small matrix helpers.
// ---------------------------------------------------------------------------

/// The checker's own structure lattice (deliberately not reusing the
/// compiler's): diagonal ⊑ monomial ⊑ dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Struct {
    Diagonal,
    Monomial,
    Dense,
}

impl Struct {
    fn of(m: &CMatrix) -> Struct {
        let n = m.rows();
        if n != m.cols() {
            return Struct::Dense;
        }
        let mut diagonal = true;
        for c in 0..n {
            let mut nonzeros = 0usize;
            for r in 0..n {
                if m.get(r, c) != Complex64::ZERO {
                    nonzeros += 1;
                    if r != c {
                        diagonal = false;
                    }
                }
            }
            if nonzeros > 1 {
                return Struct::Dense;
            }
        }
        if diagonal {
            Struct::Diagonal
        } else {
            Struct::Monomial
        }
    }

    /// Cost of one superoperator sweep on a subspace of dimension `k`, in
    /// the compiler's `N²` multiply-add units.
    fn sweep_cost(self, k: usize) -> usize {
        match self {
            Struct::Diagonal => 1,
            Struct::Monomial => 2,
            Struct::Dense => k * k,
        }
    }

    /// Standalone cost of a unitary sandwich of subspace dimension `k`.
    fn sandwich_cost(self, k: usize) -> usize {
        match self {
            Struct::Diagonal => 2,
            Struct::Monomial => 4,
            Struct::Dense => 2 * k,
        }
    }
}

/// Largest entry-wise difference between two matrices (∞ on shape mismatch).
fn max_diff(a: &CMatrix, b: &CMatrix) -> f64 {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return f64::INFINITY;
    }
    let mut acc = 0.0f64;
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            acc = acc.max((a.get(r, c) - b.get(r, c)).abs());
        }
    }
    acc
}

/// Checks that a claimed classification is *sound* for `m`: acting through
/// `kind` must be indistinguishable from acting through the full matrix.
fn kind_is_sound(kind: &OpKind, m: &CMatrix) -> bool {
    let n = m.rows();
    if n != m.cols() {
        return matches!(kind, OpKind::Dense);
    }
    match kind {
        OpKind::Dense => true,
        OpKind::Diagonal(diag) => {
            if diag.len() != n {
                return false;
            }
            for r in 0..n {
                for c in 0..n {
                    let expect = if r == c { diag[r] } else { Complex64::ZERO };
                    if m.get(r, c) != expect {
                        return false;
                    }
                }
            }
            true
        }
        OpKind::Monomial { rows, coeffs, .. } => {
            if rows.len() != n || coeffs.len() != n {
                return false;
            }
            for c in 0..n {
                for r in 0..n {
                    let v = m.get(r, c);
                    let expect = if r == rows[c] { coeffs[c] } else { Complex64::ZERO };
                    if v != expect {
                        return false;
                    }
                }
            }
            true
        }
    }
}

/// Deterministic pseudo-random parameter vector (splitmix64-style), so
/// binding-invariance sampling is reproducible without an RNG dependency.
fn pseudo_params(n: usize, salt: u64) -> Vec<f64> {
    let mut x = salt ^ 0x9E37_79B9_7F4A_7C15;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(0x5851_F42D_4C95_7F2D).wrapping_add(0x1405_7B7E_F767_814F);
            let u = ((x >> 11) as f64) / ((1u64 << 53) as f64);
            (u - 0.5) * std::f64::consts::TAU
        })
        .collect()
}

/// The wires an instruction acts on, for the commutation argument. A kept
/// barrier orders against everything (that is its purpose), so its support
/// is every wire.
fn instr_support(inst: &Instruction, num_wires: usize) -> Vec<usize> {
    match inst {
        Instruction::Unitary { targets, .. }
        | Instruction::Measure { targets }
        | Instruction::Channel { targets, .. } => targets.clone(),
        Instruction::Reset { target } => vec![*target],
        Instruction::Barrier => (0..num_wires).collect(),
    }
}

fn overlaps(a: &[usize], b: &[usize]) -> bool {
    a.iter().any(|x| b.contains(x))
}

/// Re-derives the operator a run of source gates defines on `block_targets`,
/// through the independent embed path: each gate's bound matrix is embedded
/// with [`embed_operator`] over a local radix of the block's dimensions and
/// later gates are left-multiplied (matching operator composition order).
fn block_operator(
    circuit: &Circuit,
    sources: &[usize],
    block_targets: &[usize],
    dims: &[usize],
    params: &[f64],
    step: usize,
) -> Result<CMatrix, VerifyError> {
    let local_dims: Vec<usize> = block_targets.iter().map(|&t| dims[t]).collect();
    let local_radix = Radix::new(local_dims).map_err(|e| VerifyError {
        check: Check::PlanConsistency,
        step: Some(step),
        message: format!("block dimensions are not a valid radix: {e}"),
    })?;
    let mut acc: Option<CMatrix> = None;
    for &src in sources {
        let Instruction::Unitary { gate, targets } = &circuit.instructions()[src] else {
            return fail(
                Check::Accounting,
                step,
                format!("apply step realizes non-unitary instruction {src}"),
            );
        };
        let m = gate.bound_matrix(params).map_err(|e| VerifyError {
            check: Check::Binding,
            step: Some(step),
            message: format!("gate of instruction {src} cannot be realized: {e}"),
        })?;
        let mut positions = Vec::with_capacity(targets.len());
        for t in targets {
            match block_targets.iter().position(|bt| bt == t) {
                Some(p) => positions.push(p),
                None => {
                    return fail(
                        Check::Accounting,
                        step,
                        format!("instruction {src} targets wire {t} outside the step support"),
                    )
                }
            }
        }
        let identity_order = positions.len() == block_targets.len()
            && positions.iter().copied().eq(0..positions.len());
        let embedded = if identity_order {
            m
        } else {
            embed_operator(&local_radix, &m, &positions).map_err(|e| VerifyError {
                check: Check::Semantics,
                step: Some(step),
                message: format!("embedding instruction {src} failed: {e}"),
            })?
        };
        acc = Some(match acc {
            None => embedded,
            Some(prev) => embedded.matmul(&prev).map_err(|e| VerifyError {
                check: Check::Semantics,
                step: Some(step),
                message: format!("composing instruction {src} failed: {e}"),
            })?,
        });
    }
    match acc {
        Some(op) => Ok(op),
        None => fail(Check::Accounting, step, "step realizes no instructions".into()),
    }
}

/// Checks a [`ChannelView`]'s geometry against a freshly built plan and (when
/// `expected` is given) its Kraus operators against the expected channel.
fn check_channel_view(
    cv: &ChannelView<'_>,
    radix: &Radix,
    expected: Option<&KrausChannel>,
    tol: f64,
    step: usize,
) -> Result<(), VerifyError> {
    let rebuilt = ApplyPlan::new(radix, cv.targets).map_err(|e| VerifyError {
        check: Check::PlanConsistency,
        step: Some(step),
        message: format!("channel targets {:?} admit no plan: {e}", cv.targets),
    })?;
    if rebuilt != *cv.plan {
        return fail(
            Check::PlanConsistency,
            step,
            format!("channel stride plan does not match its targets {:?}", cv.targets),
        );
    }
    let k: usize = cv.channel.dims().iter().product();
    if k != cv.plan.sub_dim() {
        return fail(
            Check::PlanConsistency,
            step,
            format!("channel dimension {k} disagrees with plan subspace {}", cv.plan.sub_dim()),
        );
    }
    if let Some(model) = expected {
        if model.operators().len() != cv.channel.operators().len()
            || model.dims() != cv.channel.dims()
        {
            return fail(
                Check::Semantics,
                step,
                format!(
                    "channel '{}' shape differs from the expected '{}'",
                    cv.channel.name(),
                    model.name()
                ),
            );
        }
        for (a, b) in cv.channel.operators().iter().zip(model.operators().iter()) {
            if max_diff(a, b) > tol {
                return fail(
                    Check::Semantics,
                    step,
                    format!(
                        "channel '{}' Kraus operators differ from the source",
                        cv.channel.name()
                    ),
                );
            }
        }
        if (cv.channel.tolerance() - model.tolerance()).abs() > tol {
            return fail(
                Check::TracePreservation,
                step,
                format!("channel '{}' carries a different tolerance", cv.channel.name()),
            );
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Statevector plan verification.
// ---------------------------------------------------------------------------

/// Verifies a compiled statevector plan against its source circuit at the
/// compile-time (all-zero) binding.
///
/// Structural checks run on every step; entry-wise operator re-derivation is
/// skipped for steps the handle has rebound (their binding is unknown here —
/// use [`verify_statevector_bound`] to prove a bound handle).
///
/// # Errors
/// Returns the first [`VerifyError`] found; a returned `Ok` report means the
/// plan is a faithful translation.
pub fn verify_statevector(
    circuit: &Circuit,
    compiled: &CompiledCircuit,
    config: &VerifyConfig,
) -> Result<VerifyReport, VerifyError> {
    verify_sv_inner(circuit, compiled, None, config)
}

/// Verifies a compiled statevector plan against its source circuit at the
/// binding `params` the handle was rebound to.
///
/// # Errors
/// Returns the first [`VerifyError`] found, including a stale or missing
/// binding override.
pub fn verify_statevector_bound(
    circuit: &Circuit,
    compiled: &CompiledCircuit,
    params: &[f64],
    config: &VerifyConfig,
) -> Result<VerifyReport, VerifyError> {
    verify_sv_inner(circuit, compiled, Some(params), config)
}

fn verify_sv_inner(
    circuit: &Circuit,
    compiled: &CompiledCircuit,
    params: Option<&[f64]>,
    config: &VerifyConfig,
) -> Result<VerifyReport, VerifyError> {
    let view = introspect::statevector(compiled);
    let dims = circuit.dims();
    let mut report = VerifyReport::default();

    if view.dims() != dims {
        return fail(
            Check::Shape,
            None,
            format!("plan dims {:?} differ from circuit dims {:?}", view.dims(), dims),
        );
    }
    if view.num_params() != circuit.num_params() {
        return fail(
            Check::Shape,
            None,
            format!(
                "plan expects {} parameters, circuit has {}",
                view.num_params(),
                circuit.num_params()
            ),
        );
    }
    if let Some(p) = params {
        if p.len() < circuit.num_params() {
            return fail(
                Check::Binding,
                None,
                format!("binding supplies {} of {} parameters", p.len(), circuit.num_params()),
            );
        }
    }
    let radix = Radix::new(dims.to_vec()).map_err(|e| VerifyError {
        check: Check::Shape,
        step: None,
        message: format!("circuit dims are not a valid radix: {e}"),
    })?;
    let zeros = vec![0.0f64; circuit.num_params()];
    let binding: &[f64] = params.unwrap_or(&zeros);

    // --- Instruction accounting ------------------------------------------
    let n_inst = circuit.len();
    let mut count = vec![0usize; n_inst];
    let mut pos: Vec<Option<(usize, usize)>> = vec![None; n_inst];
    for s in 0..view.num_steps() {
        let sources = view.sources(s);
        if sources.is_empty() {
            return fail(Check::Accounting, s, "step realizes no instructions".into());
        }
        for (k, &src) in sources.iter().enumerate() {
            if src >= n_inst {
                return fail(Check::Accounting, s, format!("source index {src} out of range"));
            }
            if k > 0 && src <= sources[k - 1] {
                return fail(
                    Check::Accounting,
                    s,
                    format!("step sources {sources:?} are not strictly ascending"),
                );
            }
            count[src] += 1;
            pos[src] = Some((s, k));
        }
        if sources.len() > 1 && !matches!(view.step(s), StepView::Apply { .. }) {
            return fail(Check::Accounting, s, "only apply steps may fuse instructions".into());
        }
    }
    for (i, inst) in circuit.instructions().iter().enumerate() {
        match inst {
            Instruction::Barrier => {
                if count[i] == 0 {
                    if !view.barrier_loss().is_empty() {
                        return fail(
                            Check::Accounting,
                            None,
                            format!("lossy barrier {i} was dropped from the plan"),
                        );
                    }
                } else if count[i] != 1 {
                    return fail(
                        Check::Accounting,
                        None,
                        format!("barrier {i} realized {} times", count[i]),
                    );
                }
            }
            _ => {
                if count[i] != 1 {
                    return fail(
                        Check::Accounting,
                        None,
                        format!("instruction {i} realized {} times (expected once)", count[i]),
                    );
                }
            }
        }
    }

    // --- Ordering: overlapping supports must keep program order ----------
    let supports: Vec<Option<Vec<usize>>> = circuit
        .instructions()
        .iter()
        .enumerate()
        .map(|(i, inst)| (count[i] > 0).then(|| instr_support(inst, dims.len())))
        .collect();
    for i in 0..n_inst {
        let Some(si) = &supports[i] else { continue };
        for j in (i + 1)..n_inst {
            let Some(sj) = &supports[j] else { continue };
            if !overlaps(si, sj) {
                continue;
            }
            let (pi, pj) = (pos[i].expect("counted"), pos[j].expect("counted"));
            if pi >= pj {
                return fail(
                    Check::Ordering,
                    pi.0,
                    format!(
                        "instructions {i} and {j} share wires but execute out of program order \
                         (steps {} and {})",
                        pi.0, pj.0
                    ),
                );
            }
        }
    }

    // --- Binding overrides: ascending, one per rebindable step ------------
    let mut overrides: Vec<(usize, &CMatrix, &OpKind)> = Vec::new();
    let mut last_override: Option<usize> = None;
    for (s, op, kind) in view.overrides() {
        if s >= view.num_steps() {
            return fail(Check::Binding, s, "override points past the plan".into());
        }
        if last_override.is_some_and(|p| p >= s) {
            return fail(Check::Binding, s, "overrides are not ascending by step".into());
        }
        last_override = Some(s);
        overrides.push((s, op, kind));
    }

    // --- Per-step checks ---------------------------------------------------
    for s in 0..view.num_steps() {
        let sources = view.sources(s);
        match view.step(s) {
            StepView::Apply {
                targets,
                plan,
                op,
                kind,
                noise,
                rebindable,
                diagonal_for_all_bindings,
            } => {
                // Target/dimension consistency.
                let mut any_free = false;
                let mut member_dims = Vec::with_capacity(sources.len());
                for &src in sources {
                    let Instruction::Unitary { gate, .. } = &circuit.instructions()[src] else {
                        return fail(
                            Check::Accounting,
                            s,
                            format!("apply step realizes non-unitary instruction {src}"),
                        );
                    };
                    any_free |= gate.free_param().is_some();
                    member_dims.push(gate.matrix().rows());
                }
                if sources.len() == 1 {
                    // The fusion pass may canonicalise a lone gate's targets
                    // to ascending order (permuting the operator to match);
                    // the semantic comparison below proves the permutation,
                    // so only the *set* of wires is pinned here.
                    let Instruction::Unitary { targets: it, .. } =
                        &circuit.instructions()[sources[0]]
                    else {
                        unreachable!("checked above");
                    };
                    let mut a: Vec<usize> = targets.to_vec();
                    let mut b = it.clone();
                    a.sort_unstable();
                    b.sort_unstable();
                    if a != b {
                        return fail(
                            Check::Accounting,
                            s,
                            format!("step targets {targets:?} differ from instruction's {it:?}"),
                        );
                    }
                } else {
                    let mut expected: Vec<usize> = sources
                        .iter()
                        .flat_map(|&src| {
                            let Instruction::Unitary { targets: it, .. } =
                                &circuit.instructions()[src]
                            else {
                                unreachable!("checked above");
                            };
                            it.iter().copied()
                        })
                        .collect();
                    expected.sort_unstable();
                    expected.dedup();
                    if targets != expected.as_slice() {
                        return fail(
                            Check::Accounting,
                            s,
                            format!(
                                "fused block targets {targets:?} differ from member union \
                                 {expected:?}"
                            ),
                        );
                    }
                }
                // Plan consistency.
                let rebuilt = ApplyPlan::new(&radix, targets).map_err(|e| VerifyError {
                    check: Check::PlanConsistency,
                    step: Some(s),
                    message: format!("step targets {targets:?} admit no plan: {e}"),
                })?;
                if rebuilt != *plan {
                    return fail(
                        Check::PlanConsistency,
                        s,
                        format!("stride plan does not match targets {targets:?}"),
                    );
                }
                if op.rows() != plan.sub_dim() || op.cols() != plan.sub_dim() {
                    return fail(
                        Check::PlanConsistency,
                        s,
                        format!(
                            "operator is {}×{} on a subspace of dimension {}",
                            op.rows(),
                            op.cols(),
                            plan.sub_dim()
                        ),
                    );
                }
                if !kind_is_sound(kind, op) {
                    return fail(
                        Check::PlanConsistency,
                        s,
                        "structure classification is unsound for the step operator".into(),
                    );
                }
                // Noise attachment must match the model.
                if sources.len() == 1 {
                    let expected_noise =
                        config.noise.channels_after_gate(targets, dims).map_err(|e| {
                            VerifyError {
                                check: Check::Semantics,
                                step: Some(s),
                                message: format!("noise model rejects targets {targets:?}: {e}"),
                            }
                        })?;
                    if noise.len() != expected_noise.len() {
                        return fail(
                            Check::Semantics,
                            s,
                            format!(
                                "step carries {} noise channels, model defines {}",
                                noise.len(),
                                expected_noise.len()
                            ),
                        );
                    }
                    for (cv, (ch, qudit)) in noise.iter().zip(expected_noise.iter()) {
                        if cv.targets != [*qudit] {
                            return fail(
                                Check::Semantics,
                                s,
                                format!(
                                    "noise channel targets {:?}, model says {qudit}",
                                    cv.targets
                                ),
                            );
                        }
                        check_channel_view(cv, &radix, Some(ch), config.tol, s)?;
                    }
                } else {
                    if !noise.is_empty() {
                        return fail(
                            Check::Semantics,
                            s,
                            "fused blocks must not carry noise channels".into(),
                        );
                    }
                    for &src in sources {
                        let Instruction::Unitary { targets: it, .. } = &circuit.instructions()[src]
                        else {
                            unreachable!("checked above");
                        };
                        let ch = config.noise.channels_after_gate(it, dims).map_err(|e| {
                            VerifyError {
                                check: Check::Semantics,
                                step: Some(s),
                                message: format!("noise model rejects targets {it:?}: {e}"),
                            }
                        })?;
                        if !ch.is_empty() {
                            return fail(
                                Check::Semantics,
                                s,
                                format!(
                                    "instruction {src} is noisy under the model but was fused \
                                     (its channels are lost)"
                                ),
                            );
                        }
                    }
                }
                // Fusion budget (the documented merge-rule invariants).
                if sources.len() >= 2 {
                    report.fused_blocks += 1;
                    let sub = plan.sub_dim();
                    let total: usize = member_dims.iter().sum();
                    let largest = member_dims.iter().copied().max().unwrap_or(0);
                    if sub > total {
                        return fail(
                            Check::FusionBudget,
                            s,
                            format!(
                                "fused block of dimension {sub} exceeds its members' summed \
                                 dimensions {total} (fusion would increase cost)"
                            ),
                        );
                    }
                    if sub > largest
                        && (targets.len() > config.fusion.max_qudits || sub > config.fusion.max_dim)
                    {
                        return fail(
                            Check::FusionBudget,
                            s,
                            format!(
                                "grown block spans {} qudits (dim {sub}) beyond the budget \
                                 ({} qudits / dim {})",
                                targets.len(),
                                config.fusion.max_qudits,
                                config.fusion.max_dim
                            ),
                        );
                    }
                }
                // Rebindable classification.
                if rebindable != any_free {
                    return fail(
                        Check::Classification,
                        s,
                        format!(
                            "step rebindable={rebindable} but sources have \
                             free parameters={any_free}"
                        ),
                    );
                }
                // Effective operator under the requested binding.
                let override_op = overrides.iter().find(|(os, _, _)| *os == s);
                if !rebindable && override_op.is_some() {
                    return fail(
                        Check::Binding,
                        s,
                        "override on a binding-independent step".into(),
                    );
                }
                let effective: Option<&CMatrix> = if rebindable {
                    match (params, override_op) {
                        (Some(_), Some((_, m, k))) => {
                            if !kind_is_sound(k, m) {
                                return fail(
                                    Check::Binding,
                                    s,
                                    "override classification is unsound".into(),
                                );
                            }
                            Some(m)
                        }
                        (Some(_), None) => {
                            return fail(
                                Check::Binding,
                                s,
                                "rebindable step carries no override for the requested binding"
                                    .into(),
                            )
                        }
                        // Binding unknown: structure was checked; skip the
                        // entry-wise comparison for this step.
                        (None, Some(_)) => None,
                        (None, None) => Some(op),
                    }
                } else {
                    Some(op)
                };
                if let Some(eff) = effective {
                    if plan.sub_dim() <= config.max_dense_dim {
                        let expected = block_operator(circuit, sources, targets, dims, binding, s)?;
                        if max_diff(&expected, eff) > config.tol {
                            return fail(
                                Check::Semantics,
                                s,
                                format!(
                                    "step operator differs from the sources' product by {:.3e}",
                                    max_diff(&expected, eff)
                                ),
                            );
                        }
                        report.operators_compared += 1;
                    }
                }
                // Binding invariance of the free-part classification.
                if rebindable {
                    for sample in 0..config.sample_bindings {
                        let pv =
                            pseudo_params(circuit.num_params(), (s as u64) << 8 | sample as u64);
                        let realized = view
                            .realize(s, &pv)
                            .expect("rebindable steps have a recipe")
                            .map_err(|e| VerifyError {
                                check: Check::Binding,
                                step: Some(s),
                                message: format!("recipe fails at a sampled binding: {e}"),
                            })?;
                        if diagonal_for_all_bindings == Some(true)
                            && Struct::of(&realized) != Struct::Diagonal
                        {
                            return fail(
                                Check::Classification,
                                s,
                                "diagonal-at-every-binding claim fails at a sampled binding".into(),
                            );
                        }
                        if plan.sub_dim() <= config.max_dense_dim {
                            let expected = block_operator(circuit, sources, targets, dims, &pv, s)?;
                            if max_diff(&expected, &realized) > config.tol {
                                return fail(
                                    Check::Semantics,
                                    s,
                                    "recipe re-materialisation differs from the sources at a \
                                     sampled binding"
                                        .into(),
                                );
                            }
                            report.operators_compared += 1;
                        }
                        report.bindings_sampled += 1;
                    }
                }
            }
            StepView::Channel(cv) => {
                let Instruction::Channel { channel, targets } = &circuit.instructions()[sources[0]]
                else {
                    return fail(
                        Check::Accounting,
                        s,
                        "channel step realizes a non-channel".into(),
                    );
                };
                if cv.targets != targets.as_slice() {
                    return fail(
                        Check::Accounting,
                        s,
                        format!(
                            "channel targets {:?} differ from instruction's {targets:?}",
                            cv.targets
                        ),
                    );
                }
                check_channel_view(&cv, &radix, Some(channel), config.tol, s)?;
            }
            StepView::Measure { targets } => {
                let Instruction::Measure { targets: it } = &circuit.instructions()[sources[0]]
                else {
                    return fail(
                        Check::Accounting,
                        s,
                        "measure step realizes a non-measure".into(),
                    );
                };
                if targets != it.as_slice() {
                    return fail(
                        Check::Accounting,
                        s,
                        format!("measure targets {targets:?} differ from instruction's {it:?}"),
                    );
                }
            }
            StepView::Reset { target } => {
                let Instruction::Reset { target: it } = &circuit.instructions()[sources[0]] else {
                    return fail(Check::Accounting, s, "reset step realizes a non-reset".into());
                };
                if target != *it {
                    return fail(
                        Check::Accounting,
                        s,
                        format!("reset target {target} differs from instruction's {it}"),
                    );
                }
            }
            StepView::Barrier => {
                if !matches!(circuit.instructions()[sources[0]], Instruction::Barrier) {
                    return fail(
                        Check::Accounting,
                        s,
                        "barrier step realizes a non-barrier".into(),
                    );
                }
            }
        }
    }

    // --- Barrier idle-loss channels ---------------------------------------
    let barrier_loss = view.barrier_loss();
    if config.noise.idle_photon_loss > 0.0 && !barrier_loss.is_empty() {
        if barrier_loss.len() != dims.len() {
            return fail(
                Check::Semantics,
                None,
                format!(
                    "{} idle-loss channels for a {}-wire register",
                    barrier_loss.len(),
                    dims.len()
                ),
            );
        }
        for (q, cv) in barrier_loss.iter().enumerate() {
            if cv.targets != [q] {
                return fail(
                    Check::Semantics,
                    None,
                    format!("idle-loss channel {q} targets {:?}", cv.targets),
                );
            }
            let expected = KrausChannel::photon_loss(dims[q], config.noise.idle_photon_loss)
                .map_err(|e| VerifyError {
                    check: Check::Semantics,
                    step: None,
                    message: format!("idle-loss channel cannot be rebuilt: {e}"),
                })?;
            check_channel_view(cv, &radix, Some(&expected), config.tol, 0)?;
        }
    }

    report.steps = view.num_steps();
    Ok(report)
}

// ---------------------------------------------------------------------------
// Density plan verification.
// ---------------------------------------------------------------------------

/// The checker's independent model of one density constituent, rebuilt from
/// the source circuit and the assumed noise model.
enum ItemModel {
    Unitary {
        targets: Vec<usize>,
        /// Operator at the verification binding.
        op: CMatrix,
        parametric: bool,
        /// Trace-preservation allowance the item contributes to a fold.
        tol: f64,
        /// Conservative (binding-independent) structure class.
        cons: Struct,
    },
    Channel {
        channel: KrausChannel,
        targets: Vec<usize>,
        /// The channel's superoperator `Σ K ⊗ conj(K)`.
        sup: CMatrix,
        sup_class: Struct,
        /// Whether the compiler may fold this channel into a sweep.
        sweepable: bool,
    },
}

impl ItemModel {
    fn targets(&self) -> &[usize] {
        match self {
            ItemModel::Unitary { targets, .. } | ItemModel::Channel { targets, .. } => targets,
        }
    }

    fn parametric(&self) -> bool {
        matches!(self, ItemModel::Unitary { parametric: true, .. })
    }

    fn sub_dim(&self, dims: &[usize]) -> usize {
        self.targets().iter().map(|&t| dims[t]).product()
    }

    /// Standalone cost in the compiler's `N²` units (the cost of *not*
    /// folding this item).
    fn standalone_cost(&self, dims: &[usize]) -> usize {
        let k = self.sub_dim(dims);
        match self {
            ItemModel::Unitary { cons, .. } => cons.sandwich_cost(k),
            ItemModel::Channel { sup_class, .. } => sup_class.sweep_cost(k),
        }
    }

    /// The item's superoperator at the verification binding.
    fn superop(&self) -> Result<CMatrix, VerifyError> {
        match self {
            ItemModel::Unitary { op, .. } => Ok(op.kron(&op.conj())),
            ItemModel::Channel { sup, .. } => Ok(sup.clone()),
        }
    }
}

/// Raw superoperator of a Kraus channel: `Σ K ⊗ conj(K)`.
fn kraus_sup(ops: &[CMatrix]) -> CMatrix {
    let k = ops[0].rows();
    let mut acc = CMatrix::zeros(k * k, k * k);
    for op in ops {
        let term = op.kron(&op.conj());
        for r in 0..k * k {
            for c in 0..k * k {
                acc.set(r, c, acc.get(r, c) + term.get(r, c));
            }
        }
    }
    acc
}

/// Embeds a superoperator on `from` into the doubled space of `union`
/// through the independent embed path: ket positions first, bra positions
/// shifted by the union width.
fn embed_super_independent(
    sup: &CMatrix,
    from: &[usize],
    union: &[usize],
    dims: &[usize],
    step: usize,
) -> Result<CMatrix, VerifyError> {
    let n = union.len();
    let mut doubled: Vec<usize> = union.iter().map(|&t| dims[t]).collect();
    doubled.extend(doubled.clone());
    let radix = Radix::new(doubled).map_err(|e| VerifyError {
        check: Check::PlanConsistency,
        step: Some(step),
        message: format!("doubled union dims are not a valid radix: {e}"),
    })?;
    let mut positions = Vec::with_capacity(2 * from.len());
    for t in from {
        match union.iter().position(|u| u == t) {
            Some(p) => positions.push(p),
            None => {
                return fail(
                    Check::Accounting,
                    step,
                    format!("constituent targets wire {t} outside the sweep support"),
                )
            }
        }
    }
    let bra: Vec<usize> = positions.iter().map(|&p| p + n).collect();
    positions.extend(bra);
    if positions.len() == 2 * n && positions.iter().copied().eq(0..2 * n) {
        return Ok(sup.clone());
    }
    embed_operator(&radix, sup, &positions).map_err(|e| VerifyError {
        check: Check::Semantics,
        step: Some(step),
        message: format!("embedding a constituent superoperator failed: {e}"),
    })
}

/// Conservative (binding-independent) structure class of a run of gates:
/// diagonal only when every constituent is diagonal at every binding.
fn conservative_class(
    circuit: &Circuit,
    sources: &[usize],
    parametric: bool,
    op: &CMatrix,
) -> Struct {
    if !parametric {
        return Struct::of(op);
    }
    let all_diagonal = sources.iter().all(|&src| {
        let Instruction::Unitary { gate, .. } = &circuit.instructions()[src] else {
            return false;
        };
        if gate.free_param().is_some() {
            gate.has_diagonal_generator()
        } else {
            matches!(Struct::of(gate.matrix()), Struct::Diagonal)
        }
    });
    if all_diagonal {
        Struct::Diagonal
    } else {
        Struct::Dense
    }
}

/// Verifies a compiled density plan against its source circuit at the
/// compile-time (all-zero) binding. See [`verify_statevector`] for the
/// binding semantics; use [`verify_density_bound`] for a rebound handle.
///
/// # Errors
/// Returns the first [`VerifyError`] found.
pub fn verify_density(
    circuit: &Circuit,
    compiled: &CompiledDensityCircuit,
    config: &VerifyConfig,
) -> Result<VerifyReport, VerifyError> {
    verify_dm_inner(circuit, compiled, None, config)
}

/// Verifies a compiled density plan at the binding `params` the handle was
/// rebound to.
///
/// # Errors
/// Returns the first [`VerifyError`] found.
pub fn verify_density_bound(
    circuit: &Circuit,
    compiled: &CompiledDensityCircuit,
    params: &[f64],
    config: &VerifyConfig,
) -> Result<VerifyReport, VerifyError> {
    verify_dm_inner(circuit, compiled, Some(params), config)
}

#[allow(clippy::too_many_lines)]
fn verify_dm_inner(
    circuit: &Circuit,
    compiled: &CompiledDensityCircuit,
    params: Option<&[f64]>,
    config: &VerifyConfig,
) -> Result<VerifyReport, VerifyError> {
    let view = introspect::density(compiled);
    let dims = circuit.dims();
    let mut report = VerifyReport::default();

    if view.dims() != dims {
        return fail(
            Check::Shape,
            None,
            format!("plan dims {:?} differ from circuit dims {:?}", view.dims(), dims),
        );
    }
    if view.num_params() != circuit.num_params() {
        return fail(
            Check::Shape,
            None,
            format!(
                "plan expects {} parameters, circuit has {}",
                view.num_params(),
                circuit.num_params()
            ),
        );
    }
    if let Some(p) = params {
        if p.len() < circuit.num_params() {
            return fail(
                Check::Binding,
                None,
                format!("binding supplies {} of {} parameters", p.len(), circuit.num_params()),
            );
        }
    }
    let radix = Radix::new(dims.to_vec()).map_err(|e| VerifyError {
        check: Check::Shape,
        step: None,
        message: format!("circuit dims are not a valid radix: {e}"),
    })?;
    let zeros = vec![0.0f64; circuit.num_params()];
    let binding: &[f64] = params.unwrap_or(&zeros);
    let n_inst = circuit.len();

    // --- Rebuild each constituent item from the source circuit -----------
    let mut models: Vec<ItemModel> = Vec::with_capacity(view.num_items());
    // Per-instruction bookkeeping for the accounting pass.
    let mut primary_count = vec![0usize; n_inst];
    let mut dephase_targets: Vec<Vec<usize>> = vec![Vec::new(); n_inst];
    let mut reset_count = vec![0usize; n_inst];
    let sem = |step: Option<usize>, message: String| VerifyError {
        check: Check::Semantics,
        step,
        message,
    };
    for id in 0..view.num_items() {
        let origin = view.item(id);
        if origin.sources.is_empty() {
            return fail(Check::Accounting, None, format!("item {id} has no sources"));
        }
        for &src in &origin.sources {
            if src >= n_inst {
                return fail(Check::Accounting, None, format!("item {id} source out of range"));
            }
        }
        let first = origin.sources[0];
        let model = match origin.role {
            DensityRole::Primary => {
                match &circuit.instructions()[first] {
                    Instruction::Unitary { .. } => {
                        // A (possibly fused) run of gates; re-derive its
                        // operator and check the fusion invariants here,
                        // mirroring the statevector path.
                        let mut expected: Vec<usize> = Vec::new();
                        let mut member_dims = Vec::new();
                        let mut any_free = false;
                        for (k, &src) in origin.sources.iter().enumerate() {
                            if k > 0 && src <= origin.sources[k - 1] {
                                return fail(
                                    Check::Accounting,
                                    None,
                                    format!("item {id} sources are not ascending"),
                                );
                            }
                            let Instruction::Unitary { gate, targets } =
                                &circuit.instructions()[src]
                            else {
                                return fail(
                                    Check::Accounting,
                                    None,
                                    format!("item {id} fuses non-unitary instruction {src}"),
                                );
                            };
                            primary_count[src] += 1;
                            expected.extend(targets.iter().copied());
                            member_dims.push(gate.matrix().rows());
                            any_free |= gate.free_param().is_some();
                        }
                        let targets = if origin.sources.len() == 1 {
                            // Lone gates may be canonicalised to ascending
                            // target order (see the statevector path); pin
                            // the wire *set* and adopt the emitted order so
                            // the semantic check proves the permutation.
                            let mut a = origin.targets.clone();
                            let mut b = expected.clone();
                            a.sort_unstable();
                            b.sort_unstable();
                            if a != b {
                                return fail(
                                    Check::Accounting,
                                    None,
                                    format!(
                                        "item {id} targets {:?} differ from its instruction's \
                                         {expected:?}",
                                        origin.targets
                                    ),
                                );
                            }
                            origin.targets.clone()
                        } else {
                            expected.sort_unstable();
                            expected.dedup();
                            let sub: usize = expected.iter().map(|&t| dims[t]).product();
                            let total: usize = member_dims.iter().sum();
                            let largest = member_dims.iter().copied().max().unwrap_or(0);
                            if sub > total {
                                return fail(
                                    Check::FusionBudget,
                                    None,
                                    format!(
                                        "item {id}: block dim {sub} exceeds member sum {total}"
                                    ),
                                );
                            }
                            if sub > largest
                                && (expected.len() > config.fusion.max_qudits
                                    || sub > config.fusion.max_dim)
                            {
                                return fail(
                                    Check::FusionBudget,
                                    None,
                                    format!("item {id}: grown block exceeds the fusion budget"),
                                );
                            }
                            expected
                        };
                        if origin.targets != targets {
                            return fail(
                                Check::Accounting,
                                None,
                                format!(
                                    "item {id} targets {:?} differ from expected {targets:?}",
                                    origin.targets
                                ),
                            );
                        }
                        let op =
                            block_operator(circuit, &origin.sources, &targets, dims, binding, 0)?;
                        let cons = conservative_class(circuit, &origin.sources, any_free, &op);
                        if origin.parametric != any_free {
                            return fail(
                                Check::Classification,
                                None,
                                format!("item {id}: parametric flag disagrees with its gates"),
                            );
                        }
                        ItemModel::Unitary { targets, op, parametric: any_free, tol: 0.0, cons }
                    }
                    Instruction::Channel { channel, targets } => {
                        if origin.sources.len() != 1 {
                            return fail(
                                Check::Accounting,
                                None,
                                format!("item {id} fuses a channel instruction"),
                            );
                        }
                        primary_count[first] += 1;
                        if origin.targets != *targets {
                            return fail(
                                Check::Accounting,
                                None,
                                format!("item {id} targets differ from the channel instruction"),
                            );
                        }
                        channel_item_model(channel.clone(), targets.clone(), config)
                    }
                    other => {
                        return fail(
                            Check::Accounting,
                            None,
                            format!("item {id}: primary role on {other:?}"),
                        )
                    }
                }
            }
            DensityRole::GateNoise(j) => {
                let Instruction::Unitary { targets, .. } = &circuit.instructions()[first] else {
                    return fail(
                        Check::Accounting,
                        None,
                        format!("item {id}: gate-noise role on a non-unitary"),
                    );
                };
                let channels = config.noise.channels_after_gate(targets, dims).map_err(|e| {
                    sem(None, format!("noise model rejects targets {targets:?}: {e}"))
                })?;
                let Some((ch, qudit)) = channels.get(j) else {
                    return fail(
                        Check::Semantics,
                        None,
                        format!(
                            "item {id}: model defines {} channels, role wants {j}",
                            channels.len()
                        ),
                    );
                };
                if origin.targets != [*qudit] {
                    return fail(
                        Check::Semantics,
                        None,
                        format!("item {id}: noise channel targets {:?}", origin.targets),
                    );
                }
                channel_item_model(ch.clone(), vec![*qudit], config)
            }
            DensityRole::MeasureDephase(t) => {
                let Instruction::Measure { targets } = &circuit.instructions()[first] else {
                    return fail(
                        Check::Accounting,
                        None,
                        format!("item {id}: dephase role on a non-measure"),
                    );
                };
                if !targets.contains(&t) {
                    return fail(
                        Check::Accounting,
                        None,
                        format!("item {id}: dephasing wire {t} is not measured"),
                    );
                }
                if origin.targets != [t] {
                    return fail(
                        Check::Accounting,
                        None,
                        format!("item {id}: dephasing targets {:?}", origin.targets),
                    );
                }
                dephase_targets[first].push(t);
                let ch = KrausChannel::dephasing(dims[t], 1.0)
                    .map_err(|e| sem(None, format!("dephasing channel: {e}")))?;
                channel_item_model(ch, vec![t], config)
            }
            DensityRole::Reset => {
                let Instruction::Reset { target } = &circuit.instructions()[first] else {
                    return fail(
                        Check::Accounting,
                        None,
                        format!("item {id}: reset role on a non-reset"),
                    );
                };
                if origin.targets != [*target] {
                    return fail(
                        Check::Accounting,
                        None,
                        format!("item {id}: reset targets {:?}", origin.targets),
                    );
                }
                reset_count[first] += 1;
                let d = dims[*target];
                let ops: Vec<CMatrix> = (0..d)
                    .map(|i| {
                        let mut k = CMatrix::zeros(d, d);
                        k.set(0, i, c64(1.0, 0.0));
                        k
                    })
                    .collect();
                let ch = KrausChannel::new("reset", vec![d], ops)
                    .map_err(|e| sem(None, format!("reset channel: {e}")))?;
                channel_item_model(ch, vec![*target], config)
            }
            DensityRole::BarrierLoss(q) => {
                if !matches!(circuit.instructions()[first], Instruction::Barrier) {
                    return fail(
                        Check::Accounting,
                        None,
                        format!("item {id}: barrier-loss role on a non-barrier"),
                    );
                }
                if config.noise.idle_photon_loss <= 0.0 {
                    return fail(
                        Check::Accounting,
                        None,
                        format!("item {id}: barrier loss under a model without idle loss"),
                    );
                }
                if origin.targets != [q] {
                    return fail(
                        Check::Accounting,
                        None,
                        format!("item {id}: barrier-loss targets {:?}", origin.targets),
                    );
                }
                let ch = KrausChannel::photon_loss(dims[q], config.noise.idle_photon_loss)
                    .map_err(|e| sem(None, format!("idle-loss channel: {e}")))?;
                channel_item_model(ch, vec![q], config)
            }
        };
        if model.parametric() != origin.parametric {
            return fail(
                Check::Classification,
                None,
                format!("item {id}: parametric flag mismatch"),
            );
        }
        models.push(model);
    }
    report.items = models.len();

    // --- Item-level accounting against the circuit ------------------------
    for (i, inst) in circuit.instructions().iter().enumerate() {
        match inst {
            Instruction::Unitary { .. } | Instruction::Channel { .. } => {
                if primary_count[i] != 1 {
                    return fail(
                        Check::Accounting,
                        None,
                        format!(
                            "instruction {i} realized {} times (expected once)",
                            primary_count[i]
                        ),
                    );
                }
            }
            Instruction::Measure { targets } => {
                let mut seen = dephase_targets[i].clone();
                seen.sort_unstable();
                let mut want = targets.clone();
                want.sort_unstable();
                if seen != want {
                    return fail(
                        Check::Accounting,
                        None,
                        format!("measure {i} dephases wires {seen:?}, expected {want:?}"),
                    );
                }
            }
            Instruction::Reset { .. } => {
                if reset_count[i] != 1 {
                    return fail(
                        Check::Accounting,
                        None,
                        format!("reset {i} realized {} times", reset_count[i]),
                    );
                }
            }
            Instruction::Barrier => {} // zero items when lossless; counted via roles
        }
    }

    // --- Item ordering: overlapping supports keep program order ----------
    // Each item spans an interval of (source position, rank, sub-rank) keys:
    // primaries rank 0, derived channels rank 1. Two wire-sharing items must
    // have disjoint intervals, ordered the same way the plan executes them.
    let key_lo = |id: usize| -> (usize, usize, usize) {
        let o = view.item(id);
        let src = *o.sources.first().expect("non-empty");
        match o.role {
            DensityRole::Primary => (src, 0, 0),
            DensityRole::GateNoise(j) => (src, 1, j),
            DensityRole::MeasureDephase(t) => (src, 1, t),
            DensityRole::Reset => (src, 1, 0),
            DensityRole::BarrierLoss(q) => (src, 1, q),
        }
    };
    let key_hi = |id: usize| -> (usize, usize, usize) {
        let o = view.item(id);
        let src = *o.sources.last().expect("non-empty");
        let lo = key_lo(id);
        (src, lo.1, lo.2)
    };
    // Execution order of each item: (step, position within the sweep).
    let mut item_order: Vec<Option<(usize, usize)>> = vec![None; view.num_items()];
    let mut consumed = vec![0usize; view.num_items()];
    for s in 0..view.num_steps() {
        let ids = view.step_items(s);
        if ids.is_empty() {
            return fail(Check::Accounting, s, "step consumes no items".into());
        }
        for (k, &id) in ids.iter().enumerate() {
            if id >= view.num_items() {
                return fail(Check::Accounting, s, format!("step consumes unknown item {id}"));
            }
            if k > 0 && id <= ids[k - 1] {
                return fail(
                    Check::Ordering,
                    s,
                    "sweep constituents are not in ascending program order".into(),
                );
            }
            consumed[id] += 1;
            item_order[id] = Some((s, k));
        }
    }
    if let Some(id) = consumed.iter().position(|&c| c != 1) {
        return fail(
            Check::Accounting,
            None,
            format!("item {id} consumed {} times (expected once)", consumed[id]),
        );
    }
    for a in 0..view.num_items() {
        for b in (a + 1)..view.num_items() {
            if !overlaps(models[a].targets(), models[b].targets()) {
                continue;
            }
            let (oa, ob) = (item_order[a].expect("consumed"), item_order[b].expect("consumed"));
            let (before, after, ob_first) = if key_hi(a) < key_lo(b) {
                (oa, ob, false)
            } else if key_hi(b) < key_lo(a) {
                (ob, oa, true)
            } else {
                return fail(
                    Check::Ordering,
                    None,
                    format!("items {a} and {b} share wires with interleaved program ranges"),
                );
            };
            if before >= after {
                let (x, y) = if ob_first { (b, a) } else { (a, b) };
                return fail(
                    Check::Ordering,
                    None,
                    format!("items {x} and {y} share wires but execute out of program order"),
                );
            }
        }
    }

    // --- Overrides ---------------------------------------------------------
    let mut overrides: Vec<(usize, &CMatrix, &OpKind)> = Vec::new();
    let mut last_override: Option<usize> = None;
    for (s, op, kind) in view.overrides() {
        if s >= view.num_steps() {
            return fail(Check::Binding, s, "override points past the plan".into());
        }
        if last_override.is_some_and(|p| p >= s) {
            return fail(Check::Binding, s, "overrides are not ascending by step".into());
        }
        last_override = Some(s);
        overrides.push((s, op, kind));
    }

    // --- Per-step checks ---------------------------------------------------
    for s in 0..view.num_steps() {
        let ids = view.step_items(s);
        let parametric = ids.iter().any(|&id| models[id].parametric());
        if view.rebindable(s) != parametric {
            return fail(
                Check::Classification,
                s,
                format!(
                    "step rebindable={} but constituents parametric={parametric}",
                    view.rebindable(s)
                ),
            );
        }
        let override_op = overrides.iter().find(|(os, _, _)| *os == s);
        if !parametric && override_op.is_some() {
            return fail(Check::Binding, s, "override on a binding-independent step".into());
        }
        // Effective-operator selection shared by the sandwich and sweep arms.
        let effective = |base: &'_ CMatrix| -> Result<Option<CMatrix>, VerifyError> {
            if !parametric {
                return Ok(Some(base.clone()));
            }
            match (params, override_op) {
                (Some(_), Some((_, m, k))) => {
                    if !kind_is_sound(k, m) {
                        return fail(
                            Check::Binding,
                            s,
                            "override classification is unsound".into(),
                        );
                    }
                    Ok(Some((*m).clone()))
                }
                (Some(_), None) => fail(
                    Check::Binding,
                    s,
                    "rebindable step carries no override for the requested binding".into(),
                ),
                (None, Some(_)) => Ok(None),
                (None, None) => Ok(Some(base.clone())),
            }
        };
        match view.step(s) {
            DensityStepView::Unitary { plan, op, kind } => {
                if ids.len() != 1 {
                    return fail(Check::Accounting, s, "sandwich step folds several items".into());
                }
                let ItemModel::Unitary { targets, op: expected, .. } = &models[ids[0]] else {
                    return fail(
                        Check::Accounting,
                        s,
                        "sandwich step realizes a multi-operator channel".into(),
                    );
                };
                let rebuilt = ApplyPlan::new(&radix, targets).map_err(|e| VerifyError {
                    check: Check::PlanConsistency,
                    step: Some(s),
                    message: format!("step targets {targets:?} admit no plan: {e}"),
                })?;
                if rebuilt != *plan {
                    return fail(
                        Check::PlanConsistency,
                        s,
                        format!("stride plan does not match targets {targets:?}"),
                    );
                }
                if !kind_is_sound(kind, op) {
                    return fail(
                        Check::PlanConsistency,
                        s,
                        "structure classification is unsound for the step operator".into(),
                    );
                }
                if let Some(eff) = effective(op)? {
                    if plan.sub_dim() <= config.max_dense_dim {
                        if max_diff(expected, &eff) > config.tol {
                            return fail(
                                Check::Semantics,
                                s,
                                format!(
                                    "sandwich operator differs from its source by {:.3e}",
                                    max_diff(expected, &eff)
                                ),
                            );
                        }
                        report.operators_compared += 1;
                    }
                }
            }
            DensityStepView::Kraus(cv) => {
                report.kraus_steps += 1;
                if ids.len() != 1 {
                    return fail(Check::Accounting, s, "Kraus step folds several items".into());
                }
                let ItemModel::Channel { channel, targets, sweepable, .. } = &models[ids[0]] else {
                    return fail(Check::Accounting, s, "Kraus step realizes a unitary item".into());
                };
                if *sweepable {
                    return fail(
                        Check::CostRule,
                        s,
                        "sweepable channel left on the per-term Kraus path".into(),
                    );
                }
                if cv.targets != targets.as_slice() {
                    return fail(
                        Check::Accounting,
                        s,
                        format!("Kraus targets {:?} differ from expected {targets:?}", cv.targets),
                    );
                }
                check_channel_view(&cv, &radix, Some(channel), config.tol, s)?;
            }
            DensityStepView::Super { plan, sup, kind, fallback_len, defect_tol } => {
                report.sweeps += 1;
                let mut union: Vec<usize> = Vec::new();
                for &id in ids {
                    union.extend(models[id].targets().iter().copied());
                }
                union.sort_unstable();
                union.dedup();
                let rebuilt = SuperPlan::new(&radix, &union).map_err(|e| VerifyError {
                    check: Check::PlanConsistency,
                    step: Some(s),
                    message: format!("sweep targets {union:?} admit no plan: {e}"),
                })?;
                if rebuilt != *plan {
                    return fail(
                        Check::PlanConsistency,
                        s,
                        format!("sweep stride plan does not match its union support {union:?}"),
                    );
                }
                let k_u = plan.sub_dim();
                if sup.rows() != k_u * k_u || sup.cols() != k_u * k_u {
                    return fail(
                        Check::PlanConsistency,
                        s,
                        format!(
                            "superoperator is {}×{} for subspace {k_u}",
                            sup.rows(),
                            sup.cols()
                        ),
                    );
                }
                if !kind_is_sound(kind, sup) {
                    return fail(
                        Check::PlanConsistency,
                        s,
                        "structure classification is unsound for the sweep".into(),
                    );
                }
                // Budget and cost rule.
                if k_u > config.superop.max_dim {
                    return fail(
                        Check::CostRule,
                        s,
                        format!(
                            "sweep subspace {k_u} exceeds the superoperator budget {}",
                            config.superop.max_dim
                        ),
                    );
                }
                for &id in ids {
                    if let ItemModel::Channel { sweepable: false, channel, .. } = &models[id] {
                        return fail(
                            Check::CostRule,
                            s,
                            format!("unsweepable channel '{}' folded into a sweep", channel.name()),
                        );
                    }
                }
                if ids.len() == 1 && !matches!(models[ids[0]], ItemModel::Channel { .. }) {
                    return fail(
                        Check::CostRule,
                        s,
                        "single-unitary sweep (a sandwich is always cheaper)".into(),
                    );
                }
                if ids.len() >= 2 {
                    let standalone: usize =
                        ids.iter().map(|&id| models[id].standalone_cost(dims)).sum();
                    let actual = Struct::of(sup).sweep_cost(k_u);
                    if actual > standalone {
                        return fail(
                            Check::CostRule,
                            s,
                            format!(
                                "fold sweep cost {actual} exceeds its constituents' standalone \
                                 cost {standalone}"
                            ),
                        );
                    }
                }
                // Fallback and trace preservation.
                let expected_fallback = if parametric { 0 } else { ids.len() };
                if fallback_len != expected_fallback {
                    return fail(
                        Check::Fallback,
                        s,
                        format!(
                            "fallback holds {fallback_len} entries, expected {expected_fallback}"
                        ),
                    );
                }
                let expected_tol: f64 = GuardConfig::DEFAULT_TOL
                    + ids
                        .iter()
                        .map(|&id| match &models[id] {
                            ItemModel::Unitary { tol, .. } => *tol,
                            ItemModel::Channel { channel, .. } => channel.tolerance(),
                        })
                        .sum::<f64>();
                if (defect_tol - expected_tol).abs() > 1e-12 {
                    return fail(
                        Check::TracePreservation,
                        s,
                        format!("defect allowance {defect_tol:.3e} ≠ expected {expected_tol:.3e}"),
                    );
                }
                // Semantics: rebuild the sweep from its constituents.
                if let Some(eff) = effective(sup)? {
                    let defect = SuperPlan::trace_defect(&eff, k_u);
                    if defect > defect_tol || defect.is_nan() {
                        return fail(
                            Check::TracePreservation,
                            s,
                            format!("sweep trace defect {defect:.3e} exceeds allowance {defect_tol:.3e}"),
                        );
                    }
                    if k_u * k_u <= config.max_dense_dim {
                        let mut acc: Option<CMatrix> = None;
                        for &id in ids {
                            let part = embed_super_independent(
                                &models[id].superop()?,
                                models[id].targets(),
                                &union,
                                dims,
                                s,
                            )?;
                            acc = Some(match acc {
                                None => part,
                                Some(prev) => part.matmul(&prev).map_err(|e| {
                                    sem(Some(s), format!("composing a sweep failed: {e}"))
                                })?,
                            });
                        }
                        let expected = acc.expect("non-empty step");
                        if max_diff(&expected, &eff) > config.tol {
                            return fail(
                                Check::Semantics,
                                s,
                                format!(
                                    "sweep superoperator differs from its constituents' product \
                                     by {:.3e}",
                                    max_diff(&expected, &eff)
                                ),
                            );
                        }
                        report.operators_compared += 1;
                    }
                }
            }
        }
    }

    report.steps = view.num_steps();
    Ok(report)
}

/// Builds the checker's model of a derived channel item: single-operator
/// channels become sandwiches (a one-term Kraus sum *is* a deterministic
/// map); anything else precomputes its superoperator and the eligibility
/// verdict the compiler must agree with.
fn channel_item_model(
    channel: KrausChannel,
    targets: Vec<usize>,
    config: &VerifyConfig,
) -> ItemModel {
    let ops = channel.operators();
    if ops.len() == 1 {
        let op = ops[0].clone();
        let cons = Struct::of(&op);
        return ItemModel::Unitary {
            targets,
            op,
            parametric: false,
            tol: channel.tolerance(),
            cons,
        };
    }
    let k = ops[0].rows();
    let m = ops.len();
    let sup = kraus_sup(ops);
    let sup_class = Struct::of(&sup);
    let eligible = config.superop.enabled && k <= config.superop.max_dim;
    let profitable = sup_class != Struct::Dense || k * k <= 2 * m * k + 2 * m;
    ItemModel::Channel { channel, targets, sup, sup_class, sweepable: eligible && profitable }
}

// ---------------------------------------------------------------------------
// Guard checkpoint accounting.
// ---------------------------------------------------------------------------

/// Number of guard checkpoints a run over `num_steps` plan steps must
/// perform under `guard`: one every `cadence` steps plus the final check,
/// zero when disabled.
#[must_use]
pub fn expected_guard_checks(num_steps: usize, guard: &GuardConfig) -> usize {
    if !guard.enabled {
        return 0;
    }
    num_steps / guard.cadence.max(1) + 1
}

/// Checks a run's reported health against the checkpoint-count formula.
///
/// # Errors
/// Returns a [`Check::Guard`] error when the counts disagree.
pub fn verify_run_health(
    health: &RunHealth,
    num_steps: usize,
    guard: &GuardConfig,
) -> Result<(), VerifyError> {
    let expected = expected_guard_checks(num_steps, guard);
    if health.checks_run != expected {
        return fail(
            Check::Guard,
            None,
            format!(
                "run reports {} guard checks over {num_steps} steps, formula expects {expected}",
                health.checks_run
            ),
        );
    }
    Ok(())
}

/// Checks every column of a batched ensemble pass against the checkpoint
/// formula. The ensemble executor promises per-column `RunHealth` with the
/// same semantics as a serial run — each member is checkpointed at the same
/// cadence and carries its own counters — so each column must satisfy
/// [`verify_run_health`] independently; a violation names the offending
/// column.
///
/// # Errors
/// Returns a [`Check::Guard`] error when any column's counts disagree.
pub fn verify_ensemble_health(
    healths: &[RunHealth],
    num_steps: usize,
    guard: &GuardConfig,
) -> Result<(), VerifyError> {
    for (column, health) in healths.iter().enumerate() {
        verify_run_health(health, num_steps, guard).map_err(|e| VerifyError {
            check: e.check,
            step: e.step,
            message: format!("ensemble column {column}: {}", e.message),
        })?;
    }
    Ok(())
}
