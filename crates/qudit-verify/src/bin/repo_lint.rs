//! Repo-hygiene auditor.
//!
//! Usage: `repo_lint [ROOT]` — audits the workspace at `ROOT` (default: the
//! current directory) and exits non-zero when any violation is found. See
//! [`qudit_verify::hygiene`] for the rules.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).map_or_else(|| PathBuf::from("."), PathBuf::from);
    let violations = match qudit_verify::hygiene::audit_repo(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("repo_lint: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if violations.is_empty() {
        println!("repo_lint: clean ({})", root.display());
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        println!("{v}");
    }
    println!("repo_lint: {} violation(s)", violations.len());
    ExitCode::FAILURE
}
