//! Translation validation over randomized circuit corpora: the verifier
//! must accept every plan the real compiler emits, across the same circuit
//! families the fusion/flush/rebind/superop property suites exercise, on
//! both pipelines, with and without noise, fusion, and superoperator
//! folding. These tests also pin the report counters, so a verifier that
//! silently skips its expensive checks cannot pass.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qudit_circuit::noise::{KrausChannel, NoiseModel};
use qudit_circuit::sim::{
    DensityMatrixSimulator, FusionConfig, GuardConfig, StatevectorSimulator, SuperopConfig,
};
use qudit_circuit::{Circuit, Gate, Param};
use qudit_core::matrix::CMatrix;
use qudit_core::random::haar_unitary;
use qudit_core::Complex64;
use qudit_verify::{
    expected_guard_checks, verify_density, verify_density_bound, verify_ensemble_health,
    verify_run_health, verify_statevector, verify_statevector_bound, VerifyConfig,
};

fn random_dims(rng: &mut StdRng) -> Vec<usize> {
    let n = rng.gen_range(3..=5);
    (0..n).map(|_| rng.gen_range(2..=4)).collect()
}

fn random_hermitian(rng: &mut StdRng, d: usize) -> CMatrix {
    let u = haar_unitary(rng, d).unwrap();
    let mut h = CMatrix::zeros(d, d);
    for r in 0..d {
        for c in 0..d {
            let v = u.get(r, c) + u.get(c, r).conj();
            h.set(r, c, v);
        }
    }
    h
}

/// The fusion-suite gate mix: diagonal, monomial and dense one/two-qudit
/// gates with randomly ordered targets.
fn push_random_gate(c: &mut Circuit, dims: &[usize], rng: &mut StdRng) {
    let n = dims.len();
    let two_qudit = n >= 2 && rng.gen::<f64>() < 0.4;
    if two_qudit {
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        match rng.gen_range(0..3) {
            0 => c.push(Gate::csum(dims[a], dims[b]), &[a, b]).unwrap(),
            1 => {
                let d = dims[a] * dims[b];
                let u = haar_unitary(rng, d).unwrap();
                c.push(Gate::custom("haar2", vec![dims[a], dims[b]], u).unwrap(), &[a, b]).unwrap();
            }
            _ => {
                let d = dims[a] * dims[b];
                let phases: Vec<Complex64> = (0..d)
                    .map(|_| Complex64::cis(rng.gen::<f64>() * std::f64::consts::TAU))
                    .collect();
                let m = CMatrix::diag(&phases);
                c.push(Gate::custom("cdiag", vec![dims[a], dims[b]], m).unwrap(), &[a, b]).unwrap();
            }
        }
    } else {
        let q = rng.gen_range(0..n);
        let d = dims[q];
        match rng.gen_range(0..5) {
            0 => {
                let phases: Vec<f64> =
                    (0..d).map(|_| rng.gen::<f64>() * std::f64::consts::TAU).collect();
                c.push(Gate::snap(d, &phases), &[q]).unwrap();
            }
            1 => c.push(Gate::clock_z(d), &[q]).unwrap(),
            2 => c.push(Gate::shift_x(d), &[q]).unwrap(),
            3 => c.push(Gate::weyl(d, rng.gen_range(0..d), rng.gen_range(0..d)), &[q]).unwrap(),
            _ => c.push(Gate::fourier(d), &[q]).unwrap(),
        }
    }
}

/// The rebind-suite parameterized gate mix reading parameter `idx`.
fn push_random_param_gate(c: &mut Circuit, dims: &[usize], idx: usize, rng: &mut StdRng) {
    let n = dims.len();
    let q = rng.gen_range(0..n);
    let d = dims[q];
    if rng.gen::<f64>() < 0.5 {
        let weights: Vec<f64> = (0..d).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
        let g = Gate::parameterized(
            format!("sep{idx}"),
            vec![d],
            &CMatrix::diag_real(&weights),
            Param::Free(idx),
        )
        .unwrap();
        c.push(g, &[q]).unwrap();
    } else {
        let h = random_hermitian(rng, d);
        let g = Gate::parameterized(format!("mix{idx}"), vec![d], &h, Param::Free(idx)).unwrap();
        c.push(g, &[q]).unwrap();
    }
}

/// A randomized circuit mixing unitaries with the structural instructions
/// (measure / reset / barrier / explicit channels), the flush-suite shape.
fn random_mixed_circuit(rng: &mut StdRng, dims: &[usize], gates: usize) -> Circuit {
    let mut c = Circuit::new(dims.to_vec());
    for _ in 0..gates {
        match rng.gen_range(0..10) {
            0 => {
                let q = rng.gen_range(0..dims.len());
                c.measure(&[q]).unwrap();
            }
            1 => {
                let q = rng.gen_range(0..dims.len());
                c.reset(q).unwrap();
            }
            2 => c.barrier(),
            3 => {
                let q = rng.gen_range(0..dims.len());
                let ch = KrausChannel::dephasing(dims[q], 0.2).unwrap();
                c.push_channel(ch, &[q]).unwrap();
            }
            _ => push_random_gate(&mut c, dims, rng),
        }
    }
    c.measure_all();
    c
}

/// A randomized parameterized circuit, every slot in `0..num_params` used.
fn random_param_circuit(rng: &mut StdRng, dims: &[usize], num_params: usize) -> Circuit {
    let mut c = Circuit::new(dims.to_vec());
    for idx in 0..num_params {
        push_random_param_gate(&mut c, dims, idx, rng);
        for _ in 0..rng.gen_range(1..=3) {
            push_random_gate(&mut c, dims, rng);
        }
    }
    c
}

fn random_binding(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.gen::<f64>() * std::f64::consts::TAU - std::f64::consts::PI).collect()
}

// ---------------------------------------------------------------------------
// Statevector pipeline.
// ---------------------------------------------------------------------------

#[test]
fn statevector_plans_verify_on_random_unitary_corpora() {
    let mut total_blocks = 0usize;
    for trial in 0..20 {
        let mut rng = StdRng::seed_from_u64(31_000 + trial);
        let dims = random_dims(&mut rng);
        let mut c = Circuit::new(dims.clone());
        for _ in 0..rng.gen_range(8..=20) {
            push_random_gate(&mut c, &dims, &mut rng);
        }
        let plan = StatevectorSimulator::new().compile(&c).unwrap();
        let report = verify_statevector(&c, &plan, &VerifyConfig::default())
            .unwrap_or_else(|e| panic!("trial {trial}: {e}"));
        assert!(report.steps > 0);
        assert!(report.operators_compared >= report.steps);
        total_blocks += report.fused_blocks;
    }
    assert!(total_blocks > 0, "corpus never exercised a fused block");
}

#[test]
fn statevector_plans_verify_with_fusion_disabled() {
    for trial in 0..10 {
        let mut rng = StdRng::seed_from_u64(32_000 + trial);
        let dims = random_dims(&mut rng);
        let mut c = Circuit::new(dims.clone());
        for _ in 0..12 {
            push_random_gate(&mut c, &dims, &mut rng);
        }
        let fusion = FusionConfig { enabled: false, ..FusionConfig::default() };
        let plan = StatevectorSimulator::new().with_fusion(fusion.clone()).compile(&c).unwrap();
        let cfg = VerifyConfig::default().with_fusion(fusion);
        let report = verify_statevector(&c, &plan, &cfg).unwrap();
        assert_eq!(report.fused_blocks, 0);
    }
}

#[test]
fn statevector_plans_verify_on_mixed_circuits_with_noise() {
    for trial in 0..15 {
        let mut rng = StdRng::seed_from_u64(33_000 + trial);
        let dims = random_dims(&mut rng);
        let c = random_mixed_circuit(&mut rng, &dims, 16);
        let mut noise = NoiseModel::depolarizing(0.01, 0.05);
        noise.idle_photon_loss = 0.02;
        let plan = StatevectorSimulator::new().with_noise(noise.clone()).compile(&c).unwrap();
        let cfg = VerifyConfig::default().with_noise(noise);
        verify_statevector(&c, &plan, &cfg).unwrap_or_else(|e| panic!("trial {trial}: {e}"));
    }
}

#[test]
fn statevector_bound_plans_verify_after_each_rebind() {
    for trial in 0..10 {
        let mut rng = StdRng::seed_from_u64(34_000 + trial);
        let dims = random_dims(&mut rng);
        let num_params = 3;
        let c = random_param_circuit(&mut rng, &dims, num_params);
        assert_eq!(c.num_params(), num_params);
        let mut plan = StatevectorSimulator::new().compile(&c).unwrap();
        let cfg = VerifyConfig::default();
        // Fresh from compile: the all-zero binding.
        let report = verify_statevector(&c, &plan, &cfg).unwrap();
        assert!(report.bindings_sampled > 0, "corpus circuit has rebindable steps");
        for round in 0..3 {
            let theta = random_binding(&mut rng, num_params);
            plan.bind(&theta).unwrap();
            verify_statevector_bound(&c, &plan, &theta, &cfg)
                .unwrap_or_else(|e| panic!("trial {trial}, round {round}: {e}"));
        }
    }
}

// ---------------------------------------------------------------------------
// Density pipeline.
// ---------------------------------------------------------------------------

#[test]
fn density_plans_verify_on_mixed_circuits_with_noise() {
    let mut total_sweeps = 0usize;
    for trial in 0..12 {
        let mut rng = StdRng::seed_from_u64(35_000 + trial);
        let n = rng.gen_range(2..=3);
        let dims: Vec<usize> = (0..n).map(|_| rng.gen_range(2..=3)).collect();
        let c = random_mixed_circuit(&mut rng, &dims, 12);
        let mut noise = NoiseModel::depolarizing(0.01, 0.05);
        noise.idle_photon_loss = 0.02;
        let plan = DensityMatrixSimulator::new().with_noise(noise.clone()).compile(&c).unwrap();
        let cfg = VerifyConfig::default().with_noise(noise);
        let report =
            verify_density(&c, &plan, &cfg).unwrap_or_else(|e| panic!("trial {trial}: {e}"));
        assert!(report.items > 0);
        total_sweeps += report.sweeps;
    }
    assert!(total_sweeps > 0, "corpus never exercised a superoperator sweep");
}

#[test]
fn density_plans_verify_with_superop_disabled() {
    for trial in 0..8 {
        let mut rng = StdRng::seed_from_u64(36_000 + trial);
        let dims = vec![2, 3];
        let c = random_mixed_circuit(&mut rng, &dims, 10);
        let noise = NoiseModel::depolarizing(0.02, 0.02);
        let superop = SuperopConfig { enabled: false, ..SuperopConfig::default() };
        let plan = DensityMatrixSimulator::new()
            .with_noise(noise.clone())
            .with_superop(superop.clone())
            .compile(&c)
            .unwrap();
        let cfg = VerifyConfig::default().with_noise(noise).with_superop(superop);
        let report = verify_density(&c, &plan, &cfg).unwrap();
        assert_eq!(report.sweeps, 0, "folding is off; nothing may sweep");
    }
}

#[test]
fn density_bound_plans_verify_after_each_rebind() {
    for trial in 0..8 {
        let mut rng = StdRng::seed_from_u64(37_000 + trial);
        let dims = vec![3, 2];
        let num_params = 2;
        let c = random_param_circuit(&mut rng, &dims, num_params);
        let noise = NoiseModel::depolarizing(0.01, 0.01);
        let sim = DensityMatrixSimulator::new().with_noise(noise.clone());
        let mut plan = sim.compile(&c).unwrap();
        let cfg = VerifyConfig::default().with_noise(noise);
        verify_density(&c, &plan, &cfg).unwrap_or_else(|e| panic!("trial {trial}: {e}"));
        for round in 0..3 {
            let theta = random_binding(&mut rng, num_params);
            plan.bind(&theta).unwrap();
            verify_density_bound(&c, &plan, &theta, &cfg)
                .unwrap_or_else(|e| panic!("trial {trial}, round {round}: {e}"));
        }
    }
}

// ---------------------------------------------------------------------------
// Guard checkpoint accounting.
// ---------------------------------------------------------------------------

#[test]
fn run_health_matches_the_checkpoint_formula() {
    for trial in 0..6 {
        let mut rng = StdRng::seed_from_u64(38_000 + trial);
        let dims = random_dims(&mut rng);
        let mut c = Circuit::new(dims.clone());
        for _ in 0..rng.gen_range(6..=18) {
            push_random_gate(&mut c, &dims, &mut rng);
        }
        let cadence = rng.gen_range(1..=4);
        let guard = GuardConfig { cadence, ..GuardConfig::enabled() };
        let sim = StatevectorSimulator::new().with_guard(guard);
        let plan = sim.compile(&c).unwrap();
        let out = sim.run_compiled(&plan).unwrap();
        verify_run_health(&out.health, plan.num_steps(), &guard)
            .unwrap_or_else(|e| panic!("trial {trial}: {e}"));
    }
    // Disabled guards check nothing, regardless of step count.
    assert_eq!(expected_guard_checks(40, &GuardConfig::disabled()), 0);
}

#[test]
fn ensemble_columns_each_satisfy_the_checkpoint_formula() {
    // A batched ensemble pass promises serial `RunHealth` semantics per
    // column: every member is checkpointed at the guard cadence as if it ran
    // alone.
    for trial in 0..4 {
        let mut rng = StdRng::seed_from_u64(39_000 + trial);
        let dims = random_dims(&mut rng);
        let mut c = Circuit::new(dims.clone());
        for _ in 0..rng.gen_range(6..=18) {
            push_random_gate(&mut c, &dims, &mut rng);
        }
        let cadence = rng.gen_range(1..=4);
        let guard = GuardConfig { cadence, ..GuardConfig::enabled() };
        let sim = StatevectorSimulator::new().with_guard(guard);
        let plan = sim.compile(&c).unwrap();
        let batch = plan.bind_batch(&vec![Vec::new(); 5]).unwrap();
        let healths: Vec<_> = sim
            .run_ensemble(&plan, &batch)
            .unwrap()
            .into_iter()
            .map(|column| column.unwrap().health)
            .collect();
        verify_ensemble_health(&healths, plan.num_steps(), &guard)
            .unwrap_or_else(|e| panic!("trial {trial}: {e}"));
    }
}
