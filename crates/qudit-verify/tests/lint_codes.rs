//! Circuit-linter tests: one focused positive test per lint code, plus
//! zero-false-positive sweeps over randomized clean corpora mirroring the
//! property-suite circuit families.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qudit_circuit::noise::KrausChannel;
use qudit_circuit::{Circuit, Gate, Param};
use qudit_core::matrix::CMatrix;
use qudit_core::random::haar_unitary;
use qudit_verify::{lint_circuit, LintCode, Severity};

fn codes(c: &Circuit) -> Vec<LintCode> {
    lint_circuit(c).into_iter().map(|d| d.code).collect()
}

// ---------------------------------------------------------------------------
// One positive test per code.
// ---------------------------------------------------------------------------

#[test]
fn unbound_param_slot_is_reported() {
    // Only slot 1 is referenced, so num_params = 2 and slot 0 is a gap.
    let mut c = Circuit::new(vec![3]);
    let h = CMatrix::diag_real(&[0.2, -0.4, 0.6]);
    c.push(Gate::parameterized("sep", vec![3], &h, Param::Free(1)).unwrap(), &[0]).unwrap();
    let diags = lint_circuit(&c);
    assert!(
        diags.iter().any(|d| d.code == LintCode::UnboundParam
            && d.severity == Severity::Warning
            && d.message.contains("slot 0")),
        "{diags:?}"
    );
}

#[test]
fn dead_wire_is_reported() {
    let mut c = Circuit::new(vec![2, 3, 2]);
    c.push(Gate::fourier(2), &[0]).unwrap();
    c.push(Gate::fourier(2), &[2]).unwrap();
    let diags = lint_circuit(&c);
    assert!(
        diags.iter().any(|d| d.code == LintCode::DeadWire && d.message.contains("wire 1")),
        "{diags:?}"
    );
}

#[test]
fn gate_after_measure_is_reported_and_reset_clears_it() {
    let mut c = Circuit::new(vec![3]);
    c.push(Gate::fourier(3), &[0]).unwrap();
    c.measure(&[0]).unwrap();
    c.push(Gate::clock_z(3), &[0]).unwrap();
    assert!(codes(&c).contains(&LintCode::GateAfterMeasure));

    let mut ok = Circuit::new(vec![3]);
    ok.push(Gate::fourier(3), &[0]).unwrap();
    ok.measure(&[0]).unwrap();
    ok.reset(0).unwrap();
    ok.push(Gate::clock_z(3), &[0]).unwrap();
    assert!(!codes(&ok).contains(&LintCode::GateAfterMeasure));
}

#[test]
fn redundant_measure_is_reported() {
    let mut c = Circuit::new(vec![2]);
    c.push(Gate::fourier(2), &[0]).unwrap();
    c.measure(&[0]).unwrap();
    c.measure(&[0]).unwrap();
    assert!(codes(&c).contains(&LintCode::RedundantMeasure));

    // An intervening gate makes the second measurement informative again
    // (and triggers gate-after-measure instead — intended here).
    let mut ok = Circuit::new(vec![2]);
    ok.push(Gate::fourier(2), &[0]).unwrap();
    ok.measure(&[0]).unwrap();
    ok.reset(0).unwrap();
    ok.push(Gate::fourier(2), &[0]).unwrap();
    ok.measure(&[0]).unwrap();
    assert!(!codes(&ok).contains(&LintCode::RedundantMeasure));
}

#[test]
fn near_tolerance_cptp_defect_is_reported() {
    // Hand-built channel with a small trace defect just inside the loose
    // tolerance given to the constructor, and within 10× of it.
    let eps: f64 = 1e-5;
    let ops = vec![
        CMatrix::identity(2).scaled_real((0.5f64).sqrt()),
        CMatrix::identity(2).scaled_real((0.5 - eps).sqrt()),
    ];
    let ch = KrausChannel::new_with_tolerance("drifty", vec![2], ops, 5e-5).unwrap();
    let mut c = Circuit::new(vec![2]);
    c.push_channel(ch, &[0]).unwrap();
    let diags = lint_circuit(&c);
    assert!(diags.iter().any(|d| d.code == LintCode::CptpDefectNearTol), "{diags:?}");
}

#[test]
fn zero_kraus_operator_is_reported() {
    // dephasing(d, 1.0): the √(1−γ)·I term vanishes identically.
    let ch = KrausChannel::dephasing(3, 1.0).unwrap();
    let mut c = Circuit::new(vec![3]);
    c.push_channel(ch, &[0]).unwrap();
    assert!(codes(&c).contains(&LintCode::ZeroKraus));
}

#[test]
fn fusion_hotspot_is_reported_for_oversized_gates() {
    // A 3-qudit custom gate of dimension 4³ = 64 fits max_dim but exceeds...
    // actually exceeds the default 4-qudit budget only by dimension when
    // dims grow; use a 128-dim two-qudit-pair to trip the dim bound.
    let mut rng = StdRng::seed_from_u64(9);
    let dims = vec![4, 4, 4, 4, 2];
    let d: usize = 4 * 4 * 4 * 2;
    let u = haar_unitary(&mut rng, d).unwrap();
    let mut c = Circuit::new(dims);
    c.push(Gate::custom("big", vec![4, 4, 4, 2], u).unwrap(), &[0, 1, 2, 4]).unwrap();
    let diags = lint_circuit(&c);
    assert!(
        diags.iter().any(|d| d.code == LintCode::FusionHotspot && d.severity == Severity::Info),
        "{diags:?}"
    );
}

// ---------------------------------------------------------------------------
// Zero false positives on clean randomized corpora.
// ---------------------------------------------------------------------------

fn push_random_gate(c: &mut Circuit, dims: &[usize], rng: &mut StdRng) {
    let n = dims.len();
    if n >= 2 && rng.gen::<f64>() < 0.3 {
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        c.push(Gate::csum(dims[a], dims[b]), &[a, b]).unwrap();
    } else {
        let q = rng.gen_range(0..n);
        match rng.gen_range(0..3) {
            0 => c.push(Gate::fourier(dims[q]), &[q]).unwrap(),
            1 => c.push(Gate::shift_x(dims[q]), &[q]).unwrap(),
            _ => c.push(Gate::clock_z(dims[q]), &[q]).unwrap(),
        }
    }
}

#[test]
fn clean_random_circuits_produce_no_diagnostics() {
    for trial in 0..40 {
        let mut rng = StdRng::seed_from_u64(61_000 + trial);
        let n = rng.gen_range(2..=4);
        let dims: Vec<usize> = (0..n).map(|_| rng.gen_range(2..=4)).collect();
        let mut c = Circuit::new(dims.clone());
        // Touch every wire so dead-wire cannot fire, then add random gates,
        // well-formed channels and final measurements.
        for q in 0..n {
            c.push(Gate::fourier(dims[q]), &[q]).unwrap();
        }
        for _ in 0..rng.gen_range(4..=12) {
            if rng.gen::<f64>() < 0.15 {
                let q = rng.gen_range(0..n);
                let ch = KrausChannel::depolarizing(dims[q], 0.1).unwrap();
                c.push_channel(ch, &[q]).unwrap();
            } else {
                push_random_gate(&mut c, &dims, &mut rng);
            }
        }
        c.measure_all();
        let diags = lint_circuit(&c);
        assert!(diags.is_empty(), "trial {trial}: false positives {diags:?}");
    }
}

#[test]
fn clean_parameterized_circuits_produce_no_diagnostics() {
    for trial in 0..25 {
        let mut rng = StdRng::seed_from_u64(62_000 + trial);
        let dims = vec![3, 2, 4];
        let mut c = Circuit::new(dims.clone());
        for q in 0..dims.len() {
            c.push(Gate::fourier(dims[q]), &[q]).unwrap();
        }
        let num_params = rng.gen_range(1..=4);
        for idx in 0..num_params {
            let q = rng.gen_range(0..dims.len());
            let d = dims[q];
            let weights: Vec<f64> = (0..d).map(|_| rng.gen::<f64>() - 0.5).collect();
            let g = Gate::parameterized(
                format!("sep{idx}"),
                vec![d],
                &CMatrix::diag_real(&weights),
                Param::Free(idx),
            )
            .unwrap();
            c.push(g, &[q]).unwrap();
            push_random_gate(&mut c, &dims, &mut rng);
        }
        c.measure_all();
        let diags = lint_circuit(&c);
        assert!(diags.is_empty(), "trial {trial}: false positives {diags:?}");
    }
}
