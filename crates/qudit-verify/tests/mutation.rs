//! Mutation tests: the verifier must *flag* deliberately miscompiled plans.
//! Each test seeds one class of compiler bug through the `corrupt_*` helpers
//! (or a stricter-than-compiled verification config) and asserts both that
//! verification fails and that it fails under the expected check — proving
//! the translation validator is not vacuous, one check class at a time.

use qudit_circuit::noise::KrausChannel;
use qudit_circuit::sim::introspect::{
    self, corrupt_density_drop_step, corrupt_density_scale_super, corrupt_drop_override,
    corrupt_drop_step, corrupt_retarget_step, corrupt_scale_step_op, corrupt_swap_steps,
    DensityStepView,
};
use qudit_circuit::sim::{DensityMatrixSimulator, FusionConfig, GuardConfig, StatevectorSimulator};
use qudit_circuit::{Circuit, Gate, Param};
use qudit_core::guard::RunHealth;
use qudit_core::matrix::CMatrix;
use qudit_verify::{
    verify_density, verify_ensemble_health, verify_run_health, verify_statevector,
    verify_statevector_bound, Check, VerifyConfig,
};

/// A plain three-gate circuit whose plan (fusion off) maps one step to one
/// instruction — the mutation anchor for the statevector classes.
fn straightline_circuit() -> Circuit {
    let mut c = Circuit::new(vec![3, 3]);
    c.push(Gate::fourier(3), &[0]).unwrap();
    c.push(Gate::shift_x(3), &[1]).unwrap();
    c.push(Gate::clock_z(3), &[0]).unwrap();
    c
}

fn unfused() -> StatevectorSimulator {
    StatevectorSimulator::new()
        .with_fusion(FusionConfig { enabled: false, ..FusionConfig::default() })
}

fn unfused_cfg() -> VerifyConfig {
    VerifyConfig::default().with_fusion(FusionConfig { enabled: false, ..FusionConfig::default() })
}

#[test]
fn dropped_step_is_flagged_as_accounting() {
    let c = straightline_circuit();
    let mut plan = unfused().compile(&c).unwrap();
    verify_statevector(&c, &plan, &unfused_cfg()).unwrap();
    corrupt_drop_step(&mut plan, 1);
    let err = verify_statevector(&c, &plan, &unfused_cfg()).unwrap_err();
    assert_eq!(err.check, Check::Accounting, "{err}");
}

#[test]
fn reordered_noncommuting_steps_are_flagged_as_ordering() {
    // Steps 0 and 2 act on the same wire and do not commute.
    let c = straightline_circuit();
    let mut plan = unfused().compile(&c).unwrap();
    verify_statevector(&c, &plan, &unfused_cfg()).unwrap();
    corrupt_swap_steps(&mut plan, 0, 2);
    let err = verify_statevector(&c, &plan, &unfused_cfg()).unwrap_err();
    assert_eq!(err.check, Check::Ordering, "{err}");
}

#[test]
fn reordering_disjoint_steps_is_not_an_error() {
    // The commutation argument is precise: swapping steps with disjoint
    // supports (steps 0 and 1 act on different wires) is a legal schedule.
    let c = straightline_circuit();
    let mut plan = unfused().compile(&c).unwrap();
    corrupt_swap_steps(&mut plan, 0, 1);
    verify_statevector(&c, &plan, &unfused_cfg()).unwrap();
}

#[test]
fn retargeted_step_is_flagged() {
    let c = straightline_circuit();
    let mut plan = unfused().compile(&c).unwrap();
    corrupt_retarget_step(&mut plan, 0, vec![1]);
    let err = verify_statevector(&c, &plan, &unfused_cfg()).unwrap_err();
    assert_eq!(err.check, Check::Accounting, "{err}");
}

#[test]
fn scaled_operator_is_flagged_as_semantics() {
    let c = straightline_circuit();
    let mut plan = unfused().compile(&c).unwrap();
    corrupt_scale_step_op(&mut plan, 0, 0.5);
    let err = verify_statevector(&c, &plan, &unfused_cfg()).unwrap_err();
    assert_eq!(err.check, Check::Semantics, "{err}");
}

#[test]
fn stale_binding_override_is_flagged_as_binding() {
    let mut c = Circuit::new(vec![3]);
    let h = CMatrix::diag_real(&[0.3, -0.9, 0.5]);
    c.push(Gate::parameterized("sep", vec![3], &h, Param::Free(0)).unwrap(), &[0]).unwrap();
    let mut plan = StatevectorSimulator::new().compile(&c).unwrap();
    let theta = [0.7];
    plan.bind(&theta).unwrap();
    verify_statevector_bound(&c, &plan, &theta, &VerifyConfig::default()).unwrap();
    assert!(corrupt_drop_override(&mut plan), "bound plan must carry an override");
    let err = verify_statevector_bound(&c, &plan, &theta, &VerifyConfig::default()).unwrap_err();
    assert_eq!(err.check, Check::Binding, "{err}");
}

#[test]
fn over_budget_fusion_is_flagged_when_verified_strictly() {
    // Two overlapping CSUMs fuse into a grown 3-qudit block (dim 8) — legal
    // under the compile-time budget, illegal under a stricter one. The
    // verifier restates the budget rule, so compile-permissive /
    // verify-strict must disagree.
    let mut c = Circuit::new(vec![2, 2, 2]);
    c.push(Gate::csum(2, 2), &[0, 1]).unwrap();
    c.push(Gate::csum(2, 2), &[1, 2]).unwrap();
    let plan = StatevectorSimulator::new().compile(&c).unwrap();
    let permissive = verify_statevector(&c, &plan, &VerifyConfig::default()).unwrap();
    assert_eq!(permissive.fused_blocks, 1, "corpus assumption: the gates fuse");
    let strict =
        VerifyConfig::default().with_fusion(FusionConfig { max_dim: 4, ..FusionConfig::default() });
    let err = verify_statevector(&c, &plan, &strict).unwrap_err();
    assert_eq!(err.check, Check::FusionBudget, "{err}");
}

#[test]
fn dropped_density_step_is_flagged_as_accounting() {
    let mut c = Circuit::new(vec![2, 2]);
    c.push(Gate::fourier(2), &[0]).unwrap();
    c.push_channel(KrausChannel::dephasing(2, 0.3).unwrap(), &[0]).unwrap();
    let mut plan = DensityMatrixSimulator::new().compile(&c).unwrap();
    verify_density(&c, &plan, &VerifyConfig::default()).unwrap();
    let last = introspect::density(&plan).num_steps() - 1;
    corrupt_density_drop_step(&mut plan, last);
    let err = verify_density(&c, &plan, &VerifyConfig::default()).unwrap_err();
    assert_eq!(err.check, Check::Accounting, "{err}");
}

#[test]
fn miscomposed_sweep_is_flagged() {
    let mut c = Circuit::new(vec![2, 2]);
    c.push(Gate::fourier(2), &[0]).unwrap();
    c.push_channel(KrausChannel::dephasing(2, 0.3).unwrap(), &[0]).unwrap();
    let mut plan = DensityMatrixSimulator::new().compile(&c).unwrap();
    let sweep = {
        let view = introspect::density(&plan);
        (0..view.num_steps())
            .find(|&s| matches!(view.step(s), DensityStepView::Super { .. }))
            .expect("corpus assumption: the channel compiles to a sweep")
    };
    corrupt_density_scale_super(&mut plan, sweep, 1.5);
    let err = verify_density(&c, &plan, &VerifyConfig::default()).unwrap_err();
    assert!(
        matches!(err.check, Check::TracePreservation | Check::Semantics),
        "scaled superoperator must fail trace preservation or semantics, got {err}"
    );
}

#[test]
fn over_budget_superop_fold_is_flagged_when_verified_strictly() {
    // A qutrit dephasing channel folds at the compile-time budget
    // (max_dim 16) but is ineligible under max_dim 2; the verifier's
    // independent eligibility model must reject the fold.
    let mut c = Circuit::new(vec![3]);
    c.push_channel(KrausChannel::dephasing(3, 0.4).unwrap(), &[0]).unwrap();
    let plan = DensityMatrixSimulator::new().compile(&c).unwrap();
    verify_density(&c, &plan, &VerifyConfig::default()).unwrap();
    let mut strict = VerifyConfig::default();
    strict.superop.max_dim = 2;
    let err = verify_density(&c, &plan, &strict).unwrap_err();
    assert_eq!(err.check, Check::CostRule, "{err}");
}

#[test]
fn wrong_guard_checkpoint_count_is_flagged() {
    let guard = GuardConfig { cadence: 4, ..GuardConfig::enabled() };
    let mut health = RunHealth { checks_run: 10 / 4 + 1, ..RunHealth::default() };
    verify_run_health(&health, 10, &guard).unwrap();
    health.checks_run += 1;
    let err = verify_run_health(&health, 10, &guard).unwrap_err();
    assert_eq!(err.check, Check::Guard, "{err}");
}

#[test]
fn wrong_ensemble_column_health_is_flagged_with_attribution() {
    let guard = GuardConfig { cadence: 3, ..GuardConfig::enabled() };
    let good = RunHealth { checks_run: 12 / 3 + 1, ..RunHealth::default() };
    let bad = RunHealth { checks_run: good.checks_run + 2, ..good };
    verify_ensemble_health(&[good, good, good], 12, &guard).unwrap();
    verify_ensemble_health(&[], 12, &guard).unwrap();
    let err = verify_ensemble_health(&[good, bad, good], 12, &guard).unwrap_err();
    assert_eq!(err.check, Check::Guard, "{err}");
    assert!(err.message.contains("column 1"), "violation must name the column: {err}");
}
