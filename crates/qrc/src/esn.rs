//! Classical echo-state-network (ESN) baseline.
//!
//! The reservoir-computing comparison in the paper's reference study pits the
//! two-oscillator quantum reservoir against classical reservoirs of equal
//! "neuron" count; this module provides that baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::{QrcError, Result};

/// Echo-state-network hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EsnParams {
    /// Number of reservoir neurons.
    pub size: usize,
    /// Spectral radius of the recurrent weight matrix.
    pub spectral_radius: f64,
    /// Input weight scale.
    pub input_scale: f64,
    /// Leak rate in `(0, 1]`.
    pub leak_rate: f64,
    /// Random seed for the fixed random weights.
    pub seed: u64,
}

impl Default for EsnParams {
    fn default() -> Self {
        Self { size: 50, spectral_radius: 0.9, input_scale: 0.5, leak_rate: 0.7, seed: 42 }
    }
}

/// A classical echo state network with fixed random weights.
#[derive(Debug, Clone)]
pub struct EchoStateNetwork {
    params: EsnParams,
    /// Recurrent weights (size × size, row-major).
    w: Vec<f64>,
    /// Input weights.
    w_in: Vec<f64>,
}

impl EchoStateNetwork {
    /// Builds an ESN with the given hyper-parameters.
    ///
    /// # Errors
    /// Returns an error for invalid sizes or leak rates.
    pub fn new(params: EsnParams) -> Result<Self> {
        if params.size == 0 {
            return Err(QrcError::InvalidConfig("ESN needs at least one neuron".into()));
        }
        if !(0.0..=1.0).contains(&params.leak_rate) || params.leak_rate == 0.0 {
            return Err(QrcError::InvalidConfig("leak rate must lie in (0, 1]".into()));
        }
        let n = params.size;
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut w: Vec<f64> = (0..n * n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
        // Sparsify and rescale to the requested spectral radius (power iteration).
        for value in w.iter_mut() {
            if rng.gen::<f64>() > 0.2 {
                *value = 0.0;
            }
        }
        let radius = estimate_spectral_radius(&w, n);
        if radius > 1e-12 {
            let scale = params.spectral_radius / radius;
            for value in w.iter_mut() {
                *value *= scale;
            }
        }
        let w_in: Vec<f64> =
            (0..n).map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * params.input_scale).collect();
        Ok(Self { params, w, w_in })
    }

    /// Number of neurons (= feature dimension).
    pub fn feature_dim(&self) -> usize {
        self.params.size
    }

    /// Runs the network over an input sequence and returns the neuron states
    /// after each sample.
    pub fn run(&self, inputs: &[f64]) -> Vec<Vec<f64>> {
        let n = self.params.size;
        let mut state = vec![0.0_f64; n];
        let mut features = Vec::with_capacity(inputs.len());
        for &u in inputs {
            let mut pre = vec![0.0_f64; n];
            for i in 0..n {
                let mut acc = self.w_in[i] * u;
                let row = &self.w[i * n..(i + 1) * n];
                for (j, wij) in row.iter().enumerate() {
                    if *wij != 0.0 {
                        acc += wij * state[j];
                    }
                }
                pre[i] = acc.tanh();
            }
            for i in 0..n {
                state[i] =
                    (1.0 - self.params.leak_rate) * state[i] + self.params.leak_rate * pre[i];
            }
            features.push(state.clone());
        }
        features
    }
}

fn estimate_spectral_radius(w: &[f64], n: usize) -> f64 {
    let mut v = vec![1.0_f64; n];
    let mut radius = 0.0;
    for _ in 0..50 {
        let mut next = vec![0.0_f64; n];
        for i in 0..n {
            let row = &w[i * n..(i + 1) * n];
            next[i] = row.iter().zip(v.iter()).map(|(a, b)| a * b).sum();
        }
        radius = next.iter().map(|x| x.abs()).fold(0.0, f64::max);
        if radius < 1e-15 {
            return 0.0;
        }
        for x in &mut next {
            *x /= radius;
        }
        v = next;
    }
    radius
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{self, nmse};
    use crate::train::fit_ridge;

    #[test]
    fn construction_validates_parameters() {
        assert!(EchoStateNetwork::new(EsnParams { size: 0, ..Default::default() }).is_err());
        assert!(EchoStateNetwork::new(EsnParams { leak_rate: 0.0, ..Default::default() }).is_err());
        let esn = EchoStateNetwork::new(EsnParams::default()).unwrap();
        assert_eq!(esn.feature_dim(), 50);
    }

    #[test]
    fn states_are_bounded_and_input_dependent() {
        let esn = EchoStateNetwork::new(EsnParams::default()).unwrap();
        let a = esn.run(&[0.5, -0.2, 0.3, 0.0]);
        assert_eq!(a.len(), 4);
        assert!(a.iter().flatten().all(|x| x.abs() <= 1.0));
        let b = esn.run(&[0.0, 0.0, 0.0, 0.0]);
        let diff: f64 = a[0].iter().zip(b[0].iter()).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-6);
    }

    #[test]
    fn esn_learns_short_term_memory_task() {
        let task = tasks::memory_task(300, 2, 7);
        let esn = EchoStateNetwork::new(EsnParams { size: 60, ..Default::default() }).unwrap();
        let features = esn.run(&task.inputs);
        let split = 200;
        let readout = fit_ridge(&features[..split], &task.targets[..split], 1e-6).unwrap();
        let preds = readout.predict_batch(&features[split..]);
        let error = nmse(&preds, &task.targets[split..]);
        assert!(error < 0.5, "NMSE {error}");
    }
}
