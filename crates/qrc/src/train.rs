//! Linear (ridge-regression) readout layer — the only trained component of a
//! reservoir computer.

use serde::{Deserialize, Serialize};

use crate::error::{QrcError, Result};

/// A trained linear readout `y = w·x + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearReadout {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Bias term.
    pub bias: f64,
    /// Ridge regularisation used during training.
    pub ridge: f64,
}

impl LinearReadout {
    /// Predicts the target for one feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.bias + self.weights.iter().zip(features.iter()).map(|(w, x)| w * x).sum::<f64>()
    }

    /// Predicts targets for a batch of feature vectors.
    pub fn predict_batch(&self, features: &[Vec<f64>]) -> Vec<f64> {
        features.iter().map(|f| self.predict(f)).collect()
    }
}

/// Fits a ridge-regression readout on `(features, targets)` pairs.
///
/// Solves `(Xᵀ X + λ I) w = Xᵀ y` with an explicit bias column.
///
/// # Errors
/// Returns an error for empty or inconsistent data, or a singular system.
pub fn fit_ridge(features: &[Vec<f64>], targets: &[f64], ridge: f64) -> Result<LinearReadout> {
    if features.is_empty() || features.len() != targets.len() {
        return Err(QrcError::TrainingFailed(format!(
            "need matching non-empty features ({}) and targets ({})",
            features.len(),
            targets.len()
        )));
    }
    let dim = features[0].len();
    if features.iter().any(|f| f.len() != dim) {
        return Err(QrcError::TrainingFailed("inconsistent feature dimensions".into()));
    }
    let aug = dim + 1; // bias column
                       // Normal equations.
    let mut xtx = vec![vec![0.0_f64; aug]; aug];
    let mut xty = vec![0.0_f64; aug];
    for (f, &y) in features.iter().zip(targets.iter()) {
        let mut row = Vec::with_capacity(aug);
        row.extend_from_slice(f);
        row.push(1.0);
        for i in 0..aug {
            xty[i] += row[i] * y;
            for j in 0..aug {
                xtx[i][j] += row[i] * row[j];
            }
        }
    }
    for (i, row) in xtx.iter_mut().enumerate().take(dim) {
        row[i] += ridge;
    }
    let solution = solve_real(&mut xtx, &mut xty)?;
    Ok(LinearReadout { weights: solution[..dim].to_vec(), bias: solution[dim], ridge })
}

/// Gaussian elimination with partial pivoting on a real system (in place).
fn solve_real(a: &mut [Vec<f64>], b: &mut [f64]) -> Result<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for row in col + 1..n {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return Err(QrcError::TrainingFailed(
                "singular normal equations; increase the ridge parameter".into(),
            ));
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn recovers_exact_linear_relationship() {
        let mut rng = StdRng::seed_from_u64(1);
        let true_w = [2.0, -1.5, 0.5];
        let true_b = 0.7;
        let features: Vec<Vec<f64>> =
            (0..100).map(|_| (0..3).map(|_| rng.gen::<f64>() - 0.5).collect()).collect();
        let targets: Vec<f64> = features
            .iter()
            .map(|f| true_b + f.iter().zip(true_w.iter()).map(|(x, w)| x * w).sum::<f64>())
            .collect();
        let readout = fit_ridge(&features, &targets, 1e-9).unwrap();
        for (w, t) in readout.weights.iter().zip(true_w.iter()) {
            assert!((w - t).abs() < 1e-6);
        }
        assert!((readout.bias - true_b).abs() < 1e-6);
        let preds = readout.predict_batch(&features);
        assert!(crate::tasks::nmse(&preds, &targets) < 1e-10);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let features: Vec<Vec<f64>> =
            (0..50).map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()]).collect();
        let targets: Vec<f64> = features.iter().map(|f| 3.0 * f[0] - 2.0 * f[1]).collect();
        let small = fit_ridge(&features, &targets, 1e-8).unwrap();
        let large = fit_ridge(&features, &targets, 100.0).unwrap();
        let norm = |w: &[f64]| w.iter().map(|x| x * x).sum::<f64>();
        assert!(norm(&large.weights) < norm(&small.weights));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(fit_ridge(&[], &[], 0.1).is_err());
        assert!(fit_ridge(&[vec![1.0]], &[1.0, 2.0], 0.1).is_err());
        assert!(fit_ridge(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0], 0.1).is_err());
    }

    #[test]
    fn handles_constant_feature_via_ridge() {
        // A feature column identical to the bias would be singular without ridge.
        let features: Vec<Vec<f64>> = (0..20).map(|_| vec![1.0, 1.0]).collect();
        let targets: Vec<f64> = vec![2.0; 20];
        let readout = fit_ridge(&features, &targets, 1e-3).unwrap();
        let pred = readout.predict(&[1.0, 1.0]);
        assert!((pred - 2.0).abs() < 1e-3);
    }
}
