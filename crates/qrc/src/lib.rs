//! # qrc — quantum reservoir computing on coupled cavity modes
//!
//! Application C of the paper: an analog quantum reservoir built from
//! coherently coupled, dissipative bosonic modes, trained only through a
//! classical linear readout.
//!
//! * [`reservoir`] — the coupled-oscillator reservoir (Lindblad dynamics,
//!   displacement input encoding, observable feature map, shot-limited
//!   read-out).
//! * [`digital`] — the gate-based realisation of the same reservoir: one
//!   compiled parameterized segment circuit, rebound per input sample.
//! * [`tasks`] — NARMA, Mackey–Glass, waveform-classification and memory
//!   benchmark tasks.
//! * [`train`] — ridge-regression readout.
//! * [`esn`] — the classical echo-state-network baseline.
//! * [`pipeline`] — end-to-end evaluation (drive → train → test NMSE).
//!
//! ## Example
//!
//! ```
//! use qrc::pipeline::evaluate_quantum;
//! use qrc::reservoir::ReservoirParams;
//! use qrc::tasks::memory_task;
//!
//! let task = memory_task(40, 1, 7);
//! let eval = evaluate_quantum(&ReservoirParams::small(), &task, 0.7, 1e-6).unwrap();
//! assert!(eval.test_nmse.is_finite());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digital;
pub mod error;
pub mod esn;
pub mod pipeline;
pub mod reservoir;
pub mod tasks;
pub mod train;

pub use digital::DigitalReservoir;
pub use error::{QrcError, Result};
pub use esn::{EchoStateNetwork, EsnParams};
pub use pipeline::{
    evaluate_esn, evaluate_quantum, evaluate_quantum_digital, evaluate_quantum_with_shots,
    Evaluation,
};
pub use reservoir::{QuantumReservoir, ReservoirParams};
pub use tasks::{
    mackey_glass, memory_task, narma, nmse, sine_square_classification, TimeSeriesTask,
};
pub use train::{fit_ridge, LinearReadout};
