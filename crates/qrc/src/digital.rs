//! A **digital** (gate-based) realisation of the coupled-oscillator
//! reservoir, built on the parameterized circuit IR.
//!
//! Where [`crate::reservoir::QuantumReservoir`] integrates the Lindblad
//! master equation, the digital reservoir Trotterises one read-out segment
//! into a fixed circuit — drive kick, free evolution, exchange coupling,
//! photon-loss channels per slice — whose **only free parameter is the drive
//! angle** (`θ = g_in · u · dt`, [`qudit_circuit::Param::Free`]`(0)`). The
//! segment is compiled through the density-matrix simulator's fused
//! superoperator pipeline exactly once; every input sample then *rebinds*
//! the compiled plan in place (`CompiledDensityCircuit::bind`) instead of
//! rebuilding and recompiling the circuit, which is the whole per-sample
//! cost of the naive formulation.

use qudit_circuit::noise::KrausChannel;
use qudit_circuit::sim::{CompiledDensityCircuit, DensityMatrixSimulator};
use qudit_circuit::{gates, Circuit, Gate, Param};
use qudit_core::complex::c64;
use qudit_core::density::DensityMatrix;
use qudit_core::matrix::CMatrix;

use crate::error::{QrcError, Result};
use crate::reservoir::ReservoirParams;

/// The gate-based reservoir: one compiled, rebindable segment circuit plus
/// the observable feature map shared with the analog reservoir.
#[derive(Debug, Clone)]
pub struct DigitalReservoir {
    params: ReservoirParams,
    sim: DensityMatrixSimulator,
    /// The compiled one-segment plan; free parameter 0 is the per-slice
    /// drive angle.
    plan: CompiledDensityCircuit,
    /// Per-slice evolution time (the drive angle per unit input is
    /// `input_gain · dt`).
    slice_dt: f64,
    /// Observables as `(label, operator, mode indices)`.
    observables: Vec<(String, CMatrix, Vec<usize>)>,
    dims: Vec<usize>,
}

impl DigitalReservoir {
    /// Builds and compiles the digital reservoir from the same parameter set
    /// the analog reservoir uses.
    ///
    /// # Errors
    /// Returns an error for inconsistent parameters.
    pub fn new(params: ReservoirParams) -> Result<Self> {
        if params.modes < 1 {
            return Err(QrcError::InvalidConfig("reservoir needs at least one mode".into()));
        }
        if params.levels < 2 {
            return Err(QrcError::InvalidConfig("each mode needs at least 2 levels".into()));
        }
        if params.frequencies.len() != params.modes {
            return Err(QrcError::InvalidConfig(format!(
                "expected {} mode frequencies, got {}",
                params.modes,
                params.frequencies.len()
            )));
        }
        if params.substeps == 0 || params.step_time <= 0.0 || params.virtual_nodes == 0 {
            return Err(QrcError::InvalidConfig(
                "step_time, substeps and virtual_nodes must be positive".into(),
            ));
        }
        let d = params.levels;
        let dims = vec![d; params.modes];
        let segment_time = params.step_time / params.virtual_nodes as f64;
        let slices = (params.substeps / params.virtual_nodes).max(1);
        let dt = segment_time / slices as f64;

        let a = gates::annihilation(d);
        let quadrature = &a + &a.dagger();
        let n_op = gates::number_operator(d);
        let hop = &a.dagger().kron(&a) + &a.kron(&a.dagger());
        // Per-slice photon loss with rate matched to the continuous damping.
        let loss_gamma = 1.0 - (-params.damping * dt).exp();

        // One read-out segment: `slices` Trotter slices of
        //   drive kick · free evolution · exchange coupling · loss.
        // Gates are slice-invariant, so each is built (and its generator
        // diagonalised / exponentiated) once and cloned per slice.
        let drive = Gate::parameterized("drive", vec![d], &quadrature, Param::Free(0))?;
        let free_evolution: Vec<Gate> = params
            .frequencies
            .iter()
            .enumerate()
            .map(|(i, &omega)| {
                Gate::from_generator(format!("rot{i}"), vec![d], &n_op.scaled_real(omega), dt)
            })
            .collect::<qudit_circuit::Result<_>>()?;
        let couple = (params.modes > 1)
            .then(|| Gate::from_generator("hop", vec![d, d], &hop.scaled_real(params.coupling), dt))
            .transpose()?;
        let loss =
            (loss_gamma > 0.0).then(|| KrausChannel::photon_loss(d, loss_gamma)).transpose()?;
        let mut segment = Circuit::new(dims.clone());
        for _ in 0..slices {
            segment.push(drive.clone(), &[0])?;
            for (i, gate) in free_evolution.iter().enumerate() {
                segment.push(gate.clone(), &[i])?;
            }
            if let Some(couple) = &couple {
                for i in 0..params.modes - 1 {
                    segment.push(couple.clone(), &[i, i + 1])?;
                }
            }
            if let Some(loss) = &loss {
                for i in 0..params.modes {
                    segment.push_channel(loss.clone(), &[i])?;
                }
            }
        }

        let sim = DensityMatrixSimulator::new();
        let plan = sim.compile(&segment)?;

        // Observable set: per-mode n, x, p, n² plus pairwise n_i n_j — the
        // same feature map as the analog reservoir.
        let x_op = &a + &a.dagger();
        let p_op = (&a.dagger() - &a).scaled(c64(0.0, 1.0));
        let n2_op = n_op.matmul(&n_op).expect("square");
        let mut observables = Vec::new();
        for i in 0..params.modes {
            observables.push((format!("n{i}"), n_op.clone(), vec![i]));
            observables.push((format!("x{i}"), x_op.clone(), vec![i]));
            observables.push((format!("p{i}"), p_op.clone(), vec![i]));
            observables.push((format!("n{i}^2"), n2_op.clone(), vec![i]));
        }
        for i in 0..params.modes {
            for j in (i + 1)..params.modes {
                observables.push((format!("n{i}n{j}"), n_op.kron(&n_op), vec![i, j]));
            }
        }
        Ok(Self { params, sim, plan, slice_dt: dt, observables, dims })
    }

    /// The reservoir parameters.
    pub fn params(&self) -> &ReservoirParams {
        &self.params
    }

    /// Dimension of the feature vector produced at every time step
    /// (observable count × virtual nodes).
    pub fn feature_dim(&self) -> usize {
        self.observables.len() * self.params.virtual_nodes
    }

    /// Labels of the measured observables, in feature order.
    pub fn observable_labels(&self) -> Vec<String> {
        self.observables.iter().map(|(l, _, _)| l.clone()).collect()
    }

    /// Drives the reservoir with the input sequence and returns the feature
    /// vector (exact expectation values) after each read-out segment of each
    /// input sample. Each sample **rebinds** the compiled segment plan to its
    /// drive angle — no per-sample circuit construction or compilation.
    ///
    /// # Errors
    /// Returns an error if simulation fails.
    pub fn run(&mut self, inputs: &[f64]) -> Result<Vec<Vec<f64>>> {
        let mut rho = DensityMatrix::zero(self.dims.clone())?;
        let mut features = Vec::with_capacity(inputs.len());
        for &u in inputs {
            // One bind per input sample: the drive angle for every slice of
            // every segment within this sample.
            let theta = self.params.input_gain * u * self.slice_dt;
            self.plan.bind(&[theta])?;
            let mut row = Vec::with_capacity(self.feature_dim());
            for _segment in 0..self.params.virtual_nodes {
                rho = self.sim.run_compiled_from(&self.plan, &rho)?;
                for (_, op, targets) in &self.observables {
                    row.push(rho.expectation(op, targets)?.re);
                }
            }
            features.push(row);
        }
        Ok(features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks;

    #[test]
    fn construction_validates_parameters() {
        assert!(DigitalReservoir::new(ReservoirParams { modes: 0, ..ReservoirParams::small() })
            .is_err());
        assert!(DigitalReservoir::new(ReservoirParams { levels: 1, ..ReservoirParams::small() })
            .is_err());
        let r = DigitalReservoir::new(ReservoirParams::small()).unwrap();
        assert_eq!(r.feature_dim(), 27);
        assert_eq!(r.observable_labels().len(), 9);
    }

    #[test]
    fn zero_input_keeps_reservoir_at_vacuum() {
        let mut r = DigitalReservoir::new(ReservoirParams::small()).unwrap();
        let features = r.run(&[0.0, 0.0, 0.0]).unwrap();
        for row in &features {
            assert!(row[0].abs() < 1e-9, "n0 = {}", row[0]);
        }
    }

    #[test]
    fn inputs_excite_and_couple_the_modes() {
        let mut r = DigitalReservoir::new(ReservoirParams::small()).unwrap();
        let features = r.run(&[0.4, 0.4, 0.0, 0.0]).unwrap();
        let labels = r.observable_labels();
        let n0 = labels.iter().position(|l| l == "n0").unwrap();
        let n1 = labels.iter().position(|l| l == "n1").unwrap();
        assert!(features[1][n0] > 1e-3, "driven mode must populate");
        assert!(features[3][n1] > 1e-5, "coupling must excite the second mode");
    }

    #[test]
    fn reservoir_has_fading_memory() {
        let mut r = DigitalReservoir::new(ReservoirParams::small()).unwrap();
        let input_a = vec![0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let input_b = vec![0.1, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let fa = r.run(&input_a).unwrap();
        let fb = r.run(&input_b).unwrap();
        let diff =
            |k: usize| -> f64 { fa[k].iter().zip(fb[k].iter()).map(|(x, y)| (x - y).abs()).sum() };
        assert!(diff(0) > 1e-3);
        assert!(diff(7) < diff(0), "dissipation must wash out the past");
    }

    #[test]
    fn rebinding_matches_rebuilding_the_segment_per_sample() {
        // Reference: rebuild and recompile the bound segment circuit for
        // every input sample — the rebind path must reproduce it at 1e-12.
        let params = ReservoirParams::small();
        let inputs = tasks::narma(2, 5, 9).inputs;
        let mut fast = DigitalReservoir::new(params.clone()).unwrap();
        let fast_features = fast.run(&inputs).unwrap();

        let d = params.levels;
        let dims = vec![d; params.modes];
        let segment_time = params.step_time / params.virtual_nodes as f64;
        let slices = (params.substeps / params.virtual_nodes).max(1);
        let dt = segment_time / slices as f64;
        let a = gates::annihilation(d);
        let quadrature = &a + &a.dagger();
        let n_op = gates::number_operator(d);
        let hop = &a.dagger().kron(&a) + &a.kron(&a.dagger());
        let loss_gamma = 1.0 - (-params.damping * dt).exp();
        let sim = DensityMatrixSimulator::new();
        let observables = DigitalReservoir::new(params.clone()).unwrap().observables;
        let mut rho = DensityMatrix::zero(dims.clone()).unwrap();
        let mut slow_features = Vec::new();
        for &u in &inputs {
            let theta = params.input_gain * u * dt;
            let mut segment = Circuit::new(dims.clone());
            for _ in 0..slices {
                segment
                    .push(
                        Gate::parameterized("drive", vec![d], &quadrature, Param::Bound(theta))
                            .unwrap(),
                        &[0],
                    )
                    .unwrap();
                for (i, &omega) in params.frequencies.iter().enumerate() {
                    segment
                        .push(
                            Gate::from_generator("rot", vec![d], &n_op.scaled_real(omega), dt)
                                .unwrap(),
                            &[i],
                        )
                        .unwrap();
                }
                for i in 0..params.modes - 1 {
                    segment
                        .push(
                            Gate::from_generator(
                                "hop",
                                vec![d, d],
                                &hop.scaled_real(params.coupling),
                                dt,
                            )
                            .unwrap(),
                            &[i, i + 1],
                        )
                        .unwrap();
                }
                for i in 0..params.modes {
                    segment
                        .push_channel(KrausChannel::photon_loss(d, loss_gamma).unwrap(), &[i])
                        .unwrap();
                }
            }
            let mut row = Vec::new();
            for _ in 0..params.virtual_nodes {
                rho = sim.run_from(&segment, &rho).unwrap();
                for (_, op, targets) in &observables {
                    row.push(rho.expectation(op, targets).unwrap().re);
                }
            }
            slow_features.push(row);
        }
        for (fast_row, slow_row) in fast_features.iter().zip(slow_features.iter()) {
            for (x, y) in fast_row.iter().zip(slow_row.iter()) {
                assert!((x - y).abs() < 1e-12, "{x} vs {y}");
            }
        }
    }
}
