//! The coupled-oscillator quantum reservoir.
//!
//! Two (or more) dissipative bosonic modes evolve under
//! `H = Σ_i ω_i a†_i a_i + g Σ_i (a†_i a_{i+1} + h.c.)` while the input
//! signal drives the first mode's displacement — the architecture of the
//! paper's reservoir-computing reference. The measured observables
//! (populations, quadratures, photon-number correlations) form the feature
//! vector handed to a trained linear readout; with `d` levels per mode and
//! `m` modes the reservoir exposes on the order of `d^m` "neurons" worth of
//! state space.

use cavity_sim::lindblad::LindbladSystem;
use qudit_circuit::gates;
use qudit_core::complex::c64;
use qudit_core::density::DensityMatrix;
use qudit_core::matrix::CMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::error::{QrcError, Result};

/// Parameters of the coupled-oscillator reservoir.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReservoirParams {
    /// Number of bosonic modes.
    pub modes: usize,
    /// Fock truncation (levels) per mode.
    pub levels: usize,
    /// Mode detunings `ω_i` (rad per unit time), one per mode.
    pub frequencies: Vec<f64>,
    /// Nearest-neighbour exchange coupling `g`.
    pub coupling: f64,
    /// Photon-loss rate `κ` per mode.
    pub damping: f64,
    /// Drive amplitude multiplying the input value.
    pub input_gain: f64,
    /// Physical time per input sample.
    pub step_time: f64,
    /// Integrator sub-steps per input sample.
    pub substeps: usize,
    /// Time-multiplexed read-out points ("virtual nodes") per input sample:
    /// the observables are recorded this many times within each step and
    /// concatenated into the feature vector, the standard trick the cited
    /// experiments use to enlarge the effective reservoir.
    pub virtual_nodes: usize,
}

impl ReservoirParams {
    /// The two-mode, nine-level reservoir of the paper's reference study
    /// ("81 neurons" from two oscillators).
    pub fn paper_reference() -> Self {
        Self {
            modes: 2,
            levels: 9,
            frequencies: vec![1.0, 1.3],
            coupling: 0.8,
            damping: 0.15,
            input_gain: 1.2,
            step_time: 1.0,
            substeps: 20,
            virtual_nodes: 4,
        }
    }

    /// A small, fast configuration used in tests.
    pub fn small() -> Self {
        Self {
            modes: 2,
            levels: 3,
            frequencies: vec![1.0, 1.4],
            coupling: 0.9,
            damping: 0.3,
            input_gain: 1.0,
            step_time: 1.0,
            substeps: 8,
            virtual_nodes: 3,
        }
    }

    /// Effective neuron count `levels^modes` quoted in the paper's scaling
    /// argument.
    pub fn effective_neurons(&self) -> usize {
        self.levels.pow(self.modes as u32)
    }
}

/// The quantum reservoir: an open coupled-oscillator system plus the
/// observable set defining its feature map.
#[derive(Debug, Clone)]
pub struct QuantumReservoir {
    params: ReservoirParams,
    system: LindbladSystem,
    /// Observables as `(label, operator, mode indices)`.
    observables: Vec<(String, CMatrix, Vec<usize>)>,
}

impl QuantumReservoir {
    /// Builds the reservoir from its parameters.
    ///
    /// # Errors
    /// Returns an error for inconsistent parameters.
    pub fn new(params: ReservoirParams) -> Result<Self> {
        if params.modes < 1 {
            return Err(QrcError::InvalidConfig("reservoir needs at least one mode".into()));
        }
        if params.levels < 2 {
            return Err(QrcError::InvalidConfig("each mode needs at least 2 levels".into()));
        }
        if params.frequencies.len() != params.modes {
            return Err(QrcError::InvalidConfig(format!(
                "expected {} mode frequencies, got {}",
                params.modes,
                params.frequencies.len()
            )));
        }
        if params.substeps == 0 || params.step_time <= 0.0 || params.virtual_nodes == 0 {
            return Err(QrcError::InvalidConfig(
                "step_time, substeps and virtual_nodes must be positive".into(),
            ));
        }
        let d = params.levels;
        let dims = vec![d; params.modes];
        let mut system = LindbladSystem::new(dims).map_err(QrcError::Cavity)?;
        let n_op = gates::number_operator(d);
        let a = gates::annihilation(d);
        for (i, &omega) in params.frequencies.iter().enumerate() {
            system.add_hamiltonian_term(&n_op, &[i], omega).map_err(QrcError::Cavity)?;
            if params.damping > 0.0 {
                system.add_collapse(&a, &[i], params.damping).map_err(QrcError::Cavity)?;
            }
        }
        let hop = &a.dagger().kron(&a) + &a.kron(&a.dagger());
        for i in 0..params.modes.saturating_sub(1) {
            system
                .add_hamiltonian_term(&hop, &[i, i + 1], params.coupling)
                .map_err(QrcError::Cavity)?;
        }

        // Observable set: per-mode n, x, p, n² plus pairwise n_i n_j.
        let x_op = &a + &a.dagger();
        let p_op = (&a.dagger() - &a).scaled(c64(0.0, 1.0));
        let n2_op = n_op.matmul(&n_op).expect("square");
        let mut observables = Vec::new();
        for i in 0..params.modes {
            observables.push((format!("n{i}"), n_op.clone(), vec![i]));
            observables.push((format!("x{i}"), x_op.clone(), vec![i]));
            observables.push((format!("p{i}"), p_op.clone(), vec![i]));
            observables.push((format!("n{i}^2"), n2_op.clone(), vec![i]));
        }
        for i in 0..params.modes {
            for j in (i + 1)..params.modes {
                observables.push((format!("n{i}n{j}"), n_op.kron(&n_op), vec![i, j]));
            }
        }
        Ok(Self { params, system, observables })
    }

    /// The reservoir parameters.
    pub fn params(&self) -> &ReservoirParams {
        &self.params
    }

    /// Dimension of the feature vector produced at every time step
    /// (observable count × virtual nodes).
    pub fn feature_dim(&self) -> usize {
        self.observables.len() * self.params.virtual_nodes
    }

    /// Labels of the measured observables, in feature order.
    pub fn observable_labels(&self) -> Vec<String> {
        self.observables.iter().map(|(l, _, _)| l.clone()).collect()
    }

    /// Drives the reservoir with the input sequence and returns the feature
    /// vector (exact expectation values) after each input sample.
    ///
    /// # Errors
    /// Returns an error if the open-system integration fails.
    pub fn run(&self, inputs: &[f64]) -> Result<Vec<Vec<f64>>> {
        self.run_internal(inputs, None)
    }

    /// Like [`QuantumReservoir::run`] but with shot noise: every expectation
    /// value is replaced by the mean of `shots` simulated projective
    /// measurements (Gaussian approximation with the exact per-observable
    /// variance).
    ///
    /// # Errors
    /// Returns an error if the open-system integration fails.
    pub fn run_with_shots(&self, inputs: &[f64], shots: usize, seed: u64) -> Result<Vec<Vec<f64>>> {
        if shots == 0 {
            return Err(QrcError::InvalidConfig("shot count must be positive".into()));
        }
        self.run_internal(inputs, Some((shots, seed)))
    }

    fn run_internal(&self, inputs: &[f64], shots: Option<(usize, u64)>) -> Result<Vec<Vec<f64>>> {
        let d = self.params.levels;
        let dims = vec![d; self.params.modes];
        let mut rho = DensityMatrix::zero(dims).map_err(QrcError::Core)?;
        let mut rng = shots.map(|(_, seed)| StdRng::seed_from_u64(seed));
        let normal = Normal::new(0.0, 1.0).expect("valid normal");

        let a = gates::annihilation(d);
        let drive_quadrature = &a + &a.dagger();

        let segment_time = self.params.step_time / self.params.virtual_nodes as f64;
        let substeps_per_segment = (self.params.substeps / self.params.virtual_nodes).max(1);
        let dt = segment_time / substeps_per_segment as f64;
        let mut features = Vec::with_capacity(inputs.len());
        for &u in inputs {
            // Input encoding: resonant displacement drive on mode 0 with
            // amplitude proportional to the input value, held for the whole
            // input step; the observables are read out after every segment
            // (time multiplexing into virtual nodes).
            let drive_full = qudit_core::radix::embed_operator(
                self.system.radix(),
                &drive_quadrature.scaled_real(self.params.input_gain * u),
                &[0],
            )
            .map_err(QrcError::Core)?;
            let mut row = Vec::with_capacity(self.feature_dim());
            for _segment in 0..self.params.virtual_nodes {
                self.system
                    .evolve_with_drive(
                        &mut rho,
                        segment_time,
                        dt,
                        |_t| Some(drive_full.clone()),
                        |_, _, _| {},
                    )
                    .map_err(QrcError::Cavity)?;
                for (_, op, targets) in &self.observables {
                    let mean = rho.expectation(op, targets).map_err(QrcError::Core)?.re;
                    let value = if let (Some((shots, _)), Some(rng)) = (shots, rng.as_mut()) {
                        let op_sq = op.matmul(op).expect("square");
                        let second = rho.expectation(&op_sq, targets).map_err(QrcError::Core)?.re;
                        let variance = (second - mean * mean).max(0.0);
                        mean + normal.sample(rng) * (variance / shots as f64).sqrt()
                    } else {
                        mean
                    };
                    row.push(value);
                }
            }
            features.push(row);
        }
        Ok(features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks;

    #[test]
    fn construction_validates_parameters() {
        assert!(QuantumReservoir::new(ReservoirParams { modes: 0, ..ReservoirParams::small() })
            .is_err());
        assert!(QuantumReservoir::new(ReservoirParams { levels: 1, ..ReservoirParams::small() })
            .is_err());
        assert!(QuantumReservoir::new(ReservoirParams {
            frequencies: vec![1.0],
            ..ReservoirParams::small()
        })
        .is_err());
        assert!(QuantumReservoir::new(ReservoirParams { substeps: 0, ..ReservoirParams::small() })
            .is_err());
        assert!(QuantumReservoir::new(ReservoirParams {
            virtual_nodes: 0,
            ..ReservoirParams::small()
        })
        .is_err());
        let r = QuantumReservoir::new(ReservoirParams::small()).unwrap();
        // (2 modes × 4 single-mode observables + 1 pair observable) × 3 virtual nodes.
        assert_eq!(r.feature_dim(), 27);
        assert_eq!(r.observable_labels().len(), 9);
        assert_eq!(ReservoirParams::paper_reference().effective_neurons(), 81);
    }

    #[test]
    fn constant_zero_input_keeps_reservoir_near_vacuum() {
        let r = QuantumReservoir::new(ReservoirParams::small()).unwrap();
        let features = r.run(&[0.0, 0.0, 0.0]).unwrap();
        assert_eq!(features.len(), 3);
        for row in &features {
            // Photon numbers remain at zero without drive.
            assert!(row[0].abs() < 1e-9, "n0 = {}", row[0]);
        }
    }

    #[test]
    fn inputs_excite_and_couple_the_modes() {
        let r = QuantumReservoir::new(ReservoirParams::small()).unwrap();
        let features = r.run(&[0.4, 0.4, 0.0, 0.0]).unwrap();
        let labels = r.observable_labels();
        let n0_idx = labels.iter().position(|l| l == "n0").unwrap();
        let n1_idx = labels.iter().position(|l| l == "n1").unwrap();
        // The driven mode is populated...
        assert!(features[1][n0_idx] > 1e-3);
        // ...and the coupling transfers excitation to the second mode.
        assert!(features[3][n1_idx] > 1e-4);
    }

    #[test]
    fn reservoir_has_fading_memory() {
        // Two different early inputs, identical later inputs: the feature
        // difference must decay with time (dissipation washes out the past).
        let r = QuantumReservoir::new(ReservoirParams::small()).unwrap();
        let mut input_a = vec![0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let input_b = vec![0.1, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        input_a[0] = 0.5;
        let fa = r.run(&input_a).unwrap();
        let fb = r.run(&input_b).unwrap();
        let diff =
            |k: usize| -> f64 { fa[k].iter().zip(fb[k].iter()).map(|(x, y)| (x - y).abs()).sum() };
        assert!(diff(0) > 1e-3);
        assert!(diff(7) < diff(0));
    }

    #[test]
    fn shot_noise_perturbs_features_and_vanishes_for_many_shots() {
        let r = QuantumReservoir::new(ReservoirParams::small()).unwrap();
        let inputs = tasks::narma(2, 6, 3).inputs;
        let exact = r.run(&inputs).unwrap();
        let few = r.run_with_shots(&inputs, 10, 5).unwrap();
        let many = r.run_with_shots(&inputs, 1_000_000, 5).unwrap();
        let rms = |a: &[Vec<f64>], b: &[Vec<f64>]| -> f64 {
            let mut acc = 0.0;
            let mut count = 0;
            for (ra, rb) in a.iter().zip(b.iter()) {
                for (x, y) in ra.iter().zip(rb.iter()) {
                    acc += (x - y).powi(2);
                    count += 1;
                }
            }
            (acc / count as f64).sqrt()
        };
        assert!(rms(&exact, &few) > rms(&exact, &many));
        assert!(rms(&exact, &many) < 1e-2);
        assert!(r.run_with_shots(&inputs, 0, 1).is_err());
    }
}
