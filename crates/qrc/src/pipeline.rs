//! End-to-end reservoir-computing pipeline: drive a reservoir with a task's
//! inputs, train the linear readout on the first part of the series, and
//! report the test-set NMSE.

use serde::{Deserialize, Serialize};

use crate::error::{QrcError, Result};
use crate::esn::{EchoStateNetwork, EsnParams};
use crate::reservoir::{QuantumReservoir, ReservoirParams};
use crate::tasks::{nmse, TimeSeriesTask};
use crate::train::fit_ridge;

/// Evaluation of one reservoir on one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Reservoir label.
    pub reservoir: String,
    /// Task name.
    pub task: String,
    /// Feature dimension exposed to the readout.
    pub feature_dim: usize,
    /// Training-set NMSE.
    pub train_nmse: f64,
    /// Test-set NMSE (the headline figure of merit).
    pub test_nmse: f64,
}

/// Washout: initial samples excluded from training so transients die out.
const WASHOUT: usize = 5;

/// Evaluates a quantum reservoir on a task with exact (infinite-shot)
/// read-out.
///
/// # Errors
/// Returns an error if simulation or training fails.
pub fn evaluate_quantum(
    params: &ReservoirParams,
    task: &TimeSeriesTask,
    train_fraction: f64,
    ridge: f64,
) -> Result<Evaluation> {
    let reservoir = QuantumReservoir::new(params.clone())?;
    let features = reservoir.run(&task.inputs)?;
    evaluate_features(
        format!("quantum-{}x{}", params.modes, params.levels),
        reservoir.feature_dim(),
        &features,
        task,
        train_fraction,
        ridge,
    )
}

/// Evaluates a quantum reservoir with a finite shot budget per observable.
///
/// # Errors
/// Returns an error if simulation or training fails.
pub fn evaluate_quantum_with_shots(
    params: &ReservoirParams,
    task: &TimeSeriesTask,
    train_fraction: f64,
    ridge: f64,
    shots: usize,
    seed: u64,
) -> Result<Evaluation> {
    let reservoir = QuantumReservoir::new(params.clone())?;
    let features = reservoir.run_with_shots(&task.inputs, shots, seed)?;
    evaluate_features(
        format!("quantum-{}x{}@{}shots", params.modes, params.levels, shots),
        reservoir.feature_dim(),
        &features,
        task,
        train_fraction,
        ridge,
    )
}

/// Evaluates the **digital** (gate-based) reservoir on a task: the
/// parameterized segment circuit is compiled once and rebound per input
/// sample (see [`crate::digital::DigitalReservoir`]).
///
/// # Errors
/// Returns an error if simulation or training fails.
pub fn evaluate_quantum_digital(
    params: &ReservoirParams,
    task: &TimeSeriesTask,
    train_fraction: f64,
    ridge: f64,
) -> Result<Evaluation> {
    let mut reservoir = crate::digital::DigitalReservoir::new(params.clone())?;
    let features = reservoir.run(&task.inputs)?;
    evaluate_features(
        format!("digital-{}x{}", params.modes, params.levels),
        reservoir.feature_dim(),
        &features,
        task,
        train_fraction,
        ridge,
    )
}

/// Evaluates the classical echo-state-network baseline on a task.
///
/// # Errors
/// Returns an error if construction or training fails.
pub fn evaluate_esn(
    params: &EsnParams,
    task: &TimeSeriesTask,
    train_fraction: f64,
    ridge: f64,
) -> Result<Evaluation> {
    let esn = EchoStateNetwork::new(*params)?;
    let features = esn.run(&task.inputs);
    evaluate_features(
        format!("esn-{}", params.size),
        esn.feature_dim(),
        &features,
        task,
        train_fraction,
        ridge,
    )
}

fn evaluate_features(
    label: String,
    feature_dim: usize,
    features: &[Vec<f64>],
    task: &TimeSeriesTask,
    train_fraction: f64,
    ridge: f64,
) -> Result<Evaluation> {
    if features.len() != task.len() {
        return Err(QrcError::InvalidConfig(format!(
            "feature count {} does not match task length {}",
            features.len(),
            task.len()
        )));
    }
    if !(0.0..1.0).contains(&train_fraction) || task.len() < WASHOUT + 4 {
        return Err(QrcError::InvalidConfig(
            "train_fraction must lie in (0,1) and the task must be longer than the washout".into(),
        ));
    }
    let split = ((task.len() as f64) * train_fraction).round() as usize;
    let split = split.clamp(WASHOUT + 2, task.len() - 2);
    let train_x = &features[WASHOUT..split];
    let train_y = &task.targets[WASHOUT..split];
    let test_x = &features[split..];
    let test_y = &task.targets[split..];
    let readout = fit_ridge(train_x, train_y, ridge)?;
    let train_pred = readout.predict_batch(train_x);
    let test_pred = readout.predict_batch(test_x);
    Ok(Evaluation {
        reservoir: label,
        task: task.name.clone(),
        feature_dim,
        train_nmse: nmse(&train_pred, train_y),
        test_nmse: nmse(&test_pred, test_y),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks;

    #[test]
    fn quantum_reservoir_learns_memory_task_better_than_constant_predictor() {
        let task = tasks::memory_task(150, 1, 11);
        let eval = evaluate_quantum(&ReservoirParams::small(), &task, 0.7, 1e-4).unwrap();
        // NMSE of 1.0 corresponds to predicting the mean; the reservoir must
        // do meaningfully better on a 1-step memory task.
        assert!(eval.test_nmse < 0.6, "test NMSE {}", eval.test_nmse);
        assert_eq!(eval.feature_dim, 27);
    }

    #[test]
    fn digital_reservoir_learns_memory_task_better_than_constant_predictor() {
        let task = tasks::memory_task(120, 1, 11);
        let eval = evaluate_quantum_digital(&ReservoirParams::small(), &task, 0.7, 1e-4).unwrap();
        assert!(eval.test_nmse < 0.6, "test NMSE {}", eval.test_nmse);
        assert_eq!(eval.feature_dim, 27);
        assert!(eval.reservoir.starts_with("digital-"));
    }

    #[test]
    fn esn_pipeline_runs_and_reports_both_errors() {
        let task = tasks::narma(2, 200, 5);
        let eval = evaluate_esn(&EsnParams::default(), &task, 0.75, 1e-6).unwrap();
        assert!(eval.train_nmse.is_finite());
        assert!(eval.test_nmse.is_finite());
        assert!(eval.train_nmse < 1.0);
    }

    #[test]
    fn shot_noise_degrades_performance() {
        // Compare a starved shot budget with a generous one on a well-
        // conditioned training set: the starved budget should be measurably
        // worse.
        let task = tasks::memory_task(150, 1, 13);
        let few =
            evaluate_quantum_with_shots(&ReservoirParams::small(), &task, 0.7, 1e-3, 5, 3).unwrap();
        let many =
            evaluate_quantum_with_shots(&ReservoirParams::small(), &task, 0.7, 1e-3, 200_000, 3)
                .unwrap();
        assert!(
            few.test_nmse > many.test_nmse,
            "5-shot NMSE {} should exceed 200k-shot NMSE {}",
            few.test_nmse,
            many.test_nmse
        );
    }

    #[test]
    fn invalid_configurations_rejected() {
        let task = tasks::memory_task(30, 1, 1);
        assert!(evaluate_quantum(&ReservoirParams::small(), &task, 1.5, 1e-6).is_err());
        let tiny = tasks::memory_task(6, 1, 1);
        assert!(evaluate_quantum(&ReservoirParams::small(), &tiny, 0.5, 1e-6).is_err());
    }
}
