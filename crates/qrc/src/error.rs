//! Error types for the quantum-reservoir-computing application crate.

use std::fmt;

/// Result alias used throughout `qrc`.
pub type Result<T> = std::result::Result<T, QrcError>;

/// Errors produced by reservoir construction, training and evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QrcError {
    /// A reservoir or task configuration was invalid.
    InvalidConfig(String),
    /// Training failed (singular normal equations, empty data, ...).
    TrainingFailed(String),
    /// An error bubbled up from the numerics substrate.
    Core(qudit_core::CoreError),
    /// An error bubbled up from the cQED simulator.
    Cavity(cavity_sim::CavityError),
    /// An error bubbled up from the circuit layer (digital reservoir).
    Circuit(qudit_circuit::CircuitError),
}

impl fmt::Display for QrcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QrcError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            QrcError::TrainingFailed(msg) => write!(f, "training failed: {msg}"),
            QrcError::Core(e) => write!(f, "core error: {e}"),
            QrcError::Cavity(e) => write!(f, "cavity error: {e}"),
            QrcError::Circuit(e) => write!(f, "circuit error: {e}"),
        }
    }
}

impl std::error::Error for QrcError {}

impl From<qudit_core::CoreError> for QrcError {
    fn from(e: qudit_core::CoreError) -> Self {
        QrcError::Core(e)
    }
}

impl From<cavity_sim::CavityError> for QrcError {
    fn from(e: cavity_sim::CavityError) -> Self {
        QrcError::Cavity(e)
    }
}

impl From<qudit_circuit::CircuitError> for QrcError {
    fn from(e: qudit_circuit::CircuitError) -> Self {
        QrcError::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        assert!(QrcError::InvalidConfig("x".into()).to_string().contains("invalid configuration"));
        let e: QrcError = qudit_core::CoreError::InvalidDimension(1).into();
        assert!(e.to_string().contains("core error"));
    }
}
