//! Benchmark time-series tasks for reservoir computing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A supervised time-series task: inputs and per-step targets.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesTask {
    /// Task name.
    pub name: String,
    /// Input sequence `u_k`.
    pub inputs: Vec<f64>,
    /// Target sequence `y_k` (same length).
    pub targets: Vec<f64>,
}

impl TimeSeriesTask {
    /// Length of the series.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Returns `true` if the task is empty.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Splits into (train, test) at the given fraction.
    pub fn split(&self, train_fraction: f64) -> (TimeSeriesTask, TimeSeriesTask) {
        let cut = ((self.len() as f64) * train_fraction).round() as usize;
        let cut = cut.clamp(1, self.len().saturating_sub(1).max(1));
        (
            TimeSeriesTask {
                name: format!("{}-train", self.name),
                inputs: self.inputs[..cut].to_vec(),
                targets: self.targets[..cut].to_vec(),
            },
            TimeSeriesTask {
                name: format!("{}-test", self.name),
                inputs: self.inputs[cut..].to_vec(),
                targets: self.targets[cut..].to_vec(),
            },
        )
    }
}

/// NARMA-`order` nonlinear autoregressive moving-average task: random inputs
/// in `[0, 0.5]`, targets follow the standard NARMA recursion.
pub fn narma(order: usize, length: usize, seed: u64) -> TimeSeriesTask {
    let order = order.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs: Vec<f64> = (0..length).map(|_| 0.5 * rng.gen::<f64>()).collect();
    let mut y = vec![0.0_f64; length];
    for k in 0..length.saturating_sub(1) {
        let window_sum: f64 = (0..order).map(|j| y[k.saturating_sub(j)]).sum();
        let u_back = inputs[k.saturating_sub(order - 1)];
        let next = 0.3 * y[k] + 0.05 * y[k] * window_sum + 1.5 * u_back * inputs[k] + 0.1;
        y[k + 1] = next.clamp(-5.0, 5.0);
    }
    TimeSeriesTask { name: format!("NARMA-{order}"), inputs, targets: y }
}

/// Discretised Mackey–Glass chaotic series (τ = 17); the task is one-step-
/// ahead prediction, so `targets[k] = series[k+1]` and the last sample is
/// dropped.
pub fn mackey_glass(length: usize, seed: u64) -> TimeSeriesTask {
    let tau = 17usize;
    let dt = 1.0;
    let mut rng = StdRng::seed_from_u64(seed);
    let warmup = 200;
    let total = length + warmup + 1;
    let mut x = vec![1.2 + 0.1 * rng.gen::<f64>(); total + tau];
    for k in tau..(total + tau - 1) {
        let delayed = x[k - tau];
        let dx = 0.2 * delayed / (1.0 + delayed.powi(10)) - 0.1 * x[k];
        x[k + 1] = x[k] + dt * dx;
    }
    let series: Vec<f64> = x[(warmup + tau)..(warmup + tau + length + 1)].to_vec();
    TimeSeriesTask {
        name: "Mackey-Glass".into(),
        inputs: series[..length].to_vec(),
        targets: series[1..=length].to_vec(),
    }
}

/// Sine-vs-square waveform classification: the input alternates between sine
/// and square segments; the target is the segment label (0 or 1).
pub fn sine_square_classification(
    segments: usize,
    samples_per_segment: usize,
    seed: u64,
) -> TimeSeriesTask {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inputs = Vec::with_capacity(segments * samples_per_segment);
    let mut targets = Vec::with_capacity(segments * samples_per_segment);
    for _ in 0..segments {
        let is_square = rng.gen::<bool>();
        for s in 0..samples_per_segment {
            let phase = 2.0 * std::f64::consts::PI * s as f64 / samples_per_segment as f64;
            let value = if is_square {
                if phase.sin() >= 0.0 {
                    0.4
                } else {
                    -0.4
                }
            } else {
                0.4 * phase.sin()
            };
            inputs.push(value);
            targets.push(if is_square { 1.0 } else { 0.0 });
        }
    }
    TimeSeriesTask { name: "sine-vs-square".into(), inputs, targets }
}

/// Short-term-memory task: the target is the input delayed by `delay` steps.
pub fn memory_task(length: usize, delay: usize, seed: u64) -> TimeSeriesTask {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs: Vec<f64> = (0..length).map(|_| rng.gen::<f64>() - 0.5).collect();
    let targets: Vec<f64> =
        (0..length).map(|k| if k >= delay { inputs[k - delay] } else { 0.0 }).collect();
    TimeSeriesTask { name: format!("memory-{delay}"), inputs, targets }
}

/// Normalised mean squared error between predictions and targets.
pub fn nmse(predictions: &[f64], targets: &[f64]) -> f64 {
    let n = predictions.len().min(targets.len());
    if n == 0 {
        return f64::NAN;
    }
    let mean = targets.iter().take(n).sum::<f64>() / n as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..n {
        num += (predictions[i] - targets[i]).powi(2);
        den += (targets[i] - mean).powi(2);
    }
    if den < 1e-15 {
        num / n as f64
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narma_series_is_bounded_and_deterministic() {
        let a = narma(10, 200, 3);
        let b = narma(10, 200, 3);
        assert_eq!(a, b);
        assert!(a.targets.iter().all(|y| y.is_finite() && y.abs() <= 5.0));
        assert!(a.inputs.iter().all(|&u| (0.0..=0.5).contains(&u)));
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn mackey_glass_is_nontrivial() {
        let task = mackey_glass(150, 1);
        assert_eq!(task.len(), 150);
        let mean = task.inputs.iter().sum::<f64>() / 150.0;
        let var = task.inputs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / 150.0;
        assert!(var > 1e-4, "series should fluctuate, var = {var}");
        // One-step-ahead structure.
        assert!((task.targets[0] - task.inputs[1]).abs() < 1e-12);
    }

    #[test]
    fn classification_targets_are_binary() {
        let task = sine_square_classification(6, 10, 2);
        assert_eq!(task.len(), 60);
        assert!(task.targets.iter().all(|&t| t == 0.0 || t == 1.0));
        assert!(task.inputs.iter().all(|&u| u.abs() <= 0.4 + 1e-12));
    }

    #[test]
    fn memory_task_shifts_inputs() {
        let task = memory_task(50, 3, 9);
        for k in 3..50 {
            assert!((task.targets[k] - task.inputs[k - 3]).abs() < 1e-12);
        }
    }

    #[test]
    fn nmse_properties() {
        let t = vec![1.0, 2.0, 3.0, 4.0];
        assert!(nmse(&t, &t) < 1e-15);
        let mean_pred = vec![2.5; 4];
        assert!((nmse(&mean_pred, &t) - 1.0).abs() < 1e-12);
        assert!(nmse(&[], &[]).is_nan());
    }

    #[test]
    fn split_preserves_total_length() {
        let task = narma(2, 100, 1);
        let (train, test) = task.split(0.7);
        assert_eq!(train.len() + test.len(), 100);
        assert_eq!(train.len(), 70);
    }
}
