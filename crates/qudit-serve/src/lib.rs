//! Resilient serving layer for the qudit simulators: a cancellable job
//! engine with per-job deadlines and priorities, bounded-queue backpressure,
//! retry escalation for transient numerical faults, per-job panic isolation,
//! graceful shutdown, and a shared single-flight plan cache.
//!
//! The engine builds directly on the reliability plumbing of the lower
//! layers: every job carries a [`CancelToken`]
//! that the simulators poll at their guard-cadence checkpoints, so a
//! cancellation or deadline stops a running sweep within one cadence
//! interval — bitwise-reproducibly up to the cancellation point. Compiled
//! execution plans are shared across requests through a
//! [`PlanCache`] keyed by the circuit's
//! [`structural hash`](qudit_circuit::Circuit::structural_hash): identical
//! topologies (including the same circuit under *different* parameter
//! bindings) compile once and rebind per request.
//!
//! # Quickstart
//!
//! ```
//! use qudit_circuit::{Circuit, Gate};
//! use qudit_serve::{JobOutcome, JobSpec, ServeConfig, ServeEngine};
//!
//! let mut circuit = Circuit::new(vec![3, 3]);
//! circuit.push(Gate::fourier(3), &[0]).unwrap();
//! circuit.push(Gate::csum(3, 3), &[0, 1]).unwrap();
//!
//! let engine = ServeEngine::start(ServeConfig::default());
//! let handle = engine.submit(JobSpec::statevector(circuit)).unwrap();
//! match handle.wait() {
//!     JobOutcome::Completed(probs) => {
//!         assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
//!     }
//!     other => panic!("unexpected outcome: {other:?}"),
//! }
//! engine.join();
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod engine;
mod queue;

pub use cache::{CacheStats, PlanCache};
pub use engine::{
    Backpressure, JobHandle, JobKind, JobOutcome, JobSpec, ServeConfig, ServeEngine, ServeStats,
    SubmitError,
};

// Re-exported so clients can configure guards and inspect cancellation
// reasons without a direct qudit-core dependency.
pub use qudit_circuit::sim::{CancelReason, CancelToken, GuardConfig, GuardPolicy};
