//! Bounded priority submission queue.
//!
//! A deliberately simple `Vec`-backed structure: the serving engine holds it
//! under one mutex and queue depths are bounded (tens to hundreds), so a
//! linear scan beats a binary heap that would need secondary bookkeeping for
//! shed-oldest removal anyway. Ordering rules:
//!
//! * [`pop_best`](BoundedQueue::pop_best) returns the highest-priority item;
//!   ties break FIFO (lowest submission sequence number first).
//! * [`shed_oldest`](BoundedQueue::shed_oldest) removes the item with the
//!   lowest sequence number regardless of priority — under the
//!   `ShedOldest` backpressure policy the job that has waited longest is
//!   the one closest to its deadline and thus the cheapest to drop.

/// A bounded FIFO-within-priority queue. Capacity is enforced by the caller
/// (the engine decides *how* to react to a full queue); the structure itself
/// only reports fullness.
#[derive(Debug)]
pub(crate) struct BoundedQueue<T> {
    capacity: usize,
    next_seq: u64,
    items: Vec<(u64, u8, T)>,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), next_seq: 0, items: Vec::new() }
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Appends an item with the given priority, assigning it the next
    /// submission sequence number. The caller must have made room first.
    pub fn push(&mut self, priority: u8, item: T) {
        debug_assert!(!self.is_full(), "engine must shed or block before pushing");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.items.push((seq, priority, item));
    }

    /// Removes and returns the highest-priority item (FIFO within a
    /// priority level).
    pub fn pop_best(&mut self) -> Option<T> {
        let best = self
            .items
            .iter()
            .enumerate()
            .max_by_key(|(_, (seq, priority, _))| (*priority, std::cmp::Reverse(*seq)))
            .map(|(i, _)| i)?;
        Some(self.items.remove(best).2)
    }

    /// Removes and returns the longest-waiting item (lowest sequence
    /// number), ignoring priority.
    pub fn shed_oldest(&mut self) -> Option<T> {
        let oldest = self.items.iter().enumerate().min_by_key(|(_, (seq, _, _))| *seq)?.0;
        Some(self.items.remove(oldest).2)
    }

    /// Removes up to `limit` items satisfying `pred` and returns them in pop
    /// order (highest priority first, FIFO within a priority level). Used by
    /// the engine to coalesce queued same-plan jobs into one batched run;
    /// non-matching items keep their queue positions.
    pub fn drain_where(&mut self, limit: usize, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        if limit == 0 {
            return Vec::new();
        }
        let mut matching: Vec<(u64, u8)> = self
            .items
            .iter()
            .filter(|(_, _, item)| pred(item))
            .map(|(seq, priority, _)| (*seq, *priority))
            .collect();
        matching.sort_by_key(|&(seq, priority)| (std::cmp::Reverse(priority), seq));
        matching.truncate(limit);
        let chosen: Vec<u64> = matching.iter().map(|&(seq, _)| seq).collect();
        let mut taken: Vec<(u64, u8, T)> = Vec::with_capacity(chosen.len());
        let mut kept: Vec<(u64, u8, T)> = Vec::with_capacity(self.items.len());
        for entry in self.items.drain(..) {
            if chosen.contains(&entry.0) {
                taken.push(entry);
            } else {
                kept.push(entry);
            }
        }
        self.items = kept;
        taken.sort_by_key(|&(seq, priority, _)| (std::cmp::Reverse(priority), seq));
        taken.into_iter().map(|(_, _, item)| item).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_is_fifo_within_priority() {
        let mut q = BoundedQueue::new(8);
        q.push(0, "a");
        q.push(0, "b");
        q.push(0, "c");
        assert_eq!(q.pop_best(), Some("a"));
        assert_eq!(q.pop_best(), Some("b"));
        assert_eq!(q.pop_best(), Some("c"));
        assert_eq!(q.pop_best(), None);
    }

    #[test]
    fn higher_priority_preempts_queue_order() {
        let mut q = BoundedQueue::new(8);
        q.push(0, "low-early");
        q.push(5, "high-late");
        q.push(5, "high-later");
        q.push(0, "low-late");
        assert_eq!(q.pop_best(), Some("high-late"));
        assert_eq!(q.pop_best(), Some("high-later"));
        assert_eq!(q.pop_best(), Some("low-early"));
        assert_eq!(q.pop_best(), Some("low-late"));
    }

    #[test]
    fn shed_oldest_ignores_priority() {
        let mut q = BoundedQueue::new(8);
        q.push(0, "oldest");
        q.push(9, "urgent");
        assert_eq!(q.shed_oldest(), Some("oldest"));
        assert_eq!(q.len(), 1);
        assert_eq!(q.shed_oldest(), Some("urgent"));
        assert_eq!(q.shed_oldest(), None);
    }

    #[test]
    fn drain_where_takes_matches_in_pop_order_and_keeps_the_rest() {
        let mut q = BoundedQueue::new(8);
        q.push(0, "even-0");
        q.push(0, "odd-1");
        q.push(5, "even-2");
        q.push(0, "even-4");
        q.push(9, "odd-3");
        let drained = q.drain_where(2, |s| s.starts_with("even"));
        // Highest priority first, FIFO within a level; limit respected.
        assert_eq!(drained, vec!["even-2", "even-0"]);
        assert_eq!(q.len(), 3);
        // Non-matching (and over-limit) items keep their queue order.
        assert_eq!(q.pop_best(), Some("odd-3"));
        assert_eq!(q.pop_best(), Some("odd-1"));
        assert_eq!(q.pop_best(), Some("even-4"));
        assert!(q.drain_where(0, |_| true).is_empty());
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let q: BoundedQueue<()> = BoundedQueue::new(0);
        assert!(!q.is_full());
        let mut q = BoundedQueue::new(0);
        q.push(0, ());
        assert!(q.is_full());
    }
}
