//! The job engine: bounded submission, worker pool, per-job deadlines and
//! cancellation, retry escalation, panic isolation, graceful shutdown.
//!
//! # Job lifecycle
//!
//! ```text
//! submit ──► Queued ──► Running ──► Completed | Failed | Cancelled | Panicked
//!    │                     ▲
//!    │                     └── retries (NumericalHealth only, escalating
//!    │                         guard policy, exponential backoff)
//!    └──► Rejected (queue full / shutting down)   Queued ──► Shed (policy)
//! ```
//!
//! Every job carries a [`CancelToken`] shared with its [`JobHandle`]: the
//! client can trip it explicitly, and a per-job deadline (measured from
//! *submission*, so queue wait counts) arms the token's deadline clock. The
//! token is threaded into the simulator, which polls it at the guard-cadence
//! checkpoints — a cancelled job stops within one cadence interval and
//! surfaces here as [`JobOutcome::Cancelled`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use qudit_circuit::error::CircuitError;
use qudit_circuit::noise::NoiseModel;
use qudit_circuit::sim::{
    CancelReason, CancelToken, CompiledCircuit, CompiledDensityCircuit, DensityMatrixSimulator,
    GuardConfig, GuardPolicy, StatevectorSimulator,
};
use qudit_circuit::Circuit;
use qudit_core::error::CoreError;
use qudit_core::state::QuditState;

use crate::cache::{CacheStats, PlanCache};
use crate::queue::BoundedQueue;

/// What to do when a submission arrives and the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Fail the submission immediately with [`SubmitError::QueueFull`].
    #[default]
    Reject,
    /// Block the submitting thread until a slot frees up (or the engine
    /// shuts down, which fails the submission).
    Block,
    /// Admit the new job by resolving the longest-waiting queued job with
    /// [`JobOutcome::Shed`].
    ShedOldest,
}

/// Engine configuration. All knobs have serving-oriented defaults; override
/// with the builder methods.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing jobs (clamped to at least 1).
    pub workers: usize,
    /// Maximum queued (not yet running) jobs (clamped to at least 1).
    pub queue_capacity: usize,
    /// Reaction to a full queue.
    pub backpressure: Backpressure,
    /// Deadline applied to jobs that do not carry their own; measured from
    /// submission, so time spent queued counts against it.
    pub default_deadline: Option<Duration>,
    /// Maximum re-runs after a transient `NumericalHealth` failure.
    pub max_retries: usize,
    /// Base sleep before the first retry; doubles per attempt.
    pub retry_backoff: Duration,
    /// Ready-plan capacity of each plan cache; `0` compiles per request.
    pub plan_cache_capacity: usize,
    /// Worker-pool threads each job may use internally (1 = jobs are the
    /// unit of parallelism, the usual serving configuration).
    pub threads_per_job: usize,
    /// Numerical-health guard applied to every run; retries escalate its
    /// policy (`RenormalizeAndCount`, then `FallBack`) on top of this base.
    pub guard: GuardConfig,
    /// Noise model compiled into every plan.
    pub noise: NoiseModel,
    /// Base RNG seed; each job derives its own reproducible stream from it.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            backpressure: Backpressure::Reject,
            default_deadline: None,
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            plan_cache_capacity: 32,
            threads_per_job: 1,
            guard: GuardConfig::enabled(),
            noise: NoiseModel::noiseless(),
            seed: 0x5E27E,
        }
    }
}

impl ServeConfig {
    /// Sets the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the submission-queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the full-queue policy.
    pub fn with_backpressure(mut self, policy: Backpressure) -> Self {
        self.backpressure = policy;
        self
    }

    /// Sets the deadline applied to jobs without their own.
    pub fn with_default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Sets the transient-failure retry budget.
    pub fn with_max_retries(mut self, retries: usize) -> Self {
        self.max_retries = retries;
        self
    }

    /// Sets the base retry backoff (doubles per attempt).
    pub fn with_retry_backoff(mut self, backoff: Duration) -> Self {
        self.retry_backoff = backoff;
        self
    }

    /// Sets the plan-cache capacity (`0` disables caching).
    pub fn with_plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.plan_cache_capacity = capacity;
        self
    }

    /// Sets the per-job internal thread budget.
    pub fn with_threads_per_job(mut self, threads: usize) -> Self {
        self.threads_per_job = threads;
        self
    }

    /// Sets the base numerical-health guard.
    pub fn with_guard(mut self, guard: GuardConfig) -> Self {
        self.guard = guard;
        self
    }

    /// Sets the noise model compiled into every plan.
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the base RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// What a job computes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobKind {
    /// Run the statevector simulator and return the final outcome
    /// probabilities `|⟨i|ψ⟩|²` over the full register.
    StatevectorProbs,
    /// Run the density-matrix simulator and return the diagonal populations
    /// `⟨i|ρ|i⟩` over the full register.
    DensityDiagonal,
    /// Panics inside the worker — exists only to exercise the engine's
    /// panic isolation in the fault-injection test matrix.
    #[cfg(feature = "fault-inject")]
    InjectPanic,
}

/// A job submission: circuit, computation kind, optional parameter binding,
/// priority and deadline.
#[derive(Debug, Clone)]
pub struct JobSpec {
    circuit: Circuit,
    kind: JobKind,
    params: Option<Vec<f64>>,
    priority: u8,
    deadline: Option<Duration>,
}

impl JobSpec {
    /// A statevector job returning outcome probabilities.
    pub fn statevector(circuit: Circuit) -> Self {
        Self { circuit, kind: JobKind::StatevectorProbs, params: None, priority: 0, deadline: None }
    }

    /// A density-matrix job returning diagonal populations.
    pub fn density(circuit: Circuit) -> Self {
        Self { circuit, kind: JobKind::DensityDiagonal, params: None, priority: 0, deadline: None }
    }

    /// A job whose execution panics (fault-injection builds only), for
    /// testing worker panic isolation.
    #[cfg(feature = "fault-inject")]
    pub fn inject_panic() -> Self {
        Self {
            circuit: Circuit::new(vec![2]),
            kind: JobKind::InjectPanic,
            params: None,
            priority: 0,
            deadline: None,
        }
    }

    /// Binds the circuit's free parameters before the run.
    pub fn with_params(mut self, params: Vec<f64>) -> Self {
        self.params = Some(params);
        self
    }

    /// Sets the scheduling priority (higher runs first; FIFO within equal
    /// priority).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets a per-job deadline, measured from submission.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Terminal state of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The job ran to completion; payload depends on the [`JobKind`].
    Completed(Vec<f64>),
    /// The job failed with a non-transient error (or exhausted its retry
    /// budget on a transient one).
    Failed(CircuitError),
    /// The job's token tripped — explicitly or by deadline — before or
    /// during the run.
    Cancelled(CancelReason),
    /// The job panicked; the engine caught it and the worker survived.
    Panicked(String),
    /// The job was dropped from the queue by the `ShedOldest` policy.
    Shed,
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is full and the policy is [`Backpressure::Reject`].
    QueueFull,
    /// The engine is shutting down and admits no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "submission queue is full"),
            SubmitError::ShuttingDown => write!(f, "engine is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Counter snapshot for a running engine (see [`ServeEngine::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs admitted to the queue.
    pub submitted: u64,
    /// Jobs resolved [`JobOutcome::Completed`].
    pub completed: u64,
    /// Jobs resolved [`JobOutcome::Failed`].
    pub failed: u64,
    /// Jobs resolved [`JobOutcome::Cancelled`].
    pub cancelled: u64,
    /// Jobs resolved [`JobOutcome::Panicked`].
    pub panicked: u64,
    /// Jobs resolved [`JobOutcome::Shed`].
    pub shed: u64,
    /// Submissions refused ([`SubmitError`]).
    pub rejected: u64,
    /// Transient-failure re-runs across all jobs.
    pub retries: u64,
    /// Ensemble passes that coalesced ≥ 2 queued same-plan statevector jobs.
    pub batches: u64,
    /// Jobs whose result came out of a coalesced ensemble pass.
    pub batched_jobs: u64,
    /// Statevector plan-cache counters.
    pub statevector_cache: CacheStats,
    /// Density plan-cache counters.
    pub density_cache: CacheStats,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    panicked: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    retries: AtomicU64,
    batches: AtomicU64,
    batched_jobs: AtomicU64,
}

/// One-shot outcome slot shared between a worker and the job's handle.
#[derive(Debug, Default)]
struct OutcomeCell {
    slot: Mutex<Option<JobOutcome>>,
    done: Condvar,
}

impl OutcomeCell {
    fn resolve(&self, outcome: JobOutcome) {
        let mut slot = self.slot.lock().expect("outcome cell poisoned");
        if slot.is_none() {
            *slot = Some(outcome);
            self.done.notify_all();
        }
    }

    fn wait(&self) -> JobOutcome {
        let mut slot = self.slot.lock().expect("outcome cell poisoned");
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            slot = self.done.wait(slot).expect("outcome cell poisoned");
        }
    }

    fn try_get(&self) -> Option<JobOutcome> {
        self.slot.lock().expect("outcome cell poisoned").clone()
    }
}

/// Client-side handle to a submitted job: await, poll or cancel it.
#[derive(Debug)]
pub struct JobHandle {
    id: u64,
    token: CancelToken,
    cell: Arc<OutcomeCell>,
}

impl JobHandle {
    /// Engine-assigned job id (also the job's RNG-stream discriminator).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cooperative cancellation: the job stops at its next
    /// guard-cadence checkpoint (immediately, if still queued).
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Blocks until the job reaches a terminal state.
    pub fn wait(&self) -> JobOutcome {
        self.cell.wait()
    }

    /// Returns the outcome if the job has already resolved.
    pub fn try_outcome(&self) -> Option<JobOutcome> {
        self.cell.try_get()
    }
}

struct Job {
    id: u64,
    kind: JobKind,
    circuit: Circuit,
    params: Option<Vec<f64>>,
    structural_hash: u64,
    token: CancelToken,
    cell: Arc<OutcomeCell>,
}

struct EngineState {
    queue: BoundedQueue<Job>,
    in_flight: usize,
    shutdown: bool,
    paused: bool,
}

struct Shared {
    config: ServeConfig,
    state: Mutex<EngineState>,
    /// Workers wait here for queued jobs (or shutdown).
    work: Condvar,
    /// `Block`-policy submitters wait here for queue space.
    space: Condvar,
    /// `drain` callers wait here for queue-empty + nothing in flight.
    idle: Condvar,
    sv_cache: PlanCache<CompiledCircuit>,
    density_cache: PlanCache<CompiledDensityCircuit>,
    counters: Counters,
    next_id: AtomicU64,
}

/// The serving engine: a worker pool fed by a bounded priority queue, with
/// shared single-flight plan caches. See the crate-level docs for the job
/// lifecycle.
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeEngine {
    /// Starts the worker pool and returns the running engine.
    pub fn start(config: ServeConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(EngineState {
                queue: BoundedQueue::new(config.queue_capacity),
                in_flight: 0,
                shutdown: false,
                paused: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            idle: Condvar::new(),
            sv_cache: PlanCache::new(config.plan_cache_capacity),
            density_cache: PlanCache::new(config.plan_cache_capacity),
            counters: Counters::default(),
            next_id: AtomicU64::new(0),
            config,
        });
        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("qudit-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("worker thread spawn")
            })
            .collect();
        Self { shared, workers }
    }

    /// Submits a job, applying the configured backpressure policy if the
    /// queue is full.
    ///
    /// # Errors
    /// [`SubmitError::QueueFull`] under the `Reject` policy, or
    /// [`SubmitError::ShuttingDown`] once shutdown has begun (including
    /// while a `Block`-policy submission is waiting for space).
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        let shared = &self.shared;
        let deadline = spec.deadline.or(shared.config.default_deadline);
        let token = match deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        let cell = Arc::new(OutcomeCell::default());
        let job = Job {
            id,
            structural_hash: spec.circuit.structural_hash(),
            kind: spec.kind,
            circuit: spec.circuit,
            params: spec.params,
            token: token.clone(),
            cell: Arc::clone(&cell),
        };

        let mut state = shared.state.lock().expect("engine state poisoned");
        loop {
            if state.shutdown {
                shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::ShuttingDown);
            }
            if !state.queue.is_full() {
                break;
            }
            match shared.config.backpressure {
                Backpressure::Reject => {
                    shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(SubmitError::QueueFull);
                }
                Backpressure::Block => {
                    state = shared.space.wait(state).expect("engine state poisoned");
                }
                Backpressure::ShedOldest => {
                    if let Some(old) = state.queue.shed_oldest() {
                        shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                        old.cell.resolve(JobOutcome::Shed);
                    }
                    break;
                }
            }
        }
        state.queue.push(spec.priority, job);
        shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        drop(state);
        shared.work.notify_one();
        Ok(JobHandle { id, token, cell })
    }

    /// Stops workers from starting new jobs (in-flight jobs continue).
    /// Deterministic queue-saturation tests use this to fill the queue.
    pub fn pause(&self) {
        self.shared.state.lock().expect("engine state poisoned").paused = true;
    }

    /// Resumes job dispatch after [`pause`](Self::pause).
    pub fn resume(&self) {
        self.shared.state.lock().expect("engine state poisoned").paused = false;
        self.shared.work.notify_all();
    }

    /// Number of jobs queued but not yet running.
    pub fn queue_len(&self) -> usize {
        self.shared.state.lock().expect("engine state poisoned").queue.len()
    }

    /// Blocks until the queue is empty and no job is in flight. (With the
    /// engine paused and jobs queued, this waits until it is resumed.)
    pub fn drain(&self) {
        let mut state = self.shared.state.lock().expect("engine state poisoned");
        while !state.queue.is_empty() || state.in_flight > 0 {
            state = self.shared.idle.wait(state).expect("engine state poisoned");
        }
    }

    /// Begins graceful shutdown: new submissions are rejected, queued and
    /// in-flight jobs run to completion. Idempotent; does not block — use
    /// [`join`](Self::join) to wait for the drain.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("engine state poisoned");
            state.shutdown = true;
            // Shutdown overrides pause so the drain always makes progress.
            state.paused = false;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
    }

    /// Graceful shutdown plus join: drains every queued and in-flight job,
    /// then stops the workers.
    pub fn join(mut self) {
        self.shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Counter snapshot (monotone; taken without stopping the engine).
    pub fn stats(&self) -> ServeStats {
        let c = &self.shared.counters;
        ServeStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            panicked: c.panicked.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            batched_jobs: c.batched_jobs.load(Ordering::Relaxed),
            statevector_cache: self.shared.sv_cache.stats(),
            density_cache: self.shared.density_cache.stats(),
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Most queued same-plan statevector jobs one worker coalesces into a single
/// ensemble pass (the pass's width). Bounds panel memory and keeps a single
/// batch from starving other queued work.
const COALESCE_LIMIT: usize = 16;

fn worker_loop(shared: &Shared) {
    loop {
        let jobs = {
            let mut state = shared.state.lock().expect("engine state poisoned");
            loop {
                // Shutdown overrides pause: the queue must drain.
                if state.shutdown || !state.paused {
                    if let Some(job) = state.queue.pop_best() {
                        // Coalesce queued statevector jobs that share the
                        // popped job's execution plan into one batch; other
                        // kinds and plans keep their queue positions.
                        let mut jobs = vec![job];
                        if matches!(jobs[0].kind, JobKind::StatevectorProbs) {
                            let hash = jobs[0].structural_hash;
                            jobs.extend(state.queue.drain_where(COALESCE_LIMIT - 1, |j: &Job| {
                                j.structural_hash == hash
                                    && matches!(j.kind, JobKind::StatevectorProbs)
                            }));
                        }
                        state.in_flight += jobs.len();
                        break jobs;
                    }
                    if state.shutdown {
                        return;
                    }
                }
                state = shared.work.wait(state).expect("engine state poisoned");
            }
        };
        // Queue slots just freed: wake blocked submitters.
        shared.space.notify_all();

        let drained = jobs.len();
        if drained == 1 {
            let job = &jobs[0];
            let outcome = execute(shared, job);
            record_outcome(&shared.counters, &outcome);
            job.cell.resolve(outcome);
        } else {
            execute_batch(shared, &jobs);
        }

        let mut state = shared.state.lock().expect("engine state poisoned");
        state.in_flight -= drained;
        if state.queue.is_empty() && state.in_flight == 0 {
            shared.idle.notify_all();
        }
    }
}

/// Resolves a coalesced batch of same-plan statevector jobs. Members whose
/// token already tripped resolve [`JobOutcome::Cancelled`] without running;
/// the survivors execute as **one ensemble pass** with their per-job RNG
/// seeds, so each completed payload is bitwise identical to the serial
/// [`execute`] path. A column that fails inside the pass — or a pass that
/// cannot start at all — falls back to the serial path for the affected
/// jobs, which preserves the full retry/escalation ladder. A token tripping
/// *during* the pass is honoured at resolution time: the member resolves
/// `Cancelled` even though its column ran (batches trade mid-run
/// cancellation latency for throughput; single jobs keep the serial path
/// and its guard-cadence cancellation).
fn execute_batch(shared: &Shared, jobs: &[Job]) {
    let mut live: Vec<&Job> = Vec::with_capacity(jobs.len());
    for job in jobs {
        match job.token.status() {
            Some(reason) => {
                let outcome = JobOutcome::Cancelled(reason);
                record_outcome(&shared.counters, &outcome);
                job.cell.resolve(outcome);
            }
            None => live.push(job),
        }
    }
    let serial = |job: &Job| {
        let outcome = execute(shared, job);
        record_outcome(&shared.counters, &outcome);
        job.cell.resolve(outcome);
    };
    if live.len() < 2 {
        live.into_iter().for_each(serial);
        return;
    }
    let columns = catch_unwind(AssertUnwindSafe(|| batched_statevector(shared, &live)));
    let columns = match columns {
        Ok(Ok(columns)) => columns,
        // Structural failure (or a panic) before any column could resolve:
        // every member retries serially.
        Ok(Err(_)) | Err(_) => {
            live.into_iter().for_each(serial);
            return;
        }
    };
    shared.counters.batches.fetch_add(1, Ordering::Relaxed);
    for (job, column) in live.into_iter().zip(columns) {
        match column {
            Ok(values) => {
                let outcome = match job.token.status() {
                    Some(reason) => JobOutcome::Cancelled(reason),
                    None => {
                        shared.counters.batched_jobs.fetch_add(1, Ordering::Relaxed);
                        JobOutcome::Completed(values)
                    }
                };
                record_outcome(&shared.counters, &outcome);
                job.cell.resolve(outcome);
            }
            // Column-local failure: only this member re-runs serially.
            Err(_) => serial(job),
        }
    }
}

/// One ensemble pass over a coalesced batch: fetch (or compile) the shared
/// plan once, realise every member's parameter binding with `bind_batch`,
/// and run all columns together with the members' per-job seeds.
fn batched_statevector(
    shared: &Shared,
    jobs: &[&Job],
) -> Result<Vec<Result<Vec<f64>, CircuitError>>, CircuitError> {
    let cfg = &shared.config;
    let lead = jobs[0];
    let plan = shared.sv_cache.get_or_compile(lead.structural_hash, || {
        let plan =
            StatevectorSimulator::new().with_noise(cfg.noise.clone()).compile(&lead.circuit)?;
        #[cfg(debug_assertions)]
        debug_verify_sv(&lead.circuit, &plan, &cfg.noise);
        Ok::<_, CircuitError>(plan)
    })?;
    debug_assert_eq!(
        plan.dims(),
        lead.circuit.dims(),
        "plan-cache hit returned a plan with mismatched dimensions"
    );
    let population: Vec<Vec<f64>> =
        jobs.iter().map(|j| j.params.clone().unwrap_or_default()).collect();
    let batch = plan.bind_batch(&population)?;
    let seeds: Vec<u64> =
        jobs.iter().map(|j| cfg.seed ^ j.id.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
    let sim = StatevectorSimulator::new()
        .with_noise(cfg.noise.clone())
        .with_threads(cfg.threads_per_job)
        .with_guard(cfg.guard);
    let initial = QuditState::zero(plan.dims().to_vec()).map_err(CircuitError::Core)?;
    let columns = sim.run_ensemble_seeded(&plan, &batch, &initial, &seeds)?;
    Ok(columns
        .into_iter()
        .map(|col| Ok(col?.state.amplitudes().iter().map(|a| a.norm_sqr()).collect()))
        .collect())
}

fn record_outcome(counters: &Counters, outcome: &JobOutcome) {
    let counter = match outcome {
        JobOutcome::Completed(_) => &counters.completed,
        JobOutcome::Failed(_) => &counters.failed,
        JobOutcome::Cancelled(_) => &counters.cancelled,
        JobOutcome::Panicked(_) => &counters.panicked,
        JobOutcome::Shed => &counters.shed,
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Guard escalation ladder for transient-failure retries: the first re-run
/// upgrades the policy to `RenormalizeAndCount` (repair-and-continue), the
/// second to `FallBack` (degrade superoperator sweeps to their constituent
/// operations). Cadence and tolerance carry over from the base guard.
fn escalated_guard(base: GuardConfig, attempt: usize) -> GuardConfig {
    match attempt {
        0 => base,
        1 => GuardConfig::enabled()
            .with_cadence(base.cadence)
            .with_tol(base.tol)
            .with_policy(GuardPolicy::RenormalizeAndCount),
        _ => GuardConfig::enabled()
            .with_cadence(base.cadence)
            .with_tol(base.tol)
            .with_policy(GuardPolicy::FallBack),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one job to a terminal outcome: checks the token (a deadline that
/// expired while queued cancels without running), then retries transient
/// `NumericalHealth` failures up to the configured budget with exponential
/// backoff and an escalating guard policy. Panics are caught per attempt.
fn execute(shared: &Shared, job: &Job) -> JobOutcome {
    if let Some(reason) = job.token.status() {
        return JobOutcome::Cancelled(reason);
    }
    let mut attempt = 0usize;
    loop {
        let guard = escalated_guard(shared.config.guard, attempt);
        match catch_unwind(AssertUnwindSafe(|| run_once(shared, job, guard))) {
            Err(payload) => return JobOutcome::Panicked(panic_message(payload.as_ref())),
            Ok(Ok(values)) => return JobOutcome::Completed(values),
            Ok(Err(CircuitError::Core(CoreError::Cancelled { reason, .. }))) => {
                return JobOutcome::Cancelled(reason)
            }
            Ok(Err(err)) => {
                let transient =
                    matches!(err, CircuitError::Core(CoreError::NumericalHealth { .. }));
                if transient && attempt < shared.config.max_retries {
                    shared.counters.retries.fetch_add(1, Ordering::Relaxed);
                    let backoff =
                        shared.config.retry_backoff.saturating_mul(1u32 << attempt.min(16));
                    if !backoff.is_zero() {
                        thread::sleep(backoff);
                    }
                    attempt += 1;
                    continue;
                }
                return JobOutcome::Failed(err);
            }
        }
    }
}

/// Debug-build translation validation: every freshly compiled statevector
/// plan is verified against its source circuit before entering the cache.
/// Release builds skip the check; the `qudit-verify` mutation suite is the
/// standing evidence that these checks bite.
#[cfg(debug_assertions)]
fn debug_verify_sv(circuit: &Circuit, plan: &CompiledCircuit, noise: &NoiseModel) {
    let vcfg = qudit_verify::VerifyConfig::default().with_noise(noise.clone());
    if let Err(err) = qudit_verify::verify_statevector(circuit, plan, &vcfg) {
        panic!("translation validation failed for a served statevector plan: {err}");
    }
}

/// Debug-build translation validation for density plans (see
/// [`debug_verify_sv`]).
#[cfg(debug_assertions)]
fn debug_verify_density(circuit: &Circuit, plan: &CompiledDensityCircuit, noise: &NoiseModel) {
    let vcfg = qudit_verify::VerifyConfig::default().with_noise(noise.clone());
    if let Err(err) = qudit_verify::verify_density(circuit, plan, &vcfg) {
        panic!("translation validation failed for a served density plan: {err}");
    }
}

/// One attempt: fetch (or compile) the shared plan, overlay the job's
/// parameter binding, and run with the job's token and this attempt's guard.
fn run_once(shared: &Shared, job: &Job, guard: GuardConfig) -> Result<Vec<f64>, CircuitError> {
    let cfg = &shared.config;
    // Per-job reproducible RNG stream, independent of scheduling order.
    let seed = cfg.seed ^ job.id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    match job.kind {
        JobKind::StatevectorProbs => {
            let mut plan = shared.sv_cache.get_or_compile(job.structural_hash, || {
                let plan = StatevectorSimulator::new()
                    .with_noise(cfg.noise.clone())
                    .compile(&job.circuit)?;
                #[cfg(debug_assertions)]
                debug_verify_sv(&job.circuit, &plan, &cfg.noise);
                Ok::<_, CircuitError>(plan)
            })?;
            // A structural-hash collision would hand this job a plan for a
            // different circuit; the cheap shape invariants catch that class.
            debug_assert_eq!(
                plan.dims(),
                job.circuit.dims(),
                "plan-cache hit returned a plan with mismatched dimensions"
            );
            debug_assert_eq!(
                plan.num_params(),
                job.circuit.num_params(),
                "plan-cache hit returned a plan with mismatched parameter count"
            );
            if let Some(params) = &job.params {
                plan.bind(params)?;
            }
            let sim = StatevectorSimulator::with_seed(seed)
                .with_noise(cfg.noise.clone())
                .with_threads(cfg.threads_per_job)
                .with_guard(guard)
                .with_cancel(job.token.clone());
            let out = sim.run_compiled(&plan)?;
            Ok(out.state.amplitudes().iter().map(|a| a.norm_sqr()).collect())
        }
        JobKind::DensityDiagonal => {
            let mut plan = shared.density_cache.get_or_compile(job.structural_hash, || {
                let plan = DensityMatrixSimulator::new()
                    .with_noise(cfg.noise.clone())
                    .compile(&job.circuit)?;
                #[cfg(debug_assertions)]
                debug_verify_density(&job.circuit, &plan, &cfg.noise);
                Ok::<_, CircuitError>(plan)
            })?;
            debug_assert_eq!(
                plan.dims(),
                job.circuit.dims(),
                "plan-cache hit returned a plan with mismatched dimensions"
            );
            debug_assert_eq!(
                plan.num_params(),
                job.circuit.num_params(),
                "plan-cache hit returned a plan with mismatched parameter count"
            );
            if let Some(params) = &job.params {
                plan.bind(params)?;
            }
            let sim = DensityMatrixSimulator::new()
                .with_seed(seed)
                .with_noise(cfg.noise.clone())
                .with_threads(cfg.threads_per_job)
                .with_guard(guard)
                .with_cancel(job.token.clone());
            let rho = sim.run_compiled(&plan)?;
            let m = rho.matrix();
            Ok((0..m.rows()).map(|i| m[(i, i)].re).collect())
        }
        #[cfg(feature = "fault-inject")]
        JobKind::InjectPanic => panic!("injected panic for isolation testing"),
    }
}
