//! Concurrent plan cache with single-flight compilation and LRU eviction.
//!
//! The serving engine keys compiled execution plans by the submitting
//! circuit's [`structural hash`](qudit_circuit::Circuit::structural_hash),
//! which identifies free parameters by *index* rather than value — one
//! cached plan therefore serves every binding of the same parameterized
//! circuit, and per-request state lives in the plan's cheap-to-clone bind
//! overlay, never in the cache.
//!
//! Two concurrency rules keep the cache cheap under load:
//!
//! * **Single-flight compilation** — the first requester of a missing key
//!   claims a `Pending` slot and compiles *outside* the lock; concurrent
//!   requesters of the same key block on a condvar instead of compiling the
//!   same plan again, and are woken with the shared result (or retry from
//!   scratch if the compile failed — errors are propagated to the claimant
//!   and the slot is removed, so a transient failure never wedges the key).
//! * **LRU eviction** — only `Ready` entries count toward capacity and only
//!   the least-recently-used `Ready` entry is evicted; in-flight `Pending`
//!   slots are pinned.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Counter snapshot for one [`PlanCache`], reported through
/// [`ServeStats`](crate::ServeStats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from a `Ready` entry.
    pub hits: u64,
    /// Requests that compiled (including every request when the cache is
    /// disabled with capacity 0).
    pub misses: u64,
    /// `Ready` entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Requests that found a `Pending` slot and waited on the in-flight
    /// compile instead of duplicating it.
    pub coalesced: u64,
}

enum Slot<V> {
    /// A compile for this key is in flight on some other thread.
    Pending,
    /// The compiled plan, ready to clone out.
    Ready(V),
}

struct Entry<V> {
    key: u64,
    slot: Slot<V>,
    /// Monotone LRU stamp: bumped on insert and on every hit.
    used: u64,
}

struct Inner<V> {
    entries: Vec<Entry<V>>,
    tick: u64,
}

/// A bounded concurrent map from structural hash to compiled plan, with
/// single-flight compile deduplication and LRU eviction. Capacity `0`
/// disables caching entirely (every request compiles) — the serving bench
/// uses that mode as its compile-per-request baseline.
pub struct PlanCache<V: Clone> {
    capacity: usize,
    inner: Mutex<Inner<V>>,
    ready: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    coalesced: AtomicU64,
}

impl<V: Clone> PlanCache<V> {
    /// Creates a cache holding at most `capacity` ready plans.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(Inner { entries: Vec::new(), tick: 0 }),
            ready: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Number of ready (cloneable) plans currently cached.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().expect("plan cache poisoned");
        inner.entries.iter().filter(|e| matches!(e.slot, Slot::Ready(_))).count()
    }

    /// Whether the cache currently holds no ready plan.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }

    /// Returns the plan for `key`, compiling it with `compile` on a miss.
    ///
    /// Exactly one thread compiles a missing key at a time (single-flight);
    /// the others wait and share the result. `compile` runs outside the
    /// cache lock, so a slow compilation never blocks hits on other keys.
    ///
    /// # Errors
    /// Propagates the compile error to the claiming caller; waiting callers
    /// retry (and may claim the slot themselves).
    pub fn get_or_compile<E>(
        &self,
        key: u64,
        compile: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return compile();
        }
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        let mut counted_wait = false;
        loop {
            match inner.entries.iter().position(|e| e.key == key) {
                Some(pos) if matches!(inner.entries[pos].slot, Slot::Ready(_)) => {
                    inner.tick += 1;
                    inner.entries[pos].used = inner.tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    let Slot::Ready(v) = &inner.entries[pos].slot else { unreachable!() };
                    return Ok(v.clone());
                }
                Some(_) => {
                    // Another thread is compiling this key: wait for it.
                    if !counted_wait {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                        counted_wait = true;
                    }
                    inner = self.ready.wait(inner).expect("plan cache poisoned");
                }
                None => break,
            }
        }
        // Miss: claim the slot, then compile outside the lock.
        self.misses.fetch_add(1, Ordering::Relaxed);
        inner.tick += 1;
        let used = inner.tick;
        inner.entries.push(Entry { key, slot: Slot::Pending, used });
        drop(inner);

        let result = compile();

        let mut inner = self.inner.lock().expect("plan cache poisoned");
        let pos = inner
            .entries
            .iter()
            .position(|e| e.key == key)
            .expect("pending slots are pinned until resolved");
        match result {
            Ok(v) => {
                inner.tick += 1;
                let used = inner.tick;
                inner.entries[pos] = Entry { key, slot: Slot::Ready(v.clone()), used };
                self.evict_over_capacity(&mut inner);
                self.ready.notify_all();
                Ok(v)
            }
            Err(e) => {
                inner.entries.remove(pos);
                self.ready.notify_all();
                Err(e)
            }
        }
    }

    /// Evicts least-recently-used `Ready` entries until at most `capacity`
    /// remain. The entry inserted last carries the newest stamp, so it is
    /// never the victim while any older ready entry exists.
    fn evict_over_capacity(&self, inner: &mut Inner<V>) {
        loop {
            let ready = inner.entries.iter().filter(|e| matches!(e.slot, Slot::Ready(_))).count();
            if ready <= self.capacity {
                return;
            }
            let victim = inner
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(e.slot, Slot::Ready(_)))
                .min_by_key(|(_, e)| e.used)
                .map(|(i, _)| i)
                .expect("ready count over capacity implies a ready entry");
            inner.entries.remove(victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn hit_after_miss_does_not_recompile() {
        let cache: PlanCache<i32> = PlanCache::new(4);
        let compiles = AtomicUsize::new(0);
        for _ in 0..3 {
            let v = cache
                .get_or_compile(7, || {
                    compiles.fetch_add(1, Ordering::Relaxed);
                    Ok::<_, ()>(42)
                })
                .unwrap();
            assert_eq!(v, 42);
        }
        assert_eq!(compiles.load(Ordering::Relaxed), 1);
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 2));
    }

    #[test]
    fn capacity_zero_compiles_every_request() {
        let cache: PlanCache<i32> = PlanCache::new(0);
        for _ in 0..3 {
            cache.get_or_compile(1, || Ok::<_, ()>(5)).unwrap();
        }
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (3, 0));
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_eviction_drops_least_recently_used() {
        let cache: PlanCache<u64> = PlanCache::new(2);
        cache.get_or_compile(1, || Ok::<_, ()>(1)).unwrap();
        cache.get_or_compile(2, || Ok::<_, ()>(2)).unwrap();
        // Touch key 1 so key 2 becomes the LRU victim.
        cache.get_or_compile(1, || Ok::<_, ()>(99)).unwrap();
        cache.get_or_compile(3, || Ok::<_, ()>(3)).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        // Key 1 is still cached; key 2 was evicted and recompiles.
        let compiled = AtomicUsize::new(0);
        cache
            .get_or_compile(1, || {
                compiled.fetch_add(1, Ordering::Relaxed);
                Ok::<_, ()>(0)
            })
            .unwrap();
        assert_eq!(compiled.load(Ordering::Relaxed), 0, "key 1 must still be cached");
        cache
            .get_or_compile(2, || {
                compiled.fetch_add(1, Ordering::Relaxed);
                Ok::<_, ()>(0)
            })
            .unwrap();
        assert_eq!(compiled.load(Ordering::Relaxed), 1, "key 2 must have been evicted");
    }

    #[test]
    fn compile_error_propagates_and_unpins_the_key() {
        let cache: PlanCache<i32> = PlanCache::new(2);
        let err = cache.get_or_compile(9, || Err::<i32, _>("boom")).unwrap_err();
        assert_eq!(err, "boom");
        // The failed key is not wedged: the next request compiles again.
        let v = cache.get_or_compile(9, || Ok::<_, &str>(11)).unwrap();
        assert_eq!(v, 11);
    }

    #[test]
    fn concurrent_requests_for_one_key_compile_once() {
        let cache: Arc<PlanCache<u64>> = Arc::new(PlanCache::new(8));
        let compiles = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let compiles = Arc::clone(&compiles);
            handles.push(std::thread::spawn(move || {
                cache
                    .get_or_compile(5, || {
                        compiles.fetch_add(1, Ordering::Relaxed);
                        // Widen the race window so waiters actually coalesce.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok::<_, ()>(77)
                    })
                    .unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 77);
        }
        assert_eq!(compiles.load(Ordering::Relaxed), 1, "single-flight must deduplicate");
        assert_eq!(cache.stats().misses, 1);
    }
}
