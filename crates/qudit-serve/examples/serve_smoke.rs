//! Serving-layer smoke check, run by CI.
//!
//! Drives a mixed QAOA/reservoir workload through a small engine and
//! asserts the resilience contract end to end: every job completes with
//! conserved probability, topologically identical submissions share one
//! compiled plan, a cancelled job resolves `Cancelled` promptly, and
//! graceful shutdown drains every admitted job while rejecting new ones.
//! Exits non-zero (panics) on any violation.

use std::time::{Duration, Instant};

use qudit_circuit::noise::NoiseModel;
use qudit_circuit::{Circuit, Gate, Param};
use qudit_core::matrix::CMatrix;
use qudit_core::Complex64;
use qudit_serve::{
    CancelReason, GuardConfig, JobOutcome, JobSpec, ServeConfig, ServeEngine, SubmitError,
};

/// QAOA-style parameterized two-qutrit circuit: mixer layers reading
/// `Param::Free(0..layers)`. Every binding shares one compiled plan.
fn qaoa_circuit(layers: usize) -> Circuit {
    let mut c = Circuit::new(vec![3, 3]);
    let mixer = CMatrix::from_fn(3, 3, |r, s| {
        if r.abs_diff(s) == 1 {
            Complex64::new(1.0, 0.0)
        } else {
            Complex64::new(0.0, 0.0)
        }
    });
    for layer in 0..layers {
        c.push(Gate::fourier(3), &[layer % 2]).unwrap();
        c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
        let g = Gate::parameterized(format!("mix{layer}"), vec![3], &mixer, Param::Free(layer))
            .unwrap();
        c.push(g, &[layer % 2]).unwrap();
    }
    c
}

/// Reservoir-style dissipative circuit: repeated couplings whose noise
/// channels make the density back-end the natural choice.
fn reservoir_circuit(depth: usize) -> Circuit {
    let mut c = Circuit::new(vec![3, 3, 3]);
    for i in 0..depth {
        c.push(Gate::fourier(3), &[i % 3]).unwrap();
        c.push(Gate::csum(3, 3), &[i % 3, (i + 1) % 3]).unwrap();
    }
    c
}

fn expect_completed(outcome: JobOutcome) -> Vec<f64> {
    match outcome {
        JobOutcome::Completed(values) => values,
        other => panic!("expected Completed, got {other:?}"),
    }
}

fn main() {
    let config = ServeConfig::default()
        .with_workers(4)
        .with_guard(GuardConfig::enabled().with_cadence(4))
        .with_noise(NoiseModel::depolarizing(0.01, 0.005));
    let engine = ServeEngine::start(config);

    // --- Mixed workload: a QAOA parameter sweep plus reservoir probes. ---
    let layers = 3;
    let mut handles = Vec::new();
    for i in 0..8 {
        let thetas: Vec<f64> = (0..layers).map(|l| 0.1 + 0.2 * (i + l) as f64).collect();
        handles.push(
            engine.submit(JobSpec::statevector(qaoa_circuit(layers)).with_params(thetas)).unwrap(),
        );
        handles.push(engine.submit(JobSpec::density(reservoir_circuit(6))).unwrap());
    }
    for handle in &handles {
        let values = expect_completed(handle.wait());
        let total: f64 = values.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "probability not conserved: {total}");
    }
    let stats = engine.stats();
    assert_eq!(stats.completed, 16, "all workload jobs must complete");
    assert_eq!(
        stats.statevector_cache.misses, 1,
        "QAOA sweep must share one compiled statevector plan"
    );
    assert_eq!(
        stats.density_cache.misses, 1,
        "reservoir probes must share one compiled density plan"
    );

    // --- Cancellation: a cancelled job resolves Cancelled, promptly. ---
    engine.pause();
    let victim = engine.submit(JobSpec::density(reservoir_circuit(40))).unwrap();
    victim.cancel();
    engine.resume();
    let t0 = Instant::now();
    let outcome = victim.wait();
    let latency = t0.elapsed();
    assert_eq!(outcome, JobOutcome::Cancelled(CancelReason::Requested));
    assert!(latency < Duration::from_secs(2), "cancellation took {latency:?}");

    // --- Graceful shutdown: drains admitted work, rejects new work. ---
    engine.pause();
    let draining: Vec<_> = (0..6)
        .map(|_| engine.submit(JobSpec::statevector(qaoa_circuit(1)).with_params(vec![0.3])))
        .collect::<Result<_, _>>()
        .unwrap();
    engine.shutdown();
    assert_eq!(
        engine.submit(JobSpec::density(reservoir_circuit(2))).unwrap_err(),
        SubmitError::ShuttingDown
    );
    for handle in &draining {
        expect_completed(handle.wait());
    }
    let stats = engine.stats();
    engine.join();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.completed, 22, "shutdown must drain every admitted job");

    println!(
        "serve smoke OK: {} completed, {} cancelled, {} rejected, \
         sv cache {}h/{}m, density cache {}h/{}m",
        stats.completed,
        stats.cancelled,
        stats.rejected,
        stats.statevector_cache.hits,
        stats.statevector_cache.misses,
        stats.density_cache.hits,
        stats.density_cache.misses,
    );
}
