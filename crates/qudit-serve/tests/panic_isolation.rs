//! Per-job panic isolation (fault-injection builds only): a panicking job
//! resolves as [`JobOutcome::Panicked`] and the worker thread survives to
//! run subsequent jobs.

#![cfg(feature = "fault-inject")]

use qudit_circuit::{Circuit, Gate};
use qudit_serve::{JobOutcome, JobSpec, ServeConfig, ServeEngine};

#[test]
fn worker_survives_an_injected_job_panic() {
    // One worker: if the panic killed it, the second job would never run.
    let engine = ServeEngine::start(ServeConfig::default().with_workers(1));
    let bad = engine.submit(JobSpec::inject_panic()).unwrap();
    let mut c = Circuit::new(vec![3]);
    c.push(Gate::fourier(3), &[0]).unwrap();
    let good = engine.submit(JobSpec::statevector(c)).unwrap();

    match bad.wait() {
        JobOutcome::Panicked(msg) => assert!(msg.contains("injected panic")),
        other => panic!("expected Panicked, got {other:?}"),
    }
    match good.wait() {
        JobOutcome::Completed(probs) => {
            assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        other => panic!("expected Completed, got {other:?}"),
    }
    let stats = engine.stats();
    assert_eq!((stats.panicked, stats.completed), (1, 1));
    engine.join();
}
