//! Engine-level integration tests: backpressure per policy, deadlines,
//! cancellation, retry escalation, graceful shutdown and plan-cache sharing.
//!
//! Saturation tests use [`ServeEngine::pause`] so the queue fills
//! deterministically before any worker dispatches a job.

use std::time::Duration;

use qudit_circuit::{Circuit, Gate, Param};
use qudit_core::matrix::CMatrix;
use qudit_serve::{
    Backpressure, CancelReason, GuardConfig, JobOutcome, JobSpec, ServeConfig, ServeEngine,
    SubmitError,
};

/// A small deterministic two-qutrit circuit (no measurements, no free
/// parameters).
fn fixed_circuit() -> Circuit {
    let mut c = Circuit::new(vec![3, 3]);
    c.push(Gate::fourier(3), &[0]).unwrap();
    c.push(Gate::csum(3, 3), &[0, 1]).unwrap();
    c.push(Gate::phase_on_level(3, 1, 0.4), &[1]).unwrap();
    c
}

/// A QAOA-style parameterized qutrit circuit reading `Param::Free(0)`: the
/// structural hash identifies free parameters by index, so every binding of
/// this circuit shares one cached plan.
fn parameterized_circuit() -> Circuit {
    let mut c = Circuit::new(vec![3]);
    c.push(Gate::fourier(3), &[0]).unwrap();
    // A non-diagonal (mixer-style) generator, so the binding angle changes
    // the outcome distribution, not just the phases.
    let mixer = CMatrix::from_fn(3, 3, |r, s| {
        if r.abs_diff(s) == 1 {
            qudit_core::Complex64::new(1.0, 0.0)
        } else {
            qudit_core::Complex64::new(0.0, 0.0)
        }
    });
    c.push(Gate::parameterized("mix0", vec![3], &mixer, Param::Free(0)).unwrap(), &[0]).unwrap();
    c
}

/// A deeper circuit used where the job should still be running when the
/// client cancels it.
fn deep_circuit(depth: usize) -> Circuit {
    let mut c = Circuit::new(vec![3, 3, 3]);
    for i in 0..depth {
        c.push(Gate::fourier(3), &[i % 3]).unwrap();
        c.push(Gate::csum(3, 3), &[i % 3, (i + 1) % 3]).unwrap();
    }
    c
}

fn expect_completed(outcome: JobOutcome) -> Vec<f64> {
    match outcome {
        JobOutcome::Completed(values) => values,
        other => panic!("expected Completed, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Happy path & shutdown.
// ---------------------------------------------------------------------------

#[test]
fn mixed_workload_completes_and_conserves_probability() {
    let engine = ServeEngine::start(ServeConfig::default().with_workers(3));
    let mut handles = Vec::new();
    for i in 0..12 {
        let spec = if i % 2 == 0 {
            JobSpec::statevector(fixed_circuit())
        } else {
            JobSpec::density(fixed_circuit())
        };
        handles.push(engine.submit(spec).unwrap());
    }
    for handle in &handles {
        let values = expect_completed(handle.wait());
        assert_eq!(values.len(), 9);
        assert!((values.iter().sum::<f64>() - 1.0).abs() < 1e-10);
    }
    let stats = engine.stats();
    assert_eq!(stats.completed, 12);
    assert_eq!(stats.submitted, 12);
    engine.join();
}

#[test]
fn identical_jobs_are_reproducible_across_scheduling() {
    // The same spec submitted twice resolves to bitwise-identical payloads:
    // plans are shared and RNG streams derive from the base seed per kind.
    let engine = ServeEngine::start(ServeConfig::default().with_workers(4));
    let a = engine.submit(JobSpec::density(fixed_circuit())).unwrap();
    let b = engine.submit(JobSpec::density(fixed_circuit())).unwrap();
    assert_eq!(expect_completed(a.wait()), expect_completed(b.wait()));
    engine.join();
}

#[test]
fn graceful_shutdown_drains_queued_jobs_and_rejects_new_ones() {
    let engine = ServeEngine::start(ServeConfig::default().with_workers(2));
    engine.pause();
    let handles: Vec<_> =
        (0..6).map(|_| engine.submit(JobSpec::statevector(fixed_circuit())).unwrap()).collect();
    assert_eq!(engine.queue_len(), 6);
    // Shutdown overrides pause: every queued job still runs to completion.
    engine.shutdown();
    assert_eq!(
        engine.submit(JobSpec::statevector(fixed_circuit())).unwrap_err(),
        SubmitError::ShuttingDown
    );
    for handle in &handles {
        expect_completed(handle.wait());
    }
    let stats = engine.stats();
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.rejected, 1);
    engine.join();
}

// ---------------------------------------------------------------------------
// Backpressure policies.
// ---------------------------------------------------------------------------

fn saturated_engine(policy: Backpressure) -> (ServeEngine, Vec<qudit_serve::JobHandle>) {
    let engine = ServeEngine::start(
        ServeConfig::default().with_workers(1).with_queue_capacity(3).with_backpressure(policy),
    );
    engine.pause();
    let handles =
        (0..3).map(|_| engine.submit(JobSpec::statevector(fixed_circuit())).unwrap()).collect();
    assert_eq!(engine.queue_len(), 3);
    (engine, handles)
}

#[test]
fn reject_policy_fails_submissions_at_capacity() {
    let (engine, handles) = saturated_engine(Backpressure::Reject);
    assert_eq!(
        engine.submit(JobSpec::statevector(fixed_circuit())).unwrap_err(),
        SubmitError::QueueFull
    );
    engine.resume();
    for handle in &handles {
        expect_completed(handle.wait());
    }
    assert_eq!(engine.stats().rejected, 1);
    engine.join();
}

#[test]
fn shed_oldest_policy_drops_the_longest_waiting_job() {
    let (engine, handles) = saturated_engine(Backpressure::ShedOldest);
    let late = engine.submit(JobSpec::statevector(fixed_circuit())).unwrap();
    // The first-submitted job was shed to admit the new one.
    assert_eq!(handles[0].wait(), JobOutcome::Shed);
    engine.resume();
    for handle in &handles[1..] {
        expect_completed(handle.wait());
    }
    expect_completed(late.wait());
    let stats = engine.stats();
    assert_eq!((stats.shed, stats.completed), (1, 3));
    engine.join();
}

#[test]
fn block_policy_waits_for_a_free_slot() {
    let (engine, handles) = saturated_engine(Backpressure::Block);
    let engine = std::sync::Arc::new(engine);
    let submitter = {
        let engine = std::sync::Arc::clone(&engine);
        std::thread::spawn(move || {
            // Blocks until `resume` lets a worker free a slot.
            engine.submit(JobSpec::statevector(fixed_circuit())).unwrap().wait()
        })
    };
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(engine.queue_len(), 3, "submission must still be blocked");
    engine.resume();
    expect_completed(submitter.join().unwrap());
    for handle in &handles {
        expect_completed(handle.wait());
    }
    engine.drain();
    assert_eq!(engine.stats().completed, 4);
}

// ---------------------------------------------------------------------------
// Deadlines & cancellation.
// ---------------------------------------------------------------------------

#[test]
fn deadline_expired_while_queued_cancels_without_running() {
    let engine = ServeEngine::start(ServeConfig::default().with_workers(1));
    engine.pause();
    let handle =
        engine.submit(JobSpec::statevector(fixed_circuit()).with_deadline(Duration::ZERO)).unwrap();
    engine.resume();
    assert_eq!(handle.wait(), JobOutcome::Cancelled(CancelReason::DeadlineExceeded));
    assert_eq!(engine.stats().cancelled, 1);
    engine.join();
}

#[test]
fn default_deadline_applies_to_jobs_without_their_own() {
    let engine = ServeEngine::start(
        ServeConfig::default().with_workers(1).with_default_deadline(Duration::ZERO),
    );
    engine.pause();
    let handle = engine.submit(JobSpec::statevector(fixed_circuit())).unwrap();
    engine.resume();
    assert_eq!(handle.wait(), JobOutcome::Cancelled(CancelReason::DeadlineExceeded));
    engine.join();
}

#[test]
fn client_cancellation_resolves_the_job_as_cancelled() {
    // Cancel before resuming: the worker observes the tripped token at its
    // entry checkpoint regardless of how fast the job would have run.
    let engine = ServeEngine::start(
        ServeConfig::default().with_workers(1).with_guard(GuardConfig::enabled().with_cadence(1)),
    );
    engine.pause();
    let victim = engine.submit(JobSpec::density(deep_circuit(12))).unwrap();
    let survivor = engine.submit(JobSpec::statevector(fixed_circuit())).unwrap();
    victim.cancel();
    engine.resume();
    assert_eq!(victim.wait(), JobOutcome::Cancelled(CancelReason::Requested));
    expect_completed(survivor.wait());
    let stats = engine.stats();
    assert_eq!((stats.cancelled, stats.completed), (1, 1));
    engine.join();
}

#[test]
fn try_outcome_is_none_while_queued() {
    let engine = ServeEngine::start(ServeConfig::default().with_workers(1));
    engine.pause();
    let handle = engine.submit(JobSpec::statevector(fixed_circuit())).unwrap();
    assert_eq!(handle.try_outcome(), None);
    engine.resume();
    expect_completed(handle.wait());
    assert!(matches!(handle.try_outcome(), Some(JobOutcome::Completed(_))));
    engine.join();
}

// ---------------------------------------------------------------------------
// Retry escalation ladder.
// ---------------------------------------------------------------------------

#[test]
fn transient_health_failures_retry_with_escalated_policy() {
    // A negative tolerance trips the guard at every checkpoint. Attempt 0
    // (policy `Fail`) errors; the first retry escalates to
    // `RenormalizeAndCount`, which repairs and completes.
    let engine = ServeEngine::start(
        ServeConfig::default()
            .with_workers(1)
            .with_max_retries(2)
            .with_retry_backoff(Duration::ZERO)
            .with_guard(GuardConfig::enabled().with_tol(-1.0)),
    );
    let handle = engine.submit(JobSpec::statevector(fixed_circuit())).unwrap();
    expect_completed(handle.wait());
    let stats = engine.stats();
    assert_eq!((stats.completed, stats.failed), (1, 0));
    assert_eq!(stats.retries, 1, "exactly one escalation should be needed");
    engine.join();
}

#[test]
fn exhausted_retry_budget_fails_the_job() {
    let engine = ServeEngine::start(
        ServeConfig::default()
            .with_workers(1)
            .with_max_retries(0)
            .with_guard(GuardConfig::enabled().with_tol(-1.0)),
    );
    let handle = engine.submit(JobSpec::statevector(fixed_circuit())).unwrap();
    assert!(matches!(handle.wait(), JobOutcome::Failed(_)));
    let stats = engine.stats();
    assert_eq!((stats.failed, stats.retries), (1, 0));
    engine.join();
}

// ---------------------------------------------------------------------------
// Plan-cache sharing.
// ---------------------------------------------------------------------------

#[test]
fn repeated_submissions_compile_once() {
    let engine = ServeEngine::start(ServeConfig::default().with_workers(1));
    // Sequential round trips: the queue is empty at each submission, so no
    // coalescing happens and every run consults the shared cache.
    for _ in 0..8 {
        expect_completed(engine.submit(JobSpec::statevector(fixed_circuit())).unwrap().wait());
    }
    let cache = engine.stats().statevector_cache;
    assert_eq!(cache.misses, 1, "one structural hash must compile exactly once");
    assert_eq!(cache.hits, 7);
    assert_eq!(engine.stats().batched_jobs, 0, "sequential jobs must stay serial");
    engine.join();
}

#[test]
fn different_parameter_bindings_share_one_cached_plan() {
    // Free parameters hash by index, so bindings are plan-cache-invisible;
    // the engine rebinds the shared plan per request.
    let engine = ServeEngine::start(ServeConfig::default().with_workers(2));
    let thetas = [0.0, 0.7, 1.4, 2.1];
    let handles: Vec<_> = thetas
        .iter()
        .map(|&theta| {
            engine
                .submit(JobSpec::statevector(parameterized_circuit()).with_params(vec![theta]))
                .unwrap()
        })
        .collect();
    let results: Vec<Vec<f64>> = handles.iter().map(|h| expect_completed(h.wait())).collect();
    let cache = engine.stats().statevector_cache;
    assert_eq!(cache.misses, 1, "all bindings must share one compiled topology");
    // The bindings genuinely differ: different angles give different
    // distributions.
    assert_ne!(results[0], results[1]);
    engine.join();
}

#[test]
fn disabled_cache_compiles_per_request() {
    let engine =
        ServeEngine::start(ServeConfig::default().with_workers(1).with_plan_cache_capacity(0));
    for _ in 0..3 {
        let handle = engine.submit(JobSpec::statevector(fixed_circuit())).unwrap();
        expect_completed(handle.wait());
    }
    let cache = engine.stats().statevector_cache;
    assert_eq!((cache.misses, cache.hits), (3, 0));
    engine.join();
}

// ---------------------------------------------------------------------------
// Batched (coalesced) ensemble execution.
// ---------------------------------------------------------------------------

#[test]
fn queued_same_plan_jobs_coalesce_into_one_ensemble_pass() {
    let thetas = [0.0, 0.4, 0.8, 1.2, 1.6];
    // Batched engine: pause so all submissions queue up, then resume — the
    // single worker pops one job and coalesces its same-plan queue-mates.
    let engine = ServeEngine::start(ServeConfig::default().with_workers(1));
    engine.pause();
    let handles: Vec<_> = thetas
        .iter()
        .map(|&theta| {
            engine
                .submit(JobSpec::statevector(parameterized_circuit()).with_params(vec![theta]))
                .unwrap()
        })
        .collect();
    // A structurally different job queued in between must not be swept in.
    let density = engine.submit(JobSpec::density(fixed_circuit())).unwrap();
    engine.resume();
    let batched: Vec<Vec<f64>> = handles.iter().map(|h| expect_completed(h.wait())).collect();
    expect_completed(density.wait());
    let stats = engine.stats();
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.batches, 1, "one ensemble pass for the five same-plan jobs");
    assert_eq!(stats.batched_jobs, 5);
    engine.join();

    // Serial reference engine: same submission order (so per-job seeds
    // match), but sequential round trips keep every job on the serial path.
    let serial = ServeEngine::start(ServeConfig::default().with_workers(1));
    for (&theta, batched_values) in thetas.iter().zip(batched.iter()) {
        let handle = serial
            .submit(JobSpec::statevector(parameterized_circuit()).with_params(vec![theta]))
            .unwrap();
        assert_eq!(&expect_completed(handle.wait()), batched_values, "theta = {theta}");
    }
    assert_eq!(serial.stats().batched_jobs, 0);
    serial.join();
}

#[test]
fn cancelled_member_drops_out_of_the_batch_without_affecting_mates() {
    let engine = ServeEngine::start(ServeConfig::default().with_workers(1));
    engine.pause();
    let handles: Vec<_> =
        (0..3).map(|_| engine.submit(JobSpec::statevector(fixed_circuit())).unwrap()).collect();
    handles[1].cancel();
    engine.resume();
    let first = expect_completed(handles[0].wait());
    assert_eq!(handles[1].wait(), JobOutcome::Cancelled(CancelReason::Requested));
    let last = expect_completed(handles[2].wait());
    assert_eq!(first, last, "identical specs must produce identical payloads");
    let stats = engine.stats();
    assert_eq!((stats.completed, stats.cancelled), (2, 1));
    assert_eq!(stats.batched_jobs, 2, "the two live members still run as one pass");
    engine.join();
}

#[test]
fn transient_batch_failures_fall_back_to_the_serial_retry_ladder() {
    // A negative guard tolerance fails every column of the ensemble pass;
    // each member must fall back to the serial path, whose retry ladder
    // escalates the guard policy and completes the job.
    let engine = ServeEngine::start(
        ServeConfig::default()
            .with_workers(1)
            .with_max_retries(2)
            .with_retry_backoff(Duration::ZERO)
            .with_guard(GuardConfig::enabled().with_tol(-1.0)),
    );
    engine.pause();
    let handles: Vec<_> =
        (0..3).map(|_| engine.submit(JobSpec::statevector(fixed_circuit())).unwrap()).collect();
    engine.resume();
    for handle in &handles {
        expect_completed(handle.wait());
    }
    let stats = engine.stats();
    assert_eq!((stats.completed, stats.failed), (3, 0));
    assert_eq!(stats.batched_jobs, 0, "failed columns must not count as batched");
    assert_eq!(stats.retries, 3, "one serial escalation per member");
    engine.join();
}

#[test]
fn structurally_distinct_circuits_do_not_collide() {
    let engine = ServeEngine::start(ServeConfig::default().with_workers(1));
    let a = engine.submit(JobSpec::statevector(fixed_circuit())).unwrap();
    let b = engine.submit(JobSpec::statevector(deep_circuit(2))).unwrap();
    let pa = expect_completed(a.wait());
    let pb = expect_completed(b.wait());
    assert_ne!(pa.len(), pb.len());
    assert_eq!(engine.stats().statevector_cache.misses, 2);
    engine.join();
}
