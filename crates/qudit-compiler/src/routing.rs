//! Routing of logical circuits onto the linear cavity-chain topology.
//!
//! When a two-qudit gate targets modes that are not directly connected (same
//! module or adjacent modules), the router inserts beam-splitter SWAPs that
//! walk one operand's state along the chain until the pair is within reach,
//! updating the placement as it goes — the qudit analogue of SWAP-based qubit
//! routing, with mode-swap primitives instead of CNOT triples.

use serde::{Deserialize, Serialize};

use cavity_sim::device::Device;
use qudit_circuit::{Circuit, Instruction};

use crate::error::{CompilerError, Result};
use crate::mapping::Mapping;

/// One operation of a routed (physical-level) schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicalOp {
    /// Operation label (gate name, `SWAP`, `readout`, ...).
    pub name: String,
    /// Global device modes the operation touches.
    pub modes: Vec<usize>,
    /// Duration (µs).
    pub duration_us: f64,
    /// Estimated error probability.
    pub error: f64,
    /// `true` if this operation was inserted by the router.
    pub inserted_by_router: bool,
}

/// A routed circuit: the physical operation schedule plus summary metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedCircuit {
    /// Physical operations in execution order.
    pub ops: Vec<PhysicalOp>,
    /// Placement of each logical qudit after execution (routing permutes it).
    pub final_placement: Vec<usize>,
    /// Number of router-inserted SWAPs.
    pub swap_count: usize,
}

impl RoutedCircuit {
    /// Total serial duration (µs).
    pub fn total_duration_us(&self) -> f64 {
        self.ops.iter().map(|o| o.duration_us).sum()
    }

    /// Estimated end-to-end success probability.
    pub fn estimated_fidelity(&self) -> f64 {
        self.ops.iter().map(|o| 1.0 - o.error.min(0.999_999)).product()
    }

    /// Number of two-mode operations (including inserted SWAPs).
    pub fn two_mode_op_count(&self) -> usize {
        self.ops.iter().filter(|o| o.modes.len() >= 2).count()
    }
}

/// Routes a logical circuit onto the device given an initial mapping.
///
/// # Errors
/// Returns an error if a gate cannot be routed (e.g. indices out of range).
pub fn route(circuit: &Circuit, device: &Device, mapping: &Mapping) -> Result<RoutedCircuit> {
    let mut placement = mapping.logical_to_physical.clone();
    // Reverse map: device mode -> logical qudit currently stored there.
    let mut occupant: Vec<Option<usize>> = vec![None; device.num_modes()];
    for (logical, &mode) in placement.iter().enumerate() {
        occupant[mode] = Some(logical);
    }

    let mut ops = Vec::new();
    let mut swap_count = 0usize;
    let single_duration = device.durations.snap_us + 2.0 * device.durations.displacement_us;

    for inst in circuit.instructions() {
        match inst {
            Instruction::Unitary { gate, targets } => {
                if targets.len() == 1 {
                    let mode = placement[targets[0]];
                    let error = device
                        .single_mode_error(mode, single_duration)
                        .map_err(CompilerError::Cavity)?;
                    ops.push(PhysicalOp {
                        name: gate.name().to_string(),
                        modes: vec![mode],
                        duration_us: single_duration,
                        error,
                        inserted_by_router: false,
                    });
                } else {
                    let (a, b) = (targets[0], targets[1]);
                    // Walk logical `a` towards logical `b` until connected.
                    let mut guard = 0;
                    while !device
                        .are_connected(placement[a], placement[b])
                        .map_err(CompilerError::Cavity)?
                    {
                        guard += 1;
                        if guard > device.num_modules() + 2 {
                            return Err(CompilerError::RoutingFailed(format!(
                                "could not connect logical qudits {a} and {b}"
                            )));
                        }
                        let step_mode = next_step_mode(device, placement[a], placement[b])?;
                        let from = placement[a];
                        let error = device
                            .two_mode_error(from, step_mode, device.durations.beam_splitter_us)
                            .map_err(CompilerError::Cavity)?;
                        ops.push(PhysicalOp {
                            name: "SWAP".into(),
                            modes: vec![from, step_mode],
                            duration_us: device.durations.beam_splitter_us,
                            error,
                            inserted_by_router: true,
                        });
                        swap_count += 1;
                        // Update placement: whatever logical sat on step_mode
                        // moves back to `from`.
                        let displaced = occupant[step_mode];
                        occupant[from] = displaced;
                        if let Some(c) = displaced {
                            placement[c] = from;
                        }
                        occupant[step_mode] = Some(a);
                        placement[a] = step_mode;
                    }
                    let (pa, pb) = (placement[a], placement[b]);
                    let duration = device.csum_duration(pa, pb).map_err(CompilerError::Cavity)?;
                    let error =
                        device.two_mode_error(pa, pb, duration).map_err(CompilerError::Cavity)?;
                    ops.push(PhysicalOp {
                        name: gate.name().to_string(),
                        modes: vec![pa, pb],
                        duration_us: duration,
                        error,
                        inserted_by_router: false,
                    });
                }
            }
            Instruction::Measure { targets } => {
                for &t in targets {
                    let mode = placement[t];
                    let error = device
                        .single_mode_error(mode, device.durations.readout_us)
                        .map_err(CompilerError::Cavity)?;
                    ops.push(PhysicalOp {
                        name: "readout".into(),
                        modes: vec![mode],
                        duration_us: device.durations.readout_us,
                        error,
                        inserted_by_router: false,
                    });
                }
            }
            Instruction::Reset { target } => {
                let mode = placement[*target];
                let error = device
                    .single_mode_error(mode, device.durations.readout_us)
                    .map_err(CompilerError::Cavity)?;
                ops.push(PhysicalOp {
                    name: "reset".into(),
                    modes: vec![mode],
                    duration_us: device.durations.readout_us,
                    error,
                    inserted_by_router: false,
                });
            }
            Instruction::Channel { .. } | Instruction::Barrier => {}
        }
    }
    Ok(RoutedCircuit { ops, final_placement: placement, swap_count })
}

/// Picks the mode to swap into when walking from `from` towards `towards`:
/// the best-coherence mode in the neighbouring module one step closer.
fn next_step_mode(device: &Device, from: usize, towards: usize) -> Result<usize> {
    let (mf, _) = device.module_of(from).map_err(CompilerError::Cavity)?;
    let (mt, _) = device.module_of(towards).map_err(CompilerError::Cavity)?;
    let next_module = if mt > mf { mf + 1 } else { mf - 1 };
    let mut best = None;
    let mut best_t1 = -1.0;
    for k in 0..device.modules[next_module].modes.len() {
        let global = device.global_index(next_module, k).map_err(CompilerError::Cavity)?;
        if global == towards {
            // Landing directly next to (or on the module of) the partner is fine,
            // but never displace the partner itself.
            continue;
        }
        let t1 = device.mode(global).map_err(CompilerError::Cavity)?.t1_us;
        if t1 > best_t1 {
            best_t1 = t1;
            best = Some(global);
        }
    }
    best.ok_or_else(|| {
        CompilerError::RoutingFailed(format!("no usable transit mode in module {next_module}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{map_circuit, MappingStrategy};
    use qudit_circuit::Gate;

    #[test]
    fn connected_gates_need_no_swaps() {
        let d = 4;
        let mut c = Circuit::uniform(2, d);
        c.push(Gate::csum(d, d), &[0, 1]).unwrap();
        c.measure_all();
        let dev = Device::testbed();
        let mapping = map_circuit(&c, &dev, MappingStrategy::RoundRobin).unwrap();
        let routed = route(&c, &dev, &mapping).unwrap();
        assert_eq!(routed.swap_count, 0);
        assert_eq!(routed.two_mode_op_count(), 1);
        // CSUM + 2 readouts.
        assert_eq!(routed.ops.len(), 3);
        assert!(routed.estimated_fidelity() > 0.0);
    }

    #[test]
    fn distant_gates_get_swapped_into_reach() {
        let d = 10;
        let mut c = Circuit::uniform(2, d);
        c.push(Gate::csum(d, d), &[0, 1]).unwrap();
        let dev = Device::forecast();
        // Force a mapping with the two qudits at opposite ends of the chain.
        let mapping = Mapping {
            logical_to_physical: vec![0, 39],
            strategy: MappingStrategy::RoundRobin,
            estimated_fidelity: 1.0,
        };
        let routed = route(&c, &dev, &mapping).unwrap();
        assert!(routed.swap_count >= 7, "swap count {}", routed.swap_count);
        // Final placement must put them within reach.
        let a = routed.final_placement[0];
        let b = routed.final_placement[1];
        assert!(dev.are_connected(a, b).unwrap());
        // Fidelity suffers compared to an adjacent mapping.
        let near = Mapping {
            logical_to_physical: vec![0, 1],
            strategy: MappingStrategy::RoundRobin,
            estimated_fidelity: 1.0,
        };
        let routed_near = route(&c, &dev, &near).unwrap();
        assert!(routed_near.estimated_fidelity() > routed.estimated_fidelity());
        assert!(routed_near.total_duration_us() < routed.total_duration_us());
    }

    #[test]
    fn routing_preserves_logical_consistency() {
        // After routing, every logical qudit occupies a distinct mode.
        let d = 10;
        let mut c = Circuit::uniform(3, d);
        c.push(Gate::csum(d, d), &[0, 2]).unwrap();
        c.push(Gate::csum(d, d), &[1, 2]).unwrap();
        let dev = Device::forecast();
        let mapping = Mapping {
            logical_to_physical: vec![0, 20, 39],
            strategy: MappingStrategy::RoundRobin,
            estimated_fidelity: 1.0,
        };
        let routed = route(&c, &dev, &mapping).unwrap();
        let mut placement = routed.final_placement.clone();
        placement.sort_unstable();
        placement.dedup();
        assert_eq!(placement.len(), 3);
    }

    #[test]
    fn router_marks_inserted_swaps() {
        let d = 10;
        let mut c = Circuit::uniform(2, d);
        c.push(Gate::csum(d, d), &[0, 1]).unwrap();
        let dev = Device::forecast();
        let mapping = Mapping {
            logical_to_physical: vec![0, 12],
            strategy: MappingStrategy::RoundRobin,
            estimated_fidelity: 1.0,
        };
        let routed = route(&c, &dev, &mapping).unwrap();
        let inserted: usize = routed.ops.iter().filter(|o| o.inserted_by_router).count();
        assert_eq!(inserted, routed.swap_count);
        assert!(routed.swap_count > 0);
    }
}
