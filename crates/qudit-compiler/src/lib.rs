//! # qudit-compiler
//!
//! Compilation stack for cavity-based qudit processors:
//!
//! * **Synthesis** — exact Givens decomposition of single-mode unitaries into
//!   adjacent-level rotations + SNAP, numerical SNAP–displacement synthesis
//!   (the protocol studied in the paper's gate-synthesis references), and
//!   CSUM compilation onto cavity primitives via the Clifford identity
//!   `CSUM = (I⊗F†)·CZ_d·(I⊗F)`.
//! * **Noise-aware mapping** — coherence-weighted assignment of logical
//!   qudits to heterogeneous cavity modes, the pass that qubit-centric
//!   toolkits do not provide for qudit hardware.
//! * **Routing** — beam-splitter SWAP insertion along the linear cavity
//!   chain.
//! * **Resource estimation** — end-to-end duration / fidelity / feasibility
//!   reports that regenerate the paper's Table I.
//!
//! ## Example
//!
//! ```
//! use cavity_sim::device::Device;
//! use qudit_circuit::{Circuit, Gate};
//! use qudit_compiler::mapping::MappingStrategy;
//! use qudit_compiler::resource::estimate_resources;
//!
//! let mut circuit = Circuit::uniform(4, 4);
//! for q in 0..3 {
//!     circuit.push(Gate::csum(4, 4), &[q, q + 1]).unwrap();
//! }
//! let device = Device::testbed();
//! let estimate =
//!     estimate_resources("ladder", &circuit, &device, MappingStrategy::NoiseAware).unwrap();
//! assert!(estimate.coherence_feasible);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod mapping;
pub mod resource;
pub mod routing;
pub mod synthesis;

pub use error::{CompilerError, Result};
pub use mapping::{map_circuit, InteractionProfile, Mapping, MappingStrategy};
pub use resource::{estimate_resources, estimate_with_mapping, ResourceEstimate};
pub use routing::{route, PhysicalOp, RoutedCircuit};
pub use synthesis::{
    decompose_unitary, CsumCompiler, CsumSynthesis, GivensDecomposition, SnapDispSynthesis,
    SnapDispSynthesizer,
};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::error::{CompilerError, Result};
    pub use crate::mapping::{map_circuit, Mapping, MappingStrategy};
    pub use crate::resource::{estimate_resources, ResourceEstimate};
    pub use crate::routing::{route, RoutedCircuit};
    pub use crate::synthesis::{
        decompose_unitary, CsumCompiler, GivensDecomposition, SnapDispSynthesizer,
    };
}
