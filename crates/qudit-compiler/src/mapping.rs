//! Noise-aware mapping of logical qudits onto device modes.
//!
//! The modes of a multi-cell cavity are not interchangeable: their lifetimes
//! spread by tens of percent, and two-mode gates are cheaper within a module
//! than across modules. Qubit-centric toolkits have mature noise-aware
//! mapping passes; for qudit cavity devices this pass fills that gap — the
//! core "engineering" contribution the reproduction targets.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use cavity_sim::device::Device;
use qudit_circuit::{Circuit, Instruction};

use crate::error::{CompilerError, Result};

/// Mapping strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingStrategy {
    /// Coherence-weighted greedy assignment (the noise-aware pass).
    NoiseAware,
    /// Logical qudit `i` goes to device mode `i`.
    RoundRobin,
    /// A seeded random permutation (used as an ablation baseline).
    Random(u64),
}

/// A mapping from logical circuit qudits to global device mode indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    /// `logical_to_physical[q]` is the device mode hosting logical qudit `q`.
    pub logical_to_physical: Vec<usize>,
    /// Strategy that produced this mapping.
    pub strategy: MappingStrategy,
    /// Estimated end-to-end circuit fidelity under this mapping (product of
    /// per-gate success probabilities, ignoring routing).
    pub estimated_fidelity: f64,
}

impl Mapping {
    /// Physical mode of a logical qudit.
    pub fn physical(&self, logical: usize) -> usize {
        self.logical_to_physical[logical]
    }

    /// Number of mapped logical qudits.
    pub fn len(&self) -> usize {
        self.logical_to_physical.len()
    }

    /// Returns `true` if the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.logical_to_physical.is_empty()
    }
}

/// Interaction profile of a circuit: how often each qudit and each qudit pair
/// participates in gates.
#[derive(Debug, Clone, Default)]
pub struct InteractionProfile {
    /// Per-qudit gate counts (multi-qudit gates count for every participant).
    pub qudit_weight: Vec<f64>,
    /// Per-pair multi-qudit gate counts, keyed by `(min, max)`.
    pub pair_weight: BTreeMap<(usize, usize), f64>,
}

impl InteractionProfile {
    /// Extracts the interaction profile of a circuit.
    pub fn of(circuit: &Circuit) -> Self {
        let mut qudit_weight = vec![0.0; circuit.num_qudits()];
        let mut pair_weight: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        for inst in circuit.instructions() {
            if let Instruction::Unitary { targets, .. } = inst {
                for &t in targets {
                    qudit_weight[t] += 1.0;
                }
                if targets.len() >= 2 {
                    for i in 0..targets.len() {
                        for j in (i + 1)..targets.len() {
                            let key = (targets[i].min(targets[j]), targets[i].max(targets[j]));
                            *pair_weight.entry(key).or_insert(0.0) += 1.0;
                        }
                    }
                }
            }
        }
        Self { qudit_weight, pair_weight }
    }
}

/// Maps a circuit onto a device with the chosen strategy.
///
/// # Errors
/// Returns an error if the circuit needs more qudits than the device has
/// modes, or a qudit dimension exceeds every available mode truncation.
pub fn map_circuit(
    circuit: &Circuit,
    device: &Device,
    strategy: MappingStrategy,
) -> Result<Mapping> {
    let n_logical = circuit.num_qudits();
    let n_modes = device.num_modes();
    if n_logical > n_modes {
        return Err(CompilerError::MappingFailed(format!(
            "circuit uses {n_logical} qudits but device {} has only {n_modes} modes",
            device.name
        )));
    }
    let assignment = match strategy {
        MappingStrategy::RoundRobin => (0..n_logical).collect::<Vec<usize>>(),
        MappingStrategy::Random(seed) => {
            let mut modes: Vec<usize> = (0..n_modes).collect();
            modes.shuffle(&mut StdRng::seed_from_u64(seed));
            modes.truncate(n_logical);
            modes
        }
        MappingStrategy::NoiseAware => noise_aware_assignment(circuit, device)?,
    };
    // Dimension compatibility check.
    for (logical, &mode) in assignment.iter().enumerate() {
        let mode_dim = device.mode(mode).map_err(CompilerError::Cavity)?.dim;
        if circuit.dims()[logical] > mode_dim {
            return Err(CompilerError::MappingFailed(format!(
                "logical qudit {logical} needs d={} but mode {mode} only supports d={mode_dim}",
                circuit.dims()[logical]
            )));
        }
    }
    let estimated_fidelity = estimate_mapped_fidelity(circuit, device, &assignment)?;
    Ok(Mapping { logical_to_physical: assignment, strategy, estimated_fidelity })
}

/// Coherence-weighted assignment: score a portfolio of candidate placements
/// with the device-calibrated fidelity model, then refine the best candidate
/// by pairwise-swap hill climbing.
///
/// The candidate set always contains the identity (round-robin) placement, so
/// the noise-aware pass can never be worse than the naive baseline under the
/// fidelity model it optimises.
fn noise_aware_assignment(circuit: &Circuit, device: &Device) -> Result<Vec<usize>> {
    let n_logical = circuit.num_qudits();
    let n_modes = device.num_modes();

    let dims_ok = |assignment: &[usize]| -> bool {
        assignment.iter().enumerate().all(|(logical, &mode)| {
            device.mode(mode).map(|m| m.dim >= circuit.dims()[logical]).unwrap_or(false)
        })
    };

    // Candidate placements: every contiguous window of modes (the natural
    // choice for the nearest-neighbour circuits of the three applications).
    let mut candidates: Vec<Vec<usize>> = Vec::new();
    for offset in 0..=(n_modes - n_logical) {
        let assignment: Vec<usize> = (offset..offset + n_logical).collect();
        if dims_ok(&assignment) {
            candidates.push(assignment);
        }
    }
    if candidates.is_empty() {
        return Err(CompilerError::MappingFailed(format!(
            "no contiguous block of {n_logical} modes supports the requested qudit dimensions"
        )));
    }

    // Score candidates and keep the best.
    let mut best = candidates[0].clone();
    let mut best_score = estimate_mapped_fidelity(circuit, device, &best)?;
    for cand in candidates.iter().skip(1) {
        let score = estimate_mapped_fidelity(circuit, device, cand)?;
        if score > best_score {
            best_score = score;
            best = cand.clone();
        }
    }

    // Hill climbing: try swapping the modes of logical pairs, and moving a
    // logical qudit onto any unused mode; accept strict improvements.
    let max_passes = 4;
    for _ in 0..max_passes {
        let mut improved = false;
        // Pairwise swaps.
        for i in 0..n_logical {
            for j in (i + 1)..n_logical {
                let mut trial = best.clone();
                trial.swap(i, j);
                if !dims_ok(&trial) {
                    continue;
                }
                let score = estimate_mapped_fidelity(circuit, device, &trial)?;
                if score > best_score {
                    best_score = score;
                    best = trial;
                    improved = true;
                }
            }
        }
        // Relocations to unused modes.
        let used: Vec<bool> = {
            let mut used = vec![false; n_modes];
            for &m in &best {
                used[m] = true;
            }
            used
        };
        for logical in 0..n_logical {
            for (mode, &is_used) in used.iter().enumerate() {
                if is_used {
                    continue;
                }
                let mut trial = best.clone();
                trial[logical] = mode;
                if !dims_ok(&trial) {
                    continue;
                }
                let score = estimate_mapped_fidelity(circuit, device, &trial)?;
                if score > best_score {
                    best_score = score;
                    best = trial;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    Ok(best)
}

/// Estimated end-to-end fidelity of a circuit under an assignment: product of
/// per-gate success probabilities (two-qudit gates between distant modules
/// pay an extra per-hop routing cost).
pub fn estimate_mapped_fidelity(
    circuit: &Circuit,
    device: &Device,
    assignment: &[usize],
) -> Result<f64> {
    let mut log_success = 0.0_f64;
    for inst in circuit.instructions() {
        if let Instruction::Unitary { targets, .. } = inst {
            let error = if targets.len() == 1 {
                let mode = assignment[targets[0]];
                let duration = device.durations.snap_us + 2.0 * device.durations.displacement_us;
                device.single_mode_error(mode, duration).map_err(CompilerError::Cavity)?
            } else {
                let a = assignment[targets[0]];
                let b = assignment[targets[1]];
                let (ma, _) = device.module_of(a).map_err(CompilerError::Cavity)?;
                let (mb, _) = device.module_of(b).map_err(CompilerError::Cavity)?;
                let dist = ma.abs_diff(mb);
                let base = if dist == 0 {
                    device.durations.csum_intra_us
                } else {
                    device.durations.csum_inter_us
                };
                // Each extra hop requires a pair of mode swaps (beam splitters).
                let routing =
                    dist.saturating_sub(1) as f64 * 2.0 * device.durations.beam_splitter_us;
                device.two_mode_error(a, b, base + routing).map_err(CompilerError::Cavity)?
            };
            log_success += (1.0 - error.min(0.999_999)).ln();
        }
    }
    Ok(log_success.exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::Gate;

    fn ladder_circuit(n: usize, d: usize) -> Circuit {
        let mut c = Circuit::uniform(n, d);
        for q in 0..n {
            c.push(Gate::fourier(d), &[q]).unwrap();
        }
        for q in 0..n - 1 {
            c.push(Gate::csum(d, d), &[q, q + 1]).unwrap();
        }
        c
    }

    #[test]
    fn interaction_profile_counts_gates() {
        let c = ladder_circuit(4, 3);
        let p = InteractionProfile::of(&c);
        assert_eq!(p.qudit_weight.len(), 4);
        // Middle qudits participate in 1 single + 2 two-qudit gates.
        assert!((p.qudit_weight[1] - 3.0).abs() < 1e-12);
        assert!((p.qudit_weight[0] - 2.0).abs() < 1e-12);
        assert_eq!(p.pair_weight.len(), 3);
        assert!((p.pair_weight[&(1, 2)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_strategies_produce_valid_injective_mappings() {
        let c = ladder_circuit(4, 4);
        let dev = Device::testbed();
        for strategy in
            [MappingStrategy::NoiseAware, MappingStrategy::RoundRobin, MappingStrategy::Random(3)]
        {
            let m = map_circuit(&c, &dev, strategy).unwrap();
            assert_eq!(m.len(), 4);
            let mut seen = m.logical_to_physical.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), 4, "mapping must be injective for {strategy:?}");
            assert!(m.estimated_fidelity > 0.0 && m.estimated_fidelity <= 1.0);
        }
    }

    #[test]
    fn noise_aware_beats_round_robin_on_heterogeneous_device() {
        // A circuit whose busiest qudit would land on the worst mode under
        // round-robin.
        let d = 4;
        let mut c = Circuit::uniform(4, d);
        // Qudit 3 is by far the busiest.
        for _ in 0..10 {
            c.push(Gate::fourier(d), &[3]).unwrap();
        }
        c.push(Gate::csum(d, d), &[3, 0]).unwrap();
        let dev = Device::testbed(); // mode 3 has the worst T1
        let aware = map_circuit(&c, &dev, MappingStrategy::NoiseAware).unwrap();
        let naive = map_circuit(&c, &dev, MappingStrategy::RoundRobin).unwrap();
        assert!(
            aware.estimated_fidelity > naive.estimated_fidelity,
            "aware {} vs naive {}",
            aware.estimated_fidelity,
            naive.estimated_fidelity
        );
        // The busy logical qudit should not sit on the worst physical mode.
        assert_ne!(aware.physical(3), 3);
    }

    #[test]
    fn mapping_rejects_oversized_circuits() {
        let c = ladder_circuit(5, 4);
        let dev = Device::testbed(); // only 4 modes
        assert!(map_circuit(&c, &dev, MappingStrategy::NoiseAware).is_err());
    }

    #[test]
    fn mapping_rejects_dimension_overflow() {
        let c = ladder_circuit(2, 6); // needs d = 6
        let dev = Device::testbed(); // modes support d = 4
        assert!(map_circuit(&c, &dev, MappingStrategy::NoiseAware).is_err());
        assert!(map_circuit(&c, &dev, MappingStrategy::RoundRobin).is_err());
    }

    #[test]
    fn forecast_device_hosts_paper_scale_circuits() {
        // The Table-I sQED row: 18 qudits with d = 4 fits the forecast device.
        let c = ladder_circuit(18, 4);
        let dev = Device::forecast();
        let m = map_circuit(&c, &dev, MappingStrategy::NoiseAware).unwrap();
        assert_eq!(m.len(), 18);
        assert!(m.estimated_fidelity > 0.0);
    }

    #[test]
    fn noise_aware_keeps_interacting_pairs_close() {
        let d = 4;
        let mut c = Circuit::uniform(2, d);
        for _ in 0..5 {
            c.push(Gate::csum(d, d), &[0, 1]).unwrap();
        }
        let dev = Device::forecast();
        let m = map_circuit(&c, &dev, MappingStrategy::NoiseAware).unwrap();
        let (mod_a, _) = dev.module_of(m.physical(0)).unwrap();
        let (mod_b, _) = dev.module_of(m.physical(1)).unwrap();
        assert!(mod_a.abs_diff(mod_b) <= 1, "interacting pair should stay within reach");
    }
}
