//! Resource estimation: maps + routes a circuit, then aggregates duration,
//! error budget and feasibility against the device's coherence times.
//!
//! This module regenerates the quantitative content of the paper's Table I:
//! for each application circuit it answers "how many qudits and entangling
//! gates, how long does it run, and does it fit within the coherence budget
//! of the forecast device".

use serde::{Deserialize, Serialize};

use cavity_sim::device::Device;
use qudit_circuit::Circuit;

use crate::error::Result;
use crate::mapping::{map_circuit, Mapping, MappingStrategy};
use crate::routing::{route, RoutedCircuit};

/// A complete resource estimate for one application circuit on one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// Label for reports.
    pub name: String,
    /// Device the estimate was made for.
    pub device: String,
    /// Number of logical qudits.
    pub logical_qudits: usize,
    /// Logical qudit dimensions.
    pub dims: Vec<usize>,
    /// Total unitary gate count.
    pub gate_count: usize,
    /// Multi-qudit (entangling) gate count.
    pub entangling_gate_count: usize,
    /// Circuit depth (greedy layering).
    pub depth: usize,
    /// Router-inserted SWAP count.
    pub swap_count: usize,
    /// Total serial duration (µs).
    pub total_duration_us: f64,
    /// Estimated end-to-end success probability.
    pub estimated_fidelity: f64,
    /// Worst mode T1 on the device (µs), for the feasibility ratio.
    pub worst_t1_us: f64,
    /// Ratio duration / worst T1 — below ~0.1 the experiment is coherence-
    /// feasible in the sense used by the paper ("difficult but mappable").
    pub duration_over_t1: f64,
    /// `true` when `duration_over_t1 < 1` (the circuit completes within one
    /// lifetime of the worst mode it uses).
    pub coherence_feasible: bool,
}

impl ResourceEstimate {
    /// Renders the estimate as a single human-readable table row.
    pub fn as_table_row(&self) -> String {
        format!(
            "{:<28} | {:>3} qudits (d={:?}) | {:>5} gates ({:>4} entangling, {:>3} swaps) | {:>9.1} µs | F ≈ {:.3} | dur/T1 = {:.3}",
            self.name,
            self.logical_qudits,
            self.dims.iter().max().copied().unwrap_or(0),
            self.gate_count,
            self.entangling_gate_count,
            self.swap_count,
            self.total_duration_us,
            self.estimated_fidelity,
            self.duration_over_t1,
        )
    }
}

/// Maps, routes and summarises a circuit on a device.
///
/// # Errors
/// Returns an error if mapping or routing fails.
pub fn estimate_resources(
    name: impl Into<String>,
    circuit: &Circuit,
    device: &Device,
    strategy: MappingStrategy,
) -> Result<ResourceEstimate> {
    let mapping = map_circuit(circuit, device, strategy)?;
    estimate_with_mapping(name, circuit, device, &mapping)
}

/// Like [`estimate_resources`] but with a caller-supplied mapping (used by
/// the mapping-ablation experiment).
///
/// # Errors
/// Returns an error if routing fails.
pub fn estimate_with_mapping(
    name: impl Into<String>,
    circuit: &Circuit,
    device: &Device,
    mapping: &Mapping,
) -> Result<ResourceEstimate> {
    let routed: RoutedCircuit = route(circuit, device, mapping)?;
    let worst_t1 = mapping
        .logical_to_physical
        .iter()
        .map(|&m| device.mode(m).map(|p| p.t1_us).unwrap_or(f64::INFINITY))
        .fold(f64::INFINITY, f64::min);
    let duration = routed.total_duration_us();
    Ok(ResourceEstimate {
        name: name.into(),
        device: device.name.clone(),
        logical_qudits: circuit.num_qudits(),
        dims: circuit.dims().to_vec(),
        gate_count: circuit.gate_count(),
        entangling_gate_count: circuit.multi_qudit_gate_count(),
        depth: circuit.depth(),
        swap_count: routed.swap_count,
        total_duration_us: duration,
        estimated_fidelity: routed.estimated_fidelity(),
        worst_t1_us: worst_t1,
        duration_over_t1: duration / worst_t1,
        coherence_feasible: duration < worst_t1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::Gate;

    fn trotter_like_circuit(n: usize, d: usize, layers: usize) -> Circuit {
        let mut c = Circuit::uniform(n, d);
        for _ in 0..layers {
            for q in 0..n {
                c.push(Gate::snap(d, &vec![0.1; d]), &[q]).unwrap();
            }
            for q in 0..n - 1 {
                c.push(Gate::csum(d, d), &[q, q + 1]).unwrap();
                c.push(Gate::csum_inverse(d, d), &[q, q + 1]).unwrap();
            }
        }
        c
    }

    #[test]
    fn estimate_counts_match_circuit() {
        let c = trotter_like_circuit(4, 4, 2);
        let dev = Device::testbed();
        let est = estimate_resources("test", &c, &dev, MappingStrategy::NoiseAware).unwrap();
        assert_eq!(est.logical_qudits, 4);
        assert_eq!(est.gate_count, c.gate_count());
        assert_eq!(est.entangling_gate_count, 12);
        assert!(est.total_duration_us > 0.0);
        assert!(est.estimated_fidelity > 0.0 && est.estimated_fidelity < 1.0);
        assert!(est.duration_over_t1 > 0.0);
        assert!(!est.as_table_row().is_empty());
    }

    #[test]
    fn paper_scale_sqed_circuit_is_coherence_feasible_on_forecast_device() {
        // Table-I row 1: 9×2 lattice, d = 4, a couple of Trotter layers.
        let c = trotter_like_circuit(18, 4, 2);
        let dev = Device::forecast();
        let est =
            estimate_resources("sQED 9x2 d=4", &c, &dev, MappingStrategy::NoiseAware).unwrap();
        assert!(est.coherence_feasible, "duration/T1 = {}", est.duration_over_t1);
        assert_eq!(est.logical_qudits, 18);
    }

    #[test]
    fn noise_aware_estimate_not_worse_than_round_robin() {
        let c = trotter_like_circuit(6, 4, 3);
        let dev = Device::forecast();
        let aware = estimate_resources("aware", &c, &dev, MappingStrategy::NoiseAware).unwrap();
        let naive = estimate_resources("naive", &c, &dev, MappingStrategy::RoundRobin).unwrap();
        assert!(aware.estimated_fidelity >= naive.estimated_fidelity * 0.999);
    }

    #[test]
    fn longer_circuits_cost_more() {
        let dev = Device::testbed();
        let short = estimate_resources(
            "short",
            &trotter_like_circuit(4, 4, 1),
            &dev,
            MappingStrategy::NoiseAware,
        )
        .unwrap();
        let long = estimate_resources(
            "long",
            &trotter_like_circuit(4, 4, 4),
            &dev,
            MappingStrategy::NoiseAware,
        )
        .unwrap();
        assert!(long.total_duration_us > short.total_duration_us);
        assert!(long.estimated_fidelity < short.estimated_fidelity);
    }
}
