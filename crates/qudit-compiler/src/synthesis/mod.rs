//! Gate synthesis: exact Givens decompositions, numerical SNAP–displacement
//! synthesis, and CSUM compilation onto cavity primitives.

pub mod csum;
pub mod givens;
pub mod snap_disp;

pub use csum::{CsumCompiler, CsumSynthesis};
pub use givens::{decompose_unitary, GivensDecomposition, GivensRotation};
pub use snap_disp::{SnapDispSynthesis, SnapDispSynthesizer};
