//! Numerical synthesis of single-mode unitaries into alternating
//! displacement / SNAP blocks (the protocol of Refs. \[7\], \[20\], \[24\]
//! in the paper).
//!
//! The ansatz is
//! `U(θ) = D(α_L) · SNAP(φ_L) · D(α_{L-1}) ⋯ SNAP(φ_1) · D(α_0)`,
//! whose parameters are optimised to maximise the average gate fidelity with
//! the target. The optimiser is an adaptive, seeded random-search /
//! coordinate-refinement loop: dependency-free, deterministic, and sufficient
//! for the moderate dimensions (d ≤ 8) and block counts (L ≤ 8) the paper's
//! applications need. The exact constructive alternative is
//! [`crate::synthesis::givens`]; this module exists to reproduce the
//! *numerical-synthesis* experiments and to study fidelity vs. layer count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qudit_circuit::gates;
use qudit_core::complex::c64;
use qudit_core::matrix::CMatrix;
use qudit_core::metrics::average_gate_fidelity;

use crate::error::{CompilerError, Result};

/// Parameters of the SNAP–displacement ansatz.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapDispParams {
    /// Displacement amplitudes `α_0 … α_L` (L+1 of them).
    pub alphas: Vec<(f64, f64)>,
    /// SNAP phase vectors `φ_1 … φ_L`, each of length `d`.
    pub snap_phases: Vec<Vec<f64>>,
}

impl SnapDispParams {
    fn num_parameters(&self) -> usize {
        2 * self.alphas.len() + self.snap_phases.iter().map(Vec::len).sum::<usize>()
    }
}

/// Result of a SNAP–displacement synthesis run.
#[derive(Debug, Clone)]
pub struct SnapDispSynthesis {
    /// Optimised parameters.
    pub params: SnapDispParams,
    /// Average gate fidelity with the target (on the truncated space).
    pub fidelity: f64,
    /// Number of optimiser iterations performed.
    pub iterations: usize,
    /// Qudit dimension of the target.
    pub d: usize,
    /// Fock-space padding used during synthesis to suppress truncation error.
    pub sim_dim: usize,
}

impl SnapDispSynthesis {
    /// Number of SNAP layers.
    pub fn snap_count(&self) -> usize {
        self.params.snap_phases.len()
    }

    /// Number of displacement pulses.
    pub fn displacement_count(&self) -> usize {
        self.params.alphas.len()
    }

    /// Rebuilds the synthesised unitary restricted to the `d × d` target
    /// subspace.
    pub fn reconstruct(&self) -> CMatrix {
        build_ansatz(self.sim_dim, &self.params).truncated(self.d)
    }
}

trait Truncate {
    fn truncated(&self, d: usize) -> CMatrix;
}

impl Truncate for CMatrix {
    fn truncated(&self, d: usize) -> CMatrix {
        CMatrix::from_fn(d, d, |i, j| self.get(i, j))
    }
}

/// Configuration of the synthesiser.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapDispSynthesizer {
    /// Number of SNAP layers `L` in the ansatz (there are `L+1` displacements).
    pub layers: usize,
    /// Maximum optimiser iterations.
    pub max_iterations: usize,
    /// Target average gate fidelity at which optimisation stops early.
    pub target_fidelity: f64,
    /// Random seed.
    pub seed: u64,
    /// Extra Fock levels simulated above `d` to absorb leakage during
    /// intermediate displacements.
    pub padding: usize,
}

impl Default for SnapDispSynthesizer {
    fn default() -> Self {
        Self { layers: 4, max_iterations: 4000, target_fidelity: 0.999, seed: 7, padding: 4 }
    }
}

impl SnapDispSynthesizer {
    /// Creates a synthesiser with `layers` SNAP layers and default budget.
    pub fn new(layers: usize) -> Self {
        Self { layers, ..Self::default() }
    }

    /// Synthesises the target `d × d` unitary.
    ///
    /// The returned fidelity is whatever the budget reached — callers decide
    /// whether it is good enough (use [`SnapDispSynthesizer::synthesize_to`]
    /// to turn an insufficient fidelity into an error).
    ///
    /// # Errors
    /// Returns an error if the target is not unitary.
    pub fn synthesize(&self, target: &CMatrix) -> Result<SnapDispSynthesis> {
        if !target.is_square() || !target.is_unitary(1e-8) {
            return Err(CompilerError::InvalidTarget(
                "SNAP-displacement synthesis target must be a unitary matrix".into(),
            ));
        }
        let d = target.rows();
        let sim_dim = d + self.padding;
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Initial parameters: small random displacements, zero SNAP phases.
        let mut params = SnapDispParams {
            alphas: (0..=self.layers)
                .map(|_| (0.3 * (rng.gen::<f64>() - 0.5), 0.3 * (rng.gen::<f64>() - 0.5)))
                .collect(),
            snap_phases: (0..self.layers)
                .map(|_| (0..sim_dim).map(|_| 0.1 * (rng.gen::<f64>() - 0.5)).collect())
                .collect(),
        };
        let mut best_fid = fidelity_of(sim_dim, d, &params, target)?;
        let mut step = 0.5;
        let mut iterations = 0;
        let n_params = params.num_parameters();

        while iterations < self.max_iterations && best_fid < self.target_fidelity {
            iterations += 1;
            // Perturb a random subset of parameters.
            let mut trial = params.clone();
            let n_perturb = 1 + rng.gen_range(0..3.min(n_params));
            for _ in 0..n_perturb {
                perturb(&mut trial, &mut rng, step);
            }
            let fid = fidelity_of(sim_dim, d, &trial, target)?;
            if fid > best_fid {
                best_fid = fid;
                params = trial;
                step = (step * 1.05).min(1.0);
            } else {
                step = (step * 0.995).max(1e-3);
            }
        }
        Ok(SnapDispSynthesis { params, fidelity: best_fid, iterations, d, sim_dim })
    }

    /// Like [`SnapDispSynthesizer::synthesize`] but fails if the requested
    /// fidelity is not reached.
    ///
    /// # Errors
    /// Returns [`CompilerError::SynthesisFailed`] when the budget is
    /// exhausted below `self.target_fidelity`.
    pub fn synthesize_to(&self, target: &CMatrix) -> Result<SnapDispSynthesis> {
        let result = self.synthesize(target)?;
        if result.fidelity < self.target_fidelity {
            return Err(CompilerError::SynthesisFailed {
                best_fidelity: result.fidelity,
                requested: self.target_fidelity,
            });
        }
        Ok(result)
    }
}

fn perturb(params: &mut SnapDispParams, rng: &mut StdRng, step: f64) {
    let n_alpha = params.alphas.len();
    let n_snap = params.snap_phases.len();
    let pick = rng.gen_range(0..(n_alpha + n_snap));
    if pick < n_alpha {
        let delta_re = step * (rng.gen::<f64>() - 0.5);
        let delta_im = step * (rng.gen::<f64>() - 0.5);
        params.alphas[pick].0 += delta_re;
        params.alphas[pick].1 += delta_im;
    } else {
        let layer = pick - n_alpha;
        let d = params.snap_phases[layer].len();
        let level = rng.gen_range(0..d);
        params.snap_phases[layer][level] += 2.0 * step * (rng.gen::<f64>() - 0.5);
    }
}

fn build_ansatz(sim_dim: usize, params: &SnapDispParams) -> CMatrix {
    let mut u = gates::displacement(sim_dim, c64(params.alphas[0].0, params.alphas[0].1));
    for (layer, phases) in params.snap_phases.iter().enumerate() {
        let s = gates::snap(sim_dim, phases);
        u = s.matmul(&u).expect("square");
        let (re, im) = params.alphas[layer + 1];
        let d_gate = gates::displacement(sim_dim, c64(re, im));
        u = d_gate.matmul(&u).expect("square");
    }
    u
}

fn fidelity_of(sim_dim: usize, d: usize, params: &SnapDispParams, target: &CMatrix) -> Result<f64> {
    let full = build_ansatz(sim_dim, params);
    let truncated = full.truncated(d);
    // Penalise leakage out of the computational subspace: the truncated block
    // of a leaky unitary has reduced singular values, which already lowers
    // |Tr(U†V)|, so average gate fidelity on the block is the right metric.
    average_gate_fidelity(target, &truncated).map_err(CompilerError::Core)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_synthesised_immediately() {
        let target = CMatrix::identity(3);
        let synth = SnapDispSynthesizer { layers: 1, max_iterations: 200, ..Default::default() };
        let result = synth.synthesize(&target).unwrap();
        assert!(result.fidelity > 0.99, "fidelity {}", result.fidelity);
    }

    #[test]
    fn snap_targets_are_easy() {
        // A pure SNAP target is representable exactly by the ansatz.
        let target = gates::snap(4, &[0.0, 0.4, -0.9, 1.3]);
        let synth = SnapDispSynthesizer { layers: 2, max_iterations: 3000, ..Default::default() };
        let result = synth.synthesize(&target).unwrap();
        assert!(result.fidelity > 0.98, "fidelity {}", result.fidelity);
    }

    #[test]
    fn qutrit_rotation_reaches_high_fidelity() {
        // The paper's B1 claim: single-qudit QAOA rotations synthesise to >99%.
        let target = gates::x_mixer(3, 0.6);
        let synth = SnapDispSynthesizer {
            layers: 5,
            max_iterations: 6000,
            target_fidelity: 0.99,
            ..Default::default()
        };
        let result = synth.synthesize(&target).unwrap();
        assert!(result.fidelity > 0.95, "fidelity {}", result.fidelity);
        assert_eq!(result.displacement_count(), 6);
        assert_eq!(result.snap_count(), 5);
    }

    #[test]
    fn more_layers_do_not_hurt() {
        let target = gates::fourier(3);
        let shallow =
            SnapDispSynthesizer { layers: 1, max_iterations: 1500, seed: 3, ..Default::default() }
                .synthesize(&target)
                .unwrap();
        let deep =
            SnapDispSynthesizer { layers: 6, max_iterations: 1500, seed: 3, ..Default::default() }
                .synthesize(&target)
                .unwrap();
        assert!(deep.fidelity >= shallow.fidelity - 0.05);
    }

    #[test]
    fn synthesize_to_enforces_threshold() {
        let target = gates::fourier(4);
        let synth = SnapDispSynthesizer {
            layers: 1,
            max_iterations: 50,
            target_fidelity: 0.9999,
            ..Default::default()
        };
        assert!(matches!(synth.synthesize_to(&target), Err(CompilerError::SynthesisFailed { .. })));
    }

    #[test]
    fn rejects_non_unitary_target() {
        let synth = SnapDispSynthesizer::default();
        assert!(synth.synthesize(&CMatrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn reconstruction_matches_reported_fidelity() {
        let target = gates::snap(3, &[0.3, -0.2, 0.9]);
        let synth = SnapDispSynthesizer { layers: 2, max_iterations: 2000, ..Default::default() };
        let result = synth.synthesize(&target).unwrap();
        let rebuilt = result.reconstruct();
        let f = average_gate_fidelity(&target, &rebuilt).unwrap();
        assert!((f - result.fidelity).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let target = gates::fourier(3);
        let synth =
            SnapDispSynthesizer { layers: 3, max_iterations: 500, seed: 99, ..Default::default() };
        let a = synth.synthesize(&target).unwrap();
        let b = synth.synthesize(&target).unwrap();
        assert_eq!(a.fidelity, b.fidelity);
        assert_eq!(a.iterations, b.iterations);
    }
}
