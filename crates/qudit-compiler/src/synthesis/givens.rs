//! Exact decomposition of single-mode unitaries into adjacent-level Givens
//! rotations plus a final SNAP (diagonal phase) layer.
//!
//! Any `d × d` unitary can be written as a product of rotations that each act
//! only on two *adjacent* Fock levels `{|n⟩, |n+1⟩}`, followed by per-level
//! phases. Adjacent-level rotations are the natural primitive of cavity
//! control (a displacement–SNAP–displacement sandwich), so this decomposition
//! is the constructive backbone of the compiler: it is exact, deterministic,
//! and its rotation count `d(d−1)/2` gives the primitive-count scaling used
//! in the resource estimates.

use qudit_core::matrix::CMatrix;
use qudit_core::metrics::process_fidelity;

use crate::error::{CompilerError, Result};

/// A rotation acting on the two adjacent levels `(level, level + 1)` of a
/// `d`-level qudit, stored as its full `d × d` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct GivensRotation {
    /// Lower of the two levels the rotation acts on.
    pub level: usize,
    /// The full `d × d` unitary (identity outside the 2×2 block).
    pub matrix: CMatrix,
    /// Rotation angle θ (for cost accounting; `|sin θ|` is the transferred
    /// amplitude).
    pub theta: f64,
}

/// The result of a Givens decomposition: apply `rotations` in order, then the
/// final SNAP phases — i.e. `U = SNAP(phases) · R_N ⋯ R_2 R_1` read
/// right-to-left as matrices, or "rotations first, phases last" as a circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct GivensDecomposition {
    /// Qudit dimension.
    pub d: usize,
    /// Rotations in application (circuit) order.
    pub rotations: Vec<GivensRotation>,
    /// Final per-level phases (a SNAP gate).
    pub phases: Vec<f64>,
}

impl GivensDecomposition {
    /// Rebuilds the full unitary from the decomposition.
    pub fn reconstruct(&self) -> CMatrix {
        let mut u = CMatrix::identity(self.d);
        for rot in &self.rotations {
            u = rot.matrix.matmul(&u).expect("square");
        }
        let snap = qudit_circuit::gates::snap(self.d, &self.phases);
        snap.matmul(&u).expect("square")
    }

    /// Number of adjacent-level rotations.
    pub fn rotation_count(&self) -> usize {
        self.rotations.len()
    }

    /// Number of rotations with a non-negligible angle (|θ| > 1e-9), i.e.
    /// pulses that actually need to be played.
    pub fn nontrivial_rotation_count(&self) -> usize {
        self.rotations.iter().filter(|r| r.theta.abs() > 1e-9).count()
    }

    /// Primitive cost of the decomposition in cavity control pulses, using
    /// the standard displacement–SNAP–displacement realisation of each
    /// adjacent-level rotation plus one final SNAP:
    /// returns `(snap_count, displacement_count)`.
    pub fn primitive_counts(&self) -> (usize, usize) {
        let nr = self.nontrivial_rotation_count();
        (nr + 1, 2 * nr)
    }

    /// Reconstruction fidelity against a target unitary.
    ///
    /// # Errors
    /// Returns an error on dimension mismatch.
    pub fn fidelity_against(&self, target: &CMatrix) -> Result<f64> {
        process_fidelity(&self.reconstruct(), target).map_err(CompilerError::Core)
    }
}

/// Decomposes a `d × d` unitary into adjacent-level Givens rotations plus a
/// final SNAP layer.
///
/// # Errors
/// Returns an error if the matrix is not square or not unitary to `1e-8`.
pub fn decompose_unitary(u: &CMatrix) -> Result<GivensDecomposition> {
    if !u.is_square() {
        return Err(CompilerError::InvalidTarget("synthesis target must be square".into()));
    }
    if !u.is_unitary(1e-8) {
        return Err(CompilerError::InvalidTarget("synthesis target must be unitary".into()));
    }
    let d = u.rows();
    // Eliminate on V = U†: rotations G_k with G_N ⋯ G_1 V = D imply
    // U = V† = D† · G_N ⋯ G_1, i.e. as a circuit "apply G_1, G_2, …, G_N,
    // then the diagonal phases of D†" — rotations first, SNAP last.
    let mut m = u.dagger();
    let mut rotations: Vec<GivensRotation> = Vec::new();
    for col in 0..d {
        for row in (col + 1..d).rev() {
            let a = m.get(row - 1, col);
            let b = m.get(row, col);
            let r = (a.norm_sqr() + b.norm_sqr()).sqrt();
            if b.abs() < 1e-14 {
                continue;
            }
            // 2x2 block G = (1/r) [[ā, b̄], [−b, a]] zeroes entry (row, col).
            let g00 = a.conj() / r;
            let g01 = b.conj() / r;
            let g10 = -b / r;
            let g11 = a / r;
            let mut g = CMatrix::identity(d);
            g[(row - 1, row - 1)] = g00;
            g[(row - 1, row)] = g01;
            g[(row, row - 1)] = g10;
            g[(row, row)] = g11;
            m = g.matmul(&m).map_err(CompilerError::Core)?;
            let theta = (b.abs() / r).asin();
            rotations.push(GivensRotation { level: row - 1, matrix: g, theta });
        }
    }
    // m now holds the diagonal D; the circuit's final SNAP applies D†.
    let mut phases = Vec::with_capacity(d);
    for k in 0..d {
        phases.push(-m.get(k, k).arg());
    }
    Ok(GivensDecomposition { d, rotations, phases })
}

/// Builds the full matrix of an adjacent-level rotation
/// `R_{n,n+1}(θ, φ)` for direct use as a synthesis target.
pub fn adjacent_rotation(d: usize, level: usize, theta: f64, phi: f64) -> CMatrix {
    qudit_circuit::gates::rot_subspace(d, level, level + 1, theta, phi)
}

/// Convenience: number of adjacent-level rotations the exact decomposition of
/// a generic (dense) `d × d` unitary requires, `d(d−1)/2`.
pub fn generic_rotation_count(d: usize) -> usize {
    d * (d - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_circuit::gates;
    use qudit_core::complex::Complex64;
    use qudit_core::random::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn decomposes_haar_random_unitaries_exactly() {
        let mut rng = StdRng::seed_from_u64(11);
        for d in [2, 3, 4, 5, 8] {
            let u = haar_unitary(&mut rng, d).unwrap();
            let dec = decompose_unitary(&u).unwrap();
            let f = dec.fidelity_against(&u).unwrap();
            assert!(f > 1.0 - 1e-9, "d = {d}, fidelity {f}");
            assert!(dec.rotation_count() <= generic_rotation_count(d));
        }
    }

    #[test]
    fn decomposes_fourier_gate() {
        for d in [3, 4, 6] {
            let f_gate = gates::fourier(d);
            let dec = decompose_unitary(&f_gate).unwrap();
            assert!(dec.fidelity_against(&f_gate).unwrap() > 1.0 - 1e-9);
        }
    }

    #[test]
    fn diagonal_unitary_needs_no_rotations() {
        let snap = gates::snap(5, &[0.1, 0.7, -0.3, 2.0, 0.0]);
        let dec = decompose_unitary(&snap).unwrap();
        assert_eq!(dec.nontrivial_rotation_count(), 0);
        assert!(dec.fidelity_against(&snap).unwrap() > 1.0 - 1e-10);
        let (snaps, disps) = dec.primitive_counts();
        assert_eq!(snaps, 1);
        assert_eq!(disps, 0);
    }

    #[test]
    fn single_subspace_rotation_is_recognised_as_cheap() {
        let d = 6;
        let target = adjacent_rotation(d, 2, 1.1, 0.4);
        let dec = decompose_unitary(&target).unwrap();
        assert!(dec.fidelity_against(&target).unwrap() > 1.0 - 1e-9);
        // Only rotations touching levels 2-3 should be non-trivial.
        assert!(dec.nontrivial_rotation_count() <= 3);
    }

    #[test]
    fn rejects_non_unitary_targets() {
        let m = CMatrix::zeros(3, 3);
        assert!(decompose_unitary(&m).is_err());
        let rect = CMatrix::zeros(2, 3);
        assert!(decompose_unitary(&rect).is_err());
    }

    #[test]
    fn rotation_matrices_touch_only_adjacent_levels() {
        let mut rng = StdRng::seed_from_u64(3);
        let u = haar_unitary(&mut rng, 4).unwrap();
        let dec = decompose_unitary(&u).unwrap();
        for rot in &dec.rotations {
            let g = &rot.matrix;
            for i in 0..4 {
                for j in 0..4 {
                    let in_block = (i == rot.level || i == rot.level + 1)
                        && (j == rot.level || j == rot.level + 1);
                    if !in_block {
                        let expected = if i == j { Complex64::ONE } else { Complex64::ZERO };
                        assert!((g.get(i, j) - expected).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn primitive_counts_scale_quadratically() {
        let mut rng = StdRng::seed_from_u64(5);
        let u3 = haar_unitary(&mut rng, 3).unwrap();
        let u6 = haar_unitary(&mut rng, 6).unwrap();
        let c3 = decompose_unitary(&u3).unwrap().primitive_counts();
        let c6 = decompose_unitary(&u6).unwrap().primitive_counts();
        assert!(c6.1 > 3 * c3.1);
        assert_eq!(generic_rotation_count(3), 3);
        assert_eq!(generic_rotation_count(6), 15);
    }
}
