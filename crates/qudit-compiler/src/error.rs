//! Error types for the compilation stack.

use std::fmt;

/// Result alias used throughout `qudit-compiler`.
pub type Result<T> = std::result::Result<T, CompilerError>;

/// Errors produced during synthesis, mapping and routing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompilerError {
    /// The synthesis target was invalid (wrong shape, not unitary, ...).
    InvalidTarget(String),
    /// Synthesis did not reach the requested fidelity within its budget.
    SynthesisFailed {
        /// Best fidelity reached.
        best_fidelity: f64,
        /// Fidelity that was requested.
        requested: f64,
    },
    /// The circuit cannot be mapped onto the device (too many qudits,
    /// incompatible dimensions, ...).
    MappingFailed(String),
    /// Routing could not connect two qudits on the device topology.
    RoutingFailed(String),
    /// An error bubbled up from the numerics substrate.
    Core(qudit_core::CoreError),
    /// An error bubbled up from the circuit layer.
    Circuit(qudit_circuit::CircuitError),
    /// An error bubbled up from the device model.
    Cavity(cavity_sim::CavityError),
}

impl fmt::Display for CompilerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompilerError::InvalidTarget(msg) => write!(f, "invalid synthesis target: {msg}"),
            CompilerError::SynthesisFailed { best_fidelity, requested } => write!(
                f,
                "synthesis reached fidelity {best_fidelity:.6} below the requested {requested:.6}"
            ),
            CompilerError::MappingFailed(msg) => write!(f, "mapping failed: {msg}"),
            CompilerError::RoutingFailed(msg) => write!(f, "routing failed: {msg}"),
            CompilerError::Core(e) => write!(f, "core error: {e}"),
            CompilerError::Circuit(e) => write!(f, "circuit error: {e}"),
            CompilerError::Cavity(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for CompilerError {}

impl From<qudit_core::CoreError> for CompilerError {
    fn from(e: qudit_core::CoreError) -> Self {
        CompilerError::Core(e)
    }
}

impl From<qudit_circuit::CircuitError> for CompilerError {
    fn from(e: qudit_circuit::CircuitError) -> Self {
        CompilerError::Circuit(e)
    }
}

impl From<cavity_sim::CavityError> for CompilerError {
    fn from(e: cavity_sim::CavityError) -> Self {
        CompilerError::Cavity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = CompilerError::SynthesisFailed { best_fidelity: 0.97, requested: 0.999 };
        assert!(e.to_string().contains("0.97"));
        let e: CompilerError = qudit_core::CoreError::InvalidDimension(1).into();
        assert!(e.to_string().contains("core error"));
    }
}
