//! Error types for the cQED substrate.

use std::fmt;

use qudit_core::error::CoreError;

/// Result alias used throughout `cavity-sim`.
pub type Result<T> = std::result::Result<T, CavityError>;

/// Errors produced by the cQED device and open-system simulators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CavityError {
    /// A physical parameter was invalid (negative rate, zero step, ...).
    InvalidParameter(String),
    /// A mode or module index was out of range.
    InvalidIndex(String),
    /// An error bubbled up from the numerics substrate.
    Core(CoreError),
    /// An error bubbled up from the circuit layer.
    Circuit(qudit_circuit::CircuitError),
}

impl fmt::Display for CavityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CavityError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            CavityError::InvalidIndex(msg) => write!(f, "invalid index: {msg}"),
            CavityError::Core(e) => write!(f, "core error: {e}"),
            CavityError::Circuit(e) => write!(f, "circuit error: {e}"),
        }
    }
}

impl std::error::Error for CavityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CavityError::Core(e) => Some(e),
            CavityError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for CavityError {
    fn from(e: CoreError) -> Self {
        CavityError::Core(e)
    }
}

impl From<qudit_circuit::CircuitError> for CavityError {
    fn from(e: qudit_circuit::CircuitError) -> Self {
        CavityError::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CavityError = CoreError::InvalidDimension(0).into();
        assert!(e.to_string().contains("core error"));
        let e: CavityError = qudit_circuit::CircuitError::InvalidGate("bad".into()).into();
        assert!(e.to_string().contains("circuit error"));
        assert!(CavityError::InvalidParameter("x".into())
            .to_string()
            .contains("invalid parameter"));
    }
}
