//! Transmon ancilla model.
//!
//! In the cavity-qudit architecture the transmon is not a data carrier: it is
//! the nonlinear element that mediates SNAP gates, sideband transitions and
//! beam-splitter interactions between cavity modes. Its (comparatively poor)
//! coherence enters the error model of every primitive it catalyses.

use qudit_core::complex::c64;
use qudit_core::matrix::CMatrix;
use serde::{Deserialize, Serialize};

/// Physical parameters of a transmon ancilla.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransmonParams {
    /// Qubit transition frequency (GHz).
    pub frequency_ghz: f64,
    /// Anharmonicity `α/2π` (MHz, negative for a transmon).
    pub anharmonicity_mhz: f64,
    /// Energy-relaxation time T1 (µs).
    pub t1_us: f64,
    /// Total dephasing time T2 (µs), `T2 ≤ 2 T1`.
    pub t2_us: f64,
    /// Number of transmon levels retained in simulations.
    pub levels: usize,
}

impl TransmonParams {
    /// A representative present-day transmon used in SQMS-style cavity
    /// experiments (T1 ≈ 100 µs, T2 ≈ 80 µs, α ≈ −200 MHz).
    pub fn typical() -> Self {
        Self { frequency_ghz: 5.0, anharmonicity_mhz: -200.0, t1_us: 100.0, t2_us: 80.0, levels: 3 }
    }

    /// An optimistic near-term transmon (T1 ≈ 300 µs) matching the paper's
    /// five-year extrapolation.
    pub fn forecast() -> Self {
        Self {
            frequency_ghz: 5.0,
            anharmonicity_mhz: -180.0,
            t1_us: 300.0,
            t2_us: 250.0,
            levels: 3,
        }
    }

    /// Bare transmon Hamiltonian (angular frequency units of 2π·GHz),
    /// `H = ω b†b + (α/2) b†b(b†b − 1)`, truncated to `self.levels`.
    pub fn hamiltonian(&self) -> CMatrix {
        let d = self.levels;
        let alpha_ghz = self.anharmonicity_mhz / 1000.0;
        CMatrix::diag(
            &(0..d)
                .map(|n| {
                    let n = n as f64;
                    c64(self.frequency_ghz * n + 0.5 * alpha_ghz * n * (n - 1.0), 0.0)
                })
                .collect::<Vec<_>>(),
        )
    }

    /// Pure-dephasing rate `1/Tφ = 1/T2 − 1/(2 T1)` in µs⁻¹ (clamped at 0).
    pub fn pure_dephasing_rate(&self) -> f64 {
        (1.0 / self.t2_us - 0.5 / self.t1_us).max(0.0)
    }

    /// Relaxation rate `1/T1` in µs⁻¹.
    pub fn relaxation_rate(&self) -> f64 {
        1.0 / self.t1_us
    }

    /// Probability that the transmon decoheres (relaxation or pure dephasing)
    /// at least once while it is active for `duration_us`.
    pub fn error_during(&self, duration_us: f64) -> f64 {
        let rate = self.relaxation_rate() + self.pure_dephasing_rate();
        1.0 - (-rate * duration_us).exp()
    }
}

impl Default for TransmonParams {
    fn default() -> Self {
        Self::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamiltonian_spectrum_is_anharmonic() {
        let t = TransmonParams::typical();
        let h = t.hamiltonian();
        let e0 = h[(0, 0)].re;
        let e1 = h[(1, 1)].re;
        let e2 = h[(2, 2)].re;
        let gap01 = e1 - e0;
        let gap12 = e2 - e1;
        // The 1→2 transition sits below the 0→1 transition by |α|.
        assert!((gap01 - gap12 - 0.2).abs() < 1e-9);
    }

    #[test]
    fn dephasing_rate_consistent_with_t1_t2() {
        let t = TransmonParams { t1_us: 100.0, t2_us: 200.0, ..TransmonParams::typical() };
        // T2 = 2T1 means no pure dephasing.
        assert!(t.pure_dephasing_rate().abs() < 1e-12);
        let t = TransmonParams { t1_us: 100.0, t2_us: 50.0, ..TransmonParams::typical() };
        assert!(t.pure_dephasing_rate() > 0.0);
    }

    #[test]
    fn error_during_grows_with_duration_and_saturates() {
        let t = TransmonParams::typical();
        let short = t.error_during(0.1);
        let long = t.error_during(10.0);
        assert!(short < long);
        assert!(short > 0.0);
        assert!(t.error_during(1e6) <= 1.0);
        assert!((t.error_during(0.0)).abs() < 1e-12);
    }

    #[test]
    fn forecast_is_better_than_typical() {
        assert!(TransmonParams::forecast().t1_us > TransmonParams::typical().t1_us);
        assert!(
            TransmonParams::forecast().error_during(1.0)
                < TransmonParams::typical().error_during(1.0)
        );
    }
}
