//! # cavity-sim
//!
//! cQED hardware substrate for cavity-based qudit processors: Fock-space
//! states, transmon ancilla models, dispersive cavity–transmon Hamiltonians,
//! a Lindblad master-equation integrator for open-system dynamics, hardware
//! primitive operations (SNAP, displacement, beam-splitter, CSUM) with
//! durations and device-calibrated error rates, and multi-cavity device
//! models with per-mode coherence budgets.
//!
//! This crate plays the role of the hardware the paper forecasts (≈10
//! linearly connected SRF cavities × 4 modes × d ≈ 10 photons with
//! millisecond T1): since that machine does not exist yet, every experiment
//! in the workspace runs against these models instead.
//!
//! ## Example: photon decay in a lossy cavity
//!
//! ```
//! use cavity_sim::lindblad::LindbladSystem;
//! use cavity_sim::fock::fock_state;
//! use qudit_circuit::gates;
//! use qudit_core::density::DensityMatrix;
//!
//! let d = 6;
//! let mut sys = LindbladSystem::new(vec![d]).unwrap();
//! sys.add_collapse(&gates::annihilation(d), &[0], 0.1).unwrap();
//! let mut rho = DensityMatrix::from_pure(&fock_state(d, 2).unwrap());
//! sys.evolve(&mut rho, 1.0, 0.01).unwrap();
//! let n = rho.expectation(&gates::number_operator(d), &[0]).unwrap().re;
//! assert!((n - 2.0 * (-0.1_f64).exp()).abs() < 1e-2);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod dispersive;
pub mod error;
pub mod fock;
pub mod lindblad;
pub mod primitives;
pub mod transmon;

pub use device::{CavityModule, Device, GateDurations, ModeParams};
pub use dispersive::DispersiveParams;
pub use error::{CavityError, Result};
pub use lindblad::LindbladSystem;
pub use primitives::{BoundPrimitive, Primitive, PrimitiveSchedule};
pub use transmon::TransmonParams;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::device::{Device, GateDurations, ModeParams};
    pub use crate::dispersive::DispersiveParams;
    pub use crate::error::{CavityError, Result};
    pub use crate::fock::{coherent_state, fock_state, thermal_density};
    pub use crate::lindblad::LindbladSystem;
    pub use crate::primitives::{Primitive, PrimitiveSchedule};
    pub use crate::transmon::TransmonParams;
}
