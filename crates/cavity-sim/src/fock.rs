//! Fock-space states of truncated bosonic modes.

use qudit_core::complex::{c64, Complex64};
use qudit_core::error::{CoreError, Result};
use qudit_core::matrix::CMatrix;
use qudit_core::state::QuditState;

/// A Fock (photon-number) basis state `|n⟩` of a mode truncated to `d` levels.
///
/// # Errors
/// Returns an error if `n >= d`.
pub fn fock_state(d: usize, n: usize) -> Result<QuditState> {
    QuditState::basis(vec![d], &[n])
}

/// Amplitudes of a coherent state `|α⟩` truncated to `d` levels and
/// renormalised on the truncated subspace.
pub fn coherent_amplitudes(d: usize, alpha: Complex64) -> Vec<Complex64> {
    let mut amps = Vec::with_capacity(d);
    // amp_n = α^n / sqrt(n!) (global e^{-|α|²/2} restored by normalisation).
    let mut current = Complex64::ONE;
    for n in 0..d {
        if n > 0 {
            current = current * alpha / (n as f64).sqrt();
        }
        amps.push(current);
    }
    let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    amps.iter().map(|a| *a / norm).collect()
}

/// A coherent state `|α⟩` truncated to `d` levels.
///
/// # Errors
/// Returns an error for invalid dimensions.
pub fn coherent_state(d: usize, alpha: Complex64) -> Result<QuditState> {
    QuditState::from_amplitudes(vec![d], coherent_amplitudes(d, alpha))
}

/// An even (`+`) or odd (`−`) Schrödinger-cat state
/// `|α⟩ ± |−α⟩` (normalised), truncated to `d` levels.
///
/// # Errors
/// Returns an error for invalid dimensions or a numerically zero state (odd
/// cat with `α = 0`).
pub fn cat_state(d: usize, alpha: Complex64, even: bool) -> Result<QuditState> {
    let plus = coherent_amplitudes(d, alpha);
    let minus = coherent_amplitudes(d, -alpha);
    let sign = if even { 1.0 } else { -1.0 };
    let amps: Vec<Complex64> =
        plus.iter().zip(minus.iter()).map(|(a, b)| *a + b.scale(sign)).collect();
    let mut state = QuditState::from_amplitudes(vec![d], amps)?;
    state.normalize()?;
    Ok(state)
}

/// Density matrix of a thermal state with mean photon number `nbar`,
/// truncated to `d` levels and renormalised.
///
/// # Errors
/// Returns an error if `d` is zero or `nbar` is negative.
pub fn thermal_density(d: usize, nbar: f64) -> Result<CMatrix> {
    if d == 0 {
        return Err(CoreError::InvalidDimension(0));
    }
    if nbar < 0.0 {
        return Err(CoreError::InvalidArgument(format!(
            "mean photon number must be non-negative, got {nbar}"
        )));
    }
    if nbar == 0.0 {
        let mut m = CMatrix::zeros(d, d);
        m[(0, 0)] = Complex64::ONE;
        return Ok(m);
    }
    let ratio = nbar / (1.0 + nbar);
    let mut probs: Vec<f64> = (0..d).map(|n| ratio.powi(n as i32)).collect();
    let total: f64 = probs.iter().sum();
    for p in &mut probs {
        *p /= total;
    }
    Ok(CMatrix::diag(&probs.iter().map(|&p| c64(p, 0.0)).collect::<Vec<_>>()))
}

/// Mean photon number of a single-mode state.
pub fn mean_photon_number(state: &QuditState) -> f64 {
    state.amplitudes().iter().enumerate().map(|(n, a)| n as f64 * a.norm_sqr()).sum()
}

/// Photon-number distribution of a single-mode state.
pub fn photon_distribution(state: &QuditState) -> Vec<f64> {
    state.probabilities()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coherent_state_poissonian_statistics() {
        let alpha = c64(1.5, 0.0);
        let d = 30;
        let s = coherent_state(d, alpha).unwrap();
        assert!((s.norm() - 1.0).abs() < 1e-12);
        let n_mean = mean_photon_number(&s);
        assert!((n_mean - alpha.norm_sqr()).abs() < 1e-6);
        // Variance equals the mean for a Poisson distribution.
        let n2: f64 =
            s.amplitudes().iter().enumerate().map(|(n, a)| (n * n) as f64 * a.norm_sqr()).sum();
        let var = n2 - n_mean * n_mean;
        assert!((var - n_mean).abs() < 1e-4);
    }

    #[test]
    fn vacuum_coherent_state_is_fock_zero() {
        let s = coherent_state(5, Complex64::ZERO).unwrap();
        assert!((s.amplitudes()[0].abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cat_states_have_definite_parity() {
        let d = 25;
        let even = cat_state(d, c64(1.2, 0.0), true).unwrap();
        let odd = cat_state(d, c64(1.2, 0.0), false).unwrap();
        for (n, amp) in even.amplitudes().iter().enumerate() {
            if n % 2 == 1 {
                assert!(amp.abs() < 1e-12, "even cat has odd component at n={n}");
            }
        }
        for (n, amp) in odd.amplitudes().iter().enumerate() {
            if n % 2 == 0 {
                assert!(amp.abs() < 1e-12, "odd cat has even component at n={n}");
            }
        }
        assert!(even.inner(&odd).unwrap().abs() < 1e-12);
    }

    #[test]
    fn thermal_state_properties() {
        let d = 40;
        let nbar = 0.8;
        let rho = thermal_density(d, nbar).unwrap();
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        let n_mean: f64 = (0..d).map(|n| n as f64 * rho[(n, n)].re).sum();
        assert!((n_mean - nbar).abs() < 1e-3);
        assert!(thermal_density(5, -0.1).is_err());
        // Zero-temperature limit is the vacuum.
        let vac = thermal_density(5, 0.0).unwrap();
        assert!((vac[(0, 0)].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fock_state_bounds() {
        assert!(fock_state(4, 3).is_ok());
        assert!(fock_state(4, 4).is_err());
    }
}
