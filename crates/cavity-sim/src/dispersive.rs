//! Dispersive cavity–transmon Hamiltonians.
//!
//! In the dispersive regime the transmon–cavity interaction reduces to
//! `H = χ a†a · b†b` (a number–number coupling), plus self-Kerr corrections
//! on the cavity. These are the effective Hamiltonians from which SNAP gates
//! and photon-number-resolved measurements derive, and the source of the
//! idling error on spectator modes while a gate addresses another mode.

use qudit_circuit::gates;
use qudit_core::matrix::CMatrix;
use serde::{Deserialize, Serialize};

use crate::error::{CavityError, Result};
use crate::lindblad::LindbladSystem;
use crate::transmon::TransmonParams;

/// Parameters of a dispersively coupled cavity mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DispersiveParams {
    /// Dispersive shift χ/2π (MHz) between this mode and the transmon.
    pub chi_mhz: f64,
    /// Cavity self-Kerr K/2π (kHz).
    pub self_kerr_khz: f64,
    /// Detuning of the mode from its rotating frame (MHz); 0 in the frame of
    /// the drive.
    pub detuning_mhz: f64,
}

impl DispersiveParams {
    /// Representative values for an SRF-cavity mode coupled to a transmon
    /// (χ ≈ 1 MHz, K ≈ 1 kHz).
    pub fn typical() -> Self {
        Self { chi_mhz: 1.0, self_kerr_khz: 1.0, detuning_mhz: 0.0 }
    }
}

impl Default for DispersiveParams {
    fn default() -> Self {
        Self::typical()
    }
}

/// Builds the joint cavity ⊗ transmon dispersive Hamiltonian
/// `H/ħ = Δ_c a†a + χ a†a ⊗ b†b + (K/2)(a†a)²` in angular MHz units,
/// ordered `[cavity, transmon]`.
pub fn dispersive_hamiltonian(
    cavity_dim: usize,
    params: &DispersiveParams,
    transmon: &TransmonParams,
) -> CMatrix {
    let tdim = transmon.levels;
    let n_c = gates::number_operator(cavity_dim);
    let n_t = gates::number_operator(tdim);
    let id_t = CMatrix::identity(tdim);

    let two_pi = 2.0 * std::f64::consts::PI;
    // Detuning term.
    let mut h = n_c.kron(&id_t).scaled_real(two_pi * params.detuning_mhz);
    // Dispersive coupling χ n_c ⊗ n_t.
    h.axpy(qudit_core::complex::c64(two_pi * params.chi_mhz, 0.0), &n_c.kron(&n_t))
        .expect("same shape");
    // Self-Kerr (K/2) n_c(n_c - 1).
    let n2 = n_c.matmul(&n_c).expect("square");
    let mut kerr = n2;
    kerr.axpy(qudit_core::complex::c64(-1.0, 0.0), &n_c).expect("same shape");
    h.axpy(
        qudit_core::complex::c64(two_pi * params.self_kerr_khz / 1000.0 / 2.0, 0.0),
        &kerr.kron(&id_t),
    )
    .expect("same shape");
    h
}

/// Assembles an open cavity–transmon system (one cavity mode, one transmon)
/// with dissipation rates derived from the coherence times. Time units are
/// microseconds (rates in µs⁻¹, Hamiltonian entries in rad/µs).
///
/// # Errors
/// Returns an error if parameters are invalid.
pub fn cavity_transmon_system(
    cavity_dim: usize,
    cavity_t1_us: f64,
    params: &DispersiveParams,
    transmon: &TransmonParams,
) -> Result<LindbladSystem> {
    if cavity_t1_us <= 0.0 {
        return Err(CavityError::InvalidParameter(format!(
            "cavity T1 must be positive, got {cavity_t1_us}"
        )));
    }
    let tdim = transmon.levels;
    let mut sys = LindbladSystem::new(vec![cavity_dim, tdim])?;
    let h = dispersive_hamiltonian(cavity_dim, params, transmon);
    sys.add_full_hamiltonian(&h, 1.0)?;
    // Cavity photon loss.
    sys.add_collapse(&gates::annihilation(cavity_dim), &[0], 1.0 / cavity_t1_us)?;
    // Transmon relaxation and pure dephasing.
    sys.add_collapse(&gates::annihilation(tdim), &[1], transmon.relaxation_rate())?;
    let dephasing_rate = transmon.pure_dephasing_rate();
    if dephasing_rate > 0.0 {
        sys.add_collapse(&gates::number_operator(tdim), &[1], 2.0 * dephasing_rate)?;
    }
    Ok(sys)
}

/// The multi-mode generalisation: several cavity modes sharing a single
/// transmon, `H = Σ_i χ_i n_i ⊗ n_t + cross-Kerr_{ij} n_i n_j`.
/// Mode `i` occupies register slot `i`; the transmon is the last slot.
///
/// # Errors
/// Returns an error if the parameter lists disagree in length.
pub fn multimode_dispersive_system(
    mode_dims: &[usize],
    mode_t1_us: &[f64],
    chis_mhz: &[f64],
    cross_kerr_khz: f64,
    transmon: &TransmonParams,
) -> Result<LindbladSystem> {
    if mode_dims.len() != mode_t1_us.len() || mode_dims.len() != chis_mhz.len() {
        return Err(CavityError::InvalidParameter(
            "mode_dims, mode_t1_us and chis_mhz must have the same length".into(),
        ));
    }
    let two_pi = 2.0 * std::f64::consts::PI;
    let tdim = transmon.levels;
    let mut dims = mode_dims.to_vec();
    dims.push(tdim);
    let mut sys = LindbladSystem::new(dims)?;
    let transmon_slot = mode_dims.len();
    let n_t = gates::number_operator(tdim);
    for (i, (&d, &chi)) in mode_dims.iter().zip(chis_mhz.iter()).enumerate() {
        let n_i = gates::number_operator(d);
        sys.add_hamiltonian_term(&n_i.kron(&n_t), &[i, transmon_slot], two_pi * chi)?;
        sys.add_collapse(&gates::annihilation(d), &[i], 1.0 / mode_t1_us[i])?;
    }
    // Mode–mode cross-Kerr (transmon-mediated).
    if cross_kerr_khz != 0.0 {
        for i in 0..mode_dims.len() {
            for j in (i + 1)..mode_dims.len() {
                let n_i = gates::number_operator(mode_dims[i]);
                let n_j = gates::number_operator(mode_dims[j]);
                sys.add_hamiltonian_term(
                    &n_i.kron(&n_j),
                    &[i, j],
                    two_pi * cross_kerr_khz / 1000.0,
                )?;
            }
        }
    }
    // Transmon decoherence.
    sys.add_collapse(&gates::annihilation(tdim), &[transmon_slot], transmon.relaxation_rate())?;
    let deph = transmon.pure_dephasing_rate();
    if deph > 0.0 {
        sys.add_collapse(&gates::number_operator(tdim), &[transmon_slot], 2.0 * deph)?;
    }
    Ok(sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::density::DensityMatrix;
    use qudit_core::state::QuditState;

    #[test]
    fn dispersive_hamiltonian_is_diagonal_and_hermitian() {
        let t = TransmonParams::typical();
        let h = dispersive_hamiltonian(4, &DispersiveParams::typical(), &t);
        assert!(h.is_hermitian(1e-10));
        for i in 0..h.rows() {
            for j in 0..h.cols() {
                if i != j {
                    assert!(h[(i, j)].abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn dispersive_shift_scales_with_photon_and_transmon_number() {
        let t = TransmonParams { levels: 2, ..TransmonParams::typical() };
        let p = DispersiveParams { chi_mhz: 1.0, self_kerr_khz: 0.0, detuning_mhz: 0.0 };
        let h = dispersive_hamiltonian(3, &p, &t);
        let two_pi = 2.0 * std::f64::consts::PI;
        // Entry for |n_c = 2, n_t = 1⟩ should be 2 · 1 · 2πχ.
        let idx = 2 * 2 + 1;
        assert!((h[(idx, idx)].re - 2.0 * two_pi).abs() < 1e-9);
        // Transmon in ground state: no shift.
        let idx0 = 2 * 2;
        assert!(h[(idx0, idx0)].re.abs() < 1e-9);
    }

    #[test]
    fn cavity_transmon_system_photon_decay_rate() {
        let t = TransmonParams::typical();
        let sys = cavity_transmon_system(4, 1000.0, &DispersiveParams::typical(), &t).unwrap();
        assert!(sys.num_collapse_operators() >= 2);
        // One photon decays with the cavity T1, essentially unaffected by the
        // (idle, ground-state) transmon.
        let psi = QuditState::basis(vec![4, t.levels], &[1, 0]).unwrap();
        let mut rho = DensityMatrix::from_pure(&psi);
        sys.evolve(&mut rho, 100.0, 0.5).unwrap();
        let n = rho.expectation(&gates::number_operator(4), &[0]).unwrap().re;
        let expected = (-100.0_f64 / 1000.0).exp();
        assert!((n - expected).abs() < 2e-3, "n = {n} vs {expected}");
    }

    #[test]
    fn multimode_system_validates_lengths_and_builds() {
        let t = TransmonParams::typical();
        assert!(multimode_dispersive_system(&[3, 3], &[1000.0], &[1.0, 1.0], 0.0, &t).is_err());
        let sys =
            multimode_dispersive_system(&[3, 3], &[1000.0, 800.0], &[1.0, 1.2], 2.0, &t).unwrap();
        assert_eq!(sys.radix().dims(), &[3, 3, t.levels]);
        assert!(sys.hamiltonian().is_hermitian(1e-9));
    }

    #[test]
    fn invalid_cavity_t1_rejected() {
        let t = TransmonParams::typical();
        assert!(cavity_transmon_system(4, 0.0, &DispersiveParams::typical(), &t).is_err());
    }
}
